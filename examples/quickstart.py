"""Quickstart: build a population, compute the stable matching, watch it emerge.

Run with ``python examples/quickstart.py``.

The example walks through the paper's model on a small system:
1. build 12 ranked peers with 2 collaboration slots each,
2. compute the unique stable configuration with Algorithm 1,
3. verify stability and inspect the clusters (stratification),
4. let the decentralised initiative process rediscover the same
   configuration from scratch.
"""

from __future__ import annotations

from repro.core import (
    AcceptanceGraph,
    ConvergenceSimulator,
    GlobalRanking,
    PeerPopulation,
    is_stable,
    mean_max_offset,
    stable_configuration,
)
from repro.graphs.components import cluster_sizes
from repro.sim.random_source import RandomSource


def main() -> None:
    # 1. Twelve peers; peer 1 has the best mark, peer 12 the worst.
    population = PeerPopulation.ranked(12, slots=2)
    acceptance = AcceptanceGraph.complete(population)
    ranking = GlobalRanking.from_population(population)

    # 2. Algorithm 1: the unique stable b-matching.
    stable = stable_configuration(acceptance, ranking)
    print("Stable collaborations (peer -> mates):")
    for peer_id in stable.peer_ids():
        print(f"  {peer_id:2d} -> {sorted(stable.mates(peer_id))}")

    # 3. Stability check and stratification structure.
    print(f"\nIs the configuration stable? {is_stable(stable, ranking)}")
    clusters = cluster_sizes(stable.as_graph())
    print(f"Collaboration clusters: {clusters} (constant b-matching -> (b+1)-cliques)")
    print(f"Mean Max Offset: {mean_max_offset(stable, ranking):.3f}")

    # 4. The decentralised dynamics converge to the very same configuration.
    simulator = ConvergenceSimulator(acceptance, strategy="random", source=RandomSource(1))
    result = simulator.run(max_base_units=200)
    print(
        f"\nDecentralised random initiatives reached the stable state after "
        f"{result.time_to_converge:.1f} initiatives per peer "
        f"({result.active_initiatives} active initiatives)."
    )
    assert result.final_matching == stable


if __name__ == "__main__":
    main()
