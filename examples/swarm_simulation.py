"""Run a full Tit-for-Tat swarm and measure its stratification.

Run with ``python examples/swarm_simulation.py``.

The example exercises the BitTorrent substrate end to end: a tracker hands
out random peer sets, leechers trade pieces under TFT + optimistic unchoke
with rarest-first selection, and we then check the paper's predictions --
download rates follow upload capacity, reciprocated TFT partners have
similar bandwidth, and fast peers end up with the worst share ratios.
"""

from __future__ import annotations

import numpy as np

from repro.bittorrent import SwarmConfig, SwarmSimulator, stratification_index


def main() -> None:
    rng = np.random.default_rng(7)
    leechers = 50
    bandwidths = np.exp(rng.uniform(np.log(100.0), np.log(2000.0), leechers))

    config = SwarmConfig(
        leechers=leechers,
        seeds=2,
        piece_count=800,
        rounds=100,
        regular_slots=3,
        optimistic_slots=1,
        announce_size=20,
        start_completion=0.25,
        seed_upload_kbps=2000.0,
    )
    print(
        f"Simulating a swarm of {leechers} leechers + {config.seeds} seeds, "
        f"{config.piece_count} pieces of {config.piece_size_kbit:.0f} kbit..."
    )
    result = SwarmSimulator(config, bandwidths=bandwidths, seed=7, engine="fast").run()

    rates = result.download_rates()
    ratios = result.share_ratios()
    uploads = {p.peer_id: p.upload_kbps for p in result.leechers()}
    order = sorted(uploads, key=lambda pid: -uploads[pid])

    print(f"\nCompleted: {result.completed}/{leechers} in {result.rounds_run} rounds")
    print("\npeer   upload(kbps)  download(kbps)  share ratio")
    for pid in order[:5] + order[len(order) // 2 - 2: len(order) // 2 + 3] + order[-5:]:
        print(f"{pid:4d}   {uploads[pid]:11.0f}  {rates[pid]:13.0f}  {ratios[pid]:10.2f}")

    ids = sorted(rates)
    correlation = np.corrcoef([uploads[i] for i in ids], [rates[i] for i in ids])[0, 1]
    print(f"\nupload/download correlation : {correlation:.3f}")
    print(f"stratification index (TFT)  : {stratification_index(result):.3f}")
    print(
        f"stratification index (volume): "
        f"{stratification_index(result, use_tft_pairs=False):.3f} "
        "(optimistic-unchoke altruism pulls this down)"
    )


if __name__ == "__main__":
    main()
