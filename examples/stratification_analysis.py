"""Stratification analysis: clusters, phase transition and mate distributions.

Run with ``python examples/stratification_analysis.py``.

Reproduces, at a laptop-friendly scale, the paper's Sections 4 and 5:
the clustering of constant b-matching, the sigma phase transition of
variable b-matching (Figure 6 / Table 1) and the shifting-window mate
distributions on random acceptance graphs (Figure 8).
"""

from __future__ import annotations

import numpy as np

from repro.analytical import MateDistribution, independent_one_matching, shift_similarity
from repro.stratification import (
    analyze_complete_matching,
    constant_slots,
    mmo_constant_matching,
    rounded_normal_slots,
    sigma_sweep,
)


def main() -> None:
    # -- Section 4.1: constant b-matching on a complete acceptance graph ----
    print("Constant b-matching on a complete graph (n = 3000):")
    for b0 in (2, 4, 6):
        analysis = analyze_complete_matching(constant_slots(3000, b0))
        print(
            f"  b0={b0}: cluster size {analysis.mean_cluster_size:.1f} "
            f"(expected {b0 + 1}), MMO {analysis.mean_max_offset:.2f} "
            f"(closed form {mmo_constant_matching(b0):.2f})"
        )

    # -- Section 4.2: the sigma phase transition (Figure 6) -----------------
    print("\nVariable b ~ N(6, sigma) on a complete graph (n = 10000):")
    for point in sigma_sweep(10000, 6.0, [0.0, 0.1, 0.2, 0.5, 1.0], repetitions=2, seed=1):
        print(
            f"  sigma={point.sigma:4.2f}: mean cluster {point.mean_cluster_size:9.1f}, "
            f"MMO {point.mean_max_offset:5.2f}"
        )
    print("  -> past sigma ~ 0.15 clusters explode while the MMO drops: stratification.")

    # -- Section 5: mate distributions on random graphs (Figure 8) ----------
    n, p = 3000, 20.0 / 3000
    model = independent_one_matching(n, p, rows=[120, 1500, 2880])
    print(f"\nIndependent 1-matching on G(n={n}, d=20):")
    for peer in (120, 1500, 2880):
        dist = MateDistribution(peer, model.row(peer))
        print(
            f"  peer {peer:4d}: mean offset {dist.mean_offset():8.1f}, "
            f"P(unmatched) {dist.unmatched_probability:5.3f}, "
            f"asymmetry {dist.asymmetry():+.3f}"
        )
    a = MateDistribution(1200, independent_one_matching(n, p, rows=[1200]).row(1200))
    b = MateDistribution(1800, independent_one_matching(n, p, rows=[1800]).row(1800))
    print(
        f"  shift similarity between peers 1200 and 1800: {shift_similarity(a, b):.3f} "
        "(central distributions are pure shifts of each other)"
    )


if __name__ == "__main__":
    main()
