"""BitTorrent share-ratio analysis (the paper's Section 6 / Figure 11).

Run with ``python examples/bittorrent_share_ratio.py``.

Given a realistic upload-bandwidth distribution, the example predicts the
expected download/upload ratio every class of peer will experience under
Tit-for-Tat, then answers two practical questions the paper raises:

* how many extra slots should a very fast peer open to avoid wasting its
  upload capacity, and
* what slot count would a selfish ("rational") peer converge to, and why
  the default of 4 protects obedient peers from that drift.
"""

from __future__ import annotations

import numpy as np

from repro.bittorrent import (
    analytic_efficiency,
    efficiency_observations,
    rational_best_response,
    recommended_default_slots,
    saroiu_like_distribution,
)


def main() -> None:
    distribution = saroiu_like_distribution()
    print("Upstream bandwidth distribution (Figure 10 substitute):")
    for q in (0.1, 0.25, 0.5, 0.75, 0.9, 0.99):
        print(f"  {int(q * 100):3d}th percentile: {distribution.quantile(q):10.0f} kbps")

    # Expected share ratio vs upload bandwidth (Figure 11).
    curve = analytic_efficiency(n=800, b0=3, expected_degree=20.0, seed=1)
    observations = efficiency_observations(curve)
    print("\nExpected D/U ratio (b0 = 3 TFT slots, d = 20 known peers):")
    for percentile in (100, 90, 75, 50, 25, 10, 1):
        ratio = curve.efficiency_at_percentile(percentile)
        print(f"  bandwidth percentile {percentile:3d}: expected ratio {ratio:.2f}")
    print(
        f"\n  best peer ratio   : {observations['best_peer_efficiency']:.2f}  "
        "(fast peers cannot find equally fast partners)"
    )
    print(f"  median peer ratio : {observations['median_efficiency']:.2f}")
    print(f"  best observed peak: {observations['max_efficiency']:.2f}")

    # Effect of adding slots for a very fast peer: more slots lower its
    # upload per slot (bringing it closer to the ranks of ordinary peers and
    # avoiding wasted capacity), which is the paper's explanation for the
    # larger default slot counts of high-bandwidth clients.
    fast_upload = distribution.quantile(0.99)
    median_per_slot = distribution.quantile(0.5) / 3
    print(f"\nA fast peer ({fast_upload:.0f} kbps) comparing slot counts:")
    for slots in (3, 6, 10, 20):
        per_slot = fast_upload / slots
        print(
            f"  {slots:2d} slots -> {per_slot:8.0f} kbps per slot "
            f"({per_slot / median_per_slot:5.1f}x the median peer's slot)"
        )

    # The rational (selfish) slot count vs the protocol default.
    best = rational_best_response(400.0, population_slots=3, n=300, seed=3)
    defaults = recommended_default_slots()
    print(
        f"\nA rational average peer would keep {best} TFT slot(s) "
        f"(the degenerate Nash equilibrium);\n"
        f"the default client uses {defaults['tft_slots']} TFT + "
        f"{defaults['optimistic_slots']} optimistic = {defaults['total']} slots, "
        "the paper's connectivity/incentive trade-off."
    )


if __name__ == "__main__":
    main()
