"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package can be installed in environments without the ``wheel`` package
(legacy ``pip install -e .`` / ``python setup.py develop`` code path).
"""

from setuptools import setup

setup()
