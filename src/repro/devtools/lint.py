"""The ``repro-p2p-lint`` driver: scan, parity-check, baseline, report.

Usage::

    repro-p2p-lint [paths...]                 # default: src
    python -m repro.devtools.lint src --format json
    repro-p2p-lint src --write-baseline       # record current debt

Exit status is 0 when every finding is pragma-suppressed or baselined,
1 when active violations remain, 2 on usage errors.  ``--format json``
emits a machine-readable report (schema documented in
:func:`json_report`); the schema is covered by the self-test suite so
downstream tooling can rely on it.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, TextIO, Tuple

from repro.devtools import baseline as baseline_mod
from repro.devtools.rules import RULES, FileLintResult, Finding, lint_source
from repro.sim import streams

__all__ = ["run_lint", "json_report", "main", "REPORT_VERSION"]

REPORT_VERSION = 1

#: Engine pairs subject to the cross-engine stream-parity check:
#: (domain, reference-tree fragment, fast-tree fragment).
ENGINE_PAIRS: Tuple[Tuple[str, str, str], ...] = (
    ("core", "repro/core/", "repro/core/fast/"),
    ("bittorrent", "repro/bittorrent/", "repro/bittorrent/fast/"),
)


def iter_python_files(targets: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: Set[Path] = set()
    for target in targets:
        if target.is_dir():
            files.update(p for p in target.rglob("*.py") if p.is_file())
        elif target.suffix == ".py" and target.is_file():
            files.add(target)
        else:
            raise FileNotFoundError(f"no python file or directory at {target}")
    return sorted(files)


class LintRun:
    """Outcome of one linter invocation over a set of files."""

    def __init__(self) -> None:
        self.findings: List[Finding] = []
        self.files: List[str] = []
        self.consumption: Dict[str, Set[str]] = {}
        self.baseline_summary: Dict[str, int] = {"consumed": 0, "unused": 0}

    @property
    def active(self) -> List[Finding]:
        return [f for f in self.findings if not f.suppressed and not f.baselined]

    @property
    def exit_code(self) -> int:
        return 1 if self.active else 0

    def consumed_streams(self) -> Set[str]:
        out: Set[str] = set()
        for names in self.consumption.values():
            out.update(names)
        return out


def _parity_findings(consumption: Dict[str, Set[str]]) -> List[Finding]:
    """Cross-engine parity: both trees of a pair consume the same paired set."""
    findings: List[Finding] = []
    for domain, reference_fragment, fast_fragment in ENGINE_PAIRS:
        reference: Set[str] = set()
        fast: Set[str] = set()
        reference_seen = fast_seen = False
        for path, names in consumption.items():
            posix = path.replace("\\", "/")
            if fast_fragment in posix:
                fast_seen = True
                fast.update(names)
            elif reference_fragment in posix:
                reference_seen = True
                reference.update(names)
        if not (reference_seen and fast_seen):
            continue  # partial scans cannot judge parity
        paired = streams.paired_names(domain)
        reference &= paired
        fast &= paired
        if reference == fast:
            continue
        only_reference = sorted(reference - fast)
        only_fast = sorted(fast - reference)
        detail = []
        if only_reference:
            detail.append(f"only in the reference tree: {', '.join(only_reference)}")
        if only_fast:
            detail.append(f"only in the fast tree: {', '.join(only_fast)}")
        findings.append(
            Finding(
                fast_fragment.rstrip("/"),
                1,
                1,
                "RPD002",
                f"engine-pair stream parity broken for domain {domain!r} "
                f"({'; '.join(detail)}): both trees must consume the same "
                f"engine-paired streams or bit-identity under a shared seed "
                f"cannot hold",
            )
        )
    return findings


def run_lint(
    targets: Sequence[Path | str],
    *,
    baseline_path: Optional[Path] = None,
    parity: bool = True,
) -> LintRun:
    """Lint the given files/directories and return the full result."""
    run = LintRun()
    paths = iter_python_files([Path(t) for t in targets])
    for path in paths:
        source = path.read_text(encoding="utf-8")
        result: FileLintResult = lint_source(path.as_posix(), source)
        run.files.append(path.as_posix())
        run.findings.extend(result.findings)
        run.consumption[path.as_posix()] = result.consumed_streams
    if parity:
        run.findings.extend(_parity_findings(run.consumption))
    if baseline_path is not None:
        counts = baseline_mod.load_baseline(baseline_path)
        run.findings, run.baseline_summary = baseline_mod.apply_baseline(
            run.findings, counts
        )
    run.findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return run


def json_report(run: LintRun) -> Dict[str, object]:
    """Machine-readable report.

    Schema (version 1)::

        {
          "version": 1,
          "rules": {"RPD001": "...", ...},
          "files_scanned": int,
          "findings": [
            {"path", "line", "col", "code", "message", "snippet",
             "suppressed": bool, "justification": str, "baselined": bool,
             "fingerprint": str}
          ],
          "counts": {"active", "suppressed", "baselined"},
          "baseline": {"consumed", "unused"},
          "consumed_streams": [str, ...],
          "exit_code": 0 | 1
        }
    """
    return {
        "version": REPORT_VERSION,
        "rules": dict(RULES),
        "files_scanned": len(run.files),
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "code": f.code,
                "message": f.message,
                "snippet": f.snippet,
                "suppressed": f.suppressed,
                "justification": f.justification,
                "baselined": f.baselined,
                "fingerprint": baseline_mod.fingerprint(f),
            }
            for f in run.findings
        ],
        "counts": {
            "active": len(run.active),
            "suppressed": sum(1 for f in run.findings if f.suppressed),
            "baselined": sum(1 for f in run.findings if f.baselined),
        },
        "baseline": dict(run.baseline_summary),
        "consumed_streams": sorted(run.consumed_streams()),
        "exit_code": run.exit_code,
    }


def _text_report(run: LintRun, stream: TextIO) -> None:
    for finding in run.findings:
        if finding.suppressed:
            status = f"  allowed ({finding.justification})"
        elif finding.baselined:
            status = "  baselined"
        else:
            status = ""
        print(
            f"{finding.location()}: {finding.code} {finding.message}{status}",
            file=stream,
        )
    active = run.active
    summary = (
        f"{len(run.files)} files scanned, {len(active)} violations, "
        f"{sum(1 for f in run.findings if f.suppressed)} pragma-allowed, "
        f"{sum(1 for f in run.findings if f.baselined)} baselined"
    )
    if run.baseline_summary.get("unused"):
        summary += f", {run.baseline_summary['unused']} stale baseline entries"
    print(summary, file=stream)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-p2p-lint",
        description="Determinism linter: enforce the named-stream contract statically.",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (json is machine-readable, schema version %d)"
        % REPORT_VERSION,
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline file (default: lint_baseline.json next to the first "
        "target's repository root when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current active findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--no-parity",
        action="store_true",
        help="skip the cross-engine stream-parity check",
    )
    return parser


def _default_baseline(targets: Sequence[str]) -> Optional[Path]:
    """Find ``lint_baseline.json`` next to or above the first target."""
    first = Path(targets[0]).resolve()
    for candidate_dir in [first if first.is_dir() else first.parent, *first.parents]:
        candidate = candidate_dir / "lint_baseline.json"
        if candidate.exists():
            return candidate
    return None


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    baseline_path: Optional[Path]
    if args.no_baseline:
        baseline_path = None
    elif args.baseline is not None:
        baseline_path = args.baseline
    else:
        baseline_path = _default_baseline(args.targets)

    try:
        run = run_lint(
            args.targets,
            baseline_path=None if args.write_baseline else baseline_path,
            parity=not args.no_parity,
        )
    except (FileNotFoundError, ValueError) as error:
        print(f"repro-p2p-lint: {error}", file=sys.stderr)
        return 2

    if args.write_baseline:
        target = args.baseline or baseline_path or Path("lint_baseline.json")
        baseline_mod.write_baseline(target, run.active)
        print(
            f"wrote {len(run.active)} baseline entries to {target}",
            file=sys.stderr,
        )
        return 0

    if args.format == "json":
        json.dump(json_report(run), sys.stdout, indent=2)
        print()
    else:
        _text_report(run, sys.stdout)
    return run.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
