"""Developer tooling: the determinism linter and its supporting machinery.

The package hosts ``repro-p2p-lint`` (also runnable as
``python -m repro.devtools.lint``), a custom AST linter that enforces the
named-stream determinism contract statically:

* **RPD001** -- seedless or global-state RNG construction outside
  ``sim/random_source.py``;
* **RPD002** -- stream names not declared in the
  :mod:`repro.sim.streams` registry, plus the cross-engine parity check
  that ``core/`` vs ``core/fast/`` and ``bittorrent/`` vs
  ``bittorrent/fast/`` consume the same engine-paired stream sets;
* **RPD003** -- iteration over a bare ``set``/``dict`` in a function
  that also touches an rng or stream (hash-order-dependent draw order);
* **RPD004** -- wall-clock access inside simulation modules;
* **RPD005** -- deprecated ``*_kb`` spellings.

Violations can be locally waived with a justified pragma::

    x = legacy_call()  # repro: allow[RPD001] -- calibration script, not a simulation

or parked in a committed baseline file so the gate stays additive.  See
``docs/determinism.md`` for the full workflow.
"""

from repro.devtools.lint import main, run_lint
from repro.devtools.rules import RULES, Finding

__all__ = ["main", "run_lint", "RULES", "Finding"]
