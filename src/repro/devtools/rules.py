"""AST rules of the determinism linter.

Each rule has a stable ``RPDxxx`` code (Repro-P2p-Determinism).  The
implementation is a single AST pass per file (:class:`FileLinter`) plus a
whole-run cross-engine parity check that the driver in
:mod:`repro.devtools.lint` performs once all files are scanned.

The rules are deliberately *syntactic*: they over-approximate the dynamic
behaviour (e.g. any local assigned from a ``set()`` call counts as a set
forever) and rely on the justified-pragma escape hatch for the rare
legitimate exception.  That trade keeps the linter dependency-free, fast
(one ``ast.parse`` per file) and -- unlike the hypothesis equivalence
suite it complements -- able to point at the exact offending line.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.sim import streams

__all__ = [
    "RULES",
    "Finding",
    "FileLinter",
    "lint_source",
    "parse_pragmas",
]

#: Rule codes and their one-line descriptions.
RULES: Mapping[str, str] = {
    "RPD000": "malformed determinism pragma (missing code list or justification)",
    "RPD001": "seedless or global-state RNG construction outside sim/random_source.py",
    "RPD002": "stream name not declared in the repro.sim.streams registry "
    "(or engine trees consume different paired stream sets)",
    "RPD003": "iteration over a bare set/dict in a function that touches an rng/stream",
    "RPD004": "wall-clock access in a simulation module",
    "RPD005": "deprecated *_kb spelling (unit renamed to *_kbit)",
}

#: The file exempt from RPD001: the one place allowed to construct generators.
RNG_FACTORY_SUFFIX = "sim/random_source.py"

#: Path fragments marking simulation modules (RPD004 scope).
SIMULATION_FRAGMENTS: Tuple[str, ...] = (
    "repro/sim/",
    "repro/core/",
    "repro/bittorrent/",
    "repro/graphs/",
    "repro/stratification/",
)

#: Legacy global-state functions of the ``numpy.random`` module namespace.
_NUMPY_LEGACY: Set[str] = {
    "seed",
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "ranf",
    "sample",
    "bytes",
    "choice",
    "shuffle",
    "permutation",
    "uniform",
    "normal",
    "standard_normal",
    "beta",
    "binomial",
    "poisson",
    "exponential",
    "gamma",
    "lognormal",
    "geometric",
    "RandomState",
}

#: Stochastic callables of the stdlib ``random`` module.
_STDLIB_RANDOM: Set[str] = {
    "seed",
    "random",
    "randint",
    "randrange",
    "getrandbits",
    "randbytes",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "triangular",
    "betavariate",
    "expovariate",
    "gammavariate",
    "gauss",
    "lognormvariate",
    "normalvariate",
    "vonmisesvariate",
    "paretovariate",
    "weibullvariate",
    "Random",
}

#: Wall-clock callables rejected in simulation modules (RPD004).  Monotonic
#: profiling clocks (``perf_counter``, ``monotonic``) are allowed: they feed
#: telemetry, never simulation state.
_WALL_CLOCK: Set[str] = {
    "time.time",
    "time.time_ns",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "time.asctime",
    "time.strftime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

_DEPRECATED_SUFFIX = "_kb"

_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<codes>[A-Za-z0-9,\s]*)\]\s*(?:--\s*(?P<why>.*\S))?"
)


@dataclass(frozen=True)
class Finding:
    """One linter finding, anchored to a file position.

    ``suppressed`` marks findings waived by a justified pragma on the same
    line; ``baselined`` marks findings absorbed by the committed baseline
    file.  Neither kind affects the exit code.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    snippet: str = ""
    suppressed: bool = False
    justification: str = ""
    baselined: bool = False

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


def parse_pragmas(
    path: str, lines: Sequence[str]
) -> Tuple[Dict[int, Tuple[Set[str], str]], List[Finding]]:
    """Extract ``# repro: allow[...] -- why`` pragmas from source lines.

    Returns a map ``line_number -> (codes, justification)`` plus RPD000
    findings for malformed pragmas (empty code list, unknown codes, or a
    missing justification -- the justification is mandatory, a pragma is a
    reviewed exception, not a mute button).
    """
    pragmas: Dict[int, Tuple[Set[str], str]] = {}
    problems: List[Finding] = []
    for lineno, text in enumerate(lines, start=1):
        if "repro:" not in text:
            continue
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        codes = {c.strip() for c in match.group("codes").split(",") if c.strip()}
        why = (match.group("why") or "").strip()
        col = match.start() + 1
        bad_codes = sorted(c for c in codes if c not in RULES or c == "RPD000")
        if not codes or bad_codes:
            problems.append(
                Finding(
                    path,
                    lineno,
                    col,
                    "RPD000",
                    "pragma must list valid rule codes, e.g. allow[RPD001]"
                    + (f"; unknown: {', '.join(bad_codes)}" if bad_codes else ""),
                    snippet=text.strip(),
                )
            )
            continue
        if not why:
            problems.append(
                Finding(
                    path,
                    lineno,
                    col,
                    "RPD000",
                    "pragma is missing its mandatory justification "
                    "(allow[RPDxxx] -- why this is safe)",
                    snippet=text.strip(),
                )
            )
            continue
        pragmas[lineno] = (codes, why)
    return pragmas, problems


class _ImportTracker:
    """Resolve local names to the dotted module paths they were imported as."""

    def __init__(self) -> None:
        self.aliases: Dict[str, str] = {}

    def visit_import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.aliases[local] = target

    def visit_import_from(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return
        for alias in node.names:
            local = alias.asname or alias.name
            self.aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted name of an attribute chain, through import aliases."""
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        base = self.aliases.get(current.id, current.id)
        parts.append(base)
        return ".".join(reversed(parts))


def _is_simulation_module(path: str) -> bool:
    posix = path.replace("\\", "/")
    return any(fragment in posix for fragment in SIMULATION_FRAGMENTS)


def _is_rng_factory(path: str) -> bool:
    return path.replace("\\", "/").endswith(RNG_FACTORY_SUFFIX)


@dataclass
class FileLintResult:
    """Per-file outcome: findings plus the stream-consumption record."""

    path: str
    findings: List[Finding] = field(default_factory=list)
    #: Stream names this file consumes via ``.stream(...)``/``.fresh_stream``.
    consumed_streams: Set[str] = field(default_factory=set)


class FileLinter(ast.NodeVisitor):
    """One-pass AST linter for a single file."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path.replace("\\", "/")
        self.source = source
        self.lines = source.splitlines()
        self.imports = _ImportTracker()
        self.result = FileLintResult(self.path)
        self._constant_map = streams.constant_map()
        self._registered = streams.registered_names()

    # -- public entry ----------------------------------------------------------

    def run(self) -> FileLintResult:
        try:
            tree = ast.parse(self.source, filename=self.path)
        except SyntaxError as error:
            self.result.findings.append(
                Finding(
                    self.path,
                    error.lineno or 1,
                    (error.offset or 1),
                    "RPD000",
                    f"file does not parse: {error.msg}",
                )
            )
            return self.result
        pragmas, pragma_problems = parse_pragmas(self.path, self.lines)
        self.visit(tree)
        self._check_functions(tree)
        findings = pragma_problems + self.result.findings
        self.result.findings = [
            self._apply_pragma(finding, pragmas) for finding in findings
        ]
        return self.result

    def _apply_pragma(
        self, finding: Finding, pragmas: Dict[int, Tuple[Set[str], str]]
    ) -> Finding:
        entry = pragmas.get(finding.line)
        if entry is None or finding.code == "RPD000":
            return finding
        codes, why = entry
        if finding.code in codes:
            return replace(finding, suppressed=True, justification=why)
        return finding

    def _add(self, node: ast.AST, code: str, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        snippet = self.lines[line - 1].strip() if 0 < line <= len(self.lines) else ""
        self.result.findings.append(
            Finding(self.path, line, col, code, message, snippet=snippet)
        )

    # -- imports ---------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        self.imports.visit_import(node)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self.imports.visit_import_from(node)
        for alias in node.names:
            if node.module == "random" and alias.name in _STDLIB_RANDOM:
                if not _is_rng_factory(self.path):
                    self._add(
                        node,
                        "RPD001",
                        f"importing random.{alias.name} bypasses the named-stream "
                        f"discipline; draw from a RandomSource stream instead",
                    )
            if alias.name.endswith(_DEPRECATED_SUFFIX):
                self._add(
                    node,
                    "RPD005",
                    f"deprecated *_kb spelling {alias.name!r}; use the *_kbit field",
                )
        self.generic_visit(node)

    # -- RPD001 / RPD002 / RPD004: calls ---------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.imports.resolve(node.func)
        if resolved is not None:
            self._check_rng_construction(node, resolved)
            self._check_wall_clock(node, resolved)
        self._check_stream_call(node)
        self.generic_visit(node)

    def _check_rng_construction(self, node: ast.Call, resolved: str) -> None:
        if _is_rng_factory(self.path):
            return
        if resolved == "numpy.random.default_rng":
            if not node.args and not node.keywords:
                self._add(
                    node,
                    "RPD001",
                    "seedless np.random.default_rng() -- every generator must "
                    "be seeded from a named RandomSource stream (or an "
                    "explicit seed at an experiment boundary)",
                )
            return
        parts = resolved.split(".")
        if (
            len(parts) == 3
            and parts[0] == "numpy"
            and parts[1] == "random"
            and parts[2] in _NUMPY_LEGACY
        ):
            self._add(
                node,
                "RPD001",
                f"np.random.{parts[2]} uses numpy's hidden global RNG state; "
                f"draw from a named RandomSource stream instead",
            )
        elif len(parts) == 2 and parts[0] == "random" and parts[1] in _STDLIB_RANDOM:
            self._add(
                node,
                "RPD001",
                f"random.{parts[1]} uses the stdlib's hidden global RNG state; "
                f"draw from a named RandomSource stream instead",
            )

    def _check_wall_clock(self, node: ast.Call, resolved: str) -> None:
        if resolved in _WALL_CLOCK and _is_simulation_module(self.path):
            self._add(
                node,
                "RPD004",
                f"{resolved}() reads the wall clock inside a simulation module; "
                f"simulated time must come from the simulation clock / round "
                f"counter so runs replay bit-identically",
            )

    def _check_stream_call(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in ("stream", "fresh_stream"):
            return
        if not node.args:
            return
        arg = node.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            name = arg.value
            self.result.consumed_streams.add(name)
            if name not in self._registered:
                self._add(
                    arg,
                    "RPD002",
                    f"stream name {name!r} is not declared in the "
                    f"repro.sim.streams registry",
                )
            else:
                self._add(
                    arg,
                    "RPD002",
                    f"stream name {name!r} is a bare literal; use the registry "
                    f"constant streams.{self._constant_for(name)} so consumers "
                    f"stay statically traceable",
                )
        elif isinstance(arg, ast.Name) and arg.id in self._constant_map:
            self.result.consumed_streams.add(self._constant_map[arg.id])
        elif isinstance(arg, ast.Attribute) and arg.attr in self._constant_map:
            self.result.consumed_streams.add(self._constant_map[arg.attr])
        # Anything else is a dynamic stream name; the registry cannot vouch
        # for it statically, and runtime strict mode covers it instead.

    def _constant_for(self, name: str) -> str:
        for const, value in self._constant_map.items():
            if value == name:
                return const
        return "<unregistered>"

    # -- RPD005: deprecated *_kb identifiers -----------------------------------

    def visit_Name(self, node: ast.Name) -> None:
        self._check_unit_suffix(node, node.id)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self._check_unit_suffix(node, node.attr)
        self.generic_visit(node)

    def visit_arg(self, node: ast.arg) -> None:
        self._check_unit_suffix(node, node.arg)
        self.generic_visit(node)

    def visit_keyword(self, node: ast.keyword) -> None:
        if node.arg is not None:
            self._check_unit_suffix(node, node.arg)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_unit_suffix(node, node.name)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_unit_suffix(node, node.name)
        self.generic_visit(node)

    def _check_unit_suffix(self, node: ast.AST, identifier: str) -> None:
        if identifier.endswith(_DEPRECATED_SUFFIX):
            self._add(
                node,
                "RPD005",
                f"deprecated *_kb spelling {identifier!r}; the unit was renamed "
                f"to *_kbit (kilobits) -- use the new field",
            )

    # -- RPD003: hash-order iteration in rng-touching functions ----------------

    def _check_functions(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_one_function(node)

    def _function_body_nodes(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> List[ast.AST]:
        """All descendant nodes of ``func`` excluding nested function bodies."""
        collected: List[ast.AST] = []

        def walk(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                collected.append(child)
                walk(child)

        walk(func)
        return collected

    def _check_one_function(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        nodes = self._function_body_nodes(func)
        if not self._touches_rng(func, nodes):
            return
        hashy = self._hash_ordered_locals(nodes)
        for node in nodes:
            iters: List[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for iter_node in iters:
                kind = self._bare_hash_iteration(iter_node, hashy)
                if kind is not None:
                    self._add(
                        iter_node,
                        "RPD003",
                        f"iterating a bare {kind} in function {func.name!r}, "
                        f"which also touches an rng/stream: the iteration order "
                        f"is hash/insertion-order dependent and leaks into the "
                        f"draw sequence -- iterate sorted(...) or a list",
                    )

    def _touches_rng(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef, nodes: Sequence[ast.AST]
    ) -> bool:
        def rng_name(identifier: str) -> bool:
            return identifier == "rng" or identifier.endswith("_rng")

        for arg in list(func.args.args) + list(func.args.kwonlyargs) + list(
            func.args.posonlyargs
        ):
            if rng_name(arg.arg):
                return True
        for node in nodes:
            if isinstance(node, ast.Name) and rng_name(node.id):
                return True
            if isinstance(node, ast.Attribute) and node.attr in (
                "stream",
                "fresh_stream",
            ):
                return True
        return False

    def _hash_ordered_locals(self, nodes: Sequence[ast.AST]) -> Dict[str, str]:
        """Local names assigned a set/dict within the function body."""
        hashy: Dict[str, str] = {}
        for node in nodes:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None:
                continue
            kind = self._set_or_dict_expr(value)
            if kind is None:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    hashy[target.id] = kind
        return hashy

    @staticmethod
    def _set_or_dict_expr(value: ast.expr) -> Optional[str]:
        if isinstance(value, (ast.Set, ast.SetComp)):
            return "set"
        if isinstance(value, (ast.Dict, ast.DictComp)):
            return "dict"
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            if value.func.id in ("set", "frozenset"):
                return "set"
            if value.func.id == "dict":
                return "dict"
        return None

    def _bare_hash_iteration(
        self, iter_node: ast.expr, hashy: Dict[str, str]
    ) -> Optional[str]:
        kind = self._set_or_dict_expr(iter_node)
        if kind is not None:
            return kind
        if isinstance(iter_node, ast.Name):
            return hashy.get(iter_node.id)
        if isinstance(iter_node, ast.Call) and isinstance(iter_node.func, ast.Attribute):
            method = iter_node.func.attr
            base = iter_node.func.value
            if method in ("keys", "values", "items") and isinstance(base, ast.Name):
                if hashy.get(base.id) == "dict":
                    return "dict"
        return None


def lint_source(path: str, source: str) -> FileLintResult:
    """Lint one file's source text (the unit the fixtures exercise)."""
    return FileLinter(path, source).run()
