"""Committed-baseline support: make the determinism gate additive.

A baseline entry is a stable fingerprint of one existing finding
(path + rule code + the offending line's stripped text).  Findings that
match a baseline entry are reported but do not fail the gate, so the
linter can land with legacy debt recorded instead of blocking; new
violations -- anywhere -- still fail.  Fingerprints are text-anchored, not
line-number-anchored, so unrelated edits that shift lines do not
invalidate the baseline, while editing the offending line itself does
(which is the desired behaviour: touched code must be brought up to the
contract).

The repository policy on top of the mechanism: ``sim/``, ``core/fast/``
and ``bittorrent/fast/`` must have **zero** baseline entries -- the
engine-critical trees carry no recorded debt.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Tuple

from repro.devtools.rules import Finding

__all__ = [
    "fingerprint",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
    "BASELINE_VERSION",
]

BASELINE_VERSION = 1


def fingerprint(finding: Finding) -> str:
    """Stable identity of a finding: path, code and offending line text."""
    payload = f"{finding.path}|{finding.code}|{finding.snippet}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def load_baseline(path: Path) -> Counter:
    """Load a baseline file into a fingerprint multiset.

    A missing file is an empty baseline; a malformed one raises
    ``ValueError`` (a silently ignored baseline would un-gate the tree).
    """
    if not path.exists():
        return Counter()
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ValueError(f"baseline file {path} is not valid JSON: {error}") from error
    if not isinstance(payload, dict) or "entries" not in payload:
        raise ValueError(f"baseline file {path} must be an object with 'entries'")
    counts: Counter = Counter()
    for entry in payload["entries"]:
        if not isinstance(entry, dict) or "fingerprint" not in entry:
            raise ValueError(f"baseline entry {entry!r} is missing 'fingerprint'")
        counts[str(entry["fingerprint"])] += 1
    return counts


def write_baseline(path: Path, findings: List[Finding]) -> None:
    """Write the given (active) findings as the new baseline."""
    entries = [
        {
            "path": finding.path,
            "code": finding.code,
            "fingerprint": fingerprint(finding),
            "snippet": finding.snippet,
        }
        for finding in sorted(findings, key=lambda f: (f.path, f.line, f.code))
    ]
    payload = {"version": BASELINE_VERSION, "entries": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def apply_baseline(
    findings: List[Finding], baseline: Counter
) -> Tuple[List[Finding], Dict[str, int]]:
    """Mark findings covered by the baseline multiset.

    Returns the updated findings plus a summary with the number of
    baseline entries consumed and left unused (stale entries should be
    pruned with ``--write-baseline``).
    """
    remaining = Counter(baseline)
    out: List[Finding] = []
    consumed = 0
    for finding in findings:
        if finding.suppressed:
            out.append(finding)
            continue
        key = fingerprint(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            consumed += 1
            out.append(
                Finding(
                    finding.path,
                    finding.line,
                    finding.col,
                    finding.code,
                    finding.message,
                    snippet=finding.snippet,
                    baselined=True,
                )
            )
        else:
            out.append(finding)
    unused = sum(count for count in remaining.values() if count > 0)
    return out, {"consumed": consumed, "unused": unused}
