"""Expected download/upload efficiency of a BitTorrent peer (Figure 11).

Section 6 of the paper connects the matching model to BitTorrent: in the
post flash-crowd regime, Tit-for-Tat ranks potential collaborators by their
upload *per slot*, so the stable b0-matching model applies directly.  The
expected download of a peer is then the expected upload-per-slot of its
mates, summed over its slots, and the quantity of interest is the share
ratio (download / upload), plotted against the peer's upload-per-slot.

Two estimators are provided:

* :func:`analytic_efficiency` -- uses Algorithm 3's per-choice mate
  distributions ``D_c(i, j)`` (this is how the paper computes Figure 11);
* :func:`simulated_efficiency` -- Monte-Carlo over explicit Erdős–Rényi
  acceptance graphs solved exactly with Algorithm 1, used to cross-check
  the analytic curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.analytical.b_matching import independent_b_matching
from repro.bittorrent.bandwidth import BandwidthDistribution, saroiu_like_distribution
from repro.core.acceptance import AcceptanceGraph
from repro.core.peer import PeerPopulation
from repro.core.ranking import GlobalRanking
from repro.core.stable import stable_configuration
from repro.sim.random_source import RandomSource
from repro.sim import streams

__all__ = [
    "EfficiencyCurve",
    "analytic_efficiency",
    "simulated_efficiency",
    "efficiency_observations",
]


@dataclass
class EfficiencyCurve:
    """Expected share ratio as a function of the offered upload bandwidth.

    Attributes
    ----------
    upload_per_slot:
        Upload bandwidth per collaboration slot (kbps), sorted descending by
        rank (index 0 is the best peer).
    expected_download:
        Expected total download rate of each peer (kbps).
    efficiency:
        Share ratio ``expected_download / upload`` for each peer.
    b0:
        Number of Tit-for-Tat slots.
    expected_degree:
        Average number of acceptable peers d.
    """

    upload_per_slot: np.ndarray
    expected_download: np.ndarray
    efficiency: np.ndarray
    b0: int
    expected_degree: float

    @property
    def n(self) -> int:
        """Number of peers."""
        return int(self.upload_per_slot.shape[0])

    def efficiency_at_percentile(self, percentile: float) -> float:
        """Share ratio of the peer at the given bandwidth percentile (0 = worst)."""
        if not 0.0 <= percentile <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        # Peers are stored best-first; percentile 100 is the best peer.
        index = int(round((100.0 - percentile) / 100.0 * (self.n - 1)))
        return float(self.efficiency[index])

    def best_peer_efficiency(self) -> float:
        """Share ratio of the very best peer (the paper: below 1)."""
        return float(self.efficiency[0])

    def median_efficiency(self) -> float:
        """Median share ratio across all peers."""
        return float(np.median(self.efficiency))


def _ranked_uploads(
    n: int,
    distribution: Optional[BandwidthDistribution],
    uploads: Optional[Sequence[float]],
    b0: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample or take uploads, convert to upload-per-slot, sort best-first."""
    if uploads is not None:
        values = np.asarray(list(uploads), dtype=float)
    else:
        dist = distribution if distribution is not None else saroiu_like_distribution()
        values = dist.sample(n, rng)
    if np.any(values <= 0):
        raise ValueError("upload bandwidths must be positive")
    per_slot = values / float(b0)
    return np.sort(per_slot)[::-1]


def analytic_efficiency(
    n: int = 1000,
    *,
    b0: int = 3,
    expected_degree: float = 20.0,
    distribution: Optional[BandwidthDistribution] = None,
    uploads: Optional[Sequence[float]] = None,
    seed: int = 0,
) -> EfficiencyCurve:
    """Figure 11: expected share ratio via the independent b0-matching model.

    Peers are ranked by upload-per-slot; Algorithm 3 provides, for every
    rank, the distribution of the ranks of its mates; the expected download
    is the mate's upload-per-slot averaged over that distribution and summed
    over the peer's b0 slots.
    """
    if n < 2:
        raise ValueError("need at least two peers")
    source = RandomSource(seed)
    per_slot = _ranked_uploads(n, distribution, uploads, b0, source.stream(streams.BANDWIDTH))
    n = per_slot.shape[0]
    p = min(1.0, expected_degree / (n - 1))

    model = independent_b_matching(n, p, b0)
    expected_download = np.zeros(n, dtype=float)
    for i in range(1, n + 1):
        total_row = model.total_row(i)
        expected_download[i - 1] = float((total_row * per_slot).sum())

    upload_total = per_slot * b0
    efficiency = expected_download / upload_total
    return EfficiencyCurve(
        upload_per_slot=per_slot,
        expected_download=expected_download,
        efficiency=efficiency,
        b0=b0,
        expected_degree=expected_degree,
    )


def simulated_efficiency(
    n: int = 500,
    *,
    b0: int = 3,
    expected_degree: float = 20.0,
    distribution: Optional[BandwidthDistribution] = None,
    uploads: Optional[Sequence[float]] = None,
    samples: int = 20,
    seed: int = 0,
) -> EfficiencyCurve:
    """Monte-Carlo estimate of the Figure 11 curve using explicit matchings."""
    if samples <= 0:
        raise ValueError("samples must be positive")
    source = RandomSource(seed)
    per_slot = _ranked_uploads(n, distribution, uploads, b0, source.stream(streams.BANDWIDTH))
    n = per_slot.shape[0]

    download = np.zeros(n, dtype=float)
    population = PeerPopulation.from_scores(per_slot.tolist(), slots=b0)
    ranking = GlobalRanking.from_population(population)
    for index in range(samples):
        rng = source.fresh_stream(f"graph-{index}")
        acceptance = AcceptanceGraph.erdos_renyi(
            population.copy(), expected_degree=expected_degree, rng=rng
        )
        matching = stable_configuration(acceptance, ranking)
        for peer_id in matching.peer_ids():
            for mate in matching.mates(peer_id):
                download[peer_id - 1] += per_slot[mate - 1]
    download /= samples

    upload_total = per_slot * b0
    efficiency = download / upload_total
    return EfficiencyCurve(
        upload_per_slot=per_slot,
        expected_download=download,
        efficiency=efficiency,
        b0=b0,
        expected_degree=expected_degree,
    )


def efficiency_observations(curve: EfficiencyCurve) -> Dict[str, float]:
    """Quantify the paper's Section 6 observations on an efficiency curve.

    Returns a dictionary with:

    * ``best_peer_efficiency`` -- the best peers "suffer from low sharing
      ratios" (expected < 1);
    * ``median_efficiency`` -- peers inside a density peak sit near ratio 1;
    * ``worst_decile_efficiency`` -- the lowest peers still enjoy a high
      ratio (they sometimes obtain several times their own upload);
    * ``max_efficiency`` -- the efficiency peaks that appear just above the
      bandwidth density peaks.
    """
    n = curve.n
    worst_decile = curve.efficiency[int(0.9 * n):]
    return {
        "best_peer_efficiency": curve.best_peer_efficiency(),
        "median_efficiency": curve.median_efficiency(),
        "worst_decile_efficiency": float(np.mean(worst_decile)) if worst_decile.size else float("nan"),
        "max_efficiency": float(np.max(curve.efficiency)),
    }
