"""Adversarial and heterogeneous client behaviors.

The paper derives stratification for *homogeneous, protocol-obedient*
peers: everyone runs the reference client, uploads at full capacity and
connects to whoever the tracker returns.  Real swarms do not look like
that, and the natural robustness question is how far the Tit-for-Tat
clustering prediction survives deviant clients.  This module is the
workload dimension the scenario layer (:mod:`repro.bittorrent.scenarios`)
deliberately left out: scenarios vary *membership*, behaviors vary what a
member *does*.

A :class:`BehaviorProfile` is a named bundle of deviations from the
reference client:

``standard``
    The obedient client the paper assumes (all defaults).
``free_rider``
    Caps the upload budget at ``upload_factor`` of the peer's capacity
    (the classic bandwidth-cheat: announce a fat pipe, serve a trickle).
``never_upload``
    BitThief-style: announces, downloads, and never unchokes anybody.
``super_seed``
    Reveals at most ``reveal_limit`` new pieces per transfer per round
    (the super-seeding trickle, meant for the initial seeds via
    :attr:`BehaviorMix.seed_behavior`).
``partial_seed``
    Holds a fixed ``hold_fraction`` subset of the pieces forever: serves
    them, never downloads, never completes.
``nat_limited``
    Asymmetric connectability: two NAT-limited peers cannot connect to
    each other, so tracker contacts between them are dropped on the edge
    set (a NAT peer still connects fine to any public peer).
``locality_biased``
    Neighbor selection skewed toward the peer's assigned locality group:
    a cross-group tracker contact is kept only with probability
    ``1 - locality_bias``.

A :class:`BehaviorMix` assigns profiles to peers at arrival time from the
dedicated ``"behavior"`` random stream (:data:`repro.sim.streams.
BEHAVIOR`).  Assignment is one batched draw per population / arrival
batch, and the locality filter is one batched draw per biased announce,
so both swarm engines consume the stream draw-for-draw identically --
every behavior is bit-identical across ``engine="fast"`` and
``engine="reference"`` under a shared seed (enforced by
``tests/test_swarm_engine_equivalence.py`` and the golden traces).

A trivial mix (no fractions, standard seeds) draws nothing and filters
nothing, so enabling the behavior layer cannot perturb the streams of a
behavior-free run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "BEHAVIOR_NAMES",
    "BEHAVIOR_MIX_NAMES",
    "BehaviorProfile",
    "BehaviorMix",
    "profile_for",
    "make_behavior_mix",
    "resolve_behavior_mix",
    "filter_contacts",
    "bootstrap_piece_count",
]

STANDARD = "standard"


@dataclass(frozen=True)
class BehaviorProfile:
    """One named client behavior: a bundle of deviations from the default.

    Attributes
    ----------
    name:
        The behavior's registry name (``SwarmPeer.behavior`` reports it).
    upload_factor:
        Multiplier on the per-round upload budget (1.0 = full capacity;
        the peer's *announced* ``upload_kbps`` is untouched, so bandwidth
        ranks still reflect the capacity it pretends to have).
    unchokes:
        Whether the peer ever unchokes anybody.  ``False`` skips the peer
        as a sender entirely (BitThief never reciprocates).
    downloads:
        Whether the peer requests pieces.  ``False`` removes it from every
        other peer's unchoke targets and from the completion predicates
        (a partial seed serves its subset forever).
    reveal_limit:
        Maximum new pieces granted per transfer per round (``None`` =
        unlimited; 1 = super-seeding).
    hold_fraction:
        Fixed bootstrap completion overriding ``start_completion`` /
        ``arrival_completion`` (``None`` = use the swarm's setting).
    nat_limited:
        Whether the peer sits behind a connection-limited NAT; an edge
        between two NAT-limited peers is dropped from the tracker's
        contact list (symmetrically, on both neighbor sets).
    locality_bias:
        Probability of dropping a tracker contact *outside* the peer's
        locality group (0.0 = no bias).
    """

    name: str
    upload_factor: float = 1.0
    unchokes: bool = True
    downloads: bool = True
    reveal_limit: Optional[int] = None
    hold_fraction: Optional[float] = None
    nat_limited: bool = False
    locality_bias: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("behavior name cannot be empty")
        if self.upload_factor < 0.0:
            raise ValueError("upload_factor cannot be negative")
        if self.reveal_limit is not None and self.reveal_limit < 1:
            raise ValueError("reveal_limit must be >= 1 (or None)")
        if self.hold_fraction is not None and not 0.0 <= self.hold_fraction < 1.0:
            raise ValueError("hold_fraction must be in [0, 1)")
        if not 0.0 <= self.locality_bias <= 1.0:
            raise ValueError("locality_bias must be in [0, 1]")

    @property
    def is_standard(self) -> bool:
        """Whether this profile behaves exactly like the reference client."""
        return (
            self.upload_factor == 1.0
            and self.unchokes
            and self.downloads
            and self.reveal_limit is None
            and self.hold_fraction is None
            and not self.nat_limited
            and self.locality_bias == 0.0
        )


_PROFILES: Dict[str, BehaviorProfile] = {
    profile.name: profile
    for profile in (
        BehaviorProfile(STANDARD),
        BehaviorProfile("free_rider", upload_factor=0.1),
        BehaviorProfile("never_upload", unchokes=False),
        BehaviorProfile("super_seed", reveal_limit=1),
        BehaviorProfile("partial_seed", downloads=False, hold_fraction=0.5),
        BehaviorProfile("nat_limited", nat_limited=True),
        BehaviorProfile("locality_biased", locality_bias=0.75),
    )
}

BEHAVIOR_NAMES = tuple(sorted(_PROFILES))


def profile_for(name: str) -> BehaviorProfile:
    """The registered :class:`BehaviorProfile` called ``name``."""
    if name not in _PROFILES:
        raise ValueError(
            f"unknown behavior '{name}' (available: {', '.join(BEHAVIOR_NAMES)})"
        )
    return _PROFILES[name]


FractionsLike = Union[
    Mapping[str, float], Sequence[Tuple[str, float]], Tuple[Tuple[str, float], ...]
]


@dataclass(frozen=True)
class BehaviorMix:
    """How behaviors are distributed over a peer population.

    Attributes
    ----------
    fractions:
        ``(behavior_name, fraction)`` pairs; each arriving leecher draws
        its behavior from these fractions (the remainder is ``standard``).
        Normalized to a name-sorted tuple so equal mixes compare and hash
        equal regardless of input order.
    seed_behavior:
        Behavior of the initial seeds (``"super_seed"`` turns them into
        one-piece-at-a-time super seeds).
    locality_groups:
        Number of locality groups peers are spread over (only drawn /
        used when some assigned behavior has a locality bias).
    """

    fractions: FractionsLike = field(default=())
    seed_behavior: str = STANDARD
    locality_groups: int = 4

    def __post_init__(self) -> None:
        pairs = (
            tuple(self.fractions.items())
            if isinstance(self.fractions, Mapping)
            else tuple(tuple(pair) for pair in self.fractions)  # type: ignore[arg-type]
        )
        seen: Dict[str, float] = {}
        for name, fraction in pairs:
            profile_for(name)  # raises with the valid names on a typo
            fraction = float(fraction)
            if not 0.0 <= fraction <= 1.0:
                raise ValueError(f"behavior fraction for '{name}' must be in [0, 1]")
            if name in seen:
                raise ValueError(f"behavior '{name}' listed twice in the mix")
            if fraction > 0.0:
                seen[name] = fraction
        if sum(seen.values()) > 1.0 + 1e-12:
            raise ValueError("behavior fractions sum to more than 1")
        profile_for(self.seed_behavior)
        if self.locality_groups < 1:
            raise ValueError("locality_groups must be >= 1")
        object.__setattr__(
            self, "fractions", tuple(sorted(seen.items()))
        )

    # -- properties ---------------------------------------------------------------

    @property
    def is_trivial(self) -> bool:
        """Whether the mix draws nothing and changes nothing.

        A trivial mix assigns ``standard`` to everybody without touching
        the ``"behavior"`` stream, so a behavior-free run is draw-for-draw
        identical with or without the behavior layer.
        """
        return not self.fractions and self.seed_behavior == STANDARD

    @property
    def uses_locality(self) -> bool:
        """Whether any assignable behavior carries a locality bias."""
        return any(
            profile_for(name).locality_bias > 0.0
            for name, _ in tuple(self.fractions) + ((self.seed_behavior, 1.0),)
        )

    def behavior_names(self) -> Tuple[str, ...]:
        """Every behavior this mix can assign (``standard`` included)."""
        names = {STANDARD, self.seed_behavior}
        names.update(name for name, _ in self.fractions)
        return tuple(sorted(names))

    # -- assignment (the only draws) ----------------------------------------------

    def assign(self, count: int, rng: np.random.Generator) -> List[str]:
        """Behavior names for ``count`` fresh leechers.

        Consumes exactly one ``rng.random(count)`` batch when the mix has
        fractions, and nothing otherwise -- both engines call this at the
        same points with the same counts, so consumption is identical.
        """
        if count <= 0 or not self.fractions:
            return [STANDARD] * max(0, count)
        draws = rng.random(count)
        names: List[str] = []
        for value in draws:
            cumulative = 0.0
            chosen = STANDARD
            for name, fraction in self.fractions:
                cumulative += fraction
                if value < cumulative:
                    chosen = name
                    break
            names.append(chosen)
        return names

    def assign_groups(self, count: int, rng: np.random.Generator) -> List[int]:
        """Locality groups for ``count`` fresh peers (one batched draw)."""
        if count <= 0:
            return []
        return [int(g) for g in rng.integers(0, self.locality_groups, size=count)]


def bootstrap_piece_count(
    profile: BehaviorProfile, default_pieces: int, piece_count: int
) -> int:
    """Bootstrap pieces for a joining peer, honoring ``hold_fraction``.

    Falls back to the swarm's own ``default_pieces`` (start or arrival
    completion) for profiles without a fixed hold; a held subset is
    clamped so the peer is never born complete.
    """
    if profile.hold_fraction is None:
        return default_pieces
    return min(int(round(profile.hold_fraction * piece_count)), piece_count - 1)


def filter_contacts(
    profile: BehaviorProfile,
    group: int,
    contacts: Sequence[int],
    contact_groups: Sequence[int],
    contact_nat: Sequence[bool],
    rng: np.random.Generator,
) -> List[int]:
    """Apply the announcing peer's edge behaviors to its tracker contacts.

    Locality bias first: a biased announcer keeps a cross-group contact
    only when its uniform draw clears the bias (one ``rng.random(len(
    contacts))`` batch, consumed iff the announcer is biased and received
    any contacts -- the gate is a pure function of the profile, so both
    engines consume identically).  The NAT rule is deterministic: a
    NAT-limited announcer drops NAT-limited contacts.

    ``contacts`` must be in tracker draw order (both trackers return it
    that way), with ``contact_groups`` / ``contact_nat`` parallel to it.
    """
    keep = [True] * len(contacts)
    if profile.locality_bias > 0.0 and contacts:
        draws = rng.random(len(contacts))
        for k in range(len(contacts)):
            if contact_groups[k] != group and draws[k] < profile.locality_bias:
                keep[k] = False
    if profile.nat_limited:
        for k in range(len(contacts)):
            if contact_nat[k]:
                keep[k] = False
    return [int(contact) for contact, kept in zip(contacts, keep) if kept]


# Named mixes reachable from the CLI (`--behavior-mix`) and the experiment
# drivers; make_behavior_mix also parses ad-hoc "name:frac,..." specs.
_MIX_PRESETS: Dict[str, BehaviorMix] = {
    "obedient": BehaviorMix(),
    "freeriders": BehaviorMix(fractions={"free_rider": 0.2}),
    "bitthief": BehaviorMix(fractions={"never_upload": 0.1}),
    "natted": BehaviorMix(fractions={"nat_limited": 0.3}),
    "localized": BehaviorMix(fractions={"locality_biased": 0.5}),
    "superseeded": BehaviorMix(seed_behavior="super_seed"),
    "partial-seeds": BehaviorMix(fractions={"partial_seed": 0.1}),
    "hostile": BehaviorMix(
        fractions={"free_rider": 0.2, "never_upload": 0.1, "nat_limited": 0.2}
    ),
}

BEHAVIOR_MIX_NAMES = tuple(sorted(_MIX_PRESETS))


def _parse_mix_spec(spec: str) -> BehaviorMix:
    """Parse ``"free_rider:0.2,nat_limited:0.3"`` (plus ``seeds:``/``groups:``)."""
    fractions: Dict[str, float] = {}
    seed_behavior = STANDARD
    locality_groups = 4
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        if ":" not in token:
            raise ValueError(
                f"bad behavior-mix token '{token}' (expected name:fraction, "
                f"seeds:behavior or groups:count)"
            )
        key, _, value = token.partition(":")
        key = key.strip()
        value = value.strip()
        if key == "seeds":
            seed_behavior = value
        elif key == "groups":
            locality_groups = int(value)
        else:
            if key in fractions:
                raise ValueError(f"behavior '{key}' listed twice in the mix")
            try:
                fractions[key] = float(value)
            except ValueError:
                raise ValueError(
                    f"bad behavior fraction '{value}' for '{key}'"
                ) from None
    return BehaviorMix(
        fractions=fractions,
        seed_behavior=seed_behavior,
        locality_groups=locality_groups,
    )


def make_behavior_mix(spec: str) -> BehaviorMix:
    """Build a :class:`BehaviorMix` from a preset name or a spec string.

    ``spec`` is either one of :data:`BEHAVIOR_MIX_NAMES` or a comma list
    of ``name:fraction`` tokens (optionally ``seeds:<behavior>`` and
    ``groups:<count>``), e.g. ``"free_rider:0.2"`` or
    ``"locality_biased:0.5,groups:8,seeds:super_seed"``.  Unknown preset
    and behavior names raise with the list of valid names.
    """
    if spec in _MIX_PRESETS:
        return _MIX_PRESETS[spec]
    if ":" not in spec:
        raise ValueError(
            f"unknown behavior mix '{spec}' "
            f"(available: {', '.join(BEHAVIOR_MIX_NAMES)}; or pass a "
            f"'name:fraction,...' spec)"
        )
    return _parse_mix_spec(spec)


def resolve_behavior_mix(
    behaviors: Union["BehaviorMix", str, None],
) -> BehaviorMix:
    """Normalize a ``behaviors=`` argument to a :class:`BehaviorMix`.

    Accepts a mix, a preset name / spec string, or ``None`` (the trivial
    all-standard mix).
    """
    if behaviors is None:
        return BehaviorMix()
    if isinstance(behaviors, str):
        return make_behavior_mix(behaviors)
    if not isinstance(behaviors, BehaviorMix):
        raise TypeError(
            "behaviors must be a BehaviorMix, a preset name / spec string or None"
        )
    return behaviors
