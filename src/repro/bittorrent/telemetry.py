"""The swarm measurement layer: what a real BitTorrent measurer sees.

The simulator is omniscient -- it knows every bitfield, every transfer and
every completion round.  Measurement studies of deployed swarms (the
``bittorrent-analyzer``-style methodology of ROADMAP item 3) see far less:

* the tracker **scrape** endpoint -- current seeders, current leechers and
  the cumulative snatch (completed-download) counter;
* periodic **peer polls** -- the progress a sampled subset of the swarm
  reports when contacted, bounded by a poll budget;
* **confirmed downloads** -- peers first observed incomplete whose sampled
  progress later crosses a threshold (~98% in practice, because the last
  pieces of a session are routinely missed between polls).

:class:`SwarmObserver` reproduces that observer inside the simulator.  It
attaches to either engine (``engine="reference"`` or ``"fast"``) through
``SwarmSimulator(..., observer=...)`` and is **invisible by construction**:

* it only *reads* engine state (tracker scrape counters, bitfield
  progress), never mutates it;
* its only randomness -- which peers to poll when the budget is smaller
  than the swarm -- comes from its own named stream
  (``"telemetry-poll"``) of the engine's shared
  :class:`~repro.sim.random_source.RandomSource`, and named streams are
  derived independently, so existing consumers see the same draws with or
  without observation.  Observed runs are therefore bit-identical to
  unobserved runs, a property the hypothesis suite enforces.

Cross-engine identity: the poll sample is drawn by *index* into the
tracker's ``known_peers()`` list, which both trackers produce identically,
and progress is the integer piece count over the torrent size on both
engines -- so the full observed record (scrape series, poll timelines,
partner sightings) is id-for-id equal across engines, golden-traced like
the swarm results themselves.

The downstream estimators (download-time CDFs, threshold-sensitivity
curves, the observed stratification index) live in
:mod:`repro.bittorrent.analysis`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.bittorrent.faults import TrackerUnavailableError
from repro.bittorrent.tracker import ScrapeStats
from repro.sim import streams
from repro.sim.recorder import MetricRecorder

__all__ = [
    "ObserverConfig",
    "ScrapeSample",
    "PollSample",
    "ObservedSwarm",
    "SwarmObserver",
    "resolve_observer",
]

#: Back-compat alias; the name is declared centrally in the stream registry.
POLL_STREAM = streams.TELEMETRY_POLL


@dataclass(frozen=True)
class ObserverConfig:
    """Measurement-campaign parameters of a :class:`SwarmObserver`.

    Attributes
    ----------
    scrape_interval:
        Rounds between tracker scrapes (1 = every round).
    poll_interval:
        Rounds between peer-poll sweeps.  Poll rounds always scrape too
        (contacting the tracker is how the observer finds peers to poll).
    poll_budget:
        Maximum peers contacted per poll sweep; ``None`` polls the whole
        swarm.  A finite budget is what makes the observer *miss* peers
        that churn between polls -- the source of confirmed-download
        undercounting.
    confirm_threshold:
        Observed progress at or above which a peer first seen incomplete
        counts as a confirmed download (the ~98% rule of real studies).
    """

    scrape_interval: int = 1
    poll_interval: int = 2
    poll_budget: Optional[int] = None
    confirm_threshold: float = 0.98

    def __post_init__(self) -> None:
        if self.scrape_interval < 1:
            raise ValueError("scrape_interval must be >= 1")
        if self.poll_interval < 1:
            raise ValueError("poll_interval must be >= 1")
        if self.poll_budget is not None and self.poll_budget < 0:
            raise ValueError("poll_budget cannot be negative")
        if not 0.0 < self.confirm_threshold <= 1.0:
            raise ValueError("confirm_threshold must be in (0, 1]")


@dataclass(frozen=True)
class ScrapeSample:
    """One scrape response, stamped with the simulation round."""

    round: int
    seeders: int
    leechers: int
    snatches: int

    @classmethod
    def from_stats(cls, round_index: int, stats: ScrapeStats) -> "ScrapeSample":
        return cls(
            round=round_index,
            seeders=stats.seeders,
            leechers=stats.leechers,
            snatches=stats.snatches,
        )


@dataclass(frozen=True)
class PollSample:
    """One peer poll: reported progress plus the partners seen with it.

    ``partners`` are the peer's reciprocated Tit-for-Tat partners in the
    polled round (ascending peer ids) -- the measurement analogue of
    asking a client who it is actively trading with.
    """

    round: int
    progress: float
    partners: Tuple[int, ...] = ()


@dataclass
class ObservedSwarm:
    """Everything one measurement campaign collected, and its estimators.

    The raw record is the scrape series and the per-peer poll timelines;
    the methods derive the quantities real studies publish (reported vs
    confirmed downloads, visit counts, observed download rates).  The
    derived quantities are pure functions of the record, so two campaigns
    with equal records (e.g. the two engines) agree on every estimate.
    """

    config: ObserverConfig
    piece_count: int
    piece_size_kbit: float
    round_seconds: float
    scrapes: List[ScrapeSample] = field(default_factory=list)
    timelines: Dict[int, List[PollSample]] = field(default_factory=dict)
    poll_rounds: List[int] = field(default_factory=list)
    rounds_observed: int = 0

    # -- recording (used by SwarmObserver) -----------------------------------------

    def record_scrape(self, round_index: int, stats: ScrapeStats) -> None:
        self.scrapes.append(ScrapeSample.from_stats(round_index, stats))

    def record_poll(
        self,
        round_index: int,
        peer_id: int,
        progress: float,
        partners: Tuple[int, ...],
    ) -> None:
        self.timelines.setdefault(peer_id, []).append(
            PollSample(round=round_index, progress=progress, partners=partners)
        )

    # -- download accounting -------------------------------------------------------

    @property
    def peers_observed(self) -> int:
        """Distinct peers ever reached by a poll."""
        return len(self.timelines)

    def reported_downloads(self) -> int:
        """The tracker's claim: the snatch counter at the last scrape."""
        return self.scrapes[-1].snatches if self.scrapes else 0

    def confirmed_downloads(self, threshold: Optional[float] = None) -> int:
        """Downloads the observer can vouch for at the given threshold.

        A peer counts when it was *first observed incomplete* (progress
        < 1, i.e. seen as a leecher) and some later-or-same poll reported
        progress at or above ``threshold`` (default: the campaign's
        ``confirm_threshold``).

        At ``threshold=1.0`` this is a certified lower bound:
        ``confirmed(1.0) <= reported_downloads() <= true completions``
        (every such peer completed mid-run, and the co-scheduled scrape
        already counted its snatch).  Below 1.0 it is the empirical
        estimator of real studies, trading missed completions against
        counting peers that stalled just short of the line.
        """
        theta = self.config.confirm_threshold if threshold is None else threshold
        if not 0.0 < theta <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        count = 0
        for samples in self.timelines.values():
            if samples[0].progress < 1.0 and any(
                s.progress >= theta for s in samples
            ):
                count += 1
        return count

    def confirmation_round(
        self, peer_id: int, threshold: Optional[float] = None
    ) -> Optional[int]:
        """First round this peer's poll crossed the threshold (or None)."""
        theta = self.config.confirm_threshold if threshold is None else threshold
        samples = self.timelines.get(peer_id, [])
        if not samples or samples[0].progress >= 1.0:
            return None
        for sample in samples:
            if sample.progress >= theta:
                return sample.round
        return None

    # -- visit and rate estimators -------------------------------------------------

    def visit_counts(self) -> Dict[int, int]:
        """How often each observed peer was reached, by peer id."""
        return {pid: len(samples) for pid, samples in sorted(self.timelines.items())}

    def first_seen(self, peer_id: int) -> Optional[int]:
        """Round of the first successful poll of this peer (or None)."""
        samples = self.timelines.get(peer_id)
        return samples[0].round if samples else None

    def observed_download_rates(self) -> Dict[int, float]:
        """Per-peer download rate (kbps) estimated from the poll timeline.

        Only peers polled at least twice, first seen incomplete, yield an
        estimate: progress delta times content size over elapsed wall
        time.  This is exactly the between-visits slope a crawler can
        compute, and the input to the observed stratification index.
        """
        rates: Dict[int, float] = {}
        for pid, samples in sorted(self.timelines.items()):
            if len(samples) < 2 or samples[0].progress >= 1.0:
                continue
            first, last = samples[0], samples[-1]
            elapsed_rounds = last.round - first.round
            if elapsed_rounds <= 0:
                continue
            delta = last.progress - first.progress
            rates[pid] = (
                delta
                * self.piece_count
                * self.piece_size_kbit
                / (elapsed_rounds * self.round_seconds)
            )
        return rates

    def partner_sightings(self) -> Dict[Tuple[int, int], int]:
        """How often each (low, high) pair was seen trading in a poll."""
        sightings: Dict[Tuple[int, int], int] = {}
        for pid, samples in self.timelines.items():
            for sample in samples:
                for partner in sample.partners:
                    key = (min(pid, partner), max(pid, partner))
                    sightings[key] = sightings.get(key, 0) + 1
        return sightings

    # -- export --------------------------------------------------------------------

    def to_recorder(self) -> MetricRecorder:
        """The campaign as streaming metric series (the recorder layer).

        Series: ``scrape/seeders``, ``scrape/leechers``,
        ``scrape/snatches`` at scrape rounds; ``poll/peers_polled`` and
        ``poll/mean_progress`` at poll rounds.  Times are simulation
        rounds.
        """
        recorder = MetricRecorder()
        for sample in self.scrapes:
            recorder.record_many(
                float(sample.round),
                {
                    "scrape/seeders": float(sample.seeders),
                    "scrape/leechers": float(sample.leechers),
                    "scrape/snatches": float(sample.snatches),
                },
            )
        by_round: Dict[int, List[float]] = {}
        for samples in self.timelines.values():
            for sample in samples:
                by_round.setdefault(sample.round, []).append(sample.progress)
        for round_index in sorted(by_round):
            values = by_round[round_index]
            recorder.record_many(
                float(round_index),
                {
                    "poll/peers_polled": float(len(values)),
                    "poll/mean_progress": float(sum(values) / len(values)),
                },
            )
        return recorder


class SwarmObserver:
    """Attaches to a swarm engine and runs one measurement campaign.

    The engine drives the observer: it calls :meth:`begin_run` with a view
    of itself before the first round, :meth:`observe_round` after every
    completed round, and :meth:`finish` when the run ends.  The *view* is
    the narrow read-only surface both engines expose identically --
    ``source``, ``piece_count``, ``piece_size_kbit``, ``round_seconds``,
    ``scrape()``, ``known_peers()`` and ``progress(peer_id)`` (see
    :class:`_ReferenceSwarmView` / :class:`_FastSwarmView`).
    """

    def __init__(self, config: Optional[ObserverConfig] = None) -> None:
        self.config = config or ObserverConfig()
        self.observed: Optional[ObservedSwarm] = None
        self._view = None

    def begin_run(self, view) -> None:
        """Reset the campaign and bind the engine view for this run."""
        self._view = view
        self.observed = ObservedSwarm(
            config=self.config,
            piece_count=view.piece_count,
            piece_size_kbit=view.piece_size_kbit,
            round_seconds=view.round_seconds,
        )

    def observe_round(
        self, round_index: int, regular_pairs: Set[Tuple[int, int]]
    ) -> None:
        """Run the scrape / poll schedule for one completed round.

        ``regular_pairs`` is the engine's set of directed regular-slot
        grants this round; polls report the reciprocated pairs the polled
        peer is part of -- identical on both engines.
        """
        if self.observed is None:
            raise RuntimeError("observe_round before begin_run")
        config = self.config
        poll_due = (
            (round_index - 1) % config.poll_interval == 0
            and config.poll_budget != 0
        )
        scrape_due = poll_due or (round_index - 1) % config.scrape_interval == 0
        if scrape_due:
            # A tracker outage (the fault layer) fails the scrape: the
            # sample is simply *absent* from the series, exactly like a
            # crawler's failed HTTP request.  The schedule itself is
            # unchanged -- the next due round tries again.
            try:
                self.observed.record_scrape(round_index, self._view.scrape())
            except TrackerUnavailableError:
                pass
        if poll_due:
            self._poll(round_index, regular_pairs)

    def _poll(self, round_index: int, regular_pairs: Set[Tuple[int, int]]) -> None:
        view = self._view
        try:
            known = view.known_peers()
        except TrackerUnavailableError:
            # Tracker down mid-campaign: a real crawler falls back to the
            # peers it has already met.  Polls against that roster still
            # go out (peer polls are peer-to-peer, not via the tracker).
            known = sorted(self.observed.timelines)
        if not known:
            return
        budget = self.config.poll_budget
        if budget is not None and budget < len(known):
            # Drawn by *index* so stream consumption depends only on the
            # population size -- identical across engines, and isolated in
            # the observer's own named stream.
            rng = view.source.stream(streams.TELEMETRY_POLL)
            chosen = rng.choice(len(known), size=budget, replace=False)
            sample = sorted(known[int(i)] for i in chosen)
        else:
            sample = list(known)
        reciprocal: Dict[int, List[int]] = {}
        for a, b in regular_pairs:
            if a < b and (b, a) in regular_pairs:
                reciprocal.setdefault(a, []).append(b)
                reciprocal.setdefault(b, []).append(a)
        self.observed.poll_rounds.append(round_index)
        for pid in sample:
            progress = view.progress(pid)
            if progress is None:
                # The peer is gone (departed, or crashed without telling
                # the tracker): the poll times out and records nothing.
                continue
            partners = tuple(sorted(reciprocal.get(pid, ())))
            self.observed.record_poll(round_index, pid, progress, partners)

    def finish(self, rounds_run: int) -> ObservedSwarm:
        """Close the campaign; returns the collected record."""
        if self.observed is None:
            raise RuntimeError("finish before begin_run")
        self.observed.rounds_observed = rounds_run
        return self.observed


def resolve_observer(
    observer: "SwarmObserver | ObserverConfig | None",
) -> Optional[SwarmObserver]:
    """Normalize the ``observer=`` argument of the swarm simulators."""
    if observer is None:
        return None
    if isinstance(observer, SwarmObserver):
        return observer
    if isinstance(observer, ObserverConfig):
        return SwarmObserver(observer)
    raise TypeError(
        "observer must be a SwarmObserver, an ObserverConfig or None, "
        f"got {type(observer).__name__}"
    )


class _ReferenceSwarmView:
    """Read-only measurement surface of the reference engine.

    Tracker endpoints (``scrape`` / ``known_peers``) raise
    :class:`~repro.bittorrent.faults.TrackerUnavailableError` during a
    scheduled outage -- the observer sees the failure, the engine never
    does (its own announces are deferred internally, not via this view).
    ``progress`` returns ``None`` for peers not currently present (a
    crashed peer's stale tracker entry can still be sampled).
    """

    def __init__(self, simulator) -> None:
        self._simulator = simulator
        config = simulator.config
        self.piece_count = config.piece_count
        self.piece_size_kbit = config.piece_size_kbit
        self.round_seconds = config.round_seconds
        self.source = simulator.source

    def scrape(self) -> ScrapeStats:
        if not self._simulator.tracker_available:
            raise TrackerUnavailableError("tracker outage: scrape failed")
        return self._simulator.tracker.scrape()

    def known_peers(self) -> List[int]:
        if not self._simulator.tracker_available:
            raise TrackerUnavailableError("tracker outage: announce failed")
        return self._simulator.tracker.known_peers()

    def progress(self, peer_id: int) -> Optional[float]:
        peer = self._simulator.peers.get(peer_id)
        if peer is None:
            return None
        return peer.bitfield.count() / self.piece_count

    def stale_count(self) -> int:
        """Crashed-but-registered ghosts in the scrape (omniscient).

        Consumes no randomness and mutates nothing; see
        :meth:`repro.bittorrent.tracker.Tracker.stale_count`.
        """
        return self._simulator.tracker.stale_count(self._simulator.peers)


class _FastSwarmView:
    """Read-only measurement surface of the fast engine.

    ``progress`` divides the same two integers as the reference view, so
    the reported floats are bit-identical; outage and absent-peer
    behavior mirror :class:`_ReferenceSwarmView` exactly.
    """

    def __init__(self, simulator) -> None:
        self._simulator = simulator
        config = simulator.config
        self.piece_count = config.piece_count
        self.piece_size_kbit = config.piece_size_kbit
        self.round_seconds = config.round_seconds
        self.source = simulator.source

    def scrape(self) -> ScrapeStats:
        if not self._simulator.tracker_available:
            raise TrackerUnavailableError("tracker outage: scrape failed")
        return self._simulator.tracker.scrape()

    def known_peers(self) -> List[int]:
        if not self._simulator.tracker_available:
            raise TrackerUnavailableError("tracker outage: announce failed")
        return self._simulator.tracker.known_peers()

    def progress(self, peer_id: int) -> Optional[float]:
        if not self._simulator.alive[peer_id - 1]:
            return None
        have = int(self._simulator.bitfields.have_count[peer_id - 1])
        return have / self.piece_count

    def stale_count(self) -> int:
        """Crashed-but-registered ghosts in the scrape (omniscient)."""
        simulator = self._simulator
        return simulator.tracker.stale_count(
            i + 1 for i in range(simulator.n_total) if simulator.alive[i]
        )
