"""Deterministic fault injection: outages, loss, crashes, partitions.

The paper's stratification analysis assumes an always-reachable tracker,
lossless piece exchange, and peers that depart gracefully.  Its own
setting -- one tracker in front of a flash crowd -- is exactly where those
assumptions break, so this module makes failure a first-class workload
dimension, alongside membership (:mod:`repro.bittorrent.scenarios`) and
client behavior (:mod:`repro.bittorrent.behaviors`).

A :class:`FaultSchedule` is a composition of :class:`FaultEvent`\\ s:

``outage``
    A tracker replica is unreachable for a window of rounds: announces and
    scrapes fail, new arrivals queue their announce and retry with a
    deterministic doubling backoff (:func:`repro.sim.faults.backoff_delay`),
    and completion / depart notifications are delivered on recovery.
    By default an outage hits replica 0 -- the only replica of a
    single-tracker swarm, so existing specs are unchanged -- but under a
    replicated announce list (:mod:`repro.bittorrent.resilience`) an event
    may target one replica (``replica=R``) or all of them (``replica=-1``):
    the swarm only loses the tracker entirely when every replica is down.
``loss``
    Each planned transfer is independently dropped with probability
    ``rate`` during the window (the unchoke decision stands -- loss kills
    the payload, not the relationship).
``crash``
    ``count`` random non-seed peers vanish at round ``start`` *without*
    telling the tracker (their stale entries keep being handed out), and
    optionally rejoin ``rejoin_after`` rounds later with their bitfield
    retained but neighbors, partial pieces and choker state lost.
``partition``
    The contact graph is split into ``groups`` sides for a window: a
    transfer whose endpoints sit on different sides is dropped.

Determinism contract: every random decision flows through the three
registered ``fault-*`` streams (:data:`repro.sim.streams.FAULT_LOSS`,
``FAULT_CRASH``, ``FAULT_PARTITION``), drawn at pinned points of the round
protocol in *both* swarm engines -- loss as one batch over the sorted
planned pairs, crash victims as one choice batch over the sorted alive
non-seeds, partition sides as one integer batch over the not-yet-assigned
alive peers.  A trivial schedule (no events) draws nothing and takes no
branch that affects the simulation, so a fault-free run is bit-identical
with or without the fault layer (the existing golden traces prove it).

:class:`FaultRuntime` holds the mutable per-run bookkeeping (queued
announces, deferred tracker notifications, pending rejoins, partition
sides) shared verbatim by both engines; the engines only translate between
their peer representations and the runtime's 1-based peer ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.sim.faults import RoundWindow, next_retry_round

__all__ = [
    "FAULT_KINDS",
    "FAULT_PRESET_NAMES",
    "FaultEvent",
    "FaultSchedule",
    "FaultRuntime",
    "TrackerUnavailableError",
    "make_faults",
    "resolve_faults",
]

FAULT_KINDS = ("outage", "loss", "crash", "partition")


class TrackerUnavailableError(RuntimeError):
    """Raised by tracker-facing calls during a scheduled outage window.

    The swarm engines never raise this themselves (they gate on the
    schedule directly); it exists for *observers* -- the telemetry views
    raise it from ``scrape()`` / ``known_peers()`` so a measurement study
    experiences the outage exactly like a real scraper would.
    """


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled failure.  Which fields matter depends on ``kind``.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    start:
        First affected round (1-based, like the engines' round loop).
        A ``crash`` fires exactly at ``start``.
    rounds:
        Window length for ``outage`` / ``loss`` / ``partition`` events;
        ``0`` means open-ended (until the run terminates).  Must be 1 for
        ``crash`` (a crash is instantaneous).
    rate:
        Per-transfer drop probability of a ``loss`` event, in ``(0, 1]``.
    count:
        Number of victims of a ``crash`` event (clamped to the alive
        non-seed population at fire time).
    rejoin_after:
        Rounds until crashed peers rejoin (``0`` = never; the bitfield is
        retained across the gap, neighbors and partial pieces are not).
    groups:
        Number of sides a ``partition`` event splits the swarm into.
    replica:
        Which tracker replica an ``outage`` event hits: a 0-based index
        into the announce list, or ``-1`` for every replica at once.  The
        default 0 is the only replica of a single-tracker swarm, so specs
        written before replication keep their meaning.
    """

    kind: str
    start: int = 1
    rounds: int = 1
    rate: float = 0.0
    count: int = 0
    rejoin_after: int = 0
    groups: int = 2
    replica: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind '{self.kind}' "
                f"(available: {', '.join(FAULT_KINDS)})"
            )
        # Window validity (start >= 1, rounds >= 0) is delegated here so
        # every event carries a well-formed window.
        RoundWindow(self.start, self.rounds)
        if self.kind == "loss":
            if not 0.0 < self.rate <= 1.0:
                raise ValueError("loss rate must be in (0, 1]")
        elif self.rate != 0.0:
            raise ValueError(f"rate only applies to loss events, not '{self.kind}'")
        if self.kind == "crash":
            if self.count < 1:
                raise ValueError("crash count must be >= 1")
            if self.rounds != 1:
                raise ValueError("a crash is instantaneous (rounds must be 1)")
            if self.rejoin_after < 0:
                raise ValueError("rejoin_after must be >= 0")
        else:
            if self.count != 0 or self.rejoin_after != 0:
                raise ValueError(
                    f"count/rejoin_after only apply to crash events, "
                    f"not '{self.kind}'"
                )
        if self.kind == "partition":
            if self.groups < 2:
                raise ValueError("partition groups must be >= 2")
        if self.kind == "outage":
            if self.replica < -1:
                raise ValueError(
                    "outage replica must be a 0-based index or -1 for all"
                )
        elif self.replica != 0:
            raise ValueError(
                f"replica only applies to outage events, not '{self.kind}'"
            )

    @property
    def window(self) -> RoundWindow:
        """The event's round window."""
        return RoundWindow(self.start, self.rounds)


@dataclass(frozen=True)
class FaultSchedule:
    """A composition of fault events driving one simulation run.

    Events are normalized to a deterministic ``(kind, start, ...)`` sort so
    equal schedules compare and hash equal regardless of input order.  At
    most one crash event may fire per round, and partition windows must
    not overlap (two simultaneous partitions have no defined semantics).
    """

    events: Tuple[FaultEvent, ...] = field(default=())

    def __post_init__(self) -> None:
        normalized = tuple(
            sorted(
                (
                    event
                    if isinstance(event, FaultEvent)
                    else FaultEvent(**dict(event))  # type: ignore[arg-type]
                    for event in self.events
                ),
                key=lambda e: (
                    e.kind,
                    e.start,
                    e.rounds,
                    e.rate,
                    e.count,
                    e.groups,
                    e.replica,
                ),
            )
        )
        crash_rounds = [e.start for e in normalized if e.kind == "crash"]
        if len(crash_rounds) != len(set(crash_rounds)):
            raise ValueError("at most one crash event per round")
        partitions = [e for e in normalized if e.kind == "partition"]
        for i, left in enumerate(partitions):
            for right in partitions[i + 1 :]:
                if left.window.overlaps(right.window):
                    raise ValueError("partition windows must not overlap")
        object.__setattr__(self, "events", normalized)

    @property
    def is_trivial(self) -> bool:
        """Whether the schedule injects nothing (and so draws nothing)."""
        return not self.events

    def replica_down(self, round_index: int, replica: int) -> bool:
        """Whether an outage covering ``round_index`` hits ``replica``.

        An event with ``replica=-1`` hits every replica; otherwise only
        its own index.
        """
        return any(
            e.kind == "outage"
            and e.replica in (-1, replica)
            and e.window.covers(round_index)
            for e in self.events
        )

    def tracker_down(self, round_index: int) -> bool:
        """Whether replica 0 -- the sole tracker of an unreplicated swarm --
        is inside an outage window at ``round_index``."""
        return self.replica_down(round_index, 0)

    @property
    def max_targeted_replica(self) -> int:
        """Highest replica index named by an outage event (0 if none).

        The resilience layer validates this against the announce-list
        length: targeting replica 2 of a 2-replica set is a config error,
        not a silently dead event.
        """
        return max(
            (e.replica for e in self.events if e.kind == "outage"), default=0
        )

    def loss_rate(self, round_index: int) -> float:
        """Combined drop probability of the loss windows covering the round.

        Overlapping loss events compose independently:
        ``1 - prod(1 - rate_i)``.
        """
        keep = 1.0
        for event in self.events:
            if event.kind == "loss" and event.window.covers(round_index):
                keep *= 1.0 - event.rate
        return 1.0 - keep

    def crash_event(self, round_index: int) -> Optional[FaultEvent]:
        """The crash event firing exactly at ``round_index``, if any."""
        for event in self.events:
            if event.kind == "crash" and event.start == round_index:
                return event
        return None

    def partition_event(self, round_index: int) -> Optional[FaultEvent]:
        """The partition window covering ``round_index``, if any."""
        for event in self.events:
            if event.kind == "partition" and event.window.covers(round_index):
                return event
        return None


class FaultRuntime:
    """Mutable per-run fault bookkeeping, shared by both swarm engines.

    All state is keyed by 1-based peer id, the representation common to
    the reference engine's dicts and the fast engine's dense arrays, so
    the two engines drive one identical state machine.  The engines must
    call the mutating methods at the pinned protocol points documented in
    ``docs/faults.md``; every method is deterministic given its inputs.
    """

    def __init__(self, schedule: FaultSchedule) -> None:
        self.schedule = schedule
        self.active = not schedule.is_trivial
        # pid -> (next retry round, failed attempts so far)
        self._pending_announces: Dict[int, Tuple[int, int]] = {}
        self._pending_completions: List[int] = []
        self._pending_departs: List[int] = []
        self._rejoin_due: Dict[int, List[int]] = {}
        self._partition_groups: Dict[int, int] = {}

    # -- round lifecycle ----------------------------------------------------------

    def begin_round(self, round_index: int) -> None:
        """Reset window-scoped state; call at the top of membership processing."""
        if self._partition_groups and self.schedule.partition_event(round_index) is None:
            self._partition_groups.clear()

    def tracker_up(self, round_index: int, replicas: int = 1) -> bool:
        """Whether any of ``replicas`` tracker replicas is reachable.

        With the default single replica this is the pre-replication
        behaviour: down exactly when an outage window covers the round.
        A replicated announce list only goes dark when every replica is
        inside an outage window at once.
        """
        return any(
            not self.schedule.replica_down(round_index, r)
            for r in range(max(1, replicas))
        )

    def blocks_early_exit(self, round_index: int) -> bool:
        """Whether unresolved fault state must keep the round loop running.

        Queued announces, scheduled rejoins and deferred tracker
        notifications all represent work the run has promised to do;
        exiting early would make termination depend on engine-internal
        completion timing instead of the schedule.
        """
        return bool(
            self._pending_announces
            or self._pending_completions
            or self._pending_departs
            or self._rejoin_due
        )

    # -- deferred tracker notifications -------------------------------------------

    def defer_completion(self, pid: int) -> None:
        """Queue a ``completed`` tracker event until the outage lifts."""
        self._pending_completions.append(pid)

    def defer_depart(self, pid: int) -> None:
        """Queue a ``stopped`` tracker event until the outage lifts."""
        self._pending_departs.append(pid)

    def drain_deferred(self) -> Tuple[List[int], List[int]]:
        """Pop ``(completions, departs)`` queued during the outage, sorted.

        Completions come first: a recovering client delivers its
        ``completed`` event before its ``stopped`` event, so a peer that
        finished and then left mid-outage still counts as a snatch.
        """
        completions = sorted(self._pending_completions)
        departs = sorted(self._pending_departs)
        self._pending_completions = []
        self._pending_departs = []
        return completions, departs

    # -- announce retry/backoff ---------------------------------------------------

    def queue_announce(self, pid: int, round_index: int) -> None:
        """Queue a failed (or outage-suppressed) announce for retry."""
        self._pending_announces[pid] = (next_retry_round(round_index, 0), 0)

    def announces_due(self, round_index: int) -> List[int]:
        """Peers whose queued announce retries this round, sorted by pid."""
        return sorted(
            pid
            for pid, (retry_round, _) in self._pending_announces.items()
            if retry_round <= round_index
        )

    def reschedule_announce(self, pid: int, round_index: int) -> None:
        """Back off a retry that found the tracker still down."""
        _, attempts = self._pending_announces[pid]
        attempts += 1
        self._pending_announces[pid] = (
            next_retry_round(round_index, attempts),
            attempts,
        )

    def clear_announce(self, pid: int) -> None:
        """Drop a queued announce (delivered, or the peer is gone)."""
        self._pending_announces.pop(pid, None)

    # -- crashes and rejoins ------------------------------------------------------

    def select_crash_victims(
        self,
        round_index: int,
        candidates: Sequence[int],
        rng: np.random.Generator,
    ) -> List[int]:
        """Victims of the crash event firing this round (sorted pids).

        Consumes exactly one ``rng.choice`` batch over ``candidates`` when
        a crash fires and candidates exist, nothing otherwise.
        ``candidates`` must be the sorted alive non-seed pids -- both
        engines build that list identically.  Victims with a rejoin delay
        are scheduled automatically.
        """
        event = self.schedule.crash_event(round_index)
        if event is None or not candidates:
            return []
        count = min(event.count, len(candidates))
        indices = rng.choice(len(candidates), size=count, replace=False)
        victims = sorted(int(candidates[int(i)]) for i in indices)
        if event.rejoin_after > 0:
            due = round_index + event.rejoin_after
            self._rejoin_due.setdefault(due, []).extend(victims)
        return victims

    def rejoins_due(self, round_index: int) -> List[int]:
        """Pop the pids rejoining this round, sorted."""
        return sorted(self._rejoin_due.pop(round_index, []))

    # -- partitions ---------------------------------------------------------------

    def partition_active(self, round_index: int) -> bool:
        """Whether a partition window covers this round."""
        return self.schedule.partition_event(round_index) is not None

    def assign_missing_groups(
        self,
        round_index: int,
        pids: Sequence[int],
        rng: np.random.Generator,
    ) -> None:
        """Assign partition sides to peers that do not have one yet.

        Called at the end of membership processing on every round of a
        partition window with the sorted alive pids: the first round
        assigns everybody, later rounds only the round's arrivals and
        rejoiners.  One ``rng.integers`` batch per round with unassigned
        peers; both engines pass identical pid lists, so consumption
        matches.
        """
        event = self.schedule.partition_event(round_index)
        if event is None:
            return
        missing = [pid for pid in pids if pid not in self._partition_groups]
        if not missing:
            return
        sides = rng.integers(0, event.groups, size=len(missing))
        for pid, side in zip(missing, sides):
            self._partition_groups[pid] = int(side)

    # -- transfer filtering -------------------------------------------------------

    def dropped_pairs(
        self,
        round_index: int,
        pairs: Sequence[Tuple[int, int]],
        rng: np.random.Generator,
    ) -> Set[Tuple[int, int]]:
        """The planned ``(sender, receiver)`` pid pairs lost this round.

        Partition drops are deterministic (endpoints on different sides);
        loss draws one ``rng.random(len(pairs))`` batch whenever a loss
        window covers the round and pairs exist -- independent of the
        partition outcome, so stream consumption never depends on which
        transfers the partition already killed.  ``pairs`` must be sorted;
        both engines canonicalize their transfer lists to sorted pid pairs
        before calling.
        """
        dropped: Set[Tuple[int, int]] = set()
        if not pairs:
            return dropped
        if self.partition_active(round_index):
            groups = self._partition_groups
            for sender, receiver in pairs:
                if groups.get(sender, -1) != groups.get(receiver, -1):
                    dropped.add((sender, receiver))
        rate = self.schedule.loss_rate(round_index)
        if rate > 0.0:
            draws = rng.random(len(pairs))
            for k in np.nonzero(draws < rate)[0]:
                dropped.add(pairs[k])
        return dropped


# Named schedules reachable from the CLI (`--faults`) and the experiment
# drivers; make_faults also parses ad-hoc "kind:params,..." specs.
_FAULT_PRESETS: Dict[str, FaultSchedule] = {
    "reliable": FaultSchedule(),
    "outage-midrun": FaultSchedule(
        (FaultEvent("outage", start=20, rounds=5),)
    ),
    "lossy": FaultSchedule((FaultEvent("loss", rate=0.05, rounds=0),)),
    "flaky-peers": FaultSchedule(
        (
            FaultEvent("crash", start=10, count=5, rejoin_after=5),
            FaultEvent("loss", rate=0.02, rounds=0),
        )
    ),
    "split-brain": FaultSchedule(
        (FaultEvent("partition", start=10, rounds=5, groups=2),)
    ),
}

FAULT_PRESET_NAMES = tuple(sorted(_FAULT_PRESETS))


def _parse_window(value: str) -> Tuple[int, int]:
    """Parse ``START+ROUNDS`` (``+ROUNDS`` optional, default 1)."""
    start_text, plus, rounds_text = value.partition("+")
    try:
        start = int(start_text)
        rounds = int(rounds_text) if plus else 1
    except ValueError:
        raise ValueError(f"bad fault window '{value}'") from None
    return start, rounds


def _iter_spec_tokens(spec: str):
    """Yield ``(ordinal, token, start_char, end_char)`` per non-empty token.

    Character positions index into the *original* spec string (0-based,
    end exclusive), so an error can point at exactly the slice the user
    typed, commas and surrounding whitespace excluded.
    """
    offset = 0
    ordinal = 0
    for raw in spec.split(","):
        stripped = raw.strip()
        if stripped:
            ordinal += 1
            start = offset + (len(raw) - len(raw.lstrip()))
            yield ordinal, stripped, start, start + len(stripped)
        offset += len(raw) + 1  # the token plus the comma it lost


def _parse_one_fault(token: str) -> FaultEvent:
    """Parse a single ``kind:params`` token (positions added by the caller)."""
    if ":" not in token:
        raise ValueError(
            "expected kind:params, e.g. outage:20+5, loss:0.05, "
            "crash:10@8~4, partition:10+5/2"
        )
    kind, _, value = token.partition(":")
    kind = kind.strip()
    value = value.strip()
    if kind == "outage":
        window_text, slash, replica_text = value.partition("/")
        start, rounds = _parse_window(window_text)
        replica = 0
        if slash:
            replica_text = replica_text.strip()
            if replica_text == "all":
                replica = -1
            else:
                try:
                    replica = int(replica_text)
                except ValueError:
                    raise ValueError(
                        f"bad outage replica '{replica_text}' "
                        f"(expected an integer or 'all')"
                    ) from None
        return FaultEvent("outage", start=start, rounds=rounds, replica=replica)
    if kind == "loss":
        rate_text, at, window_text = value.partition("@")
        try:
            rate = float(rate_text)
        except ValueError:
            raise ValueError(f"bad loss rate '{rate_text}'") from None
        start, rounds = _parse_window(window_text) if at else (1, 0)
        return FaultEvent("loss", start=start, rounds=rounds, rate=rate)
    if kind == "crash":
        count_text, at, rest = value.partition("@")
        if not at:
            raise ValueError("expected crash:COUNT@ROUND[~REJOIN]")
        round_text, tilde, rejoin_text = rest.partition("~")
        try:
            count = int(count_text)
            start = int(round_text)
            rejoin_after = int(rejoin_text) if tilde else 0
        except ValueError:
            raise ValueError(
                f"bad crash parameters '{value}' "
                f"(expected crash:COUNT@ROUND[~REJOIN])"
            ) from None
        return FaultEvent(
            "crash", start=start, count=count, rejoin_after=rejoin_after
        )
    if kind == "partition":
        window_text, slash, groups_text = value.partition("/")
        start, rounds = _parse_window(window_text)
        try:
            groups = int(groups_text) if slash else 2
        except ValueError:
            raise ValueError(
                f"bad partition group count '{groups_text}'"
            ) from None
        return FaultEvent("partition", start=start, rounds=rounds, groups=groups)
    raise ValueError(
        f"unknown fault kind '{kind}' (available: {', '.join(FAULT_KINDS)})"
    )


def _parse_faults_spec(spec: str) -> FaultSchedule:
    """Parse a comma list of fault tokens into a :class:`FaultSchedule`.

    Grammar (all round numbers 1-based)::

        outage:START+ROUNDS          tracker (replica 0) down for the window
        outage:START+ROUNDS/R        replica R of a replicated set down
        outage:START+ROUNDS/all      every replica down
        loss:RATE                    open-ended loss at RATE
        loss:RATE@START+ROUNDS       loss limited to a window
        crash:COUNT@ROUND            COUNT peers crash at ROUND, no rejoin
        crash:COUNT@ROUND~REJOIN     ... rejoining REJOIN rounds later
        partition:START+ROUNDS       2-way partition for the window
        partition:START+ROUNDS/G     G-way partition

    A malformed token raises a :class:`ValueError` naming the token, its
    1-based ordinal and its character span in the spec string, so a typo
    in a long composite spec is locatable without bisecting it.
    """
    events: List[FaultEvent] = []
    for ordinal, token, start_char, end_char in _iter_spec_tokens(spec):
        try:
            events.append(_parse_one_fault(token))
        except ValueError as exc:
            raise ValueError(
                f"fault spec error in token {ordinal} ('{token}', "
                f"chars {start_char}-{end_char}): {exc}"
            ) from None
    return FaultSchedule(tuple(events))


def make_faults(spec: str) -> FaultSchedule:
    """Build a :class:`FaultSchedule` from a preset name or a spec string.

    ``spec`` is either one of :data:`FAULT_PRESET_NAMES` or a comma list
    of fault tokens (see :func:`_parse_faults_spec` for the grammar), e.g.
    ``"outage:20+5"`` or ``"loss:0.05,crash:10@8~4,partition:12+3/2"``.
    Unknown preset and kind names raise with the list of valid names.
    """
    if spec in _FAULT_PRESETS:
        return _FAULT_PRESETS[spec]
    if ":" not in spec:
        raise ValueError(
            f"unknown fault preset '{spec}' "
            f"(available: {', '.join(FAULT_PRESET_NAMES)}; or pass a "
            f"'kind:params,...' spec)"
        )
    return _parse_faults_spec(spec)


def resolve_faults(faults: Union["FaultSchedule", str, None]) -> FaultSchedule:
    """Normalize a ``faults=`` argument to a :class:`FaultSchedule`.

    Accepts a schedule, a preset name / spec string, or ``None`` (the
    trivial no-fault schedule).
    """
    if faults is None:
        return FaultSchedule()
    if isinstance(faults, str):
        return make_faults(faults)
    if not isinstance(faults, FaultSchedule):
        raise TypeError(
            "faults must be a FaultSchedule, a preset name / spec string or None"
        )
    return faults
