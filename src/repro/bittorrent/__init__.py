"""BitTorrent substrate and the paper's Section 6 application.

* :mod:`repro.bittorrent.pieces` -- torrent content model (pieces, bitfields).
* :mod:`repro.bittorrent.piece_selection` -- rarest-first and alternative
  piece pickers.
* :mod:`repro.bittorrent.choking` -- Tit-for-Tat and seed choking policies.
* :mod:`repro.bittorrent.tracker` -- peer discovery (the acceptance graph).
* :mod:`repro.bittorrent.swarm` -- the round-based swarm simulator and the
  empirical stratification index.
* :mod:`repro.bittorrent.scenarios` -- dynamic-membership scenarios
  (Poisson arrivals, flash crowds, departure policies) driving both swarm
  engines bit-identically.
* :mod:`repro.bittorrent.behaviors` -- adversarial / heterogeneous client
  behavior profiles (free-riders, BitThief-style never-uploaders, super
  seeds, partial seeds, NAT-limited and locality-biased peers) assigned
  per peer from a dedicated random stream, bit-identical on both engines.
* :mod:`repro.bittorrent.bandwidth` -- the Saroiu-style upstream bandwidth
  distribution (Figure 10).
* :mod:`repro.bittorrent.efficiency` -- expected download/upload share
  ratio as a function of upload bandwidth (Figure 11).
* :mod:`repro.bittorrent.strategy` -- slot-count arguments (connectivity
  lower bound, rational deviations, the default of 4).
* :mod:`repro.bittorrent.fast` -- the packed-bit array swarm engine behind
  ``SwarmSimulator(config, engine="fast")``.
"""

from repro.bittorrent.bandwidth import (
    BandwidthClass,
    BandwidthDistribution,
    saroiu_like_distribution,
)
from repro.bittorrent.behaviors import (
    BEHAVIOR_MIX_NAMES,
    BEHAVIOR_NAMES,
    BehaviorMix,
    BehaviorProfile,
    make_behavior_mix,
    profile_for,
    resolve_behavior_mix,
)
from repro.bittorrent.choking import ChokingPolicy, SeedChoker, TitForTatChoker
from repro.bittorrent.efficiency import (
    EfficiencyCurve,
    analytic_efficiency,
    efficiency_observations,
    simulated_efficiency,
)
from repro.bittorrent.pieces import Bitfield, Torrent
from repro.bittorrent.scenarios import (
    SCENARIO_NAMES,
    ScenarioSchedule,
    make_scenario,
    resolve_scenario,
)
from repro.bittorrent.piece_selection import (
    PieceSelector,
    RandomSelector,
    RarestFirstSelector,
    SequentialSelector,
    make_selector,
    piece_availability,
)
from repro.bittorrent.strategy import (
    SlotDeviationOutcome,
    is_connectivity_feasible,
    minimum_slots_for_connectivity,
    rational_best_response,
    recommended_default_slots,
    slot_deviation_payoffs,
)
from repro.bittorrent.swarm import (
    SwarmConfig,
    SwarmPeer,
    SwarmResult,
    SwarmSimulator,
    stratification_index,
)
from repro.bittorrent.tracker import Tracker

__all__ = [
    "BandwidthClass",
    "BandwidthDistribution",
    "saroiu_like_distribution",
    "BEHAVIOR_MIX_NAMES",
    "BEHAVIOR_NAMES",
    "BehaviorMix",
    "BehaviorProfile",
    "make_behavior_mix",
    "profile_for",
    "resolve_behavior_mix",
    "ChokingPolicy",
    "SeedChoker",
    "TitForTatChoker",
    "EfficiencyCurve",
    "analytic_efficiency",
    "efficiency_observations",
    "simulated_efficiency",
    "Bitfield",
    "SCENARIO_NAMES",
    "ScenarioSchedule",
    "make_scenario",
    "resolve_scenario",
    "Torrent",
    "PieceSelector",
    "RandomSelector",
    "RarestFirstSelector",
    "SequentialSelector",
    "make_selector",
    "piece_availability",
    "SlotDeviationOutcome",
    "is_connectivity_feasible",
    "minimum_slots_for_connectivity",
    "rational_best_response",
    "recommended_default_slots",
    "slot_deviation_payoffs",
    "SwarmConfig",
    "SwarmPeer",
    "SwarmResult",
    "SwarmSimulator",
    "stratification_index",
    "Tracker",
]
