"""Slot-count strategy analysis (Sections 4.1 and 6).

Three arguments from the paper about the number of Tit-for-Tat slots:

* **Connectivity lower bound** -- a b0-regular collaboration graph has
  ``b0 * n / 2`` edges and a connected graph needs at least ``n - 1``, so
  constant 1-matching can never be connected and the cycle is the only
  connected 2-regular graph: b0 >= 3 is required for a robustly connected
  TFT graph.
* **Rational peers drift to fewer slots** -- reducing one's slot count
  raises the upload offered per slot and therefore the rank, pushing the
  expected efficiency up; iterating this best response ends in the
  degenerate Nash equilibrium where every rational peer keeps a single TFT
  slot.
* **The default of 4** -- obedient peers need at least 3 TFT slots (+1
  optimistic) for connectivity, and every extra slot moves them further
  from the rational equilibrium; 4 is the paper's proposed trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.bittorrent.bandwidth import BandwidthDistribution, saroiu_like_distribution
from repro.bittorrent.efficiency import analytic_efficiency
from repro.sim.random_source import RandomSource
from repro.sim import streams

__all__ = [
    "minimum_slots_for_connectivity",
    "is_connectivity_feasible",
    "SlotDeviationOutcome",
    "slot_deviation_payoffs",
    "rational_best_response",
    "recommended_default_slots",
]


def is_connectivity_feasible(b0: int, n: int) -> bool:
    """Whether a connected b0-regular collaboration graph on n peers can exist.

    ``b0 = 1`` is never connected for n > 2; ``b0 = 2`` only as the single
    n-cycle (a fragile topology the paper dismisses); ``b0 >= 3`` is
    feasible whenever ``b0 < n`` and ``b0 * n`` is even.
    """
    if n <= 1:
        return n == 1
    if b0 <= 0:
        return False
    if b0 == 1:
        return n == 2
    if b0 >= n:
        return False
    return b0 * n % 2 == 0 or b0 >= 2


def minimum_slots_for_connectivity() -> int:
    """The paper's lower bound: at least 3 TFT slots for a robust graph."""
    return 3


@dataclass
class SlotDeviationOutcome:
    """Expected efficiency of a peer deviating to a different slot count.

    Attributes
    ----------
    baseline_slots:
        Slot count used by the rest of the population.
    deviant_slots:
        Slot count adopted by the deviating peer.
    baseline_efficiency:
        Median share ratio when following the default.
    deviant_efficiency:
        Estimated share ratio after the deviation.
    improves:
        Whether the deviation increases the peer's share ratio.
    """

    baseline_slots: int
    deviant_slots: int
    baseline_efficiency: float
    deviant_efficiency: float

    @property
    def improves(self) -> bool:
        """Whether deviating is profitable for the peer."""
        return self.deviant_efficiency > self.baseline_efficiency


def slot_deviation_payoffs(
    upload_kbps: float,
    *,
    population_slots: int = 3,
    candidate_slots: Sequence[int] = (1, 2, 3, 4, 5),
    n: int = 400,
    expected_degree: float = 20.0,
    distribution: Optional[BandwidthDistribution] = None,
    seed: int = 0,
) -> List[SlotDeviationOutcome]:
    """Payoff of deviating to each candidate slot count (Section 6 argument).

    The population plays ``population_slots`` TFT slots; one peer with the
    given upload bandwidth contemplates using ``deviant_slots`` instead.
    Fewer slots concentrate its upload, raising its upload-per-slot rank and
    hence the quality of the mates the matching model assigns to it.
    """
    dist = distribution if distribution is not None else saroiu_like_distribution()
    source = RandomSource(seed)
    uploads = dist.sample(n - 1, source.stream(streams.POPULATION))

    outcomes: List[SlotDeviationOutcome] = []
    baseline = _deviant_efficiency(
        upload_kbps, population_slots, uploads, population_slots, expected_degree, seed
    )
    for candidate in candidate_slots:
        if candidate <= 0:
            raise ValueError("slot counts must be positive")
        value = _deviant_efficiency(
            upload_kbps, candidate, uploads, population_slots, expected_degree, seed
        )
        outcomes.append(
            SlotDeviationOutcome(
                baseline_slots=population_slots,
                deviant_slots=candidate,
                baseline_efficiency=baseline,
                deviant_efficiency=value,
            )
        )
    return outcomes


def _deviant_efficiency(
    upload_kbps: float,
    deviant_slots: int,
    population_uploads: np.ndarray,
    population_slots: int,
    expected_degree: float,
    seed: int,
) -> float:
    """Share ratio of the deviant given everybody's upload-per-slot ranking."""
    # Build the per-slot ranking the TFT reduction induces: the deviant
    # offers upload/deviant_slots, everybody else upload/population_slots.
    deviant_per_slot = upload_kbps / deviant_slots
    others_per_slot = np.asarray(population_uploads, dtype=float) / population_slots
    all_per_slot = np.concatenate(([deviant_per_slot], others_per_slot))
    order = np.argsort(-all_per_slot)
    deviant_rank = int(np.where(order == 0)[0][0]) + 1

    curve = analytic_efficiency(
        n=all_per_slot.shape[0],
        b0=population_slots,
        expected_degree=expected_degree,
        uploads=(np.sort(all_per_slot)[::-1] * population_slots).tolist(),
        seed=seed,
    )
    # The deviant's download comes through deviant_slots slots at its rank,
    # but its cost stays its full upload bandwidth.
    expected_download = (
        curve.expected_download[deviant_rank - 1] / population_slots * deviant_slots
    )
    return float(expected_download / upload_kbps)


def rational_best_response(
    upload_kbps: float,
    *,
    population_slots: int = 3,
    candidate_slots: Sequence[int] = (1, 2, 3, 4, 5),
    n: int = 400,
    expected_degree: float = 20.0,
    seed: int = 0,
) -> int:
    """The slot count a rational peer would pick (paper: it collapses to 1)."""
    outcomes = slot_deviation_payoffs(
        upload_kbps,
        population_slots=population_slots,
        candidate_slots=candidate_slots,
        n=n,
        expected_degree=expected_degree,
        seed=seed,
    )
    best = max(outcomes, key=lambda outcome: outcome.deviant_efficiency)
    return best.deviant_slots


def recommended_default_slots() -> Dict[str, int]:
    """The paper's conclusion on default slot counts."""
    return {
        "tft_slots": 3,
        "optimistic_slots": 1,
        "total": 4,
    }
