"""Piece-selection policies.

BitTorrent's *local rarest first* policy is what justifies the paper's
post-flash-crowd assumption: after the initial phase, every piece has
roughly the same replication level, so content availability stops shaping
who exchanges with whom and only bandwidth matters.  The simulator supports
rarest-first (default), random and sequential selection so the assumption
itself can be exercised.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, List, Optional, Sequence, Set

import numpy as np

from repro.bittorrent.pieces import Bitfield

__all__ = [
    "PieceSelector",
    "RarestFirstSelector",
    "RandomSelector",
    "SequentialSelector",
    "make_selector",
    "piece_availability",
]


def piece_availability(bitfields: Iterable[Bitfield], piece_count: int) -> List[int]:
    """Replication level of every piece across the given bitfields."""
    counts = [0] * piece_count
    for bitfield in bitfields:
        for piece in bitfield.held():
            counts[piece] += 1
    return counts


class PieceSelector(ABC):
    """Strategy deciding which missing piece to request from a partner."""

    name = "abstract"

    @abstractmethod
    def select(
        self,
        wanted: Set[int],
        availability: Sequence[int],
        rng: np.random.Generator,
    ) -> Optional[int]:
        """Pick one piece from ``wanted`` (or None when empty)."""


class RarestFirstSelector(PieceSelector):
    """Pick the globally rarest piece among the wanted ones (ties random).

    The tie-break pool is built in ascending piece order.  Iterating the
    ``wanted`` set directly would make the ``rng.choice`` outcome depend on
    CPython's set iteration order -- an implementation detail that varies
    across interpreters and that no other engine could reproduce.
    """

    name = "rarest-first"

    def select(
        self,
        wanted: Set[int],
        availability: Sequence[int],
        rng: np.random.Generator,
    ) -> Optional[int]:
        if not wanted:
            return None
        ordered = sorted(wanted)
        rarity = min(availability[piece] for piece in ordered)
        rarest = [piece for piece in ordered if availability[piece] == rarity]
        return int(rng.choice(rarest))


class RandomSelector(PieceSelector):
    """Pick a uniformly random wanted piece."""

    name = "random"

    def select(
        self,
        wanted: Set[int],
        availability: Sequence[int],
        rng: np.random.Generator,
    ) -> Optional[int]:
        if not wanted:
            return None
        return int(rng.choice(sorted(wanted)))


class SequentialSelector(PieceSelector):
    """Pick the lowest-index wanted piece (streaming-style, for ablations)."""

    name = "sequential"

    def select(
        self,
        wanted: Set[int],
        availability: Sequence[int],
        rng: np.random.Generator,
    ) -> Optional[int]:
        del availability, rng
        if not wanted:
            return None
        return min(wanted)


_SELECTORS = {
    "rarest-first": RarestFirstSelector,
    "random": RandomSelector,
    "sequential": SequentialSelector,
}


def make_selector(name: str) -> PieceSelector:
    """Instantiate a piece selector by name."""
    if name not in _SELECTORS:
        raise ValueError(
            f"unknown piece selector '{name}'; available: {sorted(_SELECTORS)}"
        )
    return _SELECTORS[name]()
