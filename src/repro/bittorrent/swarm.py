"""A round-based BitTorrent swarm simulator.

The simulator exercises, end to end, the mechanism that the paper models
analytically: peers discover each other through a tracker, exchange pieces
under the Tit-for-Tat choking policy with rarest-first piece selection, and
-- once content availability stops being the bottleneck -- sort themselves
into bandwidth strata.

One simulation *round* represents one rechoke period (10 seconds of real
BitTorrent time).  In each round every peer:

1. recomputes its unchoked set from what it received during the previous
   round (Tit-for-Tat + optimistic unchoke),
2. splits its upload capacity evenly across its unchoked, interested
   neighbors, and
3. the receiving side accumulates the transferred volume and converts it
   into pieces chosen rarest-first from the sender's bitfield.

All volumes are measured in **kilobits** (so that upload capacities in kbps
convert directly: one round moves ``upload_kbps * round_seconds`` kilobits).

The output records per-peer download rates and the realised collaboration
graph, from which :func:`stratification_index` measures how strongly peers
pair with partners of similar bandwidth rank -- the empirical counterpart of
the matching model's stratification result.

Like :class:`repro.core.dynamics.ConvergenceSimulator`, the simulator takes
an ``engine`` switch: ``"reference"`` (this module, dictionaries and sets,
the correctness oracle) or ``"fast"`` (the packed-bit array engine in
:mod:`repro.bittorrent.fast`).  Both engines consume the shared random
streams draw-for-draw and produce bit-identical :class:`SwarmResult`\\ s for
the same seed; the contract is enforced by
``tests/test_swarm_engine_equivalence.py``.
"""

from __future__ import annotations

import warnings
from dataclasses import InitVar, dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.bittorrent.bandwidth import BandwidthDistribution, saroiu_like_distribution
from repro.bittorrent.behaviors import (
    BehaviorMix,
    BehaviorProfile,
    bootstrap_piece_count,
    filter_contacts,
    profile_for,
    resolve_behavior_mix,
)
from repro.bittorrent.choking import SeedChoker, TitForTatChoker
from repro.bittorrent.faults import FaultRuntime, FaultSchedule, resolve_faults
from repro.bittorrent.pieces import Bitfield, Torrent
from repro.bittorrent.piece_selection import PieceSelector, make_selector, piece_availability
from repro.bittorrent.resilience import (
    ResiliencePolicy,
    ResilienceRuntime,
    ResilienceStats,
    resolve_resilience,
    sample_pools,
)
from repro.bittorrent.scenarios import ScenarioSchedule, resolve_scenario
from repro.bittorrent.telemetry import (
    ObservedSwarm,
    ObserverConfig,
    SwarmObserver,
    _ReferenceSwarmView,
    resolve_observer,
)
from repro.bittorrent.tracker import Tracker
from repro.core.exceptions import validate_engine
from repro.sim.random_source import RandomSource
from repro.sim import streams

__all__ = ["SwarmConfig", "SwarmPeer", "SwarmResult", "SwarmSimulator", "stratification_index"]


@dataclass
class SwarmConfig:
    """Parameters of a swarm simulation.

    Attributes
    ----------
    leechers:
        Number of downloading peers.
    seeds:
        Number of initial seeds.
    piece_count:
        Number of pieces in the torrent.
    piece_size_kbit:
        Piece size in kilobits.  (``piece_size_kb`` is accepted as a
        deprecated constructor alias; the unit was always kilobits.)
    regular_slots:
        Tit-for-Tat slots per leecher (the paper's b0, default 3).
    optimistic_slots:
        Optimistic unchoke slots per leecher (default 1).
    seed_slots:
        Upload slots of each seed.
    announce_size:
        Tracker announce size (expected acceptance degree d).
    rounds:
        Number of rechoke rounds to simulate.
    round_seconds:
        Real-time duration of one round (used to convert kbps to
        kilobits per round).
    piece_selection:
        Piece selection policy name.
    start_completion:
        Fraction of pieces each leecher already holds at start.  A non-zero
        value puts the swarm directly in the post flash-crowd regime that
        the paper analyses.
    seed_upload_kbps:
        Upload capacity of seeds.
    warmup_rounds:
        Rounds excluded from the reciprocal-TFT statistics (the initial
        discovery phase, where unchokes are still mostly optimistic).
    optimistic_period:
        Rechoke rounds an optimistic unchoke is kept before rotation
        (BitTorrent uses 3 x 10 s, so the default is 3 rounds).
    behaviors:
        Client-behavior mix of the population (a
        :class:`~repro.bittorrent.behaviors.BehaviorMix`, a preset name /
        spec string, or ``None`` for the paper's homogeneous obedient
        clients).  Behaviors are bit-identical across engines.
    faults:
        Fault schedule of the run (a
        :class:`~repro.bittorrent.faults.FaultSchedule`, a preset name /
        spec string, or ``None`` for the paper's failure-free setting):
        tracker outages, transfer loss, peer crashes and network
        partitions.  Faults are bit-identical across engines, and a
        trivial schedule leaves the run draw-for-draw identical to a
        fault-free one.
    resilience:
        Client-side defenses against the fault layer (a
        :class:`~repro.bittorrent.resilience.ResiliencePolicy`, a preset
        name / spec string, or ``None`` for the paper's defenseless
        clients): multi-tracker failover, peer-exchange gossip during
        total outages, and dead-neighbor eviction with stale-registration
        purging.  Resilience is bit-identical across engines, and the
        trivial default draws nothing and changes nothing.
    """

    leechers: int = 60
    seeds: int = 2
    piece_count: int = 800
    piece_size_kbit: float = 256.0
    regular_slots: int = 3
    optimistic_slots: int = 1
    seed_slots: int = 4
    announce_size: int = 20
    rounds: int = 60
    round_seconds: float = 10.0
    piece_selection: str = "rarest-first"
    start_completion: float = 0.3
    seed_upload_kbps: float = 5000.0
    warmup_rounds: int = 5
    optimistic_period: int = 3
    behaviors: "BehaviorMix | str | None" = None
    faults: "FaultSchedule | str | None" = None
    resilience: "ResiliencePolicy | str | None" = None
    piece_size_kb: InitVar[Optional[float]] = None  # repro: allow[RPD005] -- deprecation shim for the *_kb -> *_kbit rename

    def __post_init__(self, piece_size_kb: Optional[float]) -> None:  # repro: allow[RPD005] -- deprecation shim for the *_kb -> *_kbit rename
        if piece_size_kb is not None:  # repro: allow[RPD005] -- deprecation shim for the *_kb -> *_kbit rename
            if self.piece_size_kbit != type(self).piece_size_kbit:
                raise TypeError(
                    "pass piece_size_kbit or the deprecated piece_size_kb, "
                    "not both"
                )
            warnings.warn(
                "SwarmConfig.piece_size_kb is deprecated (the unit is "
                "kilobits); use piece_size_kbit",
                DeprecationWarning,
                stacklevel=3,
            )
            self.piece_size_kbit = piece_size_kb  # repro: allow[RPD005] -- deprecation shim for the *_kb -> *_kbit rename
        if self.leechers <= 1:
            raise ValueError("need at least two leechers")
        if self.seeds < 0:
            raise ValueError("seeds cannot be negative")
        if self.rounds <= 0:
            raise ValueError("rounds must be positive")
        if not 0.0 <= self.start_completion < 1.0:
            raise ValueError("start_completion must be in [0, 1)")
        if self.warmup_rounds < 0:
            raise ValueError("warmup_rounds cannot be negative")
        if self.optimistic_period <= 0:
            raise ValueError("optimistic_period must be positive")
        if self.behaviors is not None:
            self.behaviors = resolve_behavior_mix(self.behaviors)
        if self.faults is not None:
            self.faults = resolve_faults(self.faults)
        if self.resilience is not None:
            self.resilience = resolve_resilience(self.resilience)

    def __getattr__(self, name: str):
        if name == "piece_size_kb":
            warnings.warn(
                "SwarmConfig.piece_size_kb is deprecated; use piece_size_kbit",
                DeprecationWarning,
                stacklevel=2,
            )
            return self.piece_size_kbit
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )


# The InitVar default survives as a class attribute, which would shadow the
# __getattr__ deprecation shim; the generated __init__ keeps its own copy.
del SwarmConfig.piece_size_kb  # repro: allow[RPD005] -- deprecation shim for the *_kb -> *_kbit rename


def _deprecated_kb_property(new_name: str):
    def getter(self):
        warnings.warn(
            f"SwarmPeer.{new_name[:-5]}_kb is deprecated; use {new_name}",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(self, new_name)

    getter.__doc__ = f"Deprecated alias of :attr:`{new_name}`."
    return property(getter)


@dataclass
class SwarmPeer:
    """Dynamic state of one peer in the swarm (volumes in kilobits).

    ``arrival_round`` is 0 for the initial population and the join round
    for scenario arrivals; ``departed_round`` is set when a scenario
    departure policy removes the peer from the swarm (its statistics are
    frozen at that point but still reported in the result).

    ``behavior`` names the peer's assigned
    :class:`~repro.bittorrent.behaviors.BehaviorProfile` and
    ``locality_group`` its locality group (-1 when the mix has no
    locality-biased behavior and groups were never drawn).
    """

    peer_id: int
    upload_kbps: float
    is_seed: bool
    bitfield: Bitfield
    neighbors: Set[int] = field(default_factory=set)
    downloaded_kbit: float = 0.0
    uploaded_kbit: float = 0.0
    partial_kbit: Dict[int, float] = field(default_factory=dict)
    received_last_round: Dict[int, float] = field(default_factory=dict)
    completed_round: Optional[int] = None
    arrival_round: int = 0
    departed_round: Optional[int] = None
    behavior: str = "standard"
    locality_group: int = -1

    downloaded_kb = _deprecated_kb_property("downloaded_kbit")  # repro: allow[RPD005] -- deprecation shim for the *_kb -> *_kbit rename
    uploaded_kb = _deprecated_kb_property("uploaded_kbit")  # repro: allow[RPD005] -- deprecation shim for the *_kb -> *_kbit rename
    partial_kb = _deprecated_kb_property("partial_kbit")  # repro: allow[RPD005] -- deprecation shim for the *_kb -> *_kbit rename

    def download_rate_kbps(self, rounds: int, round_seconds: float) -> float:
        """Average download rate over the peer's time in the swarm.

        A peer joining at the start of round ``r`` participates in rounds
        ``r..horizon`` inclusive -- ``horizon - r + 1`` rounds (the initial
        population, ``arrival_round == 0``, participates from round 1).
        """
        horizon = (self.completed_round if self.completed_round is not None else rounds)
        active_since = max(1, self.arrival_round)
        horizon = max(1, horizon - active_since + 1)
        return self.downloaded_kbit / (horizon * round_seconds)


@dataclass
class SwarmResult:
    """Outcome of a swarm simulation.

    ``collaboration_volume`` records every kilobit moved between a pair;
    ``tft_reciprocal_rounds`` counts, per pair of leechers, the rounds in
    which *both* sides granted the other a regular (Tit-for-Tat) slot --
    the empirical analogue of a matched pair in the paper's model.

    Under a dynamic :class:`~repro.bittorrent.scenarios.ScenarioSchedule`,
    ``peers`` contains departed peers too (with ``departed_round`` set and
    their statistics frozen at departure); ``arrivals`` / ``departures``
    count the membership events over the whole run.

    ``observed`` carries the measurement campaign of an attached
    :class:`~repro.bittorrent.telemetry.SwarmObserver` (``None`` when the
    run was unobserved); every other field is bit-identical with or
    without observation.

    ``resilience`` carries the failover / PEX / eviction counters of a
    non-trivial :class:`~repro.bittorrent.resilience.ResiliencePolicy`
    (``None`` -- and absent from serialized traces -- for the defenseless
    default, so pre-resilience result payloads are unchanged).
    """

    config: SwarmConfig
    peers: Dict[int, SwarmPeer]
    collaboration_volume: Dict[Tuple[int, int], float]
    tft_reciprocal_rounds: Dict[Tuple[int, int], float]
    completed: int
    rounds_run: int
    arrivals: int = 0
    departures: int = 0
    observed: Optional[ObservedSwarm] = None
    resilience: Optional[ResilienceStats] = None

    def leechers(self) -> List[SwarmPeer]:
        """All non-seed peers (departed ones included)."""
        return [peer for peer in self.peers.values() if not peer.is_seed]

    def present_peers(self) -> List[SwarmPeer]:
        """Peers still in the swarm at the end of the run."""
        return [peer for peer in self.peers.values() if peer.departed_round is None]

    def download_rates(self) -> Dict[int, float]:
        """Average download rate (kbps) per leecher."""
        return {
            peer.peer_id: peer.download_rate_kbps(self.rounds_run, self.config.round_seconds)
            for peer in self.leechers()
        }

    def share_ratios(self) -> Dict[int, float]:
        """Downloaded / uploaded volume per leecher (the BitTorrent share ratio)."""
        ratios = {}
        for peer in self.leechers():
            uploaded = max(peer.uploaded_kbit, 1e-9)
            ratios[peer.peer_id] = peer.downloaded_kbit / uploaded
        return ratios


class SwarmSimulator:
    """Drives a round-based Tit-for-Tat swarm.

    Parameters
    ----------
    config:
        Swarm parameters.
    bandwidths:
        Explicit leecher upload capacities (kbps); sampled from
        ``distribution`` when omitted.
    distribution:
        Bandwidth distribution to sample from (Saroiu-style by default).
    seed:
        Master seed of the shared :class:`~repro.sim.random_source.RandomSource`.
    engine:
        ``"reference"`` (default) for this dictionary implementation,
        ``"fast"`` for the packed-bit array engine in
        :mod:`repro.bittorrent.fast.swarm`.  Both are bit-identical for
        the same seed.
    scenario:
        Membership dynamics: a
        :class:`~repro.bittorrent.scenarios.ScenarioSchedule`, a preset
        name (``"static"``, ``"poisson"``, ``"flashcrowd"``,
        ``"seed-linger"``) or ``None`` for the fixed population the paper
        assumes.  Scenarios are bit-identical across engines too.
    observer:
        A :class:`~repro.bittorrent.telemetry.SwarmObserver` (or an
        :class:`~repro.bittorrent.telemetry.ObserverConfig` to build one)
        that measures the run the way a real scrape-and-poll study would;
        its record lands in ``SwarmResult.observed``.  Observation never
        changes the simulation -- results stay bit-identical to the
        unobserved run on both engines.
    """

    def __init__(
        self,
        config: SwarmConfig,
        *,
        bandwidths: Optional[Sequence[float]] = None,
        distribution: Optional[BandwidthDistribution] = None,
        seed: int = 0,
        engine: str = "reference",
        scenario: "ScenarioSchedule | str | None" = None,
        observer: "SwarmObserver | ObserverConfig | None" = None,
    ) -> None:
        validate_engine(engine)
        self.config = config
        self.engine = engine
        self.scenario = resolve_scenario(scenario)
        self.observer = resolve_observer(observer)
        self.source = RandomSource(seed)
        self.torrent = Torrent(config.piece_count, config.piece_size_kbit)
        # The behavior layer: the swarm's mix, the (possibly overriding)
        # arrival mix, and two flags that gate every behavior branch.  All
        # three are pure functions of config + scenario, so the fast
        # engine derives the identical gates and the shared streams stay
        # aligned.  A trivial mix keeps this run draw-for-draw identical
        # to a behavior-free one.
        self.behaviors = resolve_behavior_mix(config.behaviors)
        self._arrival_mix: BehaviorMix = (
            self.scenario.behaviors
            if self.scenario.behaviors is not None
            else self.behaviors
        )
        self._behaviors_active = not (
            self.behaviors.is_trivial and self._arrival_mix.is_trivial
        )
        self._locality_on = (
            self.behaviors.uses_locality or self._arrival_mix.uses_locality
        )
        # The fault layer: one shared pid-level runtime per run.  A
        # trivial schedule keeps every fault branch off (and every
        # fault-* stream untouched), so fault-free runs stay
        # draw-for-draw identical to pre-fault-layer ones.
        self.faults = resolve_faults(config.faults)
        self._faults = FaultRuntime(self.faults)
        self._faults_active = self._faults.active
        self.tracker_available = True
        # The resilience layer mirrors the fault layer's shape: one
        # pid-level runtime (which also validates the schedule's replica
        # targets against the announce-list length), gates derived from
        # the config alone, and a trivial policy that draws nothing.
        self.resilience = resolve_resilience(config.resilience)
        self._resilience = ResilienceRuntime(self.resilience, self.faults)
        self._resilience_active = self._resilience.active
        if engine == "fast":
            from repro.bittorrent.fast.swarm import FastSwarmSimulator

            self._fast: Optional[FastSwarmSimulator] = FastSwarmSimulator(
                config,
                bandwidths=bandwidths,
                distribution=distribution,
                seed=seed,
                scenario=self.scenario,
                observer=self.observer,
            )
            return
        self._fast = None
        self.selector: PieceSelector = make_selector(config.piece_selection)
        self.tracker = Tracker(announce_size=config.announce_size)
        self._chokers: Dict[int, TitForTatChoker | SeedChoker] = {}
        self.peers: Dict[int, SwarmPeer] = {}
        self._departed: Dict[int, SwarmPeer] = {}
        self._profiles: Dict[int, BehaviorProfile] = {}
        self._next_pid = 0
        self._total_arrived = 0
        self._build_population(bandwidths, distribution)

    def __getattr__(self, name: str):
        # In fast mode ``peers`` is materialized from the arrays on demand
        # (a fresh snapshot of the current state, initial before run() and
        # final after), keeping the public surface engine-independent.
        # ``tracker``/``selector`` remain reference-engine internals.
        if name == "peers":
            fast = self.__dict__.get("_fast")
            if fast is not None:
                return fast.materialize_peers()
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    # -- construction ------------------------------------------------------------

    def _build_population(
        self,
        bandwidths: Optional[Sequence[float]],
        distribution: Optional[BandwidthDistribution],
    ) -> None:
        config = self.config
        rng = self.source.stream(streams.BANDWIDTH)
        if bandwidths is not None:
            uploads = np.asarray(list(bandwidths), dtype=float)
            if uploads.shape[0] != config.leechers:
                raise ValueError("bandwidths must have one entry per leecher")
        else:
            dist = distribution if distribution is not None else saroiu_like_distribution()
            uploads = dist.sample(config.leechers, rng)

        # Pinned behavior draws: one assignment batch for the leechers,
        # then (only when some behavior is locality-biased) one group
        # batch for the whole initial population, seeds included -- both
        # before any bootstrap draw.  The fast engine replays this order.
        behavior_rng = self.source.stream(streams.BEHAVIOR)
        mix = self.behaviors
        leecher_behaviors = mix.assign(config.leechers, behavior_rng)
        n_initial = config.leechers + config.seeds
        groups = (
            mix.assign_groups(n_initial, behavior_rng)
            if self._locality_on
            else [-1] * n_initial
        )

        # Replica preferences: one pinned tracker-select batch for the
        # whole initial population (seeds included), drawn only when the
        # announce list actually has more than one replica.
        if self._resilience_active:
            self._resilience.assign_preferences(
                list(range(1, n_initial + 1)),
                self.source.stream(streams.TRACKER_SELECT),
            )

        bootstrap_rng = self.source.stream(streams.BOOTSTRAP)
        announce_rng = self.source.stream(streams.TRACKER)
        start_default = int(round(config.start_completion * config.piece_count))
        peer_id = 0
        for index in range(config.leechers):
            peer_id += 1
            self._next_pid = peer_id
            profile = profile_for(leecher_behaviors[index])
            bitfield = Bitfield.empty(config.piece_count)
            start_pieces = bootstrap_piece_count(
                profile, start_default, config.piece_count
            )
            if start_pieces:
                for piece in bootstrap_rng.choice(
                    config.piece_count, size=start_pieces, replace=False
                ):
                    bitfield.add(int(piece))
            peer = SwarmPeer(
                peer_id=peer_id,
                upload_kbps=float(uploads[index]),
                is_seed=False,
                bitfield=bitfield,
                behavior=profile.name,
                locality_group=groups[index],
            )
            self.peers[peer_id] = peer
            self._profiles[peer_id] = profile
            self._chokers[peer_id] = TitForTatChoker(
                regular_slots=config.regular_slots,
                optimistic_slots=config.optimistic_slots,
                optimistic_period=config.optimistic_period,
            )
        seed_profile = profile_for(mix.seed_behavior)
        for k in range(config.seeds):
            peer_id += 1
            self._next_pid = peer_id
            peer = SwarmPeer(
                peer_id=peer_id,
                upload_kbps=config.seed_upload_kbps,
                is_seed=True,
                bitfield=Bitfield.complete(config.piece_count),
                behavior=seed_profile.name,
                locality_group=groups[config.leechers + k],
            )
            self.peers[peer_id] = peer
            self._profiles[peer_id] = seed_profile
            self._chokers[peer_id] = SeedChoker(slots=config.seed_slots)

        for pid in self.peers:
            contacts = self.tracker.announce(pid, announce_rng)
            if self._resilience_active:
                # Construction happens before round 1, so no outage window
                # can cover it: every announce lands on its preferred
                # replica (round_index=0 is outside all windows).
                self._resilience.record_announce(pid, 0)
            if self._behaviors_active:
                contacts = self._filter_contacts(pid, contacts, behavior_rng)
            self.peers[pid].neighbors.update(contacts)
            for other in contacts:
                self.peers[other].neighbors.add(pid)
        # Peers that join already holding the full content announce as
        # seeders: scrape counts them, the snatch counter does not.
        for pid, peer in self.peers.items():
            if peer.bitfield.is_complete():
                self.tracker.register_complete(pid)

    def _locality_group_of(self, pid: int) -> int:
        """Locality group of a peer, crashed peers included.

        A crashed peer never departs the tracker, so its id can show up
        in another peer's contacts; its group (assigned at arrival,
        retained across the crash) lives on its frozen snapshot.
        """
        peer = self.peers.get(pid)
        if peer is None:
            peer = self._departed[pid]
        return peer.locality_group

    def _filter_contacts(
        self,
        pid: int,
        contacts: Sequence[int],
        behavior_rng: np.random.Generator,
    ) -> List[int]:
        """Apply ``pid``'s locality / NAT edge behaviors to its contacts."""
        contact_list = [int(contact) for contact in contacts]
        return filter_contacts(
            self._profiles[pid],
            self.peers[pid].locality_group,
            contact_list,
            [self._locality_group_of(contact) for contact in contact_list],
            [self._profiles[contact].nat_limited for contact in contact_list],
            behavior_rng,
        )

    # -- membership dynamics -------------------------------------------------------

    def _process_membership(self, round_index: int) -> None:
        """Apply the scenario's departures and arrivals for this round.

        The order (departures, then one arrival-count draw, then one
        capacity batch, then per-arrival bootstrap + announce) is the
        engine-shared protocol documented in
        :mod:`repro.bittorrent.scenarios` -- the fast engine replays it
        step for step on the same streams.  When a fault schedule is
        active the protocol grows pinned extra steps (see
        ``docs/faults.md``): recovery flush and crash rejoins *before*
        the scenario departures, crash events and announce retries after
        them, and partition-side assignment at the very end.
        """
        scenario = self.scenario
        if self._faults_active:
            self._faults.begin_round(round_index)
            self.tracker_available = self._faults.tracker_up(
                round_index, self.resilience.trackers
            )
            if self.tracker_available:
                completions, departs = self._faults.drain_deferred()
                for pid in completions:
                    self.tracker.record_completion(pid)
                for pid in departs:
                    self.tracker.depart(pid)
            self._process_rejoins(round_index)
        if self._resilience_active:
            # Dead-neighbor eviction: fire the keepalive timeouts, then
            # deliver any pending stale-registration purges if a replica
            # is reachable.  Runs after the rejoin step so a peer that
            # came back this round keeps its (live again) registration.
            self._resilience.begin_round(round_index)
            if self.tracker_available:
                for pid in self._resilience.drain_purges():
                    if pid in self.peers:
                        continue  # rejoined: the registration is live again
                    if self.tracker.is_registered(pid):
                        self.tracker.depart(pid)
                        self._resilience.count_purge()
        if scenario.departure != "stay":
            due = [
                pid
                for pid, peer in self.peers.items()
                if not peer.is_seed
                and scenario.should_depart(peer.completed_round, round_index)
            ]
            for pid in due:
                self._depart(pid, round_index)
        if self._faults_active:
            self._process_crashes(round_index)
            self._process_pending_announces(round_index)
        count = scenario.arrivals_for_round(
            round_index, self._total_arrived, self.source.stream(streams.SCENARIO)
        )
        if count > 0:
            capacities = scenario.sample_capacities(count, self.source.stream(streams.BANDWIDTH))
            behavior_rng = self.source.stream(streams.BEHAVIOR)
            arrival_mix = self._arrival_mix
            arrival_behaviors = arrival_mix.assign(count, behavior_rng)
            arrival_groups = (
                arrival_mix.assign_groups(count, behavior_rng)
                if self._locality_on
                else [-1] * count
            )
            if self._resilience_active:
                # One tracker-select batch per arrival wave (the pids are
                # allocated sequentially, so both engines know them before
                # the per-arrival loop runs).
                self._resilience.assign_preferences(
                    [self._next_pid + 1 + k for k in range(count)],
                    self.source.stream(streams.TRACKER_SELECT),
                )
            for k in range(count):
                self._arrive(
                    float(capacities[k]),
                    round_index,
                    arrival_behaviors[k],
                    arrival_groups[k],
                )
            self._total_arrived += count
        if self._faults_active and self._faults.partition_active(round_index):
            self._faults.assign_missing_groups(
                round_index,
                sorted(self.peers),
                self.source.stream(streams.FAULT_PARTITION),
            )

    def _depart(self, pid: int, round_index: int) -> None:
        """Remove a completed leecher; freeze its statistics in the result."""
        peer = self.peers.pop(pid)
        peer.departed_round = round_index
        for other in peer.neighbors:
            if other in self.peers:
                self.peers[other].neighbors.discard(pid)
        if self._faults_active and not self.tracker_available:
            # The stopped event cannot reach the tracker mid-outage; it
            # is delivered on recovery.
            self._faults.defer_depart(pid)
        else:
            self.tracker.depart(pid)
        del self._chokers[pid]
        self._departed[pid] = peer

    # -- fault dynamics ------------------------------------------------------------

    def _announce_or_queue(self, pid: int, round_index: int) -> None:
        """Announce ``pid`` to the tracker, or queue a retry mid-outage.

        Successful announces consume the tracker draw (plus the behavior
        filter batch when active) and connect symmetric edges; contacts
        that crashed since the tracker last heard from them are dropped
        (a dead peer does not answer a handshake).  During an outage
        nothing is drawn -- the announce retries with doubling backoff.
        """
        if not self.tracker_available:
            self._faults.queue_announce(pid, round_index)
            if self._resilience_active and self.resilience.pex:
                self._pex_bootstrap(pid)
            return
        contacts = self.tracker.announce(pid, self.source.stream(streams.TRACKER))
        if self._resilience_active:
            self._resilience.record_announce(pid, round_index)
        if self._behaviors_active:
            contacts = self._filter_contacts(
                pid, contacts, self.source.stream(streams.BEHAVIOR)
            )
        peer = self.peers[pid]
        for other in contacts:
            other = int(other)
            if other not in self.peers:
                continue  # stale tracker entry: a crashed peer
            peer.neighbors.add(other)
            self.peers[other].neighbors.add(pid)

    def _pex_bootstrap(self, pid: int) -> None:
        """Seed a blacked-out (re)joiner with cached peer contacts.

        An arrival that finds every replica down would otherwise sit alone
        in the retry queue; with PEX on it samples a bounded handful of
        longer-lived peers (ids strictly below its own: resume caches and
        local discovery only know peers that existed first -- and, less
        romantically, the only membership rule both engines can evaluate
        identically mid-arrival-wave).  One pex-gossip batch per queued
        announce.
        """
        candidates = sorted(p for p in self.peers if p < pid)
        sample = sample_pools(
            [candidates],
            self.resilience.pex_sample,
            self.source.stream(streams.PEX_GOSSIP),
        )[0]
        if not sample:
            return
        peer = self.peers[pid]
        for other in sample:
            peer.neighbors.add(other)
            self.peers[other].neighbors.add(pid)
        self._resilience.count_bootstrap()

    def _pex_round(self, transfers: Dict[Tuple[int, int], float]) -> None:
        """Gossip neighbor samples along this round's surviving transfers.

        Only runs while every replica is unreachable.  Each directed
        (sender, receiver) pair carries one bounded sample of the sender's
        live neighbors (receiver excluded); all samples of the round are
        drawn as one pinned pex-gossip batch over the sorted pairs
        *before* any edge is added, so the pools both engines sample from
        are identical by construction.
        """
        pairs = sorted(transfers)
        pools = [
            [p for p in sorted(self.peers[a].neighbors) if p != b]
            for a, b in pairs
        ]
        samples = sample_pools(
            pools, self.resilience.pex_sample, self.source.stream(streams.PEX_GOSSIP)
        )
        for (a, b), sample in zip(pairs, samples):
            receiver = self.peers[b]
            for pid in sample:
                if pid == b or pid in receiver.neighbors:
                    continue
                receiver.neighbors.add(pid)
                self.peers[pid].neighbors.add(b)
                self._resilience.count_introduction()

    def _process_rejoins(self, round_index: int) -> None:
        """Restore crashed peers whose rejoin falls due this round.

        The bitfield (and the download statistics) survived the crash;
        neighbors, partial piece credit and choker state did not, so the
        peer comes back like a fresh arrival that happens to hold pieces
        -- announcing to the tracker (or queueing the announce when the
        rejoin lands mid-outage).
        """
        due = self._faults.rejoins_due(round_index)
        if not due:
            return
        config = self.config
        for pid in due:
            peer = self._departed.pop(pid)
            peer.departed_round = None
            if self._resilience_active:
                self._resilience.cancel_eviction(pid)
            self.peers[pid] = peer
            self._chokers[pid] = TitForTatChoker(
                regular_slots=config.regular_slots,
                optimistic_slots=config.optimistic_slots,
                optimistic_period=config.optimistic_period,
            )
            self._announce_or_queue(pid, round_index)
        # Keep the peer dict in ascending-pid iteration order, matching
        # the fast engine's dense-index sweeps.
        self.peers = dict(sorted(self.peers.items()))

    def _process_crashes(self, round_index: int) -> None:
        """Fire the round's crash event, if the schedule has one."""
        candidates = [pid for pid, peer in self.peers.items() if not peer.is_seed]
        victims = self._faults.select_crash_victims(
            round_index, candidates, self.source.stream(streams.FAULT_CRASH)
        )
        for pid in victims:
            self._crash(pid, round_index)

    def _crash(self, pid: int, round_index: int) -> None:
        """Vanish a peer without telling the tracker.

        Unlike :meth:`_depart`, the tracker keeps handing out the crashed
        peer's id; neighbors, partial credit and last-round receipts are
        lost (a rejoin starts those from scratch), the bitfield is kept.
        """
        peer = self.peers.pop(pid)
        peer.departed_round = round_index
        if self._resilience_active:
            # The keepalive clock starts now; only a peer somebody was
            # connected to is detectable (captured before the scrub).
            self._resilience.note_crash(pid, round_index, bool(peer.neighbors))
        for other in peer.neighbors:
            if other in self.peers:
                self.peers[other].neighbors.discard(pid)
        peer.neighbors = set()
        peer.partial_kbit = {}
        peer.received_last_round = {}
        del self._chokers[pid]
        self._faults.clear_announce(pid)
        self._departed[pid] = peer

    def _process_pending_announces(self, round_index: int) -> None:
        """Retry queued announces whose backoff expires this round."""
        for pid in self._faults.announces_due(round_index):
            if pid not in self.peers:
                # Crashed (or departed) while waiting: the announce dies
                # with the peer.
                self._faults.clear_announce(pid)
                continue
            if not self.tracker_available:
                self._faults.reschedule_announce(pid, round_index)
                continue
            self._faults.clear_announce(pid)
            self._announce_or_queue(pid, round_index)

    def _arrive(
        self,
        upload_kbps: float,
        round_index: int,
        behavior: str = "standard",
        locality_group: int = -1,
    ) -> None:
        """Join one fresh leecher: bootstrap pieces, then a tracker announce."""
        config = self.config
        self._next_pid += 1
        pid = self._next_pid
        profile = profile_for(behavior)
        bitfield = Bitfield.empty(config.piece_count)
        start_pieces = bootstrap_piece_count(
            profile, self.scenario.arrival_pieces(config.piece_count), config.piece_count
        )
        if start_pieces:
            for piece in self.source.stream(streams.BOOTSTRAP).choice(
                config.piece_count, size=start_pieces, replace=False
            ):
                bitfield.add(int(piece))
        peer = SwarmPeer(
            peer_id=pid,
            upload_kbps=upload_kbps,
            is_seed=False,
            bitfield=bitfield,
            arrival_round=round_index,
            behavior=profile.name,
            locality_group=locality_group,
        )
        self.peers[pid] = peer
        self._profiles[pid] = profile
        self._chokers[pid] = TitForTatChoker(
            regular_slots=config.regular_slots,
            optimistic_slots=config.optimistic_slots,
            optimistic_period=config.optimistic_period,
        )
        self._announce_or_queue(pid, round_index)

    # -- simulation ---------------------------------------------------------------

    def run(self) -> SwarmResult:
        """Run the configured number of rounds and return the results."""
        if self._fast is not None:
            return self._fast.run()
        config = self.config
        scenario = self.scenario
        observer = self.observer
        if observer is not None:
            observer.begin_run(_ReferenceSwarmView(self))
        rng = self.source.stream(streams.ROUNDS)
        collaboration: Dict[Tuple[int, int], float] = {}
        tft_rounds: Dict[Tuple[int, int], float] = {}
        completed = sum(1 for p in self.peers.values() if not p.is_seed and p.bitfield.is_complete())

        rounds_run = config.rounds
        for round_index in range(1, config.rounds + 1):
            self._process_membership(round_index)
            transfers, regular_pairs = self._plan_round(rng)
            if self._faults_active:
                transfers = self._filter_faulty_transfers(transfers, round_index)
            self._record_reciprocal_tft(regular_pairs, tft_rounds, round_index)
            completed += self._apply_round(transfers, collaboration, rng, round_index)
            if (
                self._resilience_active
                and self.resilience.pex
                and not self.tracker_available
            ):
                self._pex_round(transfers)
            if observer is not None:
                observer.observe_round(round_index, regular_pairs)
            if (
                all(
                    p.bitfield.is_complete()
                    for p in self.peers.values()
                    if not p.is_seed and self._profiles[p.peer_id].downloads
                )
                and not scenario.more_arrivals_after(round_index, self._total_arrived)
                and not (
                    self._faults_active
                    and self._faults.blocks_early_exit(round_index)
                )
            ):
                rounds_run = round_index
                break
        all_peers = dict(self._departed)
        all_peers.update(self.peers)
        return SwarmResult(
            config=config,
            peers=dict(sorted(all_peers.items())),
            collaboration_volume=collaboration,
            tft_reciprocal_rounds=tft_rounds,
            completed=completed,
            rounds_run=rounds_run,
            arrivals=self._total_arrived,
            departures=len(self._departed),
            observed=observer.finish(rounds_run) if observer is not None else None,
            resilience=(
                self._resilience.stats() if self._resilience_active else None
            ),
        )

    def _plan_round(
        self, rng: np.random.Generator
    ) -> Tuple[Dict[Tuple[int, int], float], Set[Tuple[int, int]]]:
        """Decide unchokes and the kilobits each peer pushes to each partner.

        Returns the planned transfers and the set of directed (sender,
        target) pairs granted a *regular* Tit-for-Tat slot this round.
        """
        config = self.config
        transfers: Dict[Tuple[int, int], float] = {}
        regular_pairs: Set[Tuple[int, int]] = set()
        for peer in self.peers.values():
            profile = self._profiles[peer.peer_id]
            if not profile.unchokes:
                # BitThief never reciprocates: skipped before the choker,
                # so no stream draw is consumed (the fast engine skips the
                # same owners in the same ascending order).
                continue
            interested = [
                other
                for other in sorted(peer.neighbors)
                if not self.peers[other].is_seed
                and self._profiles[other].downloads
                and self.peers[other].bitfield.is_interested_in(peer.bitfield)
            ]
            if not interested:
                continue
            decision = self._chokers[peer.peer_id].select_unchoked(
                peer.peer_id, interested, peer.received_last_round, rng
            )
            unchoked = decision.all
            if not unchoked:
                continue
            for target in decision.regular:
                regular_pairs.add((peer.peer_id, target))
            budget_kbit = peer.upload_kbps * config.round_seconds
            if profile.upload_factor != 1.0:
                # The != 1.0 guard keeps the float sequence of standard
                # peers byte-identical to the behavior-free code path.
                budget_kbit *= profile.upload_factor
            share = budget_kbit / len(unchoked)
            for target in unchoked:
                transfers[(peer.peer_id, target)] = share
        return transfers, regular_pairs

    def _filter_faulty_transfers(
        self,
        transfers: Dict[Tuple[int, int], float],
        round_index: int,
    ) -> Dict[Tuple[int, int], float]:
        """Drop transfers lost to partitions and message loss this round.

        The unchoke decisions stand -- loss kills the payload, not the
        relationship -- so ``regular_pairs`` (and with it the reciprocal
        Tit-for-Tat statistic) is computed from the *planned* round.  The
        loss batch is drawn over the sorted pid pairs, the same
        canonical order the fast engine uses.
        """
        if not transfers:
            return transfers
        dropped = self._faults.dropped_pairs(
            round_index, sorted(transfers), self.source.stream(streams.FAULT_LOSS)
        )
        if not dropped:
            return transfers
        return {
            pair: share for pair, share in transfers.items() if pair not in dropped
        }

    def _record_reciprocal_tft(
        self,
        regular_pairs: Set[Tuple[int, int]],
        tft_rounds: Dict[Tuple[int, int], float],
        round_index: int,
    ) -> None:
        """Count pairs whose regular slots point at each other this round.

        The first ``warmup_rounds`` rounds are treated as warm-up (the
        discovery / flash-crowd phase) and not counted.
        """
        if round_index <= self.config.warmup_rounds:
            return
        for sender, target in regular_pairs:
            if sender < target and (target, sender) in regular_pairs:
                key = (sender, target)
                tft_rounds[key] = tft_rounds.get(key, 0.0) + 1.0

    def _apply_round(
        self,
        transfers: Dict[Tuple[int, int], float],
        collaboration: Dict[Tuple[int, int], float],
        rng: np.random.Generator,
        round_index: int,
    ) -> int:
        """Turn planned transfers into pieces; return newly completed peers."""
        availability = piece_availability(
            (peer.bitfield for peer in self.peers.values()), self.config.piece_count
        )
        received_now: Dict[int, Dict[int, float]] = {pid: {} for pid in self.peers}
        newly_completed = 0

        for (sender_id, receiver_id), volume_kbit in transfers.items():
            sender = self.peers[sender_id]
            receiver = self.peers[receiver_id]
            wanted = receiver.bitfield.interesting_pieces(sender.bitfield)
            if not wanted:
                continue
            sender.uploaded_kbit += volume_kbit
            receiver.downloaded_kbit += volume_kbit
            received_now[receiver_id][sender_id] = (
                received_now[receiver_id].get(sender_id, 0.0) + volume_kbit
            )
            key = (min(sender_id, receiver_id), max(sender_id, receiver_id))
            collaboration[key] = collaboration.get(key, 0.0) + volume_kbit

            # Convert the received volume into whole pieces, rarest first.
            # A super-seeding sender reveals at most reveal_limit pieces
            # per transfer; the unconverted credit carries over as usual.
            reveal_limit = self._profiles[sender_id].reveal_limit
            taken = 0
            credit = receiver.partial_kbit.get(sender_id, 0.0) + volume_kbit
            while credit >= self.config.piece_size_kbit:
                if reveal_limit is not None and taken >= reveal_limit:
                    break
                wanted = receiver.bitfield.interesting_pieces(sender.bitfield)
                if not wanted:
                    break
                piece = self.selector.select(wanted, availability, rng)
                if piece is None:
                    break
                receiver.bitfield.add(piece)
                availability[piece] += 1
                credit -= self.config.piece_size_kbit
                taken += 1
                if receiver.bitfield.is_complete() and receiver.completed_round is None:
                    receiver.completed_round = round_index
                    newly_completed += 1
                    if self._faults_active and not self.tracker_available:
                        self._faults.defer_completion(receiver_id)
                    else:
                        self.tracker.record_completion(receiver_id)
            receiver.partial_kbit[sender_id] = credit

        for pid, received in sorted(received_now.items()):
            self.peers[pid].received_last_round = received
        return newly_completed


def stratification_index(
    result: SwarmResult,
    *,
    use_tft_pairs: bool = True,
    behaviors: Optional[Sequence[str]] = None,
) -> float:
    """Correlation between a leecher's bandwidth rank and its partners' ranks.

    For every leecher we compute the weighted average bandwidth rank of the
    peers it collaborated with, then return the Pearson correlation between
    the leecher's own rank and that average.  Values close to 1 mean peers
    overwhelmingly exchanged with peers of similar bandwidth -- the
    stratification the paper predicts; values near 0 mean bandwidth played
    no role in partner selection.

    Parameters
    ----------
    use_tft_pairs:
        When true (default) only *reciprocated Tit-for-Tat* pairs are
        counted, weighted by the number of rounds the reciprocity lasted --
        the empirical counterpart of the matching model.  When false, every
        transferred kilobit counts, which also includes optimistic-unchoke
        altruism and therefore underestimates stratification.
    behaviors:
        When given, restrict the index to leechers whose
        :attr:`~SwarmPeer.behavior` is in this set -- e.g.
        ``behaviors=["standard"]`` asks whether the *obedient* peers still
        stratify among themselves despite the deviants around them.
    """
    leechers = result.leechers()
    if behaviors is not None:
        allowed = frozenset(behaviors)
        leechers = [peer for peer in leechers if peer.behavior in allowed]
    if len(leechers) < 3:
        raise ValueError("need at least three leechers to measure stratification")
    order = sorted(leechers, key=lambda peer: -peer.upload_kbps)
    rank = {peer.peer_id: index + 1 for index, peer in enumerate(order)}
    weights = (
        result.tft_reciprocal_rounds if use_tft_pairs else result.collaboration_volume
    )

    own_ranks: List[float] = []
    partner_ranks: List[float] = []
    for peer in leechers:
        total = 0.0
        weighted = 0.0
        for (a, b), weight in weights.items():
            if a == peer.peer_id and b in rank:
                weighted += weight * rank[b]
                total += weight
            elif b == peer.peer_id and a in rank:
                weighted += weight * rank[a]
                total += weight
        if total > 0:
            own_ranks.append(float(rank[peer.peer_id]))
            partner_ranks.append(weighted / total)
    if len(own_ranks) < 3:
        return 0.0
    matrix = np.corrcoef(np.asarray(own_ranks), np.asarray(partner_ranks))
    return float(matrix[0, 1])
