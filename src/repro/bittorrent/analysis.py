"""Estimators over a measurement campaign (:mod:`~repro.bittorrent.telemetry`).

These are the statistics measurement papers actually publish from scrape
and poll data -- download-time CDFs, per-peer visit counts, the
sensitivity of the confirmed-download count to the progress threshold --
plus the observer-side **stratification index**: the same rank-correlation
the omniscient :func:`~repro.bittorrent.swarm.stratification_index`
computes, but built exclusively from observed download rates and the
partner sightings collected during polls.  Comparing the two indices on
one run quantifies how much of the paper's stratification signal survives
a realistic measurement pipeline.

Everything here is a pure function of a :class:`~repro.bittorrent.
telemetry.ObservedSwarm` (plus, for the ground-truth columns, the
:class:`~repro.bittorrent.swarm.SwarmResult` it rode in on), so the two
engines -- whose observed records are id-for-id identical -- agree on
every estimate.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.bittorrent.telemetry import ObservedSwarm

__all__ = [
    "behavior_download_cdfs",
    "behavior_report",
    "behavior_stratification",
    "download_time_cdf",
    "observed_download_time_cdf",
    "observed_stratification_index",
    "threshold_sensitivity",
    "visit_count_distribution",
    "telemetry_report",
]

DEFAULT_THRESHOLDS = (0.5, 0.8, 0.9, 0.95, 0.98, 1.0)


def _empirical_cdf(durations: Iterable[float]) -> Dict[str, np.ndarray]:
    values = np.sort(np.asarray(list(durations), dtype=float))
    if values.size == 0:
        return {"durations": values, "cdf": values.copy()}
    return {
        "durations": values,
        "cdf": np.arange(1, values.size + 1, dtype=float) / values.size,
    }


def download_time_cdf(result) -> Dict[str, np.ndarray]:
    """Ground-truth download-time CDF (rounds) over completed leechers.

    A leecher arriving at round ``r`` and completing at round ``c`` took
    ``c - max(1, r) + 1`` rounds -- the same active-rounds convention as
    :meth:`~repro.bittorrent.swarm.SwarmPeer.download_rate_kbps`.  Peers
    that never completed (or were complete from round one) are excluded,
    exactly like in the observed CDF.
    """
    durations = [
        float(peer.completed_round - max(1, peer.arrival_round) + 1)
        for peer in result.leechers()
        if peer.completed_round is not None
    ]
    return _empirical_cdf(durations)


def behavior_download_cdfs(result) -> Dict[str, Dict[str, np.ndarray]]:
    """Ground-truth download-time CDFs, one per behavior class present.

    Same duration convention as :func:`download_time_cdf`, restricted to
    the leechers assigned each behavior.  Classes whose members never
    completed (e.g. ``never_upload`` in a seedless swarm, ``partial_seed``
    always) still appear, with empty arrays -- the *absence* of a CDF is
    the finding for those classes.
    """
    by_class: Dict[str, List[float]] = {}
    for peer in result.leechers():
        durations = by_class.setdefault(peer.behavior, [])
        if peer.completed_round is not None:
            durations.append(
                float(peer.completed_round - max(1, peer.arrival_round) + 1)
            )
    return {name: _empirical_cdf(by_class[name]) for name in sorted(by_class)}


def behavior_report(result) -> Dict[str, Dict[str, float]]:
    """Per-behavior-class summary of one run (ground truth).

    For every behavior present among the leechers: population count,
    completions, completion fraction, mean download rate (kbps) and mean
    share ratio (downloaded / uploaded).  This is the table the
    ``behavior-sweep`` experiment aggregates across free-rider fractions.
    """
    rates = result.download_rates()
    ratios = result.share_ratios()
    by_class: Dict[str, List] = {}
    for peer in result.leechers():
        by_class.setdefault(peer.behavior, []).append(peer)
    report: Dict[str, Dict[str, float]] = {}
    for name in sorted(by_class):
        members = by_class[name]
        completed = sum(1 for p in members if p.completed_round is not None)
        report[name] = {
            "peers": float(len(members)),
            "completed": float(completed),
            "completion_fraction": completed / len(members),
            "mean_download_rate_kbps": float(
                np.mean([rates[p.peer_id] for p in members])
            ),
            "mean_share_ratio": float(
                np.mean([ratios[p.peer_id] for p in members])
            ),
        }
    return report


def behavior_stratification(result) -> Dict[str, float]:
    """Stratification index overall vs restricted to obedient peers.

    ``overall`` ranks every leecher; ``standard_only`` recomputes the
    index over the ``standard``-behavior leechers alone, which separates
    stratification *caused by* heterogeneous capacities (the paper's
    mechanism) from rank noise injected by adversarial classes that trade
    little or nothing.  Either entry is 0.0 when fewer than three peers
    qualify.
    """
    from repro.bittorrent.swarm import stratification_index

    def safe(behaviors: Optional[Sequence[str]]) -> float:
        try:
            return stratification_index(result, behaviors=behaviors)
        except ValueError:
            return 0.0

    return {
        "overall": safe(None),
        "standard_only": safe(("standard",)),
    }


def observed_download_time_cdf(
    observed: ObservedSwarm, threshold: Optional[float] = None
) -> Dict[str, np.ndarray]:
    """Download-time CDF as the observer estimates it (rounds).

    For every confirmed download, the duration estimate is the span from
    the first poll that saw the peer to the poll that crossed the
    threshold -- at least one round, since a crawler cannot resolve
    anything finer than its own visits.
    """
    durations: List[float] = []
    for pid in observed.timelines:
        confirmed_at = observed.confirmation_round(pid, threshold)
        if confirmed_at is None:
            continue
        first = observed.first_seen(pid)
        durations.append(float(max(1, confirmed_at - first)))
    return _empirical_cdf(durations)


def visit_count_distribution(observed: ObservedSwarm) -> Dict[str, np.ndarray]:
    """Histogram of how often peers were reached (visits -> peer count)."""
    counts = observed.visit_counts()
    if not counts:
        empty = np.asarray([], dtype=float)
        return {"visits": empty, "peers": empty.copy()}
    values, frequencies = np.unique(
        np.asarray(sorted(counts.values()), dtype=float), return_counts=True
    )
    return {"visits": values, "peers": frequencies.astype(float)}


def threshold_sensitivity(
    observed: ObservedSwarm,
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
    *,
    true_completions: Optional[int] = None,
) -> Dict[str, np.ndarray]:
    """Confirmed-download counts across confirmation thresholds.

    The curve is non-increasing in the threshold: raising the bar can
    only disqualify peers.  With ``true_completions`` the undercount
    column (truth minus confirmed; negative = overcount) is included --
    the quantity real studies can never compute, which is the point of
    reproducing the methodology inside a simulator.
    """
    if not thresholds:
        raise ValueError("need at least one threshold")
    ordered = sorted(float(t) for t in thresholds)
    confirmed = [float(observed.confirmed_downloads(t)) for t in ordered]
    out: Dict[str, np.ndarray] = {
        "thresholds": np.asarray(ordered, dtype=float),
        "confirmed_downloads": np.asarray(confirmed, dtype=float),
    }
    if true_completions is not None:
        out["undercount_vs_truth"] = float(true_completions) - out[
            "confirmed_downloads"
        ]
    return out


def observed_stratification_index(observed: ObservedSwarm) -> float:
    """The stratification index as a scrape-and-poll study would infer it.

    Peers are ranked by their *observed* download rate (fastest first; the
    observer cannot see upload capacities, but under Tit-for-Tat download
    rate is the visible proxy).  Each peer's partners come from the poll
    sightings, weighted by how often the pair was seen trading.  The
    returned value is the Pearson correlation between a peer's own rank
    and its weighted-average partner rank -- the same statistic as the
    ground-truth :func:`~repro.bittorrent.swarm.stratification_index`,
    computed from strictly observable inputs.  Returns 0.0 when fewer
    than three ranked peers have observed partners.
    """
    rates = observed.observed_download_rates()
    if len(rates) < 3:
        return 0.0
    # Fastest observed peer gets rank 1; ties break by peer id so the
    # estimate is deterministic and engine-independent.
    order = sorted(rates, key=lambda pid: (-rates[pid], pid))
    rank = {pid: index + 1 for index, pid in enumerate(order)}
    sightings = observed.partner_sightings()

    own_ranks: List[float] = []
    partner_ranks: List[float] = []
    for pid in order:
        total = 0.0
        weighted = 0.0
        for (a, b), weight in sightings.items():
            if a == pid and b in rank:
                weighted += weight * rank[b]
                total += weight
            elif b == pid and a in rank:
                weighted += weight * rank[a]
                total += weight
        if total > 0:
            own_ranks.append(float(rank[pid]))
            partner_ranks.append(weighted / total)
    if len(own_ranks) < 3:
        return 0.0
    matrix = np.corrcoef(np.asarray(own_ranks), np.asarray(partner_ranks))
    value = float(matrix[0, 1])
    return 0.0 if np.isnan(value) else value


def telemetry_report(
    result,
    observed: ObservedSwarm,
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
) -> Dict[str, Dict[str, np.ndarray]]:
    """Ground truth vs observation, side by side, for one observed run.

    The nested layout (section -> metric -> array) is what the
    ``telemetry`` CLI experiment prints and what the CI smoke test
    asserts; scalars are length-1 arrays so every value renders the same
    way.
    """
    from repro.bittorrent.swarm import stratification_index

    truth_cdf = download_time_cdf(result)
    observed_cdf = observed_download_time_cdf(observed)
    visits = visit_count_distribution(observed)
    scrapes = observed.scrapes
    try:
        true_index = stratification_index(result)
    except ValueError:
        true_index = 0.0

    def scalar(value: float) -> np.ndarray:
        return np.asarray([float(value)])

    return {
        "ground_truth": {
            "completions": scalar(result.completed),
            "stratification_index": scalar(true_index),
            "arrivals": scalar(result.arrivals),
            "departures": scalar(result.departures),
            "rounds_run": scalar(result.rounds_run),
            "download_cdf_rounds": truth_cdf["durations"],
            "download_cdf": truth_cdf["cdf"],
        },
        "observed": {
            "reported_downloads": scalar(observed.reported_downloads()),
            "confirmed_downloads": scalar(observed.confirmed_downloads()),
            "confirmed_at_certainty": scalar(observed.confirmed_downloads(1.0)),
            "undercount": scalar(
                result.completed - observed.confirmed_downloads()
            ),
            "observed_stratification_index": scalar(
                observed_stratification_index(observed)
            ),
            "peers_observed": scalar(observed.peers_observed),
            "scrapes_taken": scalar(len(scrapes)),
            "polls_taken": scalar(len(observed.poll_rounds)),
            "download_cdf_rounds": observed_cdf["durations"],
            "download_cdf": observed_cdf["cdf"],
            "visit_count_values": visits["visits"],
            "visit_count_peers": visits["peers"],
        },
        "threshold_sensitivity": threshold_sensitivity(
            observed, thresholds, true_completions=result.completed
        ),
        "scrape_series": {
            "rounds": np.asarray([s.round for s in scrapes], dtype=float),
            "seeders": np.asarray([s.seeders for s in scrapes], dtype=float),
            "leechers": np.asarray([s.leechers for s in scrapes], dtype=float),
            "snatches": np.asarray([s.snatches for s in scrapes], dtype=float),
        },
    }
