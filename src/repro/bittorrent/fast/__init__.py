"""Vectorized swarm engine (``engine="fast"`` for the BitTorrent layer).

* :mod:`repro.bittorrent.fast.bitfields` -- packed-bit bitfield matrix for
  the whole swarm (interest tests as byte-wise boolean algebra).
* :mod:`repro.bittorrent.fast.choking` -- batched Tit-for-Tat rechoke
  (one lexsort over the received-volume edge array) plus the rng-faithful
  optimistic rotation.
* :mod:`repro.bittorrent.fast.tracker` -- array-backed tracker announces.
* :mod:`repro.bittorrent.fast.swarm` -- :class:`FastSwarmSimulator`, the
  drop-in backend behind ``SwarmSimulator(config, engine="fast")``.

The engine mirrors the contract of :mod:`repro.core.fast`: bit-identical
results under a shared seed, with the reference implementation as the
correctness oracle (``tests/test_swarm_engine_equivalence.py``).
"""

from repro.bittorrent.fast.bitfields import BitfieldMatrix
from repro.bittorrent.fast.choking import FastChokerState, batched_regular_slots
from repro.bittorrent.fast.swarm import FastSwarmSimulator
from repro.bittorrent.fast.tracker import FastTracker, build_neighbor_csr

__all__ = [
    "BitfieldMatrix",
    "FastChokerState",
    "batched_regular_slots",
    "FastSwarmSimulator",
    "FastTracker",
    "build_neighbor_csr",
]
