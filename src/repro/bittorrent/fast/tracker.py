"""Array-backed tracker announces.

The reference :class:`repro.bittorrent.tracker.Tracker` materializes and
sorts the known-peer set on every announce -- O(k log k) per call, O(n^2
log n) for a whole swarm, which alone makes 100k-peer populations
infeasible.  This tracker exploits that swarm construction registers peers
in increasing id order, so the known set is always the contiguous range
``1..k``: an announce is one ``rng.choice(k, size, replace=False)`` with no
materialization at all.  The draw consumes the random stream exactly like
the reference (``Generator.choice`` consumption depends only on the
population *size*), so announces are id-for-id identical under a shared
seed -- the equivalence tests cover the whole construction path.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = ["FastTracker", "build_neighbor_csr"]


class FastTracker:
    """A tracker for populations that join in increasing id order."""

    def __init__(self, announce_size: int) -> None:
        if announce_size <= 0:
            raise ValueError("announce_size must be positive")
        self.announce_size = announce_size
        self._registered = 0

    def announce(self, peer_id: int, rng: np.random.Generator) -> np.ndarray:
        """Register ``peer_id`` and return its random contacts (peer ids).

        ``peer_id`` must be ``registered + 1``; the contiguity is what makes
        the announce array-free.
        """
        if peer_id != self._registered + 1:
            raise ValueError(
                f"FastTracker requires contiguous joins; expected "
                f"{self._registered + 1}, got {peer_id}"
            )
        known = self._registered
        self._registered += 1
        if known == 0:
            return np.empty(0, dtype=np.int64)
        count = min(self.announce_size, known)
        return rng.choice(known, size=count, replace=False).astype(np.int64) + 1

    @property
    def swarm_size(self) -> int:
        """Number of peers currently registered."""
        return self._registered


def build_neighbor_csr(
    n_peers: int, tracker: FastTracker, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray, List[set]]:
    """Announce peers ``1..n_peers`` and build the symmetric contact CSR.

    Returns ``(indptr, adj, neighbor_sets)`` over dense indices
    ``0..n_peers-1`` (dense index = peer id - 1); each adjacency segment is
    sorted ascending, matching the reference simulator's
    ``sorted(peer.neighbors)`` iteration order.
    """
    neighbor_sets: List[set] = [set() for _ in range(n_peers)]
    for peer_id in range(1, n_peers + 1):
        for contact in tracker.announce(peer_id, rng):
            neighbor_sets[peer_id - 1].add(int(contact) - 1)
            neighbor_sets[int(contact) - 1].add(peer_id - 1)
    degrees = np.fromiter(
        (len(s) for s in neighbor_sets), dtype=np.int64, count=n_peers
    )
    indptr = np.zeros(n_peers + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    adj = np.empty(int(indptr[-1]), dtype=np.int64)
    for i, neighbors in enumerate(neighbor_sets):
        adj[indptr[i]:indptr[i + 1]] = sorted(neighbors)
    return indptr, adj, neighbor_sets
