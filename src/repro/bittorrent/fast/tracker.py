"""Array-backed tracker announces, with dynamic membership.

The reference :class:`repro.bittorrent.tracker.Tracker` materializes and
sorts the known-peer set on every announce -- O(k log k) per call, O(n^2
log n) for a whole swarm, which alone makes 100k-peer populations
infeasible.  This tracker keeps two regimes:

* **contiguous** (the construction path): peers join in increasing id
  order and nobody has departed, so the known set is always the range
  ``1..k`` and an announce is one ``rng.choice(k, size, replace=False)``
  with no materialization at all;
* **dynamic** (scenario churn): once a peer departs, the tracker drops to
  a sorted alive-id list (joins append -- ids only grow -- and departures
  are one linear ``list.remove``); an announce is one
  ``rng.choice(len(alive), size, replace=False)`` mapped through the
  list, still far cheaper than the reference's per-announce set sort.

Either way the draw consumes the random stream exactly like the reference
(``Generator.choice`` consumption depends only on the population *size*,
and the alive list is precisely the reference's ``sorted(known)``), so
announces are id-for-id identical under a shared seed -- the equivalence
tests cover both the construction path and churning scenarios.
"""

from __future__ import annotations

import bisect
from typing import Callable, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.bittorrent.tracker import ScrapeStats

__all__ = ["FastTracker", "build_neighbor_csr"]


class FastTracker:
    """A tracker whose peers join with strictly increasing ids.

    The scrape counters (:meth:`scrape`) mirror the reference
    :class:`~repro.bittorrent.tracker.Tracker` exactly -- same
    :class:`~repro.bittorrent.tracker.ScrapeStats` type, same
    seeder/snatch semantics -- so an observer sees identical numbers on
    either engine.
    """

    def __init__(self, announce_size: int) -> None:
        if announce_size <= 0:
            raise ValueError("announce_size must be positive")
        self.announce_size = announce_size
        self._max_id = 0
        # Sorted alive ids; None while the alive set is the range 1..max_id
        # (the contiguous fast path used during swarm construction).
        self._alive: Optional[List[int]] = None
        self._complete: Set[int] = set()
        self._snatches = 0

    def announce(self, peer_id: int, rng: np.random.Generator) -> np.ndarray:
        """Register ``peer_id`` and return its random contacts (peer ids).

        Ids grow monotonically even under churn (departed ids are never
        reused), which keeps the alive set a range -- and announces
        materialization-free -- for as long as nobody departs and ids
        arrive in order.  The fault layer breaks both assumptions:
        crashed peers *re-announce* on rejoin (a fresh contact draw, no
        registration -- the crash never deregistered them), and an
        announce delayed by outage backoff can arrive after a younger
        peer's.  Both drop to the dynamic sorted-list regime and consume
        the random stream exactly like the reference tracker.
        """
        if self.is_registered(peer_id):
            # Re-announce (a crashed peer rejoining): draw fresh contacts
            # from the other registered peers, no registration.
            others = [p for p in self.known_peers() if p != peer_id]
            if not others:
                return np.empty(0, dtype=np.int64)
            count = min(self.announce_size, len(others))
            idx = rng.choice(len(others), size=count, replace=False)
            return np.asarray(others, dtype=np.int64)[idx]
        if self._alive is None:
            if peer_id == self._max_id + 1:
                # Contiguous fast path: the alive set is the range 1..max_id.
                self._max_id = peer_id
                known = peer_id - 1
                if known == 0:
                    return np.empty(0, dtype=np.int64)
                count = min(self.announce_size, known)
                return (
                    rng.choice(known, size=count, replace=False).astype(np.int64) + 1
                )
            # Out-of-order new id (outage backoff): materialize the range
            # and fall through to the dynamic regime.
            self._alive = list(range(1, self._max_id + 1))
        others = self._alive
        contacts = np.empty(0, dtype=np.int64)
        if others:
            count = min(self.announce_size, len(others))
            idx = rng.choice(len(others), size=count, replace=False)
            contacts = np.asarray(others, dtype=np.int64)[idx]
        bisect.insort(others, peer_id)
        self._max_id = max(self._max_id, peer_id)
        return contacts

    def depart(self, peer_id: int) -> None:
        """Remove a peer; later announces can no longer return it."""
        if self._alive is None:
            self._alive = list(range(1, self._max_id + 1))
        try:
            self._alive.remove(peer_id)
        except ValueError:
            pass  # mirror Tracker.depart's discard semantics
        self._complete.discard(peer_id)

    def is_registered(self, peer_id: int) -> bool:
        """Whether the peer is currently in the swarm (not departed)."""
        if self._alive is None:
            return 1 <= peer_id <= self._max_id
        return peer_id in self._alive

    def register_complete(self, peer_id: int) -> None:
        """Mark a registered peer as a seeder without counting a snatch."""
        if self.is_registered(peer_id):
            self._complete.add(peer_id)

    def record_completion(self, peer_id: int) -> None:
        """Count one completed download (idempotent per peer)."""
        if self.is_registered(peer_id) and peer_id not in self._complete:
            self._complete.add(peer_id)
            self._snatches += 1

    def scrape(self) -> ScrapeStats:
        """The scrape-endpoint counters (seeders / leechers / snatches)."""
        seeders = len(self._complete)
        return ScrapeStats(
            seeders=seeders,
            leechers=self.swarm_size - seeders,
            snatches=self._snatches,
        )

    def stale_count(self, present: Iterable[int]) -> int:
        """Registered peers that are no longer actually in the swarm.

        Mirrors :meth:`repro.bittorrent.tracker.Tracker.stale_count`: the
        crashed-peer registrations still counted by :meth:`scrape`,
        measured against the ground-truth ``present`` ids.
        """
        alive = frozenset(present)
        return sum(1 for pid in self.known_peers() if pid not in alive)

    def known_peers(self) -> List[int]:
        """Currently registered peer ids, ascending (departed excluded)."""
        if self._alive is None:
            return list(range(1, self._max_id + 1))
        return list(self._alive)

    @property
    def swarm_size(self) -> int:
        """Number of peers currently registered."""
        return self._max_id if self._alive is None else len(self._alive)


def build_neighbor_csr(
    n_peers: int,
    tracker: FastTracker,
    rng: np.random.Generator,
    contact_filter: Optional[Callable[[int, np.ndarray], List[int]]] = None,
) -> Tuple[np.ndarray, np.ndarray, List[set]]:
    """Announce peers ``1..n_peers`` and build the symmetric contact CSR.

    Returns ``(indptr, adj, neighbor_sets)`` over dense indices
    ``0..n_peers-1`` (dense index = peer id - 1); each adjacency segment is
    sorted ascending, matching the reference simulator's
    ``sorted(peer.neighbors)`` iteration order.  ``neighbor_sets`` is the
    live adjacency the dynamic-membership engine keeps mutating; the CSR
    arrays are its frozen snapshot (see ``FastSwarmSimulator._rebuild_csr``
    for the re-snapshot under churn).

    ``contact_filter`` (the behavior layer's locality / NAT edge rules)
    sees each announce result -- ``(peer_id, contacts)`` in tracker draw
    order -- and returns the contact ids actually connected to; the
    announce draw itself is untouched, so a filter cannot perturb the
    tracker stream.
    """
    neighbor_sets: List[set] = [set() for _ in range(n_peers)]
    for peer_id in range(1, n_peers + 1):
        announced = tracker.announce(peer_id, rng)
        contacts = (
            announced if contact_filter is None else contact_filter(peer_id, announced)
        )
        for contact in contacts:
            neighbor_sets[peer_id - 1].add(int(contact) - 1)
            neighbor_sets[int(contact) - 1].add(peer_id - 1)
    indptr, adj = neighbor_sets_to_csr(neighbor_sets)
    return indptr, adj, neighbor_sets


def neighbor_sets_to_csr(neighbor_sets: List[set]) -> Tuple[np.ndarray, np.ndarray]:
    """Freeze per-peer neighbor sets into (indptr, adj) CSR arrays."""
    n_peers = len(neighbor_sets)
    degrees = np.fromiter(
        (len(s) for s in neighbor_sets), dtype=np.int64, count=n_peers
    )
    indptr = np.zeros(n_peers + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    adj = np.empty(int(indptr[-1]), dtype=np.int64)
    for i, neighbors in enumerate(neighbor_sets):
        adj[indptr[i]:indptr[i + 1]] = sorted(neighbors)
    return indptr, adj
