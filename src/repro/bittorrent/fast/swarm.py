"""The vectorized swarm engine (``engine="fast"``).

:class:`FastSwarmSimulator` replays :class:`repro.bittorrent.swarm.
SwarmSimulator` round for round on flat arrays:

* every bitfield lives in one packed-bit ``uint8`` matrix
  (:class:`~repro.bittorrent.fast.bitfields.BitfieldMatrix`), so interest
  tests are byte-wise ``AND``/``NOT`` over tracker edges instead of Python
  set differences;
* piece availability is one integer vector maintained incrementally, and
  rarest-first selection is an ``argmin``-style mask over the wanted
  indices;
* the Tit-for-Tat slots of all peers are ranked in a single
  :func:`numpy.lexsort` over the received-volume edge array
  (:func:`~repro.bittorrent.fast.choking.batched_regular_slots`);
* tracker announces are array-backed
  (:class:`~repro.bittorrent.fast.tracker.FastTracker`).

Dynamic scenarios (:mod:`repro.bittorrent.scenarios`) break the fixed-width
assumption the arrays were born with, so membership is two-tier: the
*live adjacency* is a list of Python neighbor sets mutated as peers join
and leave, and the *CSR edge arrays* the vectorized passes run over are a
frozen snapshot of it, re-frozen (``_rebuild_csr``) only on rounds whose
membership actually changed.  Peer rows grow geometrically
(:meth:`BitfieldMatrix.add_peers`) and are tombstoned via an ``alive``
mask on departure -- ids are never reused, so departed peers keep their
row and their frozen statistics for the final result.

The engine is *bit-identical* to the reference simulator: it consumes the
shared :class:`~repro.sim.random_source.RandomSource` streams draw for
draw (same shuffles, same ``choice`` calls, same scenario arrival draws,
in the same order), and the float accounting applies the same IEEE
operations in the same sequence.  ``tests/test_swarm_engine_equivalence.py``
enforces the contract -- under churn too; the speedup (>= 5x at 5k
leechers, gated by ``benchmarks/bench_swarm_scaling.py`` and
``benchmarks/bench_scenarios.py``) comes purely from replacing per-piece
Python set algebra with vectorized passes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.bittorrent.bandwidth import BandwidthDistribution, saroiu_like_distribution
from repro.bittorrent.behaviors import (
    BehaviorMix,
    BehaviorProfile,
    bootstrap_piece_count,
    filter_contacts,
    profile_for,
    resolve_behavior_mix,
)
from repro.bittorrent.fast.bitfields import BitfieldMatrix
from repro.bittorrent.faults import FaultRuntime, resolve_faults
from repro.bittorrent.fast.choking import FastChokerState, batched_regular_slots
from repro.bittorrent.fast.tracker import (
    FastTracker,
    build_neighbor_csr,
    neighbor_sets_to_csr,
)
from repro.bittorrent.piece_selection import make_selector
from repro.bittorrent.resilience import (
    ResilienceRuntime,
    resolve_resilience,
    sample_pools,
)
from repro.bittorrent.scenarios import ScenarioSchedule, resolve_scenario
from repro.bittorrent.telemetry import (
    ObserverConfig,
    SwarmObserver,
    _FastSwarmView,
    resolve_observer,
)
from repro.sim.random_source import RandomSource
from repro.sim import streams

if TYPE_CHECKING:  # runtime imports stay local to avoid an import cycle
    from repro.bittorrent.swarm import SwarmConfig, SwarmResult

__all__ = ["FastSwarmSimulator"]


class FastSwarmSimulator:
    """Array-backed round simulator; see the module docstring.

    Constructed with the same signature as the reference simulator (minus
    ``engine``); normally reached through
    ``SwarmSimulator(config, engine="fast")``.
    """

    def __init__(
        self,
        config: "SwarmConfig",
        *,
        bandwidths: Optional[Sequence[float]] = None,
        distribution: Optional[BandwidthDistribution] = None,
        seed: int = 0,
        scenario: "ScenarioSchedule | str | None" = None,
        observer: "SwarmObserver | ObserverConfig | None" = None,
    ) -> None:
        # Imported here to avoid a circular import with repro.bittorrent.swarm.
        from repro.bittorrent.swarm import SwarmConfig

        if not isinstance(config, SwarmConfig):
            raise TypeError("config must be a SwarmConfig")
        make_selector(config.piece_selection)  # validate the policy name
        self.config = config
        self.scenario = resolve_scenario(scenario)
        self.observer = resolve_observer(observer)
        self.source = RandomSource(seed)
        # The behavior gates, derived exactly like the reference engine's
        # (pure functions of config + scenario), so both engines branch
        # identically and consume the "behavior" stream draw for draw.
        self.behaviors = resolve_behavior_mix(config.behaviors)
        self._arrival_mix: BehaviorMix = (
            self.scenario.behaviors
            if self.scenario.behaviors is not None
            else self.behaviors
        )
        self._behaviors_active = not (
            self.behaviors.is_trivial and self._arrival_mix.is_trivial
        )
        self._locality_on = (
            self.behaviors.uses_locality or self._arrival_mix.uses_locality
        )
        # The fault layer mirrors the reference engine's: one pid-level
        # runtime, gates derived from the config alone, no draws and no
        # branches for a trivial schedule.
        self.faults = resolve_faults(config.faults)
        self._faults = FaultRuntime(self.faults)
        self._faults_active = self._faults.active
        self.tracker_available: bool = True
        # The resilience layer mirrors the reference engine's: one shared
        # pid-level runtime, trivial by default (no draws, no branches).
        # PEX introductions mutate the live adjacency between membership
        # rounds, so the CSR re-freeze is driven by a dirty flag too.
        self.resilience = resolve_resilience(config.resilience)
        self._resilience = ResilienceRuntime(self.resilience, self.faults)
        self._resilience_active = self._resilience.active
        self._adjacency_dirty = False
        self.n_total = config.leechers + config.seeds
        self._build_population(bandwidths, distribution)

    # -- construction ------------------------------------------------------------

    def _build_population(
        self,
        bandwidths: Optional[Sequence[float]],
        distribution: Optional[BandwidthDistribution],
    ) -> None:
        config = self.config
        n = self.n_total
        rng = self.source.stream(streams.BANDWIDTH)
        if bandwidths is not None:
            sampled = np.asarray(list(bandwidths), dtype=float)
            if sampled.shape[0] != config.leechers:
                raise ValueError("bandwidths must have one entry per leecher")
        else:
            dist = distribution if distribution is not None else saroiu_like_distribution()
            sampled = dist.sample(config.leechers, rng)
        self.uploads: List[float] = [float(x) for x in sampled] + [
            float(config.seed_upload_kbps)
        ] * config.seeds
        self.is_seed = np.zeros(n, dtype=bool)
        self.is_seed[config.leechers:] = True
        self.alive = np.ones(n, dtype=bool)

        # Behavior assignment replays the reference order: one leecher
        # assignment batch, then (iff some behavior is locality-biased)
        # one group batch for the whole population -- both before any
        # bootstrap draw.
        mix = self.behaviors
        behavior_rng = self.source.stream(streams.BEHAVIOR)
        leecher_behaviors = mix.assign(config.leechers, behavior_rng)
        groups = (
            mix.assign_groups(n, behavior_rng)
            if self._locality_on
            else [-1] * n
        )
        self.behavior_names: List[str] = (
            leecher_behaviors + [mix.seed_behavior] * config.seeds
        )
        self.locality_groups: List[int] = groups
        self.profiles: List[BehaviorProfile] = [
            profile_for(name) for name in self.behavior_names
        ]
        self.upload_factor: List[float] = [p.upload_factor for p in self.profiles]
        self.reveal_limit: List[Optional[int]] = [p.reveal_limit for p in self.profiles]
        self.can_download = np.fromiter(
            (p.downloads for p in self.profiles), dtype=bool, count=n
        )

        # Replica preferences: the same pinned tracker-select batch the
        # reference engine draws for the whole initial population.
        if self._resilience_active:
            self._resilience.assign_preferences(
                list(range(1, n + 1)),
                self.source.stream(streams.TRACKER_SELECT),
            )

        self.bitfields = BitfieldMatrix(n, config.piece_count)
        bootstrap_rng = self.source.stream(streams.BOOTSTRAP)
        start_default = int(round(config.start_completion * config.piece_count))
        for i in range(config.leechers):
            start_pieces = bootstrap_piece_count(
                self.profiles[i], start_default, config.piece_count
            )
            if start_pieces:
                self.bitfields.fill(
                    i,
                    bootstrap_rng.choice(
                        config.piece_count, size=start_pieces, replace=False
                    ),
                )
        for i in range(config.leechers, n):
            self.bitfields.set_complete(i)

        announce_rng = self.source.stream(streams.TRACKER)
        self.tracker = FastTracker(announce_size=config.announce_size)
        # The neighbor sets are the *live* adjacency (mutated under churn);
        # the CSR arrays are its frozen snapshot for the vectorized passes.
        self.indptr, self.adj, self.neighbor_sets = build_neighbor_csr(
            n,
            self.tracker,
            announce_rng,
            contact_filter=self._contact_filter if self._behaviors_active else None,
        )
        self._freeze_edges()
        if self._resilience_active:
            # Same per-announce accounting as the reference construction
            # loop (round 0 is outside every outage window, so each
            # announce lands on its preferred replica); record_announce
            # draws nothing, so running it after the CSR build is free.
            for pid in range(1, n + 1):
                self._resilience.record_announce(pid, 0)
        # Initially-complete peers announce as seeders (scrape counts them,
        # the snatch counter does not) -- mirrors the reference tracker.
        for i in range(n):
            if self.bitfields.have_count[i] == config.piece_count:
                self.tracker.register_complete(i + 1)

        self.counts = self.bitfields.availability()
        self.chokers = FastChokerState(
            regular_slots=config.regular_slots,
            optimistic_slots=config.optimistic_slots,
            optimistic_period=config.optimistic_period,
            seed_slots=config.seed_slots,
        )
        self.downloaded: List[float] = [0.0] * n
        self.uploaded: List[float] = [0.0] * n
        self.completed_round: List[Optional[int]] = [None] * n
        self.arrival_round: List[int] = [0] * n
        # partial[receiver][sender] = kilobits short of the next whole piece
        # (dense indices) -- the array mirror of SwarmPeer.partial_kbit.
        self.partial: Dict[int, Dict[int, float]] = {}
        self._last_received: Dict[int, Dict[int, float]] = {}
        self._departed: Dict[int, "SwarmPeer"] = {}
        # Departure is deterministic at completion time (round + 1 + linger),
        # so completions enqueue here and _process_membership pops one round's
        # bucket instead of scanning every row ever allocated.
        self._depart_due: Dict[int, List[int]] = {}
        self._total_arrived = 0

    def _contact_filter(self, peer_id: int, contacts: np.ndarray) -> List[int]:
        """The behavior layer's locality / NAT edge rules for one announce.

        Mirrors ``SwarmSimulator._filter_contacts`` via the shared
        :func:`~repro.bittorrent.behaviors.filter_contacts`, consuming the
        same ``"behavior"`` stream draws (one uniform batch per biased
        announcer) in the same order.
        """
        i = peer_id - 1
        contact_list = [int(contact) for contact in contacts]
        return filter_contacts(
            self.profiles[i],
            self.locality_groups[i],
            contact_list,
            [self.locality_groups[contact - 1] for contact in contact_list],
            [self.profiles[contact - 1].nat_limited for contact in contact_list],
            self.source.stream(streams.BEHAVIOR),
        )

    def _freeze_edges(self) -> None:
        """Derive the per-edge arrays from the current (indptr, adj) CSR."""
        n = self.n_total
        self.edge_peer = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(self.indptr)
        )
        self.adj_pid = self.adj + 1
        # Globally sorted (owner, partner) key: CSR segments are peer-ordered
        # and id-sorted inside, so one searchsorted resolves any edge slot.
        self._key_mult = n
        self.edge_key = self.edge_peer * n + self.adj
        # An unchoke target must be a non-seed that actually downloads
        # (partial seeds never request); frozen with the CSR since the
        # download flag only changes when membership does.
        self.adj_target = ~self.is_seed[self.adj]
        if self._behaviors_active:
            self.adj_target &= self.can_download[self.adj]
        self.recv_edge = np.zeros(self.adj.shape[0], dtype=np.float64)

    def _rebuild_csr(self) -> None:
        """Re-freeze the live adjacency after a membership change.

        Departed peers have empty segments (their sets were scrubbed), new
        arrivals bring their announce edges in; last round's received
        volumes are re-projected onto the new edge layout so the coming
        rechoke sees exactly what the reference chokers see.
        """
        self.indptr, self.adj = neighbor_sets_to_csr(self.neighbor_sets)
        self._freeze_edges()
        self._project_received()

    # -- membership dynamics -------------------------------------------------------

    def _process_membership(self, round_index: int) -> bool:
        """Departures then arrivals, mirroring the reference step for step.

        Returns whether membership changed (i.e. the CSR must be re-frozen).
        When a fault schedule is active, the pinned extra steps of the
        protocol (``docs/faults.md``) run in exactly the reference
        engine's order: recovery flush and crash rejoins first, then the
        scenario departures, then crash events and announce retries, the
        scenario arrivals, and finally partition-side assignment.
        """
        scenario = self.scenario
        faults = self._faults
        changed = False
        if self._faults_active:
            faults.begin_round(round_index)
            self.tracker_available = faults.tracker_up(
                round_index, self.resilience.trackers
            )
            if self.tracker_available:
                completions, departs = faults.drain_deferred()
                for pid in completions:
                    self.tracker.record_completion(pid)
                for pid in departs:
                    self.tracker.depart(pid)
            changed |= self._process_rejoins(round_index)
        if self._resilience_active:
            # Dead-neighbor eviction, after the rejoin step -- same pinned
            # position as the reference engine.  Purges touch only the
            # tracker's registration state, never the adjacency, so the
            # CSR stays valid.
            self._resilience.begin_round(round_index)
            if self.tracker_available:
                for pid in self._resilience.drain_purges():
                    if self.alive[pid - 1]:
                        continue  # rejoined: the registration is live again
                    if self.tracker.is_registered(pid):
                        self.tracker.depart(pid)
                        self._resilience.count_purge()
        if scenario.departure != "stay":
            # The alive filter and the dedupe only matter under crashes:
            # a victim's stale bucket entry must not fire while it is
            # gone, and a rejoiner's rescheduled entry can coexist with
            # the original one.  Fault-free runs never hit either.
            due = sorted(
                {i for i in self._depart_due.pop(round_index, []) if self.alive[i]}
            )
            for i in due:
                self._depart(i, round_index)
            changed |= bool(due)
        if self._faults_active:
            changed |= self._process_crashes(round_index)
            changed |= self._process_pending_announces(round_index)
        count = scenario.arrivals_for_round(
            round_index, self._total_arrived, self.source.stream(streams.SCENARIO)
        )
        if count > 0:
            capacities = scenario.sample_capacities(count, self.source.stream(streams.BANDWIDTH))
            self._arrive_batch(capacities, round_index)
            self._total_arrived += count
            changed = True
        if self._faults_active and faults.partition_active(round_index):
            alive_pids = [i + 1 for i in range(self.n_total) if self.alive[i]]
            faults.assign_missing_groups(
                round_index, alive_pids, self.source.stream(streams.FAULT_PARTITION)
            )
        return changed

    def _depart(self, i: int, round_index: int) -> None:
        """Tombstone dense row ``i``; snapshot its stats for the result."""
        pid = i + 1
        snapshot = self._materialize_one(i)
        snapshot.departed_round = round_index
        self._departed[pid] = snapshot
        self.alive[i] = False
        self.counts -= self.bitfields.unpack_row(i)
        for j in self.neighbor_sets[i]:
            self.neighbor_sets[j].discard(i)
        self.neighbor_sets[i] = set()
        self.partial.pop(i, None)
        self.chokers.drop(pid)
        if self._faults_active and not self.tracker_available:
            self._faults.defer_depart(pid)
        else:
            self.tracker.depart(pid)

    # -- fault dynamics ------------------------------------------------------------

    def _announce_or_queue(self, pid: int, round_index: int) -> None:
        """Announce ``pid``, or queue a backoff retry mid-outage (no draws).

        Mirrors ``SwarmSimulator._announce_or_queue``: the behavior
        filter sees the raw tracker contacts, and stale entries of
        crashed peers are dropped afterwards (a dead peer does not
        answer a handshake).
        """
        if not self.tracker_available:
            self._faults.queue_announce(pid, round_index)
            if self._resilience_active and self.resilience.pex:
                self._pex_bootstrap(pid)
            return
        announced = self.tracker.announce(pid, self.source.stream(streams.TRACKER))
        if self._resilience_active:
            self._resilience.record_announce(pid, round_index)
        contacts: Sequence[int] = (
            self._contact_filter(pid, announced)
            if self._behaviors_active
            else announced
        )
        i = pid - 1
        for contact in contacts:
            j = int(contact) - 1
            if not self.alive[j]:
                continue  # stale tracker entry: a crashed peer
            self.neighbor_sets[i].add(j)
            self.neighbor_sets[j].add(i)

    def _process_rejoins(self, round_index: int) -> bool:
        """Restore crashed peers whose rejoin falls due this round.

        The dense row (bitfield, statistics, behavior) survived the
        crash untouched; neighbors, partial credit and choker state were
        scrubbed at crash time, so flipping ``alive`` back and
        re-announcing is all a rejoin takes.  An already-complete
        rejoiner re-enters the deterministic departure queue.
        """
        due = self._faults.rejoins_due(round_index)
        if not due:
            return False
        for pid in due:
            i = pid - 1
            self._departed.pop(pid, None)
            if self._resilience_active:
                self._resilience.cancel_eviction(pid)
            self.alive[i] = True
            self.counts += self.bitfields.unpack_row(i)
            if self.scenario.departure != "stay" and self.completed_round[i] is not None:
                due_round = max(
                    round_index,
                    self.completed_round[i] + 1 + self.scenario.effective_linger,
                )
                self._depart_due.setdefault(due_round, []).append(i)
            self._announce_or_queue(pid, round_index)
        return True

    def _process_crashes(self, round_index: int) -> bool:
        """Fire the round's crash event, if the schedule has one."""
        candidates = [
            i + 1 for i in range(self.n_total) if self.alive[i] and not self.is_seed[i]
        ]
        victims = self._faults.select_crash_victims(
            round_index, candidates, self.source.stream(streams.FAULT_CRASH)
        )
        for pid in victims:
            self._crash(pid - 1, round_index)
        return bool(victims)

    def _crash(self, i: int, round_index: int) -> None:
        """Vanish dense row ``i`` without telling the tracker.

        Unlike :meth:`_depart` the tracker keeps the stale registration
        (and keeps handing the id out); the scrub order matters -- the
        snapshot is materialized *after* neighbors, partial credit and
        last-round receipts are cleared, so it matches the reference
        engine's crashed-peer snapshot field for field.
        """
        pid = i + 1
        if self._resilience_active:
            # Keepalive clock, captured before the scrub -- mirrors the
            # reference engine's note placement.
            self._resilience.note_crash(
                pid, round_index, bool(self.neighbor_sets[i])
            )
        self.alive[i] = False
        self.counts -= self.bitfields.unpack_row(i)
        for j in self.neighbor_sets[i]:
            self.neighbor_sets[j].discard(i)
        self.neighbor_sets[i] = set()
        self.partial.pop(i, None)
        self._last_received.pop(pid, None)
        self.chokers.drop(pid)
        self._faults.clear_announce(pid)
        snapshot = self._materialize_one(i)
        snapshot.departed_round = round_index
        self._departed[pid] = snapshot

    def _process_pending_announces(self, round_index: int) -> bool:
        """Retry queued announces whose backoff expires this round."""
        delivered = False
        for pid in self._faults.announces_due(round_index):
            if not self.alive[pid - 1]:
                # Crashed (or departed) while waiting: the announce dies
                # with the peer.
                self._faults.clear_announce(pid)
                continue
            if not self.tracker_available:
                self._faults.reschedule_announce(pid, round_index)
                continue
            self._faults.clear_announce(pid)
            self._announce_or_queue(pid, round_index)
            delivered = True
        return delivered

    # -- resilience dynamics -------------------------------------------------------

    def _pex_bootstrap(self, pid: int) -> None:
        """Bootstrap a tracker-less arrival from live lower-id peers.

        Mirrors ``SwarmSimulator._pex_bootstrap``: the candidate pool --
        alive peers with a smaller id -- is the one membership predicate
        both engines can compute identically mid-arrival-wave, and the
        single pinned ``pex-gossip`` batch keeps the stream aligned.
        """
        candidates = [j + 1 for j in range(pid - 1) if self.alive[j]]
        sample = sample_pools(
            [candidates],
            self.resilience.pex_sample,
            self.source.stream(streams.PEX_GOSSIP),
        )[0]
        if not sample:
            return
        i = pid - 1
        for contact in sample:
            j = contact - 1
            self.neighbor_sets[i].add(j)
            self.neighbor_sets[j].add(i)
        self._adjacency_dirty = True
        self._resilience.count_bootstrap()

    def _pex_round(self, transfers: List[Tuple[int, int, float]]) -> None:
        """One gossip round over this round's unchoke pairs (PEX).

        Two phases, mirroring the reference engine: every pool is built
        from the pre-gossip adjacency, then one pinned ``pex-gossip``
        batch samples all pools, then the introductions are applied.
        """
        if not transfers:
            return
        pairs = sorted((s + 1, r + 1) for s, r, _ in transfers)
        pools = [
            sorted(j + 1 for j in self.neighbor_sets[a - 1] if j != b - 1)
            for a, b in pairs
        ]
        samples = sample_pools(
            pools, self.resilience.pex_sample, self.source.stream(streams.PEX_GOSSIP)
        )
        for (_, b), sample in zip(pairs, samples):
            i_b = b - 1
            for pid in sample:
                j = pid - 1
                if j == i_b or j in self.neighbor_sets[i_b]:
                    continue
                self.neighbor_sets[i_b].add(j)
                self.neighbor_sets[j].add(i_b)
                self._adjacency_dirty = True
                self._resilience.count_introduction()

    def _filter_faulty_transfers(
        self,
        transfers: List[Tuple[int, int, float]],
        round_index: int,
    ) -> List[Tuple[int, int, float]]:
        """Drop transfers lost to partitions and message loss this round.

        The loss batch is drawn over the canonical sorted pid pairs --
        exactly the order the reference engine derives from its transfer
        dict -- so both engines consume the ``fault-loss`` stream
        identically and drop the same pairs.
        """
        if not transfers:
            return transfers
        pairs = sorted((s + 1, r + 1) for s, r, _ in transfers)
        dropped = self._faults.dropped_pairs(
            round_index, pairs, self.source.stream(streams.FAULT_LOSS)
        )
        if not dropped:
            return transfers
        return [t for t in transfers if (t[0] + 1, t[1] + 1) not in dropped]

    def _arrive_batch(self, capacities: np.ndarray, round_index: int) -> None:
        """Join ``len(capacities)`` fresh leechers (grows every array)."""
        config = self.config
        count = len(capacities)
        # Behavior draws come right after the capacity batch, mirroring
        # the reference's _process_membership order; growing the arrays
        # below consumes nothing, so its placement is free.
        arrival_mix = self._arrival_mix
        behavior_rng = self.source.stream(streams.BEHAVIOR)
        arrival_behaviors = arrival_mix.assign(count, behavior_rng)
        arrival_groups = (
            arrival_mix.assign_groups(count, behavior_rng)
            if self._locality_on
            else [-1] * count
        )
        if self._resilience_active:
            # One tracker-select batch per arrival wave, right after the
            # behavior draws -- the reference engine's pinned position.
            self._resilience.assign_preferences(
                [self.n_total + 1 + k for k in range(count)],
                self.source.stream(streams.TRACKER_SELECT),
            )
        base = self.bitfields.add_peers(count)
        self.alive = np.concatenate([self.alive, np.ones(count, dtype=bool)])
        self.is_seed = np.concatenate([self.is_seed, np.zeros(count, dtype=bool)])
        self.uploads.extend(float(c) for c in capacities)
        self.downloaded.extend([0.0] * count)
        self.uploaded.extend([0.0] * count)
        self.completed_round.extend([None] * count)
        self.arrival_round.extend([round_index] * count)
        self.neighbor_sets.extend(set() for _ in range(count))
        new_profiles = [profile_for(name) for name in arrival_behaviors]
        self.behavior_names.extend(arrival_behaviors)
        self.locality_groups.extend(arrival_groups)
        self.profiles.extend(new_profiles)
        self.upload_factor.extend(p.upload_factor for p in new_profiles)
        self.reveal_limit.extend(p.reveal_limit for p in new_profiles)
        self.can_download = np.concatenate(
            [
                self.can_download,
                np.fromiter(
                    (p.downloads for p in new_profiles), dtype=bool, count=count
                ),
            ]
        )
        self.n_total = base + count

        start_default = self.scenario.arrival_pieces(config.piece_count)
        bootstrap_rng = self.source.stream(streams.BOOTSTRAP)
        for k in range(count):
            i = base + k
            start_pieces = bootstrap_piece_count(
                new_profiles[k], start_default, config.piece_count
            )
            if start_pieces:
                self.bitfields.fill(
                    i,
                    bootstrap_rng.choice(
                        config.piece_count, size=start_pieces, replace=False
                    ),
                )
                self.counts += self.bitfields.unpack_row(i)
            self._announce_or_queue(i + 1, round_index)

    # -- simulation ---------------------------------------------------------------

    def run(self) -> "SwarmResult":
        """Run the configured rounds; returns a reference ``SwarmResult``."""
        from repro.bittorrent.swarm import SwarmResult

        config = self.config
        scenario = self.scenario
        observer = self.observer
        if observer is not None:
            observer.begin_run(_FastSwarmView(self))
        rng = self.source.stream(streams.ROUNDS)
        collaboration: Dict[Tuple[int, int], float] = {}
        tft_rounds: Dict[Tuple[int, int], float] = {}
        leecher_complete = (
            self.bitfields.have_count[: config.leechers] == config.piece_count
        )
        completed = int(leecher_complete.sum())
        # Non-downloading leechers (partial seeds) never complete and do
        # not block the early exit -- same filter as the reference's
        # all(...) predicate.
        incomplete = int(
            (~leecher_complete & self.can_download[: config.leechers]).sum()
        )

        rounds_run = config.rounds
        for round_index in range(1, config.rounds + 1):
            membership_changed = self._process_membership(round_index)
            if membership_changed:
                incomplete = self._count_incomplete()
            if membership_changed or self._adjacency_dirty:
                self._rebuild_csr()
                self._adjacency_dirty = False
            transfers, regular_pairs = self._plan_round(rng)
            if self._faults_active:
                transfers = self._filter_faulty_transfers(transfers, round_index)
            self._record_reciprocal_tft(regular_pairs, tft_rounds, round_index)
            newly, incomplete = self._apply_round(
                transfers, collaboration, rng, round_index, incomplete
            )
            completed += newly
            if (
                self._resilience_active
                and self.resilience.pex
                and not self.tracker_available
            ):
                self._pex_round(transfers)
            if observer is not None:
                observer.observe_round(round_index, regular_pairs)
            if (
                incomplete == 0
                and not scenario.more_arrivals_after(round_index, self._total_arrived)
                and not (
                    self._faults_active
                    and self._faults.blocks_early_exit(round_index)
                )
            ):
                rounds_run = round_index
                break
        return SwarmResult(
            config=config,
            peers=self.materialize_peers(),
            collaboration_volume=collaboration,
            tft_reciprocal_rounds=tft_rounds,
            completed=completed,
            rounds_run=rounds_run,
            arrivals=self._total_arrived,
            departures=len(self._departed),
            observed=observer.finish(rounds_run) if observer is not None else None,
            resilience=(
                self._resilience.stats() if self._resilience_active else None
            ),
        )

    def _count_incomplete(self) -> int:
        """Active downloading leechers still missing pieces (post-churn)."""
        live = (
            self.alive[: self.n_total]
            & ~self.is_seed[: self.n_total]
            & self.can_download[: self.n_total]
        )
        return int(
            (self.bitfields.have_count[: self.n_total][live] < self.config.piece_count).sum()
        )

    def _interest_pass(self) -> np.ndarray:
        """Directed per-edge interest: is the partner an unchoke target?

        Edge (p -> q) is set when q is a non-seed that misses a piece p
        holds -- the reference's ``is_interested_in`` test, vectorized.
        Completed sources (seeds included) short-circuit to "q incomplete",
        so late rounds cost almost nothing.
        """
        piece_count = self.config.piece_count
        have = self.bitfields.have_count
        candidate = self.adj_target & (have[self.adj] < piece_count)
        interested = np.zeros(self.adj.shape[0], dtype=bool)
        src_complete = have[self.edge_peer] == piece_count
        interested[candidate & src_complete] = True
        rest = np.flatnonzero(candidate & ~src_complete)
        if rest.size:
            interested[rest] = self.bitfields.edge_interest(
                self.edge_peer[rest], self.adj[rest]
            )
        return interested

    def _plan_round(
        self, rng: np.random.Generator
    ) -> Tuple[List[Tuple[int, int, float]], Set[Tuple[int, int]]]:
        """Decide unchokes; returns dense transfers and regular pid pairs."""
        config = self.config
        interested = self._interest_pass()
        regular_map = batched_regular_slots(
            self.edge_peer,
            self.adj_pid,
            self.recv_edge,
            interested,
            config.regular_slots,
        )
        transfers: List[Tuple[int, int, float]] = []
        regular_pairs: Set[Tuple[int, int]] = set()
        round_seconds = config.round_seconds
        # One vectorized pass finds the peers with at least one interested
        # edge and their per-peer candidate lists; the Python loop below
        # then only visits *active* peers, in the same ascending dense-id
        # order as iterating every row, so the shared random stream is
        # consumed draw for draw as before.
        active_edges = np.flatnonzero(interested)
        if active_edges.size == 0:
            return transfers, regular_pairs
        owners = self.edge_peer.take(active_edges)  # ascending (CSR order)
        partner_ids = self.adj_pid.take(active_edges).tolist()
        starts = np.flatnonzero(np.r_[True, owners[1:] != owners[:-1]]).tolist()
        ends = starts[1:] + [owners.size]
        owner_at = owners[starts].tolist()
        is_seed = self.is_seed
        uploads = self.uploads
        profiles = self.profiles
        upload_factor = self.upload_factor
        for i, lo, hi in zip(owner_at, starts, ends):
            if not profiles[i].unchokes:
                # Never-upload owners are skipped before any choker call,
                # exactly where the reference skips them, so the shared
                # stream stays aligned.
                continue
            interested_ids = partner_ids[lo:hi]
            if is_seed[i]:
                regular: List[int] = []
                unchoked = self.chokers.seed_unchoke(interested_ids, rng)
            else:
                regular, optimistic = self.chokers.leecher_unchoke(
                    i + 1, interested_ids, regular_map.get(i, []), rng
                )
                unchoked = regular + optimistic
            if not unchoked:
                continue
            for target in regular:
                regular_pairs.add((i + 1, target))
            budget_kbit = uploads[i] * round_seconds
            factor = upload_factor[i]
            if factor != 1.0:
                # Guarded multiply: standard peers keep the exact float
                # sequence of the behavior-free code path.
                budget_kbit *= factor
            share = budget_kbit / len(unchoked)
            for target in unchoked:
                transfers.append((i, target - 1, share))
        return transfers, regular_pairs

    def _record_reciprocal_tft(
        self,
        regular_pairs: Set[Tuple[int, int]],
        tft_rounds: Dict[Tuple[int, int], float],
        round_index: int,
    ) -> None:
        if round_index <= self.config.warmup_rounds:
            return
        for sender, target in regular_pairs:
            if sender < target and (target, sender) in regular_pairs:
                key = (sender, target)
                tft_rounds[key] = tft_rounds.get(key, 0.0) + 1.0

    def _acquire_pieces(
        self,
        receiver: int,
        wanted_idx: np.ndarray,
        credit: float,
        rng: np.random.Generator,
        reveal_limit: Optional[int] = None,
    ) -> Tuple[float, int]:
        """Convert ``credit`` kilobits into pieces; returns (credit, gained).

        The reference loop re-picks from the live wanted set each piece,
        but within one transfer the availability of the *remaining* wanted
        pieces never changes (only the chosen piece's count moves, and it
        leaves the set).  Rarest-first therefore pre-sorts the wanted
        pieces into rarity tiers once and consumes them tier by tier.

        The random draws batch: the sequence of pick bounds (tier size,
        tier size - 1, ...) is fully determined *before* any pick, and
        ``Generator.integers(0, bounds_array)`` consumes the bit stream
        element for element exactly like the equivalent sequence of scalar
        ``integers(0, bound)`` calls (Lemire bounded generation either
        way).  One vectorized draw therefore replaces the per-piece Python
        RNG calls while staying draw-for-draw identical to the reference
        selectors -- the equivalence suite holds bit-for-bit.
        """
        piece_size = self.config.piece_size_kbit
        policy = self.config.piece_selection
        taken: List[int] = []
        total = wanted_idx.shape[0]

        # The pick count replays the reference control flow exactly --
        # subtract-while-credit-covers-a-piece -- because repeated float
        # subtraction is not generally the same as one floor division.
        # ``remaining`` is the credit after those subtractions, i.e. the
        # exact float the reference loop would leave behind.  A sender's
        # reveal_limit (super-seeding) caps the subtraction count too, so
        # the leftover credit matches the reference's capped loop.
        remaining = credit
        max_picks = 0
        while (
            remaining >= piece_size
            and max_picks < total
            and (reveal_limit is None or max_picks < reveal_limit)
        ):
            remaining -= piece_size
            max_picks += 1
        if max_picks == 0:
            return credit, 0

        if policy == "rarest-first":
            avail = self.counts.take(wanted_idx)
            # ``wanted_idx`` is ascending, so a stable sort on availability
            # alone equals the reference lexsort((piece, avail)) ordering.
            order = np.argsort(avail, kind="stable")
            queue = wanted_idx.take(order)
            levels = avail.take(order)
            cuts = (levels[1:] != levels[:-1]).nonzero()[0]
            starts = [0] + (cuts + 1).tolist()
            ends = starts[1:] + [total]
            bounds: List[int] = []
            plan: List[Tuple[int, int, int]] = []  # (start, end, picks)
            picks_left = max_picks
            for tier_start, tier_end in zip(starts, ends):
                size = tier_end - tier_start
                take = size if size < picks_left else picks_left
                plan.append((tier_start, tier_end, take))
                bounds.extend(range(size, size - take, -1))
                picks_left -= take
                if picks_left == 0:
                    break
            if len(bounds) == 1:
                draws = [rng.integers(0, bounds[0])]
            else:
                draws = rng.integers(0, np.asarray(bounds, dtype=np.int64)).tolist()
            cursor = 0
            for tier_start, tier_end, take in plan:
                tier = queue[tier_start:tier_end].tolist()
                for _ in range(take):
                    taken.append(tier.pop(draws[cursor]))
                    cursor += 1
        elif policy == "random":
            if max_picks == 1:
                draws = [rng.integers(0, total)]
            else:
                draws = rng.integers(
                    0, np.arange(total, total - max_picks, -1, dtype=np.int64)
                ).tolist()
            pool = wanted_idx.tolist()
            for draw in draws:
                taken.append(pool.pop(draw))
        else:  # sequential: lowest index first, no randomness
            taken = wanted_idx[:max_picks].tolist()

        credit = remaining
        gained = len(taken)
        if gained:
            # The loop above never re-reads bitfield or availability state
            # (tiers are fixed per transfer), so the mutations batch.
            idx = np.asarray(taken, dtype=np.int64)
            packed_row = self.bitfields.packed[receiver]
            np.bitwise_or.at(
                packed_row, idx >> 3, (0x80 >> (idx & 7)).astype(np.uint8)
            )
            self.counts[idx] += 1
            self.bitfields.have_count[receiver] += gained
        return credit, gained

    def _apply_round(
        self,
        transfers: List[Tuple[int, int, float]],
        collaboration: Dict[Tuple[int, int], float],
        rng: np.random.Generator,
        round_index: int,
        incomplete: int,
    ) -> Tuple[int, int]:
        """Turn transfers into pieces; returns (newly completed, incomplete)."""
        config = self.config
        piece_size = config.piece_size_kbit
        piece_count = config.piece_count
        bitfields = self.bitfields
        have = bitfields.have_count
        partial = self.partial
        uploaded = self.uploaded
        downloaded = self.downloaded
        received_now: Dict[int, Dict[int, float]] = {}
        newly_completed = 0

        for sender, receiver, volume_kbit in transfers:
            if have[receiver] == piece_count:
                continue  # a complete receiver wants nothing
            # A complete sender always has something an incomplete receiver
            # misses, so the byte-mask test (and its allocation) is only
            # needed for partially-complete senders.
            if have[sender] == piece_count:
                wanted_bytes = None
            else:
                wanted_bytes = bitfields.wanted_bytes(sender, receiver)
                if not wanted_bytes.any():
                    continue
            uploaded[sender] += volume_kbit
            downloaded[receiver] += volume_kbit
            by_sender = received_now.setdefault(receiver + 1, {})
            by_sender[sender + 1] = by_sender.get(sender + 1, 0.0) + volume_kbit
            key = (
                (sender + 1, receiver + 1)
                if sender < receiver
                else (receiver + 1, sender + 1)
            )
            collaboration[key] = collaboration.get(key, 0.0) + volume_kbit

            partial_r = partial.setdefault(receiver, {})
            credit = partial_r.get(sender, 0.0) + volume_kbit
            if credit >= piece_size:
                if wanted_bytes is None:
                    wanted_bytes = bitfields.wanted_bytes(sender, receiver)
                wanted_idx = bitfields.indices(wanted_bytes)
                credit, gained = self._acquire_pieces(
                    receiver, wanted_idx, credit, rng, self.reveal_limit[sender]
                )
                if (
                    gained
                    and have[receiver] == piece_count
                    and self.completed_round[receiver] is None
                ):
                    self.completed_round[receiver] = round_index
                    newly_completed += 1
                    incomplete -= 1
                    if self._faults_active and not self.tracker_available:
                        self._faults.defer_completion(receiver + 1)
                    else:
                        self.tracker.record_completion(receiver + 1)
                    if self.scenario.departure != "stay":
                        due_round = round_index + 1 + self.scenario.effective_linger
                        self._depart_due.setdefault(due_round, []).append(receiver)
            partial_r[sender] = credit

        self._store_received(received_now)
        return newly_completed, incomplete

    def _store_received(self, received_now: Dict[int, Dict[int, float]]) -> None:
        """Record this round's receipts and project them onto the edges."""
        self._last_received = received_now
        self._project_received()

    def _project_received(self) -> None:
        """Scatter ``_last_received`` onto the current edge array.

        Under churn the edge layout may have just been re-frozen, so every
        (receiver, sender) pair is resolved against the live edge keys and
        pairs whose edge disappeared (a departed partner) are dropped --
        the reference chokers never look those up either.
        """
        self.recv_edge.fill(0.0)
        if not self._last_received or self.edge_key.size == 0:
            return
        receivers: List[int] = []
        senders: List[int] = []
        volumes: List[float] = []
        for receiver_pid, by_sender in self._last_received.items():
            for sender_pid, volume in by_sender.items():
                receivers.append(receiver_pid - 1)
                senders.append(sender_pid - 1)
                volumes.append(volume)
        keys = (
            np.asarray(receivers, dtype=np.int64) * self._key_mult
            + np.asarray(senders, dtype=np.int64)
        )
        positions = np.searchsorted(self.edge_key, keys)
        in_range = positions < self.edge_key.size
        positions = np.where(in_range, positions, 0)
        valid = in_range & (self.edge_key[positions] == keys)
        self.recv_edge[positions[valid]] = np.asarray(volumes, dtype=np.float64)[valid]

    # -- materialization ----------------------------------------------------------

    def _materialize_one(self, i: int) -> "SwarmPeer":
        """Rebuild one dense row as a reference ``SwarmPeer`` snapshot."""
        from repro.bittorrent.swarm import SwarmPeer

        pid = i + 1
        return SwarmPeer(
            peer_id=pid,
            upload_kbps=self.uploads[i],
            is_seed=bool(self.is_seed[i]),
            bitfield=self.bitfields.to_bitfield(i),
            neighbors={j + 1 for j in self.neighbor_sets[i]},
            downloaded_kbit=self.downloaded[i],
            uploaded_kbit=self.uploaded[i],
            partial_kbit={
                sender + 1: credit
                for sender, credit in self.partial.get(i, {}).items()
            },
            received_last_round=dict(self._last_received.get(pid, {})),
            completed_round=self.completed_round[i],
            arrival_round=self.arrival_round[i],
            behavior=self.behavior_names[i],
            locality_group=self.locality_groups[i],
        )

    def materialize_peers(self) -> Dict[int, "SwarmPeer"]:
        """Rebuild reference ``SwarmPeer`` objects from the arrays.

        Each call returns a fresh snapshot of the *current* simulation
        state (initial population before :meth:`run`, final state after),
        departed peers included (frozen at their departure round); this is
        what backs ``SwarmSimulator.peers`` in fast mode and the ``peers``
        of the returned result.
        """
        peers: Dict[int, "SwarmPeer"] = dict(self._departed)
        for i in range(self.n_total):
            if self.alive[i]:
                peers[i + 1] = self._materialize_one(i)
        return dict(sorted(peers.items()))
