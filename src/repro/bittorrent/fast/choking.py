"""Batched Tit-for-Tat rechoke for the fast swarm engine.

The regular (reciprocity) slots of *every* leecher are computed in one
vectorized pass: all "q sent something to p last round and q is interested
in p" edges are ranked with a single :func:`numpy.lexsort` by
``(peer, -volume, partner id)`` -- exactly the reference
:class:`~repro.bittorrent.choking.TitForTatChoker` ordering -- and each
peer takes the head of its segment.

The *optimistic* rotation cannot be batched without changing semantics:
it consumes the shared random stream one ``shuffle`` per peer, in peer-id
order, and bit-identity with the reference engine requires replaying those
draws exactly.  :class:`FastChokerState` therefore mirrors the reference
rotation logic (state keyed by peer id, same candidate lists in the same
order) while receiving its regular slots pre-computed from the batched
pass.  Equivalence is enforced by ``tests/test_swarm_engine_equivalence.py``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.bittorrent.choking import rotate_optimistic, seed_unchoke

__all__ = ["batched_regular_slots", "FastChokerState"]


def batched_regular_slots(
    edge_peer: np.ndarray,
    edge_partner_id: np.ndarray,
    received_edge: np.ndarray,
    interested_edge: np.ndarray,
    regular_slots: int,
) -> Dict[int, List[int]]:
    """Per-peer Tit-for-Tat slots from last round's received volumes.

    Parameters
    ----------
    edge_peer:
        Dense peer index owning each directed edge (CSR expansion).
    edge_partner_id:
        Peer *id* of the edge's partner (the unchoke candidate).
    received_edge:
        Kilobits the owning peer received from the partner last round.
    interested_edge:
        Whether the partner is an eligible unchoke target this round
        (non-seed and interested in the owner's content).
    regular_slots:
        The paper's b0 -- slots granted per peer.

    Returns
    -------
    Mapping of dense peer index to its regular-slot partner ids, best
    contributor first, ties broken by ascending id -- byte-for-byte the
    ordering of ``TitForTatChoker.select_unchoked``.
    """
    regular: Dict[int, List[int]] = {}
    if regular_slots <= 0:
        return regular
    eligible = np.flatnonzero(interested_edge & (received_edge > 0.0))
    if eligible.size == 0:
        return regular
    order = np.lexsort(
        (edge_partner_id[eligible], -received_edge[eligible], edge_peer[eligible])
    )
    ranked = eligible[order]
    peers = edge_peer[ranked]
    partners = edge_partner_id[ranked]
    boundaries = np.flatnonzero(np.r_[True, peers[1:] != peers[:-1]])
    ends = np.r_[boundaries[1:], peers.size]
    for start, end in zip(boundaries, ends):
        take = min(regular_slots, end - start)
        regular[int(peers[start])] = [int(q) for q in partners[start:start + take]]
    return regular


class FastChokerState:
    """Optimistic-unchoke state for all leechers (and the seed policy).

    Shares :func:`repro.bittorrent.choking.rotate_optimistic` /
    :func:`~repro.bittorrent.choking.seed_unchoke` with the reference
    chokers, so the random-stream consumption cannot drift between
    engines; only the state layout differs (one dictionary for the whole
    swarm instead of one choker object per peer).
    """

    def __init__(
        self,
        regular_slots: int,
        optimistic_slots: int,
        optimistic_period: int,
        seed_slots: int,
    ) -> None:
        if regular_slots < 0:
            raise ValueError("regular_slots cannot be negative")
        if optimistic_slots < 0:
            raise ValueError("optimistic_slots cannot be negative")
        if optimistic_period <= 0:
            raise ValueError("optimistic_period must be positive")
        if seed_slots <= 0:
            raise ValueError("a seed needs at least one unchoke slot")
        self.regular_slots = regular_slots
        self.optimistic_slots = optimistic_slots
        self.optimistic_period = optimistic_period
        self.seed_slots = seed_slots
        self._optimistic: Dict[int, List[int]] = {}
        self._age: Dict[int, int] = {}

    def leecher_unchoke(
        self,
        peer_id: int,
        interested: List[int],
        regular: List[int],
        rng: np.random.Generator,
    ) -> Tuple[List[int], List[int]]:
        """One leecher rechoke; ``regular`` comes from the batched pass."""
        remaining = [q for q in interested if q not in regular]
        optimistic = self._rotate_optimistic(peer_id, remaining, rng)
        spare = self.regular_slots - len(regular)
        if spare > 0:
            extra_pool = [q for q in remaining if q not in optimistic]
            rng.shuffle(extra_pool)
            optimistic = optimistic + extra_pool[:spare]
        return regular, optimistic

    def seed_unchoke(
        self, interested: List[int], rng: np.random.Generator
    ) -> List[int]:
        """The seed policy, via the shared reference implementation."""
        return seed_unchoke(interested, self.seed_slots, rng)

    def drop(self, peer_id: int) -> None:
        """Discard a departed peer's rotation state.

        Mirrors the reference simulator deleting the peer's choker object;
        ids are never reused, so this is memory hygiene, not semantics.
        """
        self._optimistic.pop(peer_id, None)
        self._age.pop(peer_id, None)

    def _rotate_optimistic(
        self, peer_id: int, pool: List[int], rng: np.random.Generator
    ) -> List[int]:
        return rotate_optimistic(
            self._optimistic,
            self._age,
            peer_id,
            pool,
            rng,
            self.optimistic_slots,
            self.optimistic_period,
        )
