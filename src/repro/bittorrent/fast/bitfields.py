"""Packed-bit bitfields for a whole swarm.

One ``uint8`` matrix holds every peer's bitfield: row ``i`` is peer ``i``'s
bitfield with piece ``p`` stored at byte ``p // 8``, bit ``7 - p % 8`` (the
big-endian convention of :func:`numpy.packbits`, and incidentally the wire
order of BitTorrent's actual BITFIELD message).  Interest tests -- "does
``p`` have a piece that ``q`` misses?" -- become byte-wise ``AND``/``NOT``
over rows, which is what lets the fast swarm engine check interest on every
tracker edge in a few vectorized passes instead of building Python sets.

Padding bits of the last byte are never set, so ``row_s & ~row_r`` is free
of padding artefacts (``row_s`` masks them off).

Dynamic swarms grow the matrix: :meth:`BitfieldMatrix.add_peers` appends
zeroed rows for scenario arrivals, doubling the backing capacity
geometrically so a flash crowd costs O(n) amortized rather than one
reallocation per joiner.  Rows of departed peers are tombstoned by the
swarm engine (its ``alive`` mask) rather than freed -- peer ids are never
reused, so a row index stays valid for the whole run.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.bittorrent.pieces import Bitfield

__all__ = ["BitfieldMatrix"]


class BitfieldMatrix:
    """The bitfields of ``n_peers`` peers over ``piece_count`` pieces.

    Attributes
    ----------
    packed:
        ``(capacity, ceil(piece_count / 8))`` uint8 matrix of packed bits;
        only the first ``n_peers`` rows are live (``capacity >= n_peers``
        after growth).
    have_count:
        ``(capacity,)`` number of pieces each peer holds (kept
        incrementally, so completion tests are O(1)).
    """

    def __init__(self, n_peers: int, piece_count: int) -> None:
        if n_peers <= 0:
            raise ValueError("need at least one peer")
        if piece_count <= 0:
            raise ValueError("piece_count must be positive")
        self.n_peers = n_peers
        self.piece_count = piece_count
        self.n_bytes = (piece_count + 7) // 8
        self.packed = np.zeros((n_peers, self.n_bytes), dtype=np.uint8)
        self.have_count = np.zeros(n_peers, dtype=np.int64)

    # -- growth ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Allocated rows (>= :attr:`n_peers`)."""
        return self.packed.shape[0]

    def add_peers(self, count: int) -> int:
        """Append ``count`` empty rows; returns the first new row index.

        Grows the backing arrays geometrically (at least doubling), so a
        burst of arrivals is amortized O(rows touched).
        """
        if count < 0:
            raise ValueError("count cannot be negative")
        first = self.n_peers
        needed = self.n_peers + count
        if needed > self.capacity:
            new_capacity = max(needed, 2 * self.capacity)
            packed = np.zeros((new_capacity, self.n_bytes), dtype=np.uint8)
            packed[: self.n_peers] = self.packed[: self.n_peers]
            self.packed = packed
            have = np.zeros(new_capacity, dtype=np.int64)
            have[: self.n_peers] = self.have_count[: self.n_peers]
            self.have_count = have
        self.n_peers = needed
        return first

    # -- mutation ----------------------------------------------------------------

    def add(self, peer: int, piece: int) -> None:
        """Mark ``piece`` as held by ``peer`` (must not already be held)."""
        self.packed[peer, piece >> 3] |= np.uint8(0x80 >> (piece & 7))
        self.have_count[peer] += 1

    def fill(self, peer: int, pieces: Iterable[int]) -> None:
        """Bulk-set the given pieces for ``peer`` (fresh rows only)."""
        idx = np.asarray(list(pieces), dtype=np.int64)
        if idx.size == 0:
            return
        np.bitwise_or.at(
            self.packed[peer], idx >> 3, (0x80 >> (idx & 7)).astype(np.uint8)
        )
        self.have_count[peer] = int(
            np.unpackbits(self.packed[peer], count=self.piece_count).sum()
        )

    def set_complete(self, peer: int) -> None:
        """Give ``peer`` every piece (a seed)."""
        self.packed[peer] = 0xFF
        tail = self.piece_count & 7
        if tail:
            self.packed[peer, -1] = np.uint8((0xFF << (8 - tail)) & 0xFF)
        self.have_count[peer] = self.piece_count

    # -- queries -----------------------------------------------------------------

    def is_complete(self, peer: int) -> bool:
        """Whether ``peer`` holds every piece."""
        return int(self.have_count[peer]) == self.piece_count

    def wanted_bytes(self, sender: int, receiver: int) -> np.ndarray:
        """Packed mask of pieces ``sender`` has and ``receiver`` misses."""
        return self.packed[sender] & ~self.packed[receiver]

    def indices(self, packed_row: np.ndarray) -> np.ndarray:
        """Ascending piece indices set in a packed row."""
        # .nonzero()[0] on the already-1D unpacked row skips the ravel and
        # dispatch layers of np.flatnonzero -- this runs once per transfer.
        return np.unpackbits(packed_row, count=self.piece_count).nonzero()[0]

    def availability(self) -> np.ndarray:
        """Replication level of every piece across all allocated rows.

        Counts every row below :attr:`n_peers` -- including rows the swarm
        engine has tombstoned for departed peers (their bits are never
        cleared; liveness is the engine's concern, tracked by its ``alive``
        mask and compensated incrementally via :meth:`unpack_row`).  Only
        unused growth capacity is excluded.
        """
        return (
            np.unpackbits(self.packed[: self.n_peers], axis=1, count=self.piece_count)
            .sum(axis=0)
            .astype(np.int64)
        )

    def unpack_row(self, peer: int) -> np.ndarray:
        """One peer's bitfield as a 0/1 int64 vector of length piece_count.

        The swarm engine subtracts this from its availability counts when
        the peer departs.
        """
        return np.unpackbits(self.packed[peer], count=self.piece_count).astype(np.int64)

    def edge_interest(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        out: Optional[np.ndarray] = None,
        chunk: int = 1 << 18,
    ) -> np.ndarray:
        """Per-pair interest: does ``src[k]`` have a piece ``dst[k]`` misses?

        Vectorized over pairs, chunked to bound the temporary byte matrix.
        """
        if out is None:
            out = np.zeros(src.shape[0], dtype=bool)
        for lo in range(0, src.shape[0], chunk):
            hi = min(lo + chunk, src.shape[0])
            diff = self.packed[src[lo:hi]] & ~self.packed[dst[lo:hi]]
            out[lo:hi] = diff.any(axis=1)
        return out

    # -- conversions -------------------------------------------------------------

    def to_bitfield(self, peer: int) -> Bitfield:
        """Materialize one row as a reference :class:`Bitfield`."""
        return Bitfield.from_indices(
            self.piece_count, self.indices(self.packed[peer]).tolist()
        )
