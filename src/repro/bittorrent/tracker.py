"""Tracker: peer discovery.

The tracker hands every joining peer a random subset of the swarm.  The
union of these announcements is precisely the paper's *acceptance graph*:
two peers can only end up in a Tit-for-Tat exchange if at least one of them
learnt about the other, and the resulting knowledge graph is (close to) an
Erdős–Rényi graph with expected degree equal to the announce size.

Besides discovery the tracker keeps the aggregate counters a real tracker
exposes through its *scrape* endpoint -- current seeders, current leechers
and the cumulative number of completed downloads ("snatches") -- which is
all that measurement studies built on scrapes ever see
(:mod:`repro.bittorrent.telemetry`).  The counters are maintained
unconditionally: they consume no randomness and touch no simulation state,
so an attached observer cannot perturb a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set

import numpy as np

from repro.graphs.base import UndirectedGraph

__all__ = ["ScrapeStats", "Tracker"]


@dataclass(frozen=True)
class ScrapeStats:
    """One tracker scrape: the three counters of the BitTorrent scrape API.

    ``seeders`` and ``leechers`` describe the swarm *right now*;
    ``snatches`` is the cumulative count of completed-download events the
    tracker has been told about (peers that were already complete when
    they first announced are seeders, not snatches -- exactly the
    distinction real trackers make).
    """

    seeders: int
    leechers: int
    snatches: int


@dataclass
class Tracker:
    """A minimal BitTorrent tracker.

    Attributes
    ----------
    announce_size:
        Number of peers returned by each announce (BitTorrent defaults to
        50; the paper's realistic value for *interesting* neighbors is 20).
    """

    announce_size: int = 20
    _known: Set[int] = field(default_factory=set, repr=False)
    _contacts: Dict[int, Set[int]] = field(default_factory=dict, repr=False)
    _complete: Set[int] = field(default_factory=set, repr=False)
    _snatches: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.announce_size <= 0:
            raise ValueError("announce_size must be positive")

    @property
    def swarm_size(self) -> int:
        """Number of peers currently registered."""
        return len(self._known)

    def announce(self, peer_id: int, rng: np.random.Generator) -> List[int]:
        """Register ``peer_id`` and return a random subset of other peers.

        The returned peers (and, symmetrically, the announcing peer) are
        added to each other's contact lists.

        Re-announcing an already-registered peer is allowed and draws a
        fresh contact subset -- this is how a crashed peer rejoins under
        the fault layer (:mod:`repro.bittorrent.faults`).  Note that a
        *crashed* peer never departs, so its stale entry keeps being
        handed out until it rejoins; callers that care must filter
        contacts against the currently-present population.
        """
        others = sorted(self._known - {peer_id})
        self._known.add(peer_id)
        self._contacts.setdefault(peer_id, set())
        if not others:
            return []
        count = min(self.announce_size, len(others))
        chosen = [int(x) for x in rng.choice(others, size=count, replace=False)]
        for other in chosen:
            self._contacts[peer_id].add(other)
            self._contacts.setdefault(other, set()).add(peer_id)
        return chosen

    def depart(self, peer_id: int) -> None:
        """Remove a peer from the tracker (contacts keep their history).

        Later announces can no longer return the departed peer, which is
        how scenario departures propagate to newly arriving peers.  A
        departing seeder also leaves the scrape's seeder count (snatches,
        being cumulative, are kept).  During a scheduled tracker outage
        the engines *defer* this call (and ``record_completion``) until
        recovery, so mid-outage scrapes would -- had they not failed --
        still show the pre-outage counters.
        """
        self._known.discard(peer_id)
        self._complete.discard(peer_id)

    def register_complete(self, peer_id: int) -> None:
        """Mark a registered peer as a seeder *without* counting a snatch.

        This is the announce a peer that already holds the full content
        sends on joining: it raises the scrape's seeder count but -- like a
        real tracker -- is not a completed-download event.
        """
        if peer_id in self._known:
            self._complete.add(peer_id)

    def record_completion(self, peer_id: int) -> None:
        """Count one completed download (the announce ``event=completed``).

        Idempotent per peer: a peer completes at most once, so repeated
        notifications do not inflate the snatch counter.
        """
        if peer_id in self._known and peer_id not in self._complete:
            self._complete.add(peer_id)
            self._snatches += 1

    def scrape(self) -> ScrapeStats:
        """The scrape-endpoint counters (seeders / leechers / snatches)."""
        seeders = len(self._complete)
        return ScrapeStats(
            seeders=seeders,
            leechers=len(self._known) - seeders,
            snatches=self._snatches,
        )

    def is_registered(self, peer_id: int) -> bool:
        """Whether the peer is currently in the swarm (not departed)."""
        return peer_id in self._known

    def stale_count(self, present: Iterable[int]) -> int:
        """Registered peers that are no longer actually in the swarm.

        Crashed peers never send a ``stopped`` event, so their
        registrations linger: announces keep handing the ids out and
        ``scrape()`` keeps counting the ghosts (see ``docs/faults.md``,
        "scrapes overcount crashed peers").  ``present`` is the ground
        truth -- the ids currently alive in the simulation -- which makes
        this an *omniscient* diagnostic a real scraper could not compute;
        the telemetry views expose it as exactly that.
        """
        alive = frozenset(present)
        return sum(1 for pid in self._known if pid not in alive)

    def known_peers(self) -> List[int]:
        """Currently registered peer ids, ascending (departed excluded).

        This is exactly the population an announce samples from; the fast
        tracker maintains the same list array-side, and the parity is
        asserted by the scenario test suite.
        """
        return sorted(self._known)

    def contacts(self, peer_id: int) -> Set[int]:
        """Peers that ``peer_id`` knows about (symmetric closure of announces)."""
        return set(self._contacts.get(peer_id, set()))

    def knowledge_graph(self) -> UndirectedGraph:
        """The acceptance graph induced by all announces so far."""
        graph = UndirectedGraph(sorted(self._contacts))
        for peer_id, contacts in self._contacts.items():
            for other in contacts:
                if peer_id < other:
                    graph.add_edge(peer_id, other)
        return graph
