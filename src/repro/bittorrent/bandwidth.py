"""Upload-bandwidth distributions (Figure 10).

The paper feeds its matching model with the upstream-capacity measurements
of Saroiu, Gummadi and Gribble ("A measurement study of peer-to-peer file
sharing systems", MMCN 2002).  Those traces are not redistributable, so this
module provides a synthetic *mixture* distribution whose cumulative curve
reproduces the published shape: a wide spread from tens of kbps to 100 Mbps
with pronounced density peaks at the typical access technologies of the
time (modem, ISDN, DSL, cable, T1, Ethernet).  The efficiency analysis of
Figure 11 only consumes the CDF, so any distribution with the same peaks
exercises the same code path and produces the same qualitative result
(ratio peaks just above each density peak, etc.).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim import streams
from repro.sim.random_source import fallback_rng

__all__ = ["BandwidthClass", "BandwidthDistribution", "saroiu_like_distribution"]


@dataclass(frozen=True)
class BandwidthClass:
    """One access-technology mode of the mixture.

    Attributes
    ----------
    name:
        Human-readable label ("dsl", "cable", ...).
    upstream_kbps:
        Central upstream rate in kbps.
    weight:
        Relative share of hosts on this technology.
    spread:
        Log-normal sigma describing within-class variability.
    """

    name: str
    upstream_kbps: float
    weight: float
    spread: float = 0.15

    def __post_init__(self) -> None:
        if self.upstream_kbps <= 0:
            raise ValueError(f"class {self.name}: upstream must be positive")
        if self.weight <= 0:
            raise ValueError(f"class {self.name}: weight must be positive")
        if self.spread < 0:
            raise ValueError(f"class {self.name}: spread must be non-negative")


# Mixture approximating the Saroiu et al. Gnutella upstream CDF: most hosts
# on dial-up/DSL/cable, a long tail of well-connected (T1/T3/campus) hosts.
_SAROIU_CLASSES: Tuple[BandwidthClass, ...] = (
    BandwidthClass("modem", 56.0, 0.20, 0.10),
    BandwidthClass("isdn", 128.0, 0.10, 0.10),
    BandwidthClass("dsl", 384.0, 0.25, 0.20),
    BandwidthClass("cable", 768.0, 0.20, 0.25),
    BandwidthClass("t1", 1_500.0, 0.12, 0.20),
    BandwidthClass("t3", 10_000.0, 0.08, 0.30),
    BandwidthClass("campus", 45_000.0, 0.05, 0.35),
)


class BandwidthDistribution:
    """A log-normal mixture over access-technology classes."""

    def __init__(self, classes: Sequence[BandwidthClass]) -> None:
        if not classes:
            raise ValueError("need at least one bandwidth class")
        self.classes = tuple(classes)
        total = sum(c.weight for c in self.classes)
        self._weights = np.array([c.weight / total for c in self.classes])
        self._centers = np.array([c.upstream_kbps for c in self.classes])
        self._spreads = np.array([c.spread for c in self.classes])

    # -- sampling --------------------------------------------------------------

    def sample(self, n: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Draw ``n`` upstream capacities in kbps.

        Omitting ``rng`` is deprecated: the fallback is the fixed
        deterministic ``bandwidth`` stream (identical on every implicit
        call) and warns; pass a named stream explicitly.
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        if rng is None:
            rng = fallback_rng(streams.BANDWIDTH)
        component = rng.choice(len(self.classes), size=n, p=self._weights)
        log_center = np.log(self._centers[component])
        sigma = self._spreads[component]
        return np.exp(rng.normal(loc=log_center, scale=sigma))

    # -- cumulative distribution -------------------------------------------------

    def cdf(self, upstream_kbps: np.ndarray | float) -> np.ndarray | float:
        """Fraction of hosts with upstream capacity <= the given value(s)."""
        x = np.asarray(upstream_kbps, dtype=float)
        out = np.zeros_like(x, dtype=float)
        positive = x > 0
        if np.any(positive):
            z = np.zeros((len(self.classes),) + x[positive].shape)
            for index, cls in enumerate(self.classes):
                sigma = max(cls.spread, 1e-9)
                z[index] = _normal_cdf(
                    (np.log(x[positive]) - np.log(cls.upstream_kbps)) / sigma
                )
            out[positive] = np.tensordot(self._weights, z, axes=1)
        if np.isscalar(upstream_kbps):
            return float(out)
        return out

    def percentage_of_hosts(self, upstream_kbps: np.ndarray | float) -> np.ndarray | float:
        """Figure 10's y-axis: percentage of hosts below the given upstream."""
        cdf = self.cdf(upstream_kbps)
        if np.isscalar(upstream_kbps):
            return 100.0 * float(cdf)
        return 100.0 * np.asarray(cdf)

    def quantile(self, q: float) -> float:
        """Approximate inverse CDF via bisection on the kbps axis."""
        if not 0.0 < q < 1.0:
            raise ValueError("q must be in (0, 1)")
        low, high = 1.0, 1e7
        for _ in range(200):
            mid = np.sqrt(low * high)  # bisect in log space
            if float(self.cdf(mid)) < q:
                low = mid
            else:
                high = mid
        return float(np.sqrt(low * high))

    def density_peaks(self) -> List[float]:
        """Central rates of the mixture components (the 'density peaks')."""
        return sorted(float(c.upstream_kbps) for c in self.classes)

    def figure10_curve(self, points: int = 200) -> Dict[str, np.ndarray]:
        """The (upstream, percentage-of-hosts) series of Figure 10."""
        grid = np.logspace(1, 5, points)
        return {"upstream_kbps": grid, "percentage_of_hosts": np.asarray(self.percentage_of_hosts(grid))}


def _normal_cdf(z: np.ndarray) -> np.ndarray:
    from scipy.special import erf

    return 0.5 * (1.0 + erf(np.asarray(z) / np.sqrt(2.0)))


def saroiu_like_distribution() -> BandwidthDistribution:
    """The default Saroiu-style upstream distribution used by the paper's Section 6."""
    return BandwidthDistribution(_SAROIU_CLASSES)
