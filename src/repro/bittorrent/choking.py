"""Choking: the Tit-for-Tat unchoke algorithm.

Every rechoke period a BitTorrent peer unchokes the ``regular_slots``
interested neighbors from which it downloaded the most during the last
period (the Tit-for-Tat slots) plus one *optimistic* unchoke chosen at
random, which lets it probe unknown peers -- the paper's "random initiative".
Seeds have nothing to download, so they unchoke the neighbors to which they
can push the most (by convention here: round-robin random).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

import numpy as np

__all__ = [
    "UnchokeDecision",
    "ChokingPolicy",
    "TitForTatChoker",
    "SeedChoker",
    "rotate_optimistic",
    "seed_unchoke",
]


def rotate_optimistic(
    optimistic_state: Dict[int, List[int]],
    age_state: Dict[int, int],
    peer_id: int,
    pool: List[int],
    rng: np.random.Generator,
    slots: int,
    period: int,
) -> List[int]:
    """One optimistic-unchoke rotation step for ``peer_id``.

    Shared by :class:`TitForTatChoker` and the fast engine's
    :class:`~repro.bittorrent.fast.choking.FastChokerState` so the two can
    never drift: bit-identity across engines requires the exact same
    random-stream consumption (one shuffle of the same candidate list).
    State lives in the caller-owned ``optimistic_state`` / ``age_state``
    dictionaries, keyed by peer id.
    """
    if slots == 0 or not pool:
        optimistic_state[peer_id] = []
        return []
    current = [q for q in optimistic_state.get(peer_id, []) if q in pool]
    age = age_state.get(peer_id, 0) + 1
    if len(current) < slots or age >= period:
        candidates = [q for q in pool if q not in current]
        rng.shuffle(candidates)
        if age >= period:
            current = []
            age = 0
        current = (current + candidates)[:slots]
    optimistic_state[peer_id] = current
    age_state[peer_id] = age
    return list(current)


def seed_unchoke(
    interested: Sequence[int], slots: int, rng: np.random.Generator
) -> List[int]:
    """The seed policy: a rotating random subset of the interested peers."""
    pool = list(interested)
    if not pool:
        return []
    rng.shuffle(pool)
    return pool[:slots]


@dataclass
class UnchokeDecision:
    """Outcome of one rechoke: reciprocity-driven slots vs exploratory slots."""

    regular: List[int] = field(default_factory=list)
    optimistic: List[int] = field(default_factory=list)

    @property
    def all(self) -> List[int]:
        """Every unchoked neighbor, regular first."""
        return self.regular + self.optimistic

    def __len__(self) -> int:
        return len(self.regular) + len(self.optimistic)


class ChokingPolicy:
    """Interface for unchoke decisions."""

    def select_unchoked(
        self,
        peer_id: int,
        interested: Sequence[int],
        received: Mapping[int, float],
        rng: np.random.Generator,
    ) -> UnchokeDecision:
        """Return the neighbors to unchoke for the coming period."""
        raise NotImplementedError


@dataclass
class TitForTatChoker(ChokingPolicy):
    """The standard BitTorrent leecher policy.

    Attributes
    ----------
    regular_slots:
        Number of Tit-for-Tat slots (the paper's b0; BitTorrent default 3).
    optimistic_slots:
        Number of optimistic unchoke slots (default 1, making 4 in total).
    optimistic_period:
        How many rechoke rounds an optimistic unchoke is kept before being
        rotated (BitTorrent uses 3 x 10 s; the simulator's rounds are
        rechoke periods, so the default is 3).
    """

    regular_slots: int = 3
    optimistic_slots: int = 1
    optimistic_period: int = 3
    _optimistic: Dict[int, List[int]] = field(default_factory=dict, repr=False)
    _age: Dict[int, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.regular_slots < 0:
            raise ValueError("regular_slots cannot be negative")
        if self.optimistic_slots < 0:
            raise ValueError("optimistic_slots cannot be negative")
        if self.optimistic_period <= 0:
            raise ValueError("optimistic_period must be positive")

    @property
    def total_slots(self) -> int:
        """Regular + optimistic slot count."""
        return self.regular_slots + self.optimistic_slots

    def select_unchoked(
        self,
        peer_id: int,
        interested: Sequence[int],
        received: Mapping[int, float],
        rng: np.random.Generator,
    ) -> UnchokeDecision:
        """Top uploaders fill the TFT slots; the rest compete for optimistic ones."""
        interested = list(interested)
        if not interested:
            return UnchokeDecision()

        # Tit-for-Tat slots: neighbors ranked by what they sent us recently.
        by_contribution = sorted(
            interested, key=lambda q: (-received.get(q, 0.0), q)
        )
        contributors = [q for q in by_contribution if received.get(q, 0.0) > 0.0]
        regular = contributors[: self.regular_slots]

        # Optimistic slots: rotate among the remaining interested neighbors.
        remaining = [q for q in interested if q not in regular]
        optimistic = self._rotate_optimistic(peer_id, remaining, rng)

        # If some TFT slots are unused (nobody uploaded to us), fill them
        # optimistically as well -- this is what bootstraps a cold swarm.
        spare = self.regular_slots - len(regular)
        if spare > 0:
            extra_pool = [q for q in remaining if q not in optimistic]
            rng.shuffle(extra_pool)
            optimistic = optimistic + extra_pool[:spare]

        return UnchokeDecision(regular=regular, optimistic=optimistic)

    def _rotate_optimistic(
        self, peer_id: int, pool: List[int], rng: np.random.Generator
    ) -> List[int]:
        return rotate_optimistic(
            self._optimistic,
            self._age,
            peer_id,
            pool,
            rng,
            self.optimistic_slots,
            self.optimistic_period,
        )


@dataclass
class SeedChoker(ChokingPolicy):
    """Seed policy: unchoke a rotating random subset of interested peers."""

    slots: int = 4

    def __post_init__(self) -> None:
        if self.slots <= 0:
            raise ValueError("a seed needs at least one unchoke slot")

    def select_unchoked(
        self,
        peer_id: int,
        interested: Sequence[int],
        received: Mapping[int, float],
        rng: np.random.Generator,
    ) -> UnchokeDecision:
        del peer_id, received
        return UnchokeDecision(optimistic=seed_unchoke(interested, self.slots, rng))
