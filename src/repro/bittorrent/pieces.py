"""Torrent content model: pieces and bitfields.

The swarm simulator works at piece granularity, like BitTorrent itself: a
torrent is a sequence of equally-sized pieces, every peer tracks which
pieces it holds in a bitfield, and transfers move whole pieces (fractional
progress within a round is accumulated by the swarm simulator).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Set

import numpy as np

__all__ = ["Torrent", "Bitfield"]


@dataclass(frozen=True)
class Torrent:
    """Static description of the shared content.

    Attributes
    ----------
    piece_count:
        Number of pieces.
    piece_size_kb:
        Size of one piece in kilobits (so that rates in kbps divide evenly).
    """

    piece_count: int
    piece_size_kb: float = 256.0

    def __post_init__(self) -> None:
        if self.piece_count <= 0:
            raise ValueError("a torrent needs at least one piece")
        if self.piece_size_kb <= 0:
            raise ValueError("piece size must be positive")

    @property
    def total_size_kb(self) -> float:
        """Total content size in kilobits."""
        return self.piece_count * self.piece_size_kb

    def pieces(self) -> range:
        """Iterator over piece indices."""
        return range(self.piece_count)


class Bitfield:
    """The set of pieces a peer holds."""

    def __init__(self, piece_count: int, have: Optional[Iterable[int]] = None) -> None:
        if piece_count <= 0:
            raise ValueError("piece_count must be positive")
        self._piece_count = piece_count
        self._have: Set[int] = set()
        if have is not None:
            for piece in have:
                self.add(piece)

    @classmethod
    def complete(cls, piece_count: int) -> "Bitfield":
        """A bitfield holding every piece (a seed)."""
        return cls(piece_count, range(piece_count))

    @classmethod
    def empty(cls, piece_count: int) -> "Bitfield":
        """A bitfield holding nothing (a fresh leecher)."""
        return cls(piece_count)

    @property
    def piece_count(self) -> int:
        """Total number of pieces in the torrent."""
        return self._piece_count

    def add(self, piece: int) -> None:
        """Mark a piece as held."""
        if not 0 <= piece < self._piece_count:
            raise IndexError(f"piece {piece} outside 0..{self._piece_count - 1}")
        self._have.add(piece)

    def has(self, piece: int) -> bool:
        """Whether the piece is held."""
        return piece in self._have

    def held(self) -> Set[int]:
        """The set of held piece indices (do not mutate)."""
        return self._have

    def missing(self) -> Set[int]:
        """The set of missing piece indices."""
        return set(range(self._piece_count)) - self._have

    def count(self) -> int:
        """Number of held pieces."""
        return len(self._have)

    def is_complete(self) -> bool:
        """Whether all pieces are held."""
        return len(self._have) == self._piece_count

    def completion(self) -> float:
        """Fraction of pieces held."""
        return len(self._have) / self._piece_count

    def interesting_pieces(self, other: "Bitfield") -> Set[int]:
        """Pieces held by ``other`` that this bitfield is missing."""
        return other._have - self._have

    def is_interested_in(self, other: "Bitfield") -> bool:
        """BitTorrent 'interested': the other peer has something we miss."""
        return bool(other._have - self._have)

    def __len__(self) -> int:
        return len(self._have)

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._have))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Bitfield({len(self._have)}/{self._piece_count})"
