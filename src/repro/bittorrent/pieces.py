"""Torrent content model: pieces and bitfields.

The swarm simulator works at piece granularity, like BitTorrent itself: a
torrent is a sequence of equally-sized pieces, every peer tracks which
pieces it holds in a bitfield, and transfers move whole pieces (fractional
progress within a round is accumulated by the swarm simulator).
"""

from __future__ import annotations

import warnings
from dataclasses import InitVar, dataclass
from typing import Iterable, Iterator, Optional, Set


__all__ = ["Torrent", "Bitfield"]


@dataclass(frozen=True)
class Torrent:
    """Static description of the shared content.

    Attributes
    ----------
    piece_count:
        Number of pieces.
    piece_size_kbit:
        Size of one piece in kilobits, so that upload capacities in kbps
        divide evenly (``piece_size_kbit / upload_kbps`` is seconds).  The
        old ``piece_size_kb`` spelling is accepted as a deprecated alias --
        the unit was always kilobits, only the name was ambiguous.
    """

    piece_count: int
    piece_size_kbit: float = 256.0
    piece_size_kb: InitVar[Optional[float]] = None  # repro: allow[RPD005] -- deprecation shim for the *_kb -> *_kbit rename

    def __post_init__(self, piece_size_kb: Optional[float]) -> None:  # repro: allow[RPD005] -- deprecation shim for the *_kb -> *_kbit rename
        if piece_size_kb is not None:  # repro: allow[RPD005] -- deprecation shim for the *_kb -> *_kbit rename
            if self.piece_size_kbit != type(self).piece_size_kbit:
                raise TypeError(
                    "pass piece_size_kbit or the deprecated piece_size_kb, "
                    "not both"
                )
            warnings.warn(
                "piece_size_kb is deprecated (the unit is kilobits); "
                "use piece_size_kbit",
                DeprecationWarning,
                stacklevel=3,
            )
            object.__setattr__(self, "piece_size_kbit", piece_size_kb)  # repro: allow[RPD005] -- deprecation shim for the *_kb -> *_kbit rename
        if self.piece_count <= 0:
            raise ValueError("a torrent needs at least one piece")
        if self.piece_size_kbit <= 0:
            raise ValueError("piece size must be positive")

    def __getattr__(self, name: str):
        if name == "piece_size_kb":
            warnings.warn(
                "piece_size_kb is deprecated; use piece_size_kbit",
                DeprecationWarning,
                stacklevel=2,
            )
            return self.piece_size_kbit
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    @property
    def total_size_kbit(self) -> float:
        """Total content size in kilobits."""
        return self.piece_count * self.piece_size_kbit

    @property
    def total_size_kb(self) -> float:  # repro: allow[RPD005] -- deprecation shim for the *_kb -> *_kbit rename
        """Deprecated alias of :attr:`total_size_kbit`."""
        warnings.warn(
            "total_size_kb is deprecated; use total_size_kbit",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.total_size_kbit

    def pieces(self) -> range:
        """Iterator over piece indices."""
        return range(self.piece_count)


# The InitVar default survives as a class attribute, which would shadow the
# __getattr__ deprecation shim; the generated __init__ keeps its own copy.
del Torrent.piece_size_kb  # repro: allow[RPD005] -- deprecation shim for the *_kb -> *_kbit rename


class Bitfield:
    """The set of pieces a peer holds."""

    def __init__(self, piece_count: int, have: Optional[Iterable[int]] = None) -> None:
        if piece_count <= 0:
            raise ValueError("piece_count must be positive")
        self._piece_count = piece_count
        self._have: Set[int] = set()
        if have is not None:
            for piece in have:
                self.add(piece)

    @classmethod
    def complete(cls, piece_count: int) -> "Bitfield":
        """A bitfield holding every piece (a seed)."""
        return cls(piece_count, range(piece_count))

    @classmethod
    def from_indices(cls, piece_count: int, have: Iterable[int]) -> "Bitfield":
        """Build a bitfield from trusted indices with one bulk bounds check.

        Unlike the element-wise constructor this validates the range once,
        which is what lets the fast engine materialize 100k bitfields
        without a per-piece Python call.
        """
        bitfield = cls(piece_count)
        held = set(have)
        if held and not (0 <= min(held) and max(held) < piece_count):
            raise IndexError(f"piece indices outside 0..{piece_count - 1}")
        bitfield._have = held
        return bitfield

    @classmethod
    def empty(cls, piece_count: int) -> "Bitfield":
        """A bitfield holding nothing (a fresh leecher)."""
        return cls(piece_count)

    @property
    def piece_count(self) -> int:
        """Total number of pieces in the torrent."""
        return self._piece_count

    def add(self, piece: int) -> None:
        """Mark a piece as held."""
        if not 0 <= piece < self._piece_count:
            raise IndexError(f"piece {piece} outside 0..{self._piece_count - 1}")
        self._have.add(piece)

    def has(self, piece: int) -> bool:
        """Whether the piece is held."""
        return piece in self._have

    def held(self) -> Set[int]:
        """The set of held piece indices (do not mutate)."""
        return self._have

    def missing(self) -> Set[int]:
        """The set of missing piece indices."""
        return set(range(self._piece_count)) - self._have

    def count(self) -> int:
        """Number of held pieces."""
        return len(self._have)

    def is_complete(self) -> bool:
        """Whether all pieces are held."""
        return len(self._have) == self._piece_count

    def completion(self) -> float:
        """Fraction of pieces held."""
        return len(self._have) / self._piece_count

    def interesting_pieces(self, other: "Bitfield") -> Set[int]:
        """Pieces held by ``other`` that this bitfield is missing."""
        return other._have - self._have

    def is_interested_in(self, other: "Bitfield") -> bool:
        """BitTorrent 'interested': the other peer has something we miss."""
        return bool(other._have - self._have)

    def __len__(self) -> int:
        return len(self._have)

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._have))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Bitfield({len(self._have)}/{self._piece_count})"
