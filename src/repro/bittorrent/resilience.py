"""Client-side swarm resilience: failover, peer exchange, eviction.

The fault layer (:mod:`repro.bittorrent.faults`) made the paper's hidden
assumptions breakable -- one tracker, lossless delivery, graceful exits --
but left the clients defenseless: an announce that finds the tracker down
just queues and backs off, and a crashed peer's stale registration is
handed out until the end of the run.  This module adds the defenses real
BitTorrent deployments grew for exactly these failures, as one composable
:class:`ResiliencePolicy` threaded through ``SwarmConfig(resilience=...)``:

``trackers=N`` (multi-tracker failover)
    The announce list holds ``N`` replicas of the tracker.  Fault outage
    windows target individual replicas (``outage:START+ROUNDS/R``, or
    ``/all``), each peer prefers a replica drawn once at join time from
    the registered ``tracker-select`` stream, and an announce walks the
    list in order from the preferred replica to the first live one.  The
    swarm only loses tracker service when *every* replica is down -- a
    full outage degenerates to the single-tracker behaviour (queue +
    doubling backoff), a partial one costs nothing but a failover.

``pex`` (peer-exchange gossip)
    While every replica is unreachable, each round every peer that pushed
    a transfer gossips a bounded sample of its live neighbor ids to the
    receiving partner, drawn as one pinned batch per round from the
    registered ``pex-gossip`` stream.  A peer arriving mid-blackout also
    samples a handful of longer-lived peers (its "resume cache") instead
    of stalling alone in the retry queue.

``keepalive_timeout=T`` (dead-neighbor eviction)
    A crashed peer that had neighbors is detected after ``T`` rounds
    without a completed transfer; its eviction schedules a *purge* of the
    stale tracker registration, delivered on the next round the tracker
    is reachable -- after which announces stop handing out the ghost and
    scrape populations deflate back to the truth
    (see ``Tracker.stale_count``).

Determinism contract: every random decision flows through the two
registered engine-paired streams (:data:`repro.sim.streams.TRACKER_SELECT`,
:data:`repro.sim.streams.PEX_GOSSIP`), drawn at pinned protocol points in
*both* swarm engines; the shared :class:`ResilienceRuntime` holds the
pid-level bookkeeping and never draws on its own (the engines pass the
stream in, like :class:`~repro.bittorrent.faults.FaultRuntime`).  The
default policy is trivial: it draws nothing, takes no branch, and leaves
every pre-resilience run byte-identical -- the existing golden traces
prove it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.bittorrent.faults import FaultSchedule

__all__ = [
    "RESILIENCE_PRESET_NAMES",
    "ResiliencePolicy",
    "ResilienceStats",
    "ResilienceRuntime",
    "make_resilience",
    "resolve_resilience",
    "sample_pools",
]


@dataclass(frozen=True)
class ResiliencePolicy:
    """The client-side defenses enabled for one run.

    Attributes
    ----------
    trackers:
        Number of tracker replicas in the announce list (1 = the paper's
        single tracker; no replica preference is drawn).
    pex:
        Whether peers gossip neighbor samples while every replica is
        unreachable.
    pex_sample:
        Upper bound on the neighbor ids one gossip message carries.
    keepalive_timeout:
        Rounds without a completed transfer after which a crashed
        neighbor is declared dead and its stale tracker registration is
        queued for purging (0 disables eviction).
    """

    trackers: int = 1
    pex: bool = False
    pex_sample: int = 8
    keepalive_timeout: int = 0

    def __post_init__(self) -> None:
        if self.trackers < 1:
            raise ValueError("trackers must be >= 1")
        if self.pex_sample < 1:
            raise ValueError("pex_sample must be >= 1")
        if self.keepalive_timeout < 0:
            raise ValueError("keepalive_timeout cannot be negative")

    @property
    def is_trivial(self) -> bool:
        """Whether the policy changes nothing (and so draws nothing)."""
        return (
            self.trackers == 1 and not self.pex and self.keepalive_timeout == 0
        )


@dataclass(frozen=True)
class ResilienceStats:
    """Counters the resilience layer accumulated over one run.

    Bit-identical across engines (every increment happens in the shared
    :class:`ResilienceRuntime` at pinned protocol points); attached to
    ``SwarmResult.resilience`` when the policy is non-trivial, ``None``
    otherwise so pre-resilience result payloads are unchanged.
    """

    replica_announces: Tuple[int, ...]
    failover_announces: int
    pex_introductions: int
    pex_bootstraps: int
    evictions: int
    purges: int


# Named policies reachable from the CLI (`--resilience`) and the
# experiment drivers; make_resilience also parses "knob:value,..." specs.
_RESILIENCE_PRESETS: Dict[str, ResiliencePolicy] = {
    "off": ResiliencePolicy(),
    "failover": ResiliencePolicy(trackers=3),
    "pex": ResiliencePolicy(pex=True),
    "full": ResiliencePolicy(trackers=3, pex=True, keepalive_timeout=5),
}

RESILIENCE_PRESET_NAMES = tuple(sorted(_RESILIENCE_PRESETS))


def _parse_resilience_spec(spec: str) -> ResiliencePolicy:
    """Parse a comma list of resilience knobs.

    Grammar::

        trackers:N        N-replica announce list
        pex               gossip with the default sample bound
        pex:SAMPLE        gossip with samples of at most SAMPLE ids
        keepalive:T       evict crashed neighbors after T silent rounds

    A malformed token raises a :class:`ValueError` naming the token, same
    discipline as the fault-spec parser.
    """
    kwargs: Dict[str, object] = {}
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        knob, colon, value = token.partition(":")
        knob = knob.strip()
        value = value.strip()
        try:
            if knob == "trackers":
                kwargs["trackers"] = int(value)
            elif knob == "pex":
                kwargs["pex"] = True
                if colon:
                    kwargs["pex_sample"] = int(value)
            elif knob == "keepalive":
                kwargs["keepalive_timeout"] = int(value)
            else:
                raise ValueError(
                    "unknown resilience knob (available: trackers:N, "
                    "pex[:SAMPLE], keepalive:T)"
                )
        except ValueError as exc:
            raise ValueError(
                f"resilience spec error in token '{token}': {exc}"
            ) from None
    return ResiliencePolicy(**kwargs)  # type: ignore[arg-type]


def make_resilience(spec: str) -> ResiliencePolicy:
    """Build a :class:`ResiliencePolicy` from a preset name or a spec string.

    ``spec`` is either one of :data:`RESILIENCE_PRESET_NAMES` or a comma
    list of knobs (see :func:`_parse_resilience_spec`), e.g.
    ``"trackers:3"`` or ``"trackers:2,pex:4,keepalive:5"``.
    """
    if spec in _RESILIENCE_PRESETS:
        return _RESILIENCE_PRESETS[spec]
    if ":" not in spec:
        raise ValueError(
            f"unknown resilience preset '{spec}' "
            f"(available: {', '.join(RESILIENCE_PRESET_NAMES)}; or pass a "
            f"'knob:value,...' spec)"
        )
    return _parse_resilience_spec(spec)


def resolve_resilience(
    resilience: Union["ResiliencePolicy", str, None],
) -> ResiliencePolicy:
    """Normalize a ``resilience=`` argument to a :class:`ResiliencePolicy`.

    Accepts a policy, a preset name / spec string, or ``None`` (the
    trivial no-defense policy).
    """
    if resilience is None:
        return ResiliencePolicy()
    if isinstance(resilience, str):
        return make_resilience(resilience)
    if not isinstance(resilience, ResiliencePolicy):
        raise TypeError(
            "resilience must be a ResiliencePolicy, a preset name / spec "
            "string or None"
        )
    return resilience


def sample_pools(
    pools: Sequence[Sequence[int]],
    sample_size: int,
    rng: np.random.Generator,
) -> List[List[int]]:
    """Draw one bounded sample per pool, as a single pinned batch.

    For each pool, ``min(sample_size, len(pool))`` elements are picked
    without replacement via a partial Fisher-Yates (``pool.pop(draw)``),
    and the pick bounds of *all* pools concatenate into one
    ``rng.integers(0, bounds)`` batch -- the draw-batching idiom the fast
    engine's piece selector uses, shared here so both engines consume the
    ``pex-gossip`` stream identically by construction.  Empty pools
    contribute no bounds; an all-empty call draws nothing.
    """
    picks = [min(sample_size, len(pool)) for pool in pools]
    bounds: List[int] = []
    for pool, k in zip(pools, picks):
        bounds.extend(range(len(pool), len(pool) - k, -1))
    if not bounds:
        return [[] for _ in pools]
    draws = rng.integers(0, np.asarray(bounds, dtype=np.int64)).tolist()
    samples: List[List[int]] = []
    cursor = 0
    for pool, k in zip(pools, picks):
        working = list(pool)
        picked: List[int] = []
        for _ in range(k):
            picked.append(int(working.pop(draws[cursor])))
            cursor += 1
        samples.append(picked)
    return samples


class ResilienceRuntime:
    """Mutable per-run resilience bookkeeping, shared by both engines.

    Keyed by 1-based peer id like :class:`~repro.bittorrent.faults.
    FaultRuntime`; the engines call the mutating methods at the pinned
    protocol points documented in ``docs/resilience.md`` and pass any
    random stream in, so the runtime itself stays engine-agnostic.  Also
    validates the fault schedule against the policy at construction:
    an outage targeting a replica the announce list does not have is a
    configuration error, not a silently dead event.
    """

    def __init__(self, policy: ResiliencePolicy, schedule: FaultSchedule) -> None:
        self.policy = policy
        self.active = not policy.is_trivial
        if schedule.max_targeted_replica >= policy.trackers:
            raise ValueError(
                f"fault schedule targets tracker replica "
                f"{schedule.max_targeted_replica} but the resilience policy "
                f"has only {policy.trackers} replica(s) "
                f"(announce-list indices are 0-based)"
            )
        self.schedule = schedule
        self._preferred: Dict[int, int] = {}
        # pid -> eviction due round; the due-round buckets drive the scan.
        self._evict_scheduled: Dict[int, int] = {}
        self._evict_due: Dict[int, List[int]] = {}
        self._pending_purges: List[int] = []
        # -- counters (identical across engines by construction) --
        self.replica_announces: List[int] = [0] * policy.trackers
        self.failover_announces = 0
        self.pex_introductions = 0
        self.pex_bootstraps = 0
        self.evictions = 0
        self.purges = 0

    # -- replica selection --------------------------------------------------------

    def assign_preferences(
        self, pids: Sequence[int], rng: np.random.Generator
    ) -> None:
        """Draw each peer's preferred replica (one batch per join wave).

        Consumes one ``rng.integers`` batch iff the announce list has more
        than one replica and ``pids`` is non-empty; a single-tracker
        policy draws nothing.  Rejoining crashed peers keep their original
        preference and must not be re-passed here.
        """
        if self.policy.trackers <= 1 or not pids:
            return
        draws = rng.integers(0, self.policy.trackers, size=len(pids))
        for pid, draw in zip(pids, draws):
            self._preferred[int(pid)] = int(draw)

    def serving_replica(self, pid: int, round_index: int) -> Optional[int]:
        """The replica that serves ``pid``'s announce this round.

        Walks the announce list in order from the preferred replica and
        returns the first live one (``None`` during a full blackout).
        Purely deterministic -- no stream is consumed.
        """
        preferred = self._preferred.get(pid, 0)
        for step in range(self.policy.trackers):
            replica = (preferred + step) % self.policy.trackers
            if not self.schedule.replica_down(round_index, replica):
                return replica
        return None

    def record_announce(self, pid: int, round_index: int) -> None:
        """Account a successful announce to the replica that served it."""
        replica = self.serving_replica(pid, round_index)
        if replica is None:  # pragma: no cover -- callers gate on tracker_up
            return
        self.replica_announces[replica] += 1
        if replica != self._preferred.get(pid, 0):
            self.failover_announces += 1

    # -- dead-neighbor eviction ----------------------------------------------------

    def note_crash(self, pid: int, round_index: int, had_neighbors: bool) -> None:
        """Start the keepalive clock on a freshly crashed peer.

        Only peers that had neighbors are detectable (somebody must miss
        their transfers); with ``keepalive_timeout=0`` nothing is
        scheduled.
        """
        if self.policy.keepalive_timeout <= 0 or not had_neighbors:
            return
        due = round_index + self.policy.keepalive_timeout
        self._evict_scheduled[pid] = due
        self._evict_due.setdefault(due, []).append(pid)

    def cancel_eviction(self, pid: int) -> None:
        """A crashed peer rejoined before its timeout: it is not dead."""
        self._evict_scheduled.pop(pid, None)

    def begin_round(self, round_index: int) -> None:
        """Fire the evictions falling due; call right after fault recovery.

        An evicted pid moves to the purge queue; the purge itself is
        delivered by the engine on the next round the tracker is
        reachable (:meth:`drain_purges`).
        """
        for pid in sorted(self._evict_due.pop(round_index, [])):
            if self._evict_scheduled.get(pid) != round_index:
                continue  # rejoined (or rescheduled) meanwhile
            del self._evict_scheduled[pid]
            self.evictions += 1
            self._pending_purges.append(pid)

    def drain_purges(self) -> List[int]:
        """Pop the stale registrations awaiting a reachable tracker, sorted."""
        purges = sorted(self._pending_purges)
        self._pending_purges = []
        return purges

    def count_purge(self) -> None:
        """One stale registration actually left a tracker."""
        self.purges += 1

    # -- PEX accounting -----------------------------------------------------------

    def count_introduction(self) -> None:
        """One gossip message created a previously unknown edge."""
        self.pex_introductions += 1

    def count_bootstrap(self) -> None:
        """One blacked-out arrival found contacts through its resume cache."""
        self.pex_bootstraps += 1

    # -- result -------------------------------------------------------------------

    def stats(self) -> ResilienceStats:
        """Freeze the counters for ``SwarmResult.resilience``."""
        return ResilienceStats(
            replica_announces=tuple(self.replica_announces),
            failover_announces=self.failover_announces,
            pex_introductions=self.pex_introductions,
            pex_bootstraps=self.pex_bootstraps,
            evictions=self.evictions,
            purges=self.purges,
        )
