"""Dynamic-swarm scenarios: arrivals, departures, flash crowds.

The paper's stratification results are stated for the *post flash-crowd
steady state*; historically the simulator could only assume that regime by
building a fixed population once.  A :class:`ScenarioSchedule` turns the
population into a flux: per-round peer arrivals (Poisson or a flash-crowd
burst), departures of completed leechers (leave on completion, or linger as
a seed for a configurable number of rounds), and a per-arrival upload
capacity distribution.

The schedule is deliberately *pure configuration plus pure functions of the
shared random streams*: both swarm engines (the reference dictionary
simulator and the packed-bit array engine) call the same methods, in the
same per-round order, on the same :class:`~repro.sim.random_source.
RandomSource` streams, which is what keeps every scenario bit-identical
across engines under a shared seed.  A static schedule draws nothing and
departs nobody, so ``scenario=None``, ``scenario="static"`` and
``ScenarioSchedule()`` all reproduce the fixed-population behaviour
draw for draw.

Per-round protocol (both engines, pinned order):

1. departures due this round (no randomness -- a completed leecher departs
   at the start of round ``completed_round + 1 + linger``),
2. one arrival-count draw from the ``"scenario"`` stream (only for
   non-static arrival processes),
3. one capacity batch from the ``"bandwidth"`` stream for the arrivals,
4. per arrival: optional bootstrap pieces from the ``"bootstrap"`` stream,
   then one tracker announce from the ``"tracker"`` stream.

Under a fault schedule (:mod:`repro.bittorrent.faults`) the scenario
itself is unchanged -- the same draws happen at the same points -- but
the tracker interactions it triggers may be deferred: an arrival during
a tracker outage still joins the swarm and consumes its capacity and
bootstrap draws, but its announce is *queued* (drawing nothing) and
retried with deterministic backoff, consuming the tracker draw only when
it finally succeeds; a departure during an outage leaves immediately
while its depart (and any completion) notification is delivered on
recovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.bittorrent.bandwidth import BandwidthDistribution, saroiu_like_distribution
from repro.bittorrent.behaviors import BehaviorMix, resolve_behavior_mix

__all__ = [
    "ARRIVAL_PROCESSES",
    "DEPARTURE_POLICIES",
    "SCENARIO_NAMES",
    "ScenarioSchedule",
    "make_scenario",
    "resolve_scenario",
]

ARRIVAL_PROCESSES = ("static", "poisson", "flashcrowd")
DEPARTURE_POLICIES = ("stay", "leave", "linger")


@dataclass(frozen=True)
class ScenarioSchedule:
    """Membership dynamics of one swarm simulation.

    Attributes
    ----------
    arrivals:
        Arrival process: ``"static"`` (nobody joins), ``"poisson"``
        (``arrival_rate`` expected joins per round) or ``"flashcrowd"``
        (``burst_size`` peers join at round ``burst_round``, plus an
        optional Poisson ``background_rate``).
    arrival_rate:
        Expected arrivals per round for the Poisson process.
    burst_round:
        Round at which the flash crowd hits (rounds count from 1).
    burst_size:
        Number of peers in the flash-crowd burst.
    background_rate:
        Poisson arrival rate around the burst (flash crowds in the wild sit
        on top of a background trickle); 0 draws nothing.
    max_arrivals:
        Hard cap on the total number of arrivals (``None`` = unbounded).
    departure:
        What a leecher does once it completes: ``"stay"`` (keep seeding
        forever -- the fixed-population behaviour), ``"leave"`` (depart at
        the start of the next round) or ``"linger"`` (seed for
        ``linger_rounds`` rounds, then depart).  Initial seeds never leave.
    linger_rounds:
        Rounds a completed leecher keeps seeding under ``"linger"``.
    arrival_completion:
        Fraction of pieces an arriving peer already holds (fresh joiners by
        default; clamped so an arrival is never instantly complete).
    capacity:
        Upload-capacity distribution sampled per arrival (the Saroiu-style
        mixture when omitted).
    behaviors:
        Behavior mix of the *arriving* peers (a
        :class:`~repro.bittorrent.behaviors.BehaviorMix`, a preset name /
        spec string, or ``None`` to inherit the swarm's configured mix) --
        e.g. a flash crowd of free-riders hitting an obedient swarm.
    """

    arrivals: str = "static"
    arrival_rate: float = 0.0
    burst_round: int = 1
    burst_size: int = 0
    background_rate: float = 0.0
    max_arrivals: Optional[int] = None
    departure: str = "stay"
    linger_rounds: int = 0
    arrival_completion: float = 0.0
    capacity: Optional[BandwidthDistribution] = None
    behaviors: "BehaviorMix | str | None" = None

    def __post_init__(self) -> None:
        if self.behaviors is not None:
            object.__setattr__(
                self, "behaviors", resolve_behavior_mix(self.behaviors)
            )
        if self.arrivals not in ARRIVAL_PROCESSES:
            raise ValueError(
                f"unknown arrival process '{self.arrivals}' "
                f"(available: {', '.join(ARRIVAL_PROCESSES)})"
            )
        if self.departure not in DEPARTURE_POLICIES:
            raise ValueError(
                f"unknown departure policy '{self.departure}' "
                f"(available: {', '.join(DEPARTURE_POLICIES)})"
            )
        if self.arrival_rate < 0 or self.background_rate < 0:
            raise ValueError("arrival rates cannot be negative")
        if self.arrivals == "poisson" and self.arrival_rate == 0:
            raise ValueError("a poisson scenario needs arrival_rate > 0")
        if self.burst_round < 1:
            raise ValueError("burst_round counts from 1")
        if self.burst_size < 0:
            raise ValueError("burst_size cannot be negative")
        if self.arrivals == "flashcrowd" and self.burst_size == 0 and self.background_rate == 0:
            raise ValueError("a flashcrowd scenario needs a burst or a background rate")
        if self.max_arrivals is not None and self.max_arrivals < 0:
            raise ValueError("max_arrivals cannot be negative")
        if self.linger_rounds < 0:
            raise ValueError("linger_rounds cannot be negative")
        if not 0.0 <= self.arrival_completion < 1.0:
            raise ValueError("arrival_completion must be in [0, 1)")

    # -- properties ---------------------------------------------------------------

    @property
    def is_static(self) -> bool:
        """Whether this schedule reproduces the fixed-population behaviour."""
        return self.arrivals == "static" and self.departure == "stay"

    @property
    def effective_linger(self) -> int:
        """Seeding rounds after completion (``"leave"`` forces 0)."""
        return 0 if self.departure == "leave" else self.linger_rounds

    # -- arrival process ----------------------------------------------------------

    def arrivals_for_round(
        self, round_index: int, total_arrived: int, rng: np.random.Generator
    ) -> int:
        """Number of peers joining at the start of ``round_index``.

        Consumes at most one Poisson draw; a static schedule (and a
        flashcrowd with no background rate) draws nothing, so enabling
        scenarios cannot perturb the streams of a fixed-population run.
        Both engines call this with the same ``"scenario"`` stream.
        """
        if self.arrivals == "static":
            return 0
        count = 0
        if self.arrivals == "poisson":
            count = int(rng.poisson(self.arrival_rate))
        elif self.arrivals == "flashcrowd":
            if round_index == self.burst_round:
                count += self.burst_size
            if self.background_rate > 0:
                count += int(rng.poisson(self.background_rate))
        if self.max_arrivals is not None:
            count = min(count, self.max_arrivals - total_arrived)
        return max(0, count)

    def more_arrivals_after(self, round_index: int, total_arrived: int) -> bool:
        """Whether any later round can still see an arrival.

        Gates the early-exit when every present leecher has completed: a
        static schedule never blocks it (same exit as the fixed-population
        simulator), an open Poisson process always does.
        """
        if self.arrivals == "static":
            return False
        if self.max_arrivals is not None and total_arrived >= self.max_arrivals:
            return False
        if self.arrivals == "poisson":
            return True
        return self.background_rate > 0 or round_index < self.burst_round

    def sample_capacities(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Upload capacities (kbps) for ``count`` arrivals, one batch draw."""
        dist = self.capacity if self.capacity is not None else saroiu_like_distribution()
        return np.asarray(dist.sample(count, rng), dtype=float)

    def arrival_pieces(self, piece_count: int) -> int:
        """Bootstrap pieces an arrival holds (never a complete bitfield)."""
        return min(
            int(round(self.arrival_completion * piece_count)), piece_count - 1
        )

    # -- departure policy ---------------------------------------------------------

    def should_depart(self, completed_round: Optional[int], round_index: int) -> bool:
        """Whether a leecher that completed in ``completed_round`` departs now.

        Departure happens at the *start* of round
        ``completed_round + 1 + effective_linger``: a leaver still uploads
        for the remainder of its completion round, a lingerer seeds for
        ``linger_rounds`` further whole rounds.  Purely deterministic -- no
        random stream is consumed, so both engines agree trivially.
        """
        if self.departure == "stay" or completed_round is None:
            return False
        return round_index > completed_round + self.effective_linger


# Named presets reachable from the CLI (`--scenario`) and the experiment
# drivers; make_scenario(**overrides) tweaks any field.
_PRESETS = {
    "static": {},
    "poisson": {
        "arrivals": "poisson",
        "arrival_rate": 2.0,
        "departure": "leave",
    },
    "flashcrowd": {
        "arrivals": "flashcrowd",
        "burst_round": 5,
        "burst_size": 40,
        "departure": "leave",
    },
    "seed-linger": {
        "arrivals": "poisson",
        "arrival_rate": 2.0,
        "departure": "linger",
        "linger_rounds": 5,
    },
}

SCENARIO_NAMES = tuple(sorted(_PRESETS))


def make_scenario(name: str, **overrides) -> ScenarioSchedule:
    """Build a named scenario preset, with per-field overrides.

    ``static`` -- nobody joins or leaves (the paper's assumed steady
    state); ``poisson`` -- continuous arrivals, leave on completion;
    ``flashcrowd`` -- a burst of fresh joiners at round 5, leave on
    completion; ``seed-linger`` -- continuous arrivals, completed leechers
    seed for five rounds before leaving.
    """
    if name not in _PRESETS:
        raise ValueError(
            f"unknown scenario '{name}' (available: {', '.join(SCENARIO_NAMES)})"
        )
    return ScenarioSchedule(**{**_PRESETS[name], **overrides})


def resolve_scenario(
    scenario: Union[ScenarioSchedule, str, None],
) -> ScenarioSchedule:
    """Normalize a ``scenario=`` argument to a :class:`ScenarioSchedule`.

    Accepts a schedule, a preset name, or ``None`` (static).
    """
    if scenario is None:
        return ScenarioSchedule()
    if isinstance(scenario, str):
        return make_scenario(scenario)
    if not isinstance(scenario, ScenarioSchedule):
        raise TypeError("scenario must be a ScenarioSchedule, a preset name or None")
    return scenario
