"""Central registry of named random streams (the determinism contract).

Every stochastic component draws its randomness from a *named* child
stream of a :class:`~repro.sim.random_source.RandomSource`.  The names are
the contract that keeps ``engine="fast"`` and ``engine="reference"``
bit-identical under a shared seed: both engines must request the same
stream names, in the same per-round order, and consume the same number of
draws from each.

This module is the single place where stream names are declared.  Code
must consume streams through the constants below (``streams.BANDWIDTH``,
never the bare literal ``"bandwidth"``); the determinism linter
(:mod:`repro.devtools.lint`, rule RPD002) rejects string-literal stream
names that are not declared here and checks that the reference and fast
engine trees consume the same *engine-paired* stream sets.

Adding a new stochastic feature therefore means:

1. declare its stream here (constant + :class:`StreamSpec` entry, with
   ``engine_paired=True`` if both engine trees will consume it);
2. consume it via ``source.stream(streams.YOUR_STREAM)``;
3. run ``repro-p2p-lint src`` -- an undeclared or unpaired stream is a
   lint failure, not a 60-second equivalence-test failure.

See ``docs/determinism.md`` for the full discipline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping

__all__ = [
    "StreamSpec",
    "REGISTRY",
    "GRAPH",
    "CHURN",
    "SCORES",
    "INITIATIVES",
    "BANDWIDTH",
    "BOOTSTRAP",
    "TRACKER",
    "SCENARIO",
    "BEHAVIOR",
    "ROUNDS",
    "POPULATION",
    "TELEMETRY_POLL",
    "FAULT_LOSS",
    "FAULT_CRASH",
    "FAULT_PARTITION",
    "TRACKER_SELECT",
    "PEX_GOSSIP",
    "DYNAMIC_PREFIXES",
    "registered_names",
    "is_registered",
    "spec",
    "paired_names",
    "constant_map",
]


@dataclass(frozen=True)
class StreamSpec:
    """Declaration of one named random stream.

    Attributes
    ----------
    name:
        The stream name passed to :meth:`RandomSource.stream`.
    domain:
        Which subsystem owns the stream (``"core"`` for the matching
        dynamics, ``"bittorrent"`` for the swarm simulator).
    engine_paired:
        Whether the stream is consumed inside *both* trees of an
        engine pair (``core/`` vs ``core/fast/``, ``bittorrent/`` vs
        ``bittorrent/fast/``).  Paired streams are subject to the
        linter's cross-engine parity check; unpaired streams live in
        shared drivers, analysis modules or observers that have no fast
        counterpart.
    description:
        What the stream's draws decide.
    """

    name: str
    domain: str
    engine_paired: bool
    description: str


# -- core (matching dynamics) ---------------------------------------------------

#: Acceptance-graph generation (Erdős–Rényi edges, fresh churn neighborhoods).
GRAPH = "graph"
#: Churn event scheduling: whether an event fires, join-vs-leave, victim draw.
CHURN = "churn"
#: Fresh peer scores drawn when churn introduces a new peer.
SCORES = "scores"
#: Initiative process: initiating peer draw and random-strategy targets.
INITIATIVES = "initiatives"

# -- bittorrent (swarm simulator) -----------------------------------------------

#: Upload-capacity sampling for leechers (initial population and arrivals).
BANDWIDTH = "bandwidth"
#: Bootstrap piece endowments of freshly arrived leechers.
BOOTSTRAP = "bootstrap"
#: Tracker announces: the random peer subsets returned to each peer.
TRACKER = "tracker"
#: Dynamic-membership scenarios: per-round arrival counts.
SCENARIO = "scenario"
#: Behavior assignment and behavior-driven edge filtering (free-riders,
#: locality bias, NAT limitation -- see :mod:`repro.bittorrent.behaviors`).
BEHAVIOR = "behavior"
#: Per-round swarm randomness: optimistic-unchoke draws and tie-breaks.
ROUNDS = "rounds"
#: Slot-strategy population sampling (Section 6 slot-count arguments).
POPULATION = "population"
#: Observer peer-poll sampling (which peers a measurer contacts).
TELEMETRY_POLL = "telemetry-poll"
#: Per-round message/transfer loss draws of the fault layer
#: (:mod:`repro.bittorrent.faults`).
FAULT_LOSS = "fault-loss"
#: Crash-victim selection of scheduled peer-crash fault events.
FAULT_CRASH = "fault-crash"
#: Partition-group assignment during network-partition fault windows.
FAULT_PARTITION = "fault-partition"
#: Preferred-replica assignment over a replicated tracker set
#: (:mod:`repro.bittorrent.resilience`, multi-tracker failover).
TRACKER_SELECT = "tracker-select"
#: Peer-exchange gossip sampling while a peer's tracker is unreachable
#: (:mod:`repro.bittorrent.resilience`).
PEX_GOSSIP = "pex-gossip"


REGISTRY: Mapping[str, StreamSpec] = {
    spec_.name: spec_
    for spec_ in (
        StreamSpec(
            GRAPH,
            "core",
            False,
            "acceptance-graph edges; consumed by shared drivers before the "
            "engine split, so both engines see identical graphs",
        ),
        StreamSpec(
            CHURN,
            "core",
            False,
            "churn event timing and join/leave/victim draws in the shared "
            "churn driver",
        ),
        StreamSpec(
            SCORES,
            "core",
            False,
            "fresh peer scores under churn (shared driver)",
        ),
        StreamSpec(
            INITIATIVES,
            "core",
            True,
            "initiating-peer and proposal-target draws of the convergence "
            "dynamics; consumed by both the reference and the fast engine",
        ),
        StreamSpec(
            BANDWIDTH,
            "bittorrent",
            True,
            "leecher upload capacities, for the initial population and for "
            "scenario arrivals",
        ),
        StreamSpec(
            BOOTSTRAP,
            "bittorrent",
            True,
            "bootstrap piece endowments of new leechers",
        ),
        StreamSpec(
            TRACKER,
            "bittorrent",
            True,
            "tracker announce subsets (the swarm's acceptance graph)",
        ),
        StreamSpec(
            SCENARIO,
            "bittorrent",
            True,
            "per-round arrival counts of dynamic-membership scenarios",
        ),
        StreamSpec(
            BEHAVIOR,
            "bittorrent",
            True,
            "per-peer behavior assignment (one batch per population /"
            " arrival batch) and locality-biased contact filtering",
        ),
        StreamSpec(
            ROUNDS,
            "bittorrent",
            True,
            "per-round swarm draws: optimistic unchokes and piece tie-breaks",
        ),
        StreamSpec(
            POPULATION,
            "bittorrent",
            False,
            "slot-budget population sampling in the Section 6 strategy "
            "analysis (no fast counterpart)",
        ),
        StreamSpec(
            TELEMETRY_POLL,
            "bittorrent",
            False,
            "observer poll sampling; engine-agnostic by construction, so it "
            "is consumed outside both engine trees",
        ),
        StreamSpec(
            FAULT_LOSS,
            "bittorrent",
            True,
            "per-round Bernoulli loss draws over the planned transfer pairs "
            "(one batch per faulty round, sorted pid-pair order)",
        ),
        StreamSpec(
            FAULT_CRASH,
            "bittorrent",
            True,
            "crash-victim selection: one choice batch per scheduled crash "
            "event, drawn over the sorted alive non-seed peers",
        ),
        StreamSpec(
            FAULT_PARTITION,
            "bittorrent",
            True,
            "partition-group assignment: one integer batch per round of a "
            "partition window, over the peers not yet assigned a side",
        ),
        StreamSpec(
            TRACKER_SELECT,
            "bittorrent",
            True,
            "preferred tracker replica per peer: one integer batch per "
            "population / arrival wave when the announce list has more than "
            "one replica; a single-tracker policy draws nothing",
        ),
        StreamSpec(
            PEX_GOSSIP,
            "bittorrent",
            True,
            "peer-exchange neighbor sampling: one bounded-draw batch per "
            "round of a total outage (and per announce queued with PEX on); "
            "a policy without PEX draws nothing",
        ),
    )
}


#: Parameterized stream families: names built as ``f"{prefix}{params}"``
#: (one fresh stream per Monte-Carlo sample / sweep point).  Declared by
#: prefix because the full set is unbounded.
DYNAMIC_PREFIXES: Mapping[str, str] = {
    "graph-": "per-sample Monte-Carlo acceptance-graph streams "
    "(analytical validation, efficiency observations)",
    "slots-": "per-(sigma, repetition) slot-sampling streams "
    "(stratification phase transition)",
}


def registered_names() -> FrozenSet[str]:
    """All declared (non-dynamic) stream names."""
    return frozenset(REGISTRY)


def is_registered(name: str) -> bool:
    """Whether ``name`` is declared, exactly or via a dynamic prefix."""
    if name in REGISTRY:
        return True
    return any(name.startswith(prefix) for prefix in DYNAMIC_PREFIXES)


def spec(name: str) -> StreamSpec:
    """The :class:`StreamSpec` for ``name`` (KeyError if undeclared)."""
    return REGISTRY[name]


def paired_names(domain: str) -> FrozenSet[str]:
    """Engine-paired stream names of ``domain`` (``"core"``/``"bittorrent"``).

    These are the streams the linter requires both trees of the domain's
    engine pair to consume.
    """
    return frozenset(
        s.name for s in REGISTRY.values() if s.domain == domain and s.engine_paired
    )


def constant_map() -> Dict[str, str]:
    """Map from module-level constant name to stream name.

    The determinism linter uses this to resolve ``streams.BANDWIDTH`` /
    ``from repro.sim.streams import BANDWIDTH`` references back to the
    stream they denote when collecting per-tree consumption sets.
    """
    out: Dict[str, str] = {}
    module_globals = globals()
    for const, value in module_globals.items():
        if const.isupper() and isinstance(value, str) and value in REGISTRY:
            out[const] = value
    return out
