"""Reproducible random number streams.

All stochastic components in the library draw their randomness from a
:class:`RandomSource`.  A source owns a master seed and hands out *named*
child streams derived from it, so that

* two runs with the same master seed are bit-identical, and
* adding a new consumer of randomness (a new named stream) does not perturb
  the draws seen by existing consumers.

This mirrors the common practice in discrete-event simulators of assigning
one stream per stochastic activity (arrivals, peer selection, graph
generation, ...).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

__all__ = ["RandomSource", "derive_seed"]


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a deterministic 63-bit child seed from a master seed and a name.

    The derivation uses SHA-256 over ``"{master_seed}/{name}"`` so that child
    seeds are effectively independent and insensitive to the order in which
    streams are requested.
    """
    digest = hashlib.sha256(f"{master_seed}/{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF


class RandomSource:
    """A factory of named, reproducible random streams.

    Parameters
    ----------
    seed:
        Master seed.  ``None`` draws a fresh random master seed (the value is
        recorded in :attr:`seed` so the run can still be reproduced).

    Examples
    --------
    >>> source = RandomSource(seed=42)
    >>> rng = source.stream("graph")
    >>> float(rng.random()) == float(RandomSource(seed=42).stream("graph").random())
    True
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        if seed is None:
            seed = int(np.random.SeedSequence().entropy) & 0x7FFF_FFFF_FFFF_FFFF
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The master seed of this source."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the named child stream, creating it on first use.

        Repeated calls with the same name return the *same* generator object,
        so consumers share state within a run while remaining isolated from
        other streams.
        """
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(derive_seed(self._seed, name))
        return self._streams[name]

    def fresh_stream(self, name: str) -> np.random.Generator:
        """Return a brand-new generator for ``name`` (does not reuse state)."""
        return np.random.default_rng(derive_seed(self._seed, name))

    def spawn(self, name: str) -> "RandomSource":
        """Create a child :class:`RandomSource` rooted at ``name``.

        Useful when a subsystem (e.g. one repetition of an experiment) should
        own a whole family of streams.
        """
        return RandomSource(derive_seed(self._seed, name))

    def choice(self, name: str, items: Sequence, size: Optional[int] = None, *, replace: bool = True):
        """Convenience wrapper around ``stream(name).choice``.

        ``replace=False`` draws without replacement (tracker-announce-style
        subsets); previously the wrapper silently forced replacement.
        """
        rng = self.stream(name)
        return rng.choice(items, size=size, replace=replace)

    def shuffled(self, name: str, items: Iterable) -> list:
        """Return a shuffled copy of ``items`` using the named stream."""
        out = list(items)
        self.stream(name).shuffle(out)
        return out

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"RandomSource(seed={self._seed}, streams={sorted(self._streams)})"
