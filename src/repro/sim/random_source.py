"""Reproducible random number streams.

All stochastic components in the library draw their randomness from a
:class:`RandomSource`.  A source owns a master seed and hands out *named*
child streams derived from it, so that

* two runs with the same master seed are bit-identical, and
* adding a new consumer of randomness (a new named stream) does not perturb
  the draws seen by existing consumers.

This mirrors the common practice in discrete-event simulators of assigning
one stream per stochastic activity (arrivals, peer selection, graph
generation, ...).
"""

from __future__ import annotations

import hashlib
import warnings
from typing import Any, Dict, Iterable, Optional, Sequence

import numpy as np

__all__ = ["RandomSource", "derive_seed", "fallback_rng"]

#: Master seed anchoring the deprecated implicit-rng fallback streams.
_FALLBACK_MASTER_SEED = 0


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a deterministic 63-bit child seed from a master seed and a name.

    The derivation uses SHA-256 over ``"{master_seed}/{name}"`` so that child
    seeds are effectively independent and insensitive to the order in which
    streams are requested.
    """
    digest = hashlib.sha256(f"{master_seed}/{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF


def fallback_rng(stream_name: str) -> np.random.Generator:
    """Deterministic stand-in for a deprecated implicit ``rng=None`` default.

    Several generators historically fell back to a *seedless*
    ``np.random.default_rng()`` when no generator was passed, which made
    two nominally identical calls diverge silently -- the exact failure
    mode the named-stream discipline exists to prevent.  During the
    one-release deprecation window those call sites route here instead:
    the caller gets a generator derived from a fixed master seed and the
    call site's stream name, so repeated implicit calls are *identical*
    (divergence now requires passing distinct rngs explicitly), and a
    :class:`DeprecationWarning` tells the caller to pass ``rng=``.
    """
    warnings.warn(
        f"calling this without rng= is deprecated; pass a generator from a "
        f"named RandomSource stream (e.g. source.stream(...)). The implicit "
        f"default is now the deterministic '{stream_name}' fallback stream "
        f"and will be removed in the next release.",
        DeprecationWarning,
        stacklevel=3,
    )
    return np.random.default_rng(derive_seed(_FALLBACK_MASTER_SEED, stream_name))


class RandomSource:
    """A factory of named, reproducible random streams.

    Parameters
    ----------
    seed:
        Master seed.  ``None`` draws a fresh random master seed (the value is
        recorded in :attr:`seed` so the run can still be reproduced).
    strict_streams:
        When ``True``, :meth:`stream` / :meth:`fresh_stream` reject names
        not declared in the :mod:`repro.sim.streams` registry.  Off by
        default (the static linter is the primary enforcement; strict mode
        is for tests and new subsystems).

    Examples
    --------
    >>> source = RandomSource(seed=42)
    >>> rng = source.stream("graph")
    >>> float(rng.random()) == float(RandomSource(seed=42).stream("graph").random())
    True
    """

    def __init__(self, seed: Optional[int] = None, *, strict_streams: bool = False) -> None:
        if seed is None:
            seed = int(np.random.SeedSequence().entropy) & 0x7FFF_FFFF_FFFF_FFFF
        self._seed = int(seed)
        self._strict_streams = bool(strict_streams)
        self._streams: Dict[str, np.random.Generator] = {}

    def _check_name(self, name: str) -> None:
        if self._strict_streams:
            from repro.sim import streams

            if not streams.is_registered(name):
                raise KeyError(
                    f"stream name {name!r} is not declared in repro.sim.streams "
                    f"(strict_streams=True); register it or use an existing "
                    f"constant"
                )

    @property
    def seed(self) -> int:
        """The master seed of this source."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the named child stream, creating it on first use.

        Repeated calls with the same name return the *same* generator object,
        so consumers share state within a run while remaining isolated from
        other streams.
        """
        if name not in self._streams:
            self._check_name(name)
            self._streams[name] = np.random.default_rng(derive_seed(self._seed, name))
        return self._streams[name]

    def fresh_stream(self, name: str) -> np.random.Generator:
        """Return a brand-new generator for ``name`` (does not reuse state)."""
        self._check_name(name)
        return np.random.default_rng(derive_seed(self._seed, name))

    def spawn(self, name: str) -> "RandomSource":
        """Create a child :class:`RandomSource` rooted at ``name``.

        Useful when a subsystem (e.g. one repetition of an experiment) should
        own a whole family of streams.
        """
        return RandomSource(derive_seed(self._seed, name))

    def choice(
        self, name: str, items: Sequence[Any], size: Optional[int] = None, *, replace: bool = True
    ) -> Any:
        """Convenience wrapper around ``stream(name).choice``.

        ``replace=False`` draws without replacement (tracker-announce-style
        subsets); previously the wrapper silently forced replacement.
        """
        rng = self.stream(name)
        return rng.choice(items, size=size, replace=replace)

    def shuffled(self, name: str, items: Iterable[Any]) -> list:
        """Return a shuffled copy of ``items`` using the named stream."""
        out = list(items)
        self.stream(name).shuffle(out)
        return out

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"RandomSource(seed={self._seed}, streams={sorted(self._streams)})"
