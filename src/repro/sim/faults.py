"""Engine-agnostic fault primitives: round windows and retry backoff.

The fault-injection layer (:mod:`repro.bittorrent.faults`) describes
failures as *round windows* -- a tracker outage covering rounds 20..24, a
loss burst covering rounds 5..9 -- and models client retry behavior with a
deterministic doubling backoff.  Both pieces are pure arithmetic with no
randomness of their own, so they live here in ``sim/`` where any future
domain (the matching engines, a DHT layer) can reuse them, and where the
strict mypy gate keeps their contracts explicit.

Determinism note: nothing in this module draws random numbers.  All fault
*randomness* (loss coin flips, crash victim selection, partition sides)
flows through the registered ``fault-*`` streams consumed by the swarm
engines; the window and backoff arithmetic below merely decides *when*
those draws happen, identically in both engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "RoundWindow",
    "backoff_delay",
    "next_retry_round",
    "BACKOFF_BASE",
    "BACKOFF_CAP",
]

#: First retry is one round after the failed attempt ...
BACKOFF_BASE = 1
#: ... and the doubling delay saturates at eight rounds.
BACKOFF_CAP = 8


@dataclass(frozen=True)
class RoundWindow:
    """A half-open window of simulation rounds ``[start, start + rounds)``.

    ``rounds == 0`` means *open-ended*: the window covers every round from
    ``start`` to the end of the run.  Round indices are 1-based, matching
    the swarm engines' round loop.
    """

    start: int
    rounds: int = 1

    def __post_init__(self) -> None:
        if self.start < 1:
            raise ValueError(f"window start must be >= 1, got {self.start}")
        if self.rounds < 0:
            raise ValueError(f"window rounds must be >= 0, got {self.rounds}")

    def covers(self, round_index: int) -> bool:
        """Whether ``round_index`` falls inside the window."""
        if round_index < self.start:
            return False
        return self.rounds == 0 or round_index < self.start + self.rounds

    @property
    def end(self) -> Optional[int]:
        """Last covered round, or ``None`` for an open-ended window."""
        if self.rounds == 0:
            return None
        return self.start + self.rounds - 1

    def overlaps(self, other: "RoundWindow") -> bool:
        """Whether two windows share at least one round."""
        if self.end is not None and self.end < other.start:
            return False
        if other.end is not None and other.end < self.start:
            return False
        return True


def backoff_delay(
    attempt: int, *, base: int = BACKOFF_BASE, cap: int = BACKOFF_CAP
) -> int:
    """Deterministic doubling backoff: ``base * 2**attempt``, capped.

    ``attempt`` counts *failed* retries so far: a freshly queued request
    (attempt 0) waits ``base`` rounds, the next failure doubles the wait,
    and the delay saturates at ``cap`` so a long outage costs at most one
    extra ``cap``-round wait after recovery.
    """
    if attempt < 0:
        raise ValueError(f"attempt must be >= 0, got {attempt}")
    if base < 1 or cap < base:
        raise ValueError(f"need 1 <= base <= cap, got base={base} cap={cap}")
    # Shift in a clamped exponent so huge attempt counts cannot overflow
    # into a slow bigint path before the cap applies.
    exponent = min(attempt, cap.bit_length())
    return min(base << exponent, cap)


def next_retry_round(
    round_index: int, attempt: int, *, base: int = BACKOFF_BASE, cap: int = BACKOFF_CAP
) -> int:
    """The round at which a request failed at ``round_index`` retries."""
    return round_index + backoff_delay(attempt, base=base, cap=cap)
