"""Simulation clock.

The paper measures time in *initiatives per peer* (one "base unit" is a
sequence of ``n`` successive initiatives).  :class:`SimulationClock` keeps
track of a monotonically non-decreasing simulation time and exposes helpers
to convert between raw step counts and base units.
"""

from __future__ import annotations

__all__ = ["SimulationClock", "ClockError"]


class ClockError(RuntimeError):
    """Raised when simulation time would move backwards."""


class SimulationClock:
    """Monotonic simulation clock measured in abstract time units.

    Parameters
    ----------
    start:
        Initial simulation time (default ``0.0``).
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._steps = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def steps(self) -> int:
        """Number of discrete advances made so far."""
        return self._steps

    def advance_to(self, timestamp: float) -> None:
        """Move the clock forward to ``timestamp``.

        Raises
        ------
        ClockError
            If ``timestamp`` is earlier than the current time.
        """
        timestamp = float(timestamp)
        if timestamp < self._now:
            raise ClockError(
                f"cannot move clock backwards from {self._now} to {timestamp}"
            )
        self._now = timestamp
        self._steps += 1

    def advance_by(self, delta: float) -> None:
        """Move the clock forward by ``delta`` (must be non-negative)."""
        if delta < 0:
            raise ClockError(f"cannot advance clock by negative delta {delta}")
        self._now += float(delta)
        self._steps += 1

    def reset(self, start: float = 0.0) -> None:
        """Reset to ``start`` and clear the step counter."""
        self._now = float(start)
        self._steps = 0

    def base_units(self, population: int) -> float:
        """Convert the current step count into the paper's *base units*.

        One base unit is ``population`` successive initiatives (one expected
        initiative per peer).
        """
        if population <= 0:
            raise ValueError("population must be positive")
        return self._steps / float(population)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"SimulationClock(now={self._now}, steps={self._steps})"
