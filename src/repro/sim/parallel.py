"""Parallel sweep orchestration: seed trees, process pools, result cache.

The paper's headline numbers (the Figure 6 phase transition, Table 1, the
stratification sweeps) are Monte-Carlo estimates over many independent
seeded runs.  Every run is a pure function of ``(config, seed, engine)``,
which makes the sweep loops embarrassingly parallel -- *if* the seeds of
the individual tasks are derived deterministically up front rather than
from shared mutable RNG state.  This module provides that throughput layer:

* :class:`SeedTree` -- a ``SeedSequence``-style deterministic seed
  hierarchy layered on the library's :func:`~repro.sim.random_source.
  derive_seed`, so a task's seed depends only on its position in the
  tree, never on scheduling order.
* :class:`SweepTask` -- one ``(function, kwargs)`` cell of a sweep; the
  function must be a module-level callable (picklable by reference) and
  the kwargs plain data, so the task can cross a ``spawn`` process
  boundary unchanged.
* :class:`SweepRunner` -- maps tasks onto a ``ProcessPoolExecutor`` with
  chunked submission and *ordered* aggregation.  ``workers=1`` runs the
  tasks inline; because every task owns its seed, ``workers=8`` returns
  bit-identical results in the same order.
* :class:`ResultCache` -- an opt-in, content-addressed on-disk cache.
  The key is the SHA-256 of the canonical JSON of
  ``{function, config, seed, engine, version}``; numpy arrays round-trip
  bit-exactly (raw little-endian bytes, base64), so a warm re-run of a
  figure replays its points without touching the simulators.

The experiment drivers (:mod:`repro.experiments.figures`,
:mod:`repro.stratification.phase_transition`) route their replication
loops through :func:`run_sweep`; ``repro-p2p --workers N`` threads the
pool width from the CLI.
"""

from __future__ import annotations

import base64
import dataclasses
import hashlib
import json
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import numpy as np

from repro.sim.random_source import RandomSource, derive_seed
from repro.version import __version__

__all__ = [
    "SeedTree",
    "SweepTask",
    "SweepTaskError",
    "ResultCache",
    "SweepRunner",
    "run_sweep",
    "canonical_json",
    "source_fingerprint",
    "CacheLike",
]


# What driver ``cache=`` parameters accept: nothing, a directory, or a
# ready-made ResultCache.  (Forward reference; ResultCache is defined below.)
CacheLike = Union[None, str, Path, "ResultCache"]


# -- deterministic seed trees ----------------------------------------------------


class SeedTree:
    """A deterministic hierarchy of seeds rooted at a master seed.

    Children are addressed by a path of labels; the derivation chains
    :func:`~repro.sim.random_source.derive_seed` (SHA-256 based), so

    * the same path always yields the same seed,
    * sibling seeds are effectively independent, and
    * a child seed feeds straight into :class:`~repro.sim.random_source.
      RandomSource`, whose *named streams* then form the next layer of
      the tree.

    Examples
    --------
    >>> tree = SeedTree(42)
    >>> tree.child("figure6", "sigma=0.2", "rep", 1) == \\
    ...     SeedTree(42).child("figure6", "sigma=0.2", "rep", 1)
    True
    """

    def __init__(self, root: int) -> None:
        self.root = int(root)

    def child(self, *path: object) -> int:
        """Derive the seed at ``path`` (labels are stringified)."""
        if not path:
            raise ValueError("a child needs at least one path component")
        seed = self.root
        for part in path:
            seed = derive_seed(seed, str(part))
        return seed

    def subtree(self, *path: object) -> "SeedTree":
        """The subtree rooted at ``path``."""
        return SeedTree(self.child(*path))

    def source(self, *path: object) -> RandomSource:
        """A :class:`RandomSource` rooted at ``path`` (the stream layer)."""
        return RandomSource(self.child(*path))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"SeedTree(root={self.root})"


# -- canonical serialization -----------------------------------------------------


def _plain(value: Any) -> Any:
    """Reduce a config value to canonical plain data for key hashing."""
    if isinstance(value, Mapping):
        for key in value:
            # Stringifying non-str keys would let {1: a} and {"1": b} hash
            # to the same cache key; demand str keys instead of colliding.
            if not isinstance(key, str):
                raise TypeError(
                    f"config mappings need str keys for a cache key; got "
                    f"{type(key).__name__} key {key!r}"
                )
        return {k: _plain(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        payload = {k: _plain(v) for k, v in dataclasses.asdict(value).items()}
        payload["__dataclass__"] = type(value).__qualname__
        return payload
    if isinstance(value, np.ndarray):
        return {"__ndarray__": value.tolist(), "dtype": str(value.dtype)}
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot canonicalize {type(value).__name__} for a cache key")


def canonical_json(payload: Mapping[str, Any]) -> str:
    """Canonical (sorted-key, compact) JSON of a config mapping."""
    return json.dumps(_plain(payload), sort_keys=True, separators=(",", ":"))


def _encode(value: Any) -> Any:
    """JSON-able encoding of a task result; numpy arrays stay bit-exact."""
    if isinstance(value, np.ndarray):
        if value.dtype.kind not in "biufc":
            # Object/string/datetime arrays do not round-trip through raw
            # bytes (tobytes() of an object array is pointer garbage);
            # reject them *before* anything is written to disk.
            raise TypeError(
                f"cannot cache an ndarray of dtype {value.dtype}; sweep "
                "results must use numeric/bool arrays"
            )
        contiguous = np.ascontiguousarray(value)
        return {
            "__nd__": base64.b64encode(contiguous.tobytes()).decode("ascii"),
            "dtype": contiguous.dtype.str,
            "shape": list(contiguous.shape),
        }
    if isinstance(value, dict):
        return {"__dict__": [[_encode(k), _encode(v)] for k, v in value.items()]}
    if isinstance(value, tuple):
        return {"__tuple__": [_encode(v) for v in value]}
    if isinstance(value, list):
        return [_encode(v) for v in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"sweep results must be plain data (dict/list/tuple/scalars/ndarray); "
        f"got {type(value).__name__}"
    )


def _decode(value: Any) -> Any:
    """Inverse of :func:`_encode`."""
    if isinstance(value, dict):
        if "__nd__" in value:
            raw = base64.b64decode(value["__nd__"])
            array = np.frombuffer(raw, dtype=np.dtype(value["dtype"]))
            return array.reshape(value["shape"]).copy()
        if "__dict__" in value:
            return {_decode(k): _decode(v) for k, v in value["__dict__"]}
        if "__tuple__" in value:
            return tuple(_decode(v) for v in value["__tuple__"])
    if isinstance(value, list):
        return [_decode(v) for v in value]
    return value


# -- sweep tasks -----------------------------------------------------------------


@dataclass(frozen=True)
class SweepTask:
    """One cell of a sweep: a module-level function plus plain kwargs.

    ``kwargs`` must fully determine the result (seed and engine included),
    so the task can be executed in any process -- or not at all, when the
    cache already holds its result.  ``label`` is a human-readable tag for
    logs and errors; it is *not* part of the cache key.
    """

    fn: Callable[..., Any]
    kwargs: Mapping[str, Any]
    label: str = ""

    def __post_init__(self) -> None:
        qualname = getattr(self.fn, "__qualname__", "")
        if "<locals>" in qualname or getattr(self.fn, "__name__", "") == "<lambda>":
            raise TypeError(
                "SweepTask functions must be module-level (picklable by "
                f"reference); got {qualname or self.fn!r}"
            )

    def key_payload(self) -> Dict[str, Any]:
        """The cache-key fields: function, config, seed, engine, version."""
        kwargs = dict(self.kwargs)
        return {
            "function": f"{self.fn.__module__}.{self.fn.__qualname__}",
            "seed": kwargs.pop("seed", None),
            "engine": kwargs.pop("engine", None),
            "config": kwargs,
            "version": __version__,
        }


# -- on-disk result cache --------------------------------------------------------


def source_fingerprint(package: str = "repro") -> str:
    """A short content hash of the package's Python sources.

    The cache key's ``version`` field only changes when someone bumps
    ``repro.version``; during development the *code* changes far more
    often.  Folding this fingerprint into a cache (``extra_key``) makes
    stale replays impossible at the cost of a cold cache after any source
    edit -- the CLI does exactly that.
    """
    import importlib

    root = Path(next(iter(importlib.import_module(package).__path__)))
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


class ResultCache:
    """Content-addressed on-disk cache of sweep-task results.

    Each entry is one JSON file named by the SHA-256 of the canonical key
    (sharded by the first two hex chars).  Writes go through a temporary
    file and :func:`os.replace`, so concurrent writers of the *same* key
    are harmless (last atomic rename wins with identical content) and a
    crashed run never leaves a truncated entry behind.

    ``extra_key`` is an opaque string folded into every entry's key --
    pass :func:`source_fingerprint` to invalidate the cache whenever the
    library sources change (not just the declared version).
    """

    def __init__(
        self, directory: Union[str, Path], *, extra_key: Optional[str] = None
    ) -> None:
        # The directory is created lazily on first write, so constructing a
        # cache (e.g. the CLI default) costs nothing until a result lands.
        self.directory = Path(directory)
        self.extra_key = extra_key
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def key_for(self, task: SweepTask) -> str:
        """The content hash addressing ``task``'s entry."""
        payload = task.key_payload()
        if self.extra_key is not None:
            payload["extra"] = self.extra_key
        return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    def get(self, task: SweepTask) -> Tuple[bool, Any]:
        """Look up a task; returns ``(hit, value)``.

        A corrupt entry (truncated JSON, mangled array bytes, wrong
        shape) degrades to a miss *and* is quarantined: the file is
        atomically renamed to ``<key>.corrupt``, so the recompute can
        write a clean entry while the damaged bytes stay on disk for
        diagnosis instead of being silently overwritten.
        """
        path = self._path(self.key_for(task))
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            value = _decode(payload["value"])
        except FileNotFoundError:
            self.misses += 1
            return False, None
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            self._quarantine(path)
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    @staticmethod
    def _quarantine(path: Path) -> None:
        """Move a corrupt entry aside to ``<key>.corrupt`` (best effort)."""
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:  # pragma: no cover - e.g. permission error
            pass

    def put(self, task: SweepTask, value: Any) -> Any:
        """Store a result; returns the value as it will decode on a hit.

        Returning the decoded round-trip (rather than the raw value) is
        what guarantees cold and warm runs are byte-identical: both paths
        hand the caller the same decoded representation.
        """
        encoded = _encode(value)
        key = self.key_for(task)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"key": _plain(task.key_payload()), "value": encoded}
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, separators=(",", ":"))
        os.replace(tmp, path)
        self.writes += 1
        return _decode(encoded)


# -- the runner ------------------------------------------------------------------


def _rebuild_sweep_task_error(
    message: str, label: str, seed: Any, key: Optional[str]
) -> "SweepTaskError":
    """Unpickle helper: rebuild a :class:`SweepTaskError` with its fields."""
    return SweepTaskError(message, label=label, seed=seed, key=key)


class SweepTaskError(RuntimeError):
    """A sweep task failed; carries *which* one.

    ``label`` is the task's human-readable tag, ``seed`` its kwargs seed
    and ``key`` the cache key (when a cache was configured) -- enough to
    rerun exactly the failing cell in isolation.  The original exception
    is chained as ``__cause__`` when the task ran inline; across a
    process boundary the chain does not survive pickling, so the cause's
    ``repr`` is folded into the message instead.
    """

    def __init__(
        self,
        message: str,
        *,
        label: str = "",
        seed: Any = None,
        key: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.label = label
        self.seed = seed
        self.key = key

    def __reduce__(self):
        return _rebuild_sweep_task_error, (self.args[0], self.label, self.seed, self.key)


def _run_chunk(
    payload: Sequence[Tuple[Callable[..., Any], Dict[str, Any], str]]
) -> List[Any]:
    """Worker entry point: execute one chunk of (fn, kwargs, label) triples.

    A raising task is wrapped into a :class:`SweepTaskError` naming the
    task, so the parent learns which cell failed -- not just that *some*
    future raised.
    """
    out: List[Any] = []
    for fn, kwargs, label in payload:
        try:
            out.append(fn(**kwargs))
        except Exception as exc:
            name = label or getattr(fn, "__qualname__", repr(fn))
            raise SweepTaskError(
                f"sweep task {name!r} (seed={kwargs.get('seed')!r}) raised "
                f"{exc!r}",
                label=label,
                seed=kwargs.get("seed"),
            ) from exc
    return out


class _SweepManifest:
    """The on-disk checkpoint of one sweep: which tasks have finished.

    One JSON file, rewritten atomically after every completion, holding
    ``{version, total, completed: {cache_key: label}, status}`` with
    ``status`` one of ``running`` / ``interrupted`` / ``failed`` /
    ``complete``.  Together with the result cache (which holds the
    actual values, written as tasks finish) this makes an interrupted
    sweep resumable: rerunning the same sweep replays the completed
    tasks from the cache and computes only the remainder, byte-identical
    to an uninterrupted run.
    """

    def __init__(self, path: Path, total: int) -> None:
        self.path = path
        self.total = total
        self.completed: Dict[str, str] = {}
        self.status = "running"

    def mark(self, key: str, label: str) -> None:
        self.completed[key] = label

    def finish(self, status: str) -> None:
        self.status = status
        self.flush()

    def flush(self) -> None:
        payload = {
            "version": __version__,
            "total": self.total,
            "completed": dict(sorted(self.completed.items())),
            "status": self.status,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
        os.replace(tmp, self.path)


class SweepRunner:
    """Map sweep tasks onto a process pool, deterministically.

    Parameters
    ----------
    workers:
        Pool width.  ``1`` (the default) runs tasks inline in submission
        order; ``N > 1`` fans them out over a ``spawn``
        ``ProcessPoolExecutor``.  Results are aggregated in task order
        either way, and since every task carries its own seed the output
        is bit-identical for any ``workers``.
    cache:
        ``None`` (default, no caching), a directory path, or a
        :class:`ResultCache`.  Cached tasks are skipped entirely; fresh
        results are written back *as they complete*, so a killed sweep
        keeps everything it finished.
    chunk_size:
        Tasks per pool submission.  Defaults to roughly eight chunks per
        worker (so small sweeps submit single tasks), trading a little
        pickle overhead for minimal tail skew when task durations vary.
    timeout:
        Seconds allowed *per task* before its chunk is treated like a
        dead worker (``None``, the default, waits forever).  A chunk of
        ``k`` tasks gets ``k * timeout``.
    retries:
        How many times a chunk whose worker died (or timed out) is
        resubmitted to a freshly spawned pool before the sweep gives up
        with a :class:`SweepTaskError`.  Retries rerun the same tasks
        with the same seeds, so a transient death (OOM kill, node blip)
        still yields bit-identical results.  Exceptions *raised by the
        task function* are deterministic and never retried.
    retry_backoff:
        Base of the deterministic exponential backoff between retries:
        attempt ``a`` sleeps ``retry_backoff * 2**(a - 1)`` seconds.
    manifest:
        Path of a JSON checkpoint rewritten after every task completion
        (requires ``cache``; see :class:`_SweepManifest`).  On
        ``KeyboardInterrupt`` the manifest is flushed with status
        ``interrupted`` and the interrupt re-raised, so a ^C'd sweep can
        be resumed by simply rerunning it.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: CacheLike = None,
        chunk_size: Optional[int] = None,
        timeout: Optional[float] = None,
        retries: int = 2,
        retry_backoff: float = 0.5,
        manifest: Union[None, str, Path] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1 when given")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive when given")
        if retries < 0:
            raise ValueError("retries cannot be negative")
        if retry_backoff < 0:
            raise ValueError("retry_backoff cannot be negative")
        self.workers = int(workers)
        self.cache: Optional[ResultCache]
        if cache is None or isinstance(cache, ResultCache):
            self.cache = cache
        else:
            self.cache = ResultCache(cache)
        self.chunk_size = chunk_size
        self.timeout = timeout
        self.retries = int(retries)
        self.retry_backoff = float(retry_backoff)
        if manifest is not None and self.cache is None:
            raise ValueError(
                "manifest requires a cache (the manifest records progress; "
                "the cache holds the completed results a resume replays)"
            )
        self.manifest_path = None if manifest is None else Path(manifest)

    def map(self, tasks: Iterable[SweepTask]) -> List[Any]:
        """Execute every task; returns results in task order."""
        task_list = list(tasks)
        results: List[Any] = [None] * len(task_list)
        pending: List[int] = []
        manifest: Optional[_SweepManifest] = None
        if self.manifest_path is not None:
            manifest = _SweepManifest(self.manifest_path, len(task_list))
        if self.cache is not None:
            for index, task in enumerate(task_list):
                hit, value = self.cache.get(task)
                if hit:
                    results[index] = value
                    if manifest is not None:
                        manifest.mark(self.cache.key_for(task), task.label)
                else:
                    pending.append(index)
        else:
            pending = list(range(len(task_list)))
        if manifest is not None:
            manifest.flush()

        def complete(position: int, value: Any) -> None:
            # Runs in the parent as each task result arrives: write the
            # cache entry immediately (crash durability) and checkpoint.
            index = pending[position]
            task = task_list[index]
            if self.cache is not None:
                value = self.cache.put(task, value)
                if manifest is not None:
                    manifest.mark(self.cache.key_for(task), task.label)
                    manifest.flush()
            results[index] = value

        try:
            if pending:
                subset = [task_list[i] for i in pending]
                if self.workers == 1 or len(pending) == 1:
                    for position, task in enumerate(subset):
                        complete(position, self._run_inline(task))
                else:
                    self._map_parallel(subset, complete)
        except KeyboardInterrupt:
            if manifest is not None:
                manifest.finish("interrupted")
            raise
        except BaseException:
            if manifest is not None:
                manifest.finish("failed")
            raise
        if manifest is not None:
            manifest.finish("complete")
        return results

    def _run_inline(self, task: SweepTask) -> Any:
        """Run one task in-process, wrapping failures like a worker would."""
        try:
            return task.fn(**dict(task.kwargs))
        except Exception as exc:
            name = task.label or getattr(task.fn, "__qualname__", repr(task.fn))
            raise SweepTaskError(
                f"sweep task {name!r} (seed={task.kwargs.get('seed')!r}) "
                f"raised {exc!r}",
                label=task.label,
                seed=task.kwargs.get("seed"),
                key=self.cache.key_for(task) if self.cache is not None else None,
            ) from exc

    def _map_parallel(
        self,
        tasks: Sequence[SweepTask],
        complete: Callable[[int, Any], None],
    ) -> None:
        """Chunked submission over a spawn pool, ordered completion.

        Workers can import :mod:`repro` even when the parent added
        ``src/`` to ``sys.path`` at runtime: ``spawn`` forwards the
        parent's ``sys.path`` in its process preparation data.

        Resilience: a chunk whose worker dies (``BrokenProcessPool``) or
        exceeds its timeout is resubmitted -- up to ``retries`` times
        with deterministic exponential backoff -- to a *freshly spawned*
        pool (a broken pool is unusable, and a hung worker must be
        killed).  Chunks that already finished are harvested first, so
        no completed work is recomputed; the retried tasks rerun with
        their original seeds, keeping results bit-identical.
        """
        workers = min(self.workers, len(tasks))
        # Fine default granularity (~8 chunks per worker, so small sweeps
        # get chunk=1): task durations vary across a sweep, and the tail
        # skew of a coarse chunk costs more than the per-submission pickle.
        chunk = self.chunk_size or max(1, len(tasks) // (workers * 8))
        bounds = [
            (lo, min(lo + chunk, len(tasks))) for lo in range(0, len(tasks), chunk)
        ]
        finished: Set[int] = set()
        attempts = [0] * len(bounds)
        context = multiprocessing.get_context("spawn")

        def harvest(futures: Dict[int, Any], skip: int = -1) -> None:
            """Collect every already-finished chunk before a respawn."""
            for cj, future in futures.items():
                if cj in finished or cj == skip:
                    continue
                if not future.done() or future.cancelled():
                    continue
                try:
                    values = future.result(timeout=0)
                except Exception:
                    continue  # its own turn will classify the failure
                lo, _hi = bounds[cj]
                for offset, value in enumerate(values):
                    complete(lo + offset, value)
                finished.add(cj)

        while len(finished) < len(bounds):
            remaining = [ci for ci in range(len(bounds)) if ci not in finished]
            pool = ProcessPoolExecutor(
                max_workers=min(workers, len(remaining)), mp_context=context
            )
            retry_delay = 0.0
            try:
                futures = {}
                for ci in remaining:
                    lo, hi = bounds[ci]
                    payload = [
                        (task.fn, dict(task.kwargs), task.label)
                        for task in tasks[lo:hi]
                    ]
                    futures[ci] = pool.submit(_run_chunk, payload)
                for ci in remaining:  # submission order == task order
                    lo, hi = bounds[ci]
                    chunk_timeout = (
                        None if self.timeout is None else self.timeout * (hi - lo)
                    )
                    try:
                        values = futures[ci].result(timeout=chunk_timeout)
                    except SweepTaskError as exc:
                        # The task *function* raised: deterministic, no
                        # retry.  Attach the cache key now that we are
                        # back in the parent.
                        if exc.key is None and self.cache is not None:
                            exc.key = next(
                                (
                                    self.cache.key_for(task)
                                    for task in tasks[lo:hi]
                                    if task.label == exc.label
                                ),
                                None,
                            )
                        raise
                    except (BrokenProcessPool, FuturesTimeoutError) as exc:
                        harvest(futures, skip=ci)
                        attempts[ci] += 1
                        if attempts[ci] > self.retries:
                            first = tasks[lo]
                            name = first.label or first.fn.__qualname__
                            kind = (
                                "timed out"
                                if isinstance(exc, FuturesTimeoutError)
                                else "worker died"
                            )
                            raise SweepTaskError(
                                f"sweep chunk starting at task {name!r} "
                                f"(seed={first.kwargs.get('seed')!r}) {kind} "
                                f"{attempts[ci]} times; giving up",
                                label=first.label,
                                seed=first.kwargs.get("seed"),
                                key=(
                                    self.cache.key_for(first)
                                    if self.cache is not None
                                    else None
                                ),
                            ) from exc
                        retry_delay = self.retry_backoff * 2 ** (attempts[ci] - 1)
                        break  # respawn the pool for the survivors
                    for offset, value in enumerate(values):
                        complete(lo + offset, value)
                    finished.add(ci)
            except KeyboardInterrupt:
                # Graceful ^C: keep everything that already finished (the
                # cache/manifest callbacks run in harvest), then re-raise.
                harvest(futures)
                raise
            finally:
                pool.shutdown(wait=False, cancel_futures=True)
            if retry_delay > 0 and len(finished) < len(bounds):
                time.sleep(retry_delay)


def run_sweep(
    tasks: Iterable[SweepTask],
    *,
    workers: int = 1,
    cache: CacheLike = None,
    chunk_size: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = 2,
    retry_backoff: float = 0.5,
    manifest: Union[None, str, Path] = None,
) -> List[Any]:
    """Functional shortcut: build a :class:`SweepRunner` and map ``tasks``."""
    return SweepRunner(
        workers=workers,
        cache=cache,
        chunk_size=chunk_size,
        timeout=timeout,
        retries=retries,
        retry_backoff=retry_backoff,
        manifest=manifest,
    ).map(tasks)
