"""Parallel sweep orchestration: seed trees, process pools, result cache.

The paper's headline numbers (the Figure 6 phase transition, Table 1, the
stratification sweeps) are Monte-Carlo estimates over many independent
seeded runs.  Every run is a pure function of ``(config, seed, engine)``,
which makes the sweep loops embarrassingly parallel -- *if* the seeds of
the individual tasks are derived deterministically up front rather than
from shared mutable RNG state.  This module provides that throughput layer:

* :class:`SeedTree` -- a ``SeedSequence``-style deterministic seed
  hierarchy layered on the library's :func:`~repro.sim.random_source.
  derive_seed`, so a task's seed depends only on its position in the
  tree, never on scheduling order.
* :class:`SweepTask` -- one ``(function, kwargs)`` cell of a sweep; the
  function must be a module-level callable (picklable by reference) and
  the kwargs plain data, so the task can cross a ``spawn`` process
  boundary unchanged.
* :class:`SweepRunner` -- maps tasks onto a ``ProcessPoolExecutor`` with
  chunked submission and *ordered* aggregation.  ``workers=1`` runs the
  tasks inline; because every task owns its seed, ``workers=8`` returns
  bit-identical results in the same order.
* :class:`ResultCache` -- an opt-in, content-addressed on-disk cache.
  The key is the SHA-256 of the canonical JSON of
  ``{function, config, seed, engine, version}``; numpy arrays round-trip
  bit-exactly (raw little-endian bytes, base64), so a warm re-run of a
  figure replays its points without touching the simulators.

The experiment drivers (:mod:`repro.experiments.figures`,
:mod:`repro.stratification.phase_transition`) route their replication
loops through :func:`run_sweep`; ``repro-p2p --workers N`` threads the
pool width from the CLI.
"""

from __future__ import annotations

import base64
import dataclasses
import hashlib
import json
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.sim.random_source import RandomSource, derive_seed
from repro.version import __version__

__all__ = [
    "SeedTree",
    "SweepTask",
    "ResultCache",
    "SweepRunner",
    "run_sweep",
    "canonical_json",
    "source_fingerprint",
    "CacheLike",
]


# What driver ``cache=`` parameters accept: nothing, a directory, or a
# ready-made ResultCache.  (Forward reference; ResultCache is defined below.)
CacheLike = Union[None, str, Path, "ResultCache"]


# -- deterministic seed trees ----------------------------------------------------


class SeedTree:
    """A deterministic hierarchy of seeds rooted at a master seed.

    Children are addressed by a path of labels; the derivation chains
    :func:`~repro.sim.random_source.derive_seed` (SHA-256 based), so

    * the same path always yields the same seed,
    * sibling seeds are effectively independent, and
    * a child seed feeds straight into :class:`~repro.sim.random_source.
      RandomSource`, whose *named streams* then form the next layer of
      the tree.

    Examples
    --------
    >>> tree = SeedTree(42)
    >>> tree.child("figure6", "sigma=0.2", "rep", 1) == \\
    ...     SeedTree(42).child("figure6", "sigma=0.2", "rep", 1)
    True
    """

    def __init__(self, root: int) -> None:
        self.root = int(root)

    def child(self, *path: object) -> int:
        """Derive the seed at ``path`` (labels are stringified)."""
        if not path:
            raise ValueError("a child needs at least one path component")
        seed = self.root
        for part in path:
            seed = derive_seed(seed, str(part))
        return seed

    def subtree(self, *path: object) -> "SeedTree":
        """The subtree rooted at ``path``."""
        return SeedTree(self.child(*path))

    def source(self, *path: object) -> RandomSource:
        """A :class:`RandomSource` rooted at ``path`` (the stream layer)."""
        return RandomSource(self.child(*path))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"SeedTree(root={self.root})"


# -- canonical serialization -----------------------------------------------------


def _plain(value: Any) -> Any:
    """Reduce a config value to canonical plain data for key hashing."""
    if isinstance(value, Mapping):
        for key in value:
            # Stringifying non-str keys would let {1: a} and {"1": b} hash
            # to the same cache key; demand str keys instead of colliding.
            if not isinstance(key, str):
                raise TypeError(
                    f"config mappings need str keys for a cache key; got "
                    f"{type(key).__name__} key {key!r}"
                )
        return {k: _plain(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        payload = {k: _plain(v) for k, v in dataclasses.asdict(value).items()}
        payload["__dataclass__"] = type(value).__qualname__
        return payload
    if isinstance(value, np.ndarray):
        return {"__ndarray__": value.tolist(), "dtype": str(value.dtype)}
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot canonicalize {type(value).__name__} for a cache key")


def canonical_json(payload: Mapping[str, Any]) -> str:
    """Canonical (sorted-key, compact) JSON of a config mapping."""
    return json.dumps(_plain(payload), sort_keys=True, separators=(",", ":"))


def _encode(value: Any) -> Any:
    """JSON-able encoding of a task result; numpy arrays stay bit-exact."""
    if isinstance(value, np.ndarray):
        if value.dtype.kind not in "biufc":
            # Object/string/datetime arrays do not round-trip through raw
            # bytes (tobytes() of an object array is pointer garbage);
            # reject them *before* anything is written to disk.
            raise TypeError(
                f"cannot cache an ndarray of dtype {value.dtype}; sweep "
                "results must use numeric/bool arrays"
            )
        contiguous = np.ascontiguousarray(value)
        return {
            "__nd__": base64.b64encode(contiguous.tobytes()).decode("ascii"),
            "dtype": contiguous.dtype.str,
            "shape": list(contiguous.shape),
        }
    if isinstance(value, dict):
        return {"__dict__": [[_encode(k), _encode(v)] for k, v in value.items()]}
    if isinstance(value, tuple):
        return {"__tuple__": [_encode(v) for v in value]}
    if isinstance(value, list):
        return [_encode(v) for v in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"sweep results must be plain data (dict/list/tuple/scalars/ndarray); "
        f"got {type(value).__name__}"
    )


def _decode(value: Any) -> Any:
    """Inverse of :func:`_encode`."""
    if isinstance(value, dict):
        if "__nd__" in value:
            raw = base64.b64decode(value["__nd__"])
            array = np.frombuffer(raw, dtype=np.dtype(value["dtype"]))
            return array.reshape(value["shape"]).copy()
        if "__dict__" in value:
            return {_decode(k): _decode(v) for k, v in value["__dict__"]}
        if "__tuple__" in value:
            return tuple(_decode(v) for v in value["__tuple__"])
    if isinstance(value, list):
        return [_decode(v) for v in value]
    return value


# -- sweep tasks -----------------------------------------------------------------


@dataclass(frozen=True)
class SweepTask:
    """One cell of a sweep: a module-level function plus plain kwargs.

    ``kwargs`` must fully determine the result (seed and engine included),
    so the task can be executed in any process -- or not at all, when the
    cache already holds its result.  ``label`` is a human-readable tag for
    logs and errors; it is *not* part of the cache key.
    """

    fn: Callable[..., Any]
    kwargs: Mapping[str, Any]
    label: str = ""

    def __post_init__(self) -> None:
        qualname = getattr(self.fn, "__qualname__", "")
        if "<locals>" in qualname or getattr(self.fn, "__name__", "") == "<lambda>":
            raise TypeError(
                "SweepTask functions must be module-level (picklable by "
                f"reference); got {qualname or self.fn!r}"
            )

    def key_payload(self) -> Dict[str, Any]:
        """The cache-key fields: function, config, seed, engine, version."""
        kwargs = dict(self.kwargs)
        return {
            "function": f"{self.fn.__module__}.{self.fn.__qualname__}",
            "seed": kwargs.pop("seed", None),
            "engine": kwargs.pop("engine", None),
            "config": kwargs,
            "version": __version__,
        }


# -- on-disk result cache --------------------------------------------------------


def source_fingerprint(package: str = "repro") -> str:
    """A short content hash of the package's Python sources.

    The cache key's ``version`` field only changes when someone bumps
    ``repro.version``; during development the *code* changes far more
    often.  Folding this fingerprint into a cache (``extra_key``) makes
    stale replays impossible at the cost of a cold cache after any source
    edit -- the CLI does exactly that.
    """
    import importlib

    root = Path(next(iter(importlib.import_module(package).__path__)))
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


class ResultCache:
    """Content-addressed on-disk cache of sweep-task results.

    Each entry is one JSON file named by the SHA-256 of the canonical key
    (sharded by the first two hex chars).  Writes go through a temporary
    file and :func:`os.replace`, so concurrent writers of the *same* key
    are harmless (last atomic rename wins with identical content) and a
    crashed run never leaves a truncated entry behind.

    ``extra_key`` is an opaque string folded into every entry's key --
    pass :func:`source_fingerprint` to invalidate the cache whenever the
    library sources change (not just the declared version).
    """

    def __init__(
        self, directory: Union[str, Path], *, extra_key: Optional[str] = None
    ) -> None:
        # The directory is created lazily on first write, so constructing a
        # cache (e.g. the CLI default) costs nothing until a result lands.
        self.directory = Path(directory)
        self.extra_key = extra_key
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def key_for(self, task: SweepTask) -> str:
        """The content hash addressing ``task``'s entry."""
        payload = task.key_payload()
        if self.extra_key is not None:
            payload["extra"] = self.extra_key
        return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    def get(self, task: SweepTask) -> Tuple[bool, Any]:
        """Look up a task; returns ``(hit, value)``."""
        path = self._path(self.key_for(task))
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            value = _decode(payload["value"])
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            # Any unreadable or corrupt entry (missing file, permissions,
            # truncated JSON or array bytes, wrong shape) is just a miss.
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def put(self, task: SweepTask, value: Any) -> Any:
        """Store a result; returns the value as it will decode on a hit.

        Returning the decoded round-trip (rather than the raw value) is
        what guarantees cold and warm runs are byte-identical: both paths
        hand the caller the same decoded representation.
        """
        encoded = _encode(value)
        key = self.key_for(task)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"key": _plain(task.key_payload()), "value": encoded}
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, separators=(",", ":"))
        os.replace(tmp, path)
        self.writes += 1
        return _decode(encoded)


# -- the runner ------------------------------------------------------------------


def _run_chunk(payload: Sequence[Tuple[Callable[..., Any], Dict[str, Any]]]) -> List[Any]:
    """Worker entry point: execute one chunk of (fn, kwargs) pairs in order."""
    return [fn(**kwargs) for fn, kwargs in payload]


class SweepRunner:
    """Map sweep tasks onto a process pool, deterministically.

    Parameters
    ----------
    workers:
        Pool width.  ``1`` (the default) runs tasks inline in submission
        order; ``N > 1`` fans them out over a ``spawn``
        ``ProcessPoolExecutor``.  Results are aggregated in task order
        either way, and since every task carries its own seed the output
        is bit-identical for any ``workers``.
    cache:
        ``None`` (default, no caching), a directory path, or a
        :class:`ResultCache`.  Cached tasks are skipped entirely; fresh
        results are written back after the pool drains.
    chunk_size:
        Tasks per pool submission.  Defaults to roughly eight chunks per
        worker (so small sweeps submit single tasks), trading a little
        pickle overhead for minimal tail skew when task durations vary.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: CacheLike = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1 when given")
        self.workers = int(workers)
        self.cache: Optional[ResultCache]
        if cache is None or isinstance(cache, ResultCache):
            self.cache = cache
        else:
            self.cache = ResultCache(cache)
        self.chunk_size = chunk_size

    def map(self, tasks: Iterable[SweepTask]) -> List[Any]:
        """Execute every task; returns results in task order."""
        task_list = list(tasks)
        results: List[Any] = [None] * len(task_list)
        pending: List[int] = []
        if self.cache is not None:
            for index, task in enumerate(task_list):
                hit, value = self.cache.get(task)
                if hit:
                    results[index] = value
                else:
                    pending.append(index)
        else:
            pending = list(range(len(task_list)))

        if pending:
            if self.workers == 1 or len(pending) == 1:
                computed = [
                    task_list[index].fn(**dict(task_list[index].kwargs))
                    for index in pending
                ]
            else:
                computed = self._map_parallel([task_list[i] for i in pending])
            for index, value in zip(pending, computed):
                if self.cache is not None:
                    value = self.cache.put(task_list[index], value)
                results[index] = value
        return results

    def _map_parallel(self, tasks: Sequence[SweepTask]) -> List[Any]:
        """Chunked submission over a spawn pool, ordered aggregation.

        Workers can import :mod:`repro` even when the parent added
        ``src/`` to ``sys.path`` at runtime: ``spawn`` forwards the
        parent's ``sys.path`` in its process preparation data.
        """
        workers = min(self.workers, len(tasks))
        # Fine default granularity (~8 chunks per worker, so small sweeps
        # get chunk=1): task durations vary across a sweep, and the tail
        # skew of a coarse chunk costs more than the per-submission pickle.
        chunk = self.chunk_size or max(1, len(tasks) // (workers * 8))
        payloads = [
            [(task.fn, dict(task.kwargs)) for task in tasks[lo : lo + chunk]]
            for lo in range(0, len(tasks), chunk)
        ]
        context = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
            futures = [pool.submit(_run_chunk, payload) for payload in payloads]
            out: List[Any] = []
            for future in futures:  # submission order == task order
                out.extend(future.result())
        return out


def run_sweep(
    tasks: Iterable[SweepTask],
    *,
    workers: int = 1,
    cache: CacheLike = None,
    chunk_size: Optional[int] = None,
) -> List[Any]:
    """Functional shortcut: build a :class:`SweepRunner` and map ``tasks``."""
    return SweepRunner(workers=workers, cache=cache, chunk_size=chunk_size).map(tasks)
