"""Discrete-event simulation substrate.

This subpackage provides the simulation machinery that the rest of the
library is built on:

* :mod:`repro.sim.random_source` -- reproducible, named random streams.
* :mod:`repro.sim.clock` -- simulation clock.
* :mod:`repro.sim.engine` -- a small discrete-event simulation kernel
  (event queue, processes, scheduling).
* :mod:`repro.sim.recorder` -- time-series metric recording.
* :mod:`repro.sim.experiment` -- experiment definitions, parameter sweeps
  and repetition management.
* :mod:`repro.sim.parallel` -- parallel sweep orchestration: deterministic
  seed trees, process-pool fan-out and the on-disk result cache.
* :mod:`repro.sim.results` -- tabular results with aggregation and plain
  text rendering (used to print the paper's tables).

The kernel is intentionally dependency-free (standard library + numpy).
Each individual simulation run is single-threaded and sequential --
determinism first -- but whole *sweeps* (many independent seeded runs)
fan out across processes through :class:`~repro.sim.parallel.SweepRunner`
without changing a single drawn bit.
"""

from repro.sim.clock import SimulationClock
from repro.sim.engine import Event, EventQueue, SimulationEngine, Process
from repro.sim.experiment import Experiment, ParameterGrid, RunResult, run_experiment
from repro.sim.parallel import ResultCache, SeedTree, SweepRunner, SweepTask, run_sweep
from repro.sim.random_source import RandomSource
from repro.sim.recorder import MetricRecorder, TimeSeries
from repro.sim.results import ResultTable

__all__ = [
    "ResultCache",
    "SeedTree",
    "SweepRunner",
    "SweepTask",
    "run_sweep",
    "SimulationClock",
    "Event",
    "EventQueue",
    "SimulationEngine",
    "Process",
    "Experiment",
    "ParameterGrid",
    "RunResult",
    "run_experiment",
    "RandomSource",
    "MetricRecorder",
    "TimeSeries",
    "ResultTable",
]
