"""Discrete-event simulation substrate.

This subpackage provides the simulation machinery that the rest of the
library is built on:

* :mod:`repro.sim.random_source` -- reproducible, named random streams.
* :mod:`repro.sim.clock` -- simulation clock.
* :mod:`repro.sim.engine` -- a small discrete-event simulation kernel
  (event queue, processes, scheduling).
* :mod:`repro.sim.recorder` -- time-series metric recording.
* :mod:`repro.sim.experiment` -- experiment definitions, parameter sweeps
  and repetition management.
* :mod:`repro.sim.results` -- tabular results with aggregation and plain
  text rendering (used to print the paper's tables).

The kernel is intentionally dependency-free (standard library + numpy) and
single-threaded: the paper's simulations are all sequential peer-sampling
processes, so determinism and reproducibility matter far more than raw
parallel throughput.
"""

from repro.sim.clock import SimulationClock
from repro.sim.engine import Event, EventQueue, SimulationEngine, Process
from repro.sim.experiment import Experiment, ParameterGrid, RunResult, run_experiment
from repro.sim.random_source import RandomSource
from repro.sim.recorder import MetricRecorder, TimeSeries
from repro.sim.results import ResultTable

__all__ = [
    "SimulationClock",
    "Event",
    "EventQueue",
    "SimulationEngine",
    "Process",
    "Experiment",
    "ParameterGrid",
    "RunResult",
    "run_experiment",
    "RandomSource",
    "MetricRecorder",
    "TimeSeries",
    "ResultTable",
]
