"""Experiment definitions and parameter sweeps.

The paper's evaluation is a collection of parameter sweeps (graph sizes,
degrees, churn rates, slot counts, sigma values...).  This module provides a
small, explicit harness for describing such sweeps, running them with
repetitions over independent random seeds, and collecting results.
"""

from __future__ import annotations

import itertools
import time as _time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Sequence

from repro.sim.random_source import RandomSource

__all__ = ["ParameterGrid", "RunResult", "Experiment", "run_experiment"]


class ParameterGrid:
    """Cartesian product of named parameter values.

    Examples
    --------
    >>> grid = ParameterGrid(n=[100, 1000], d=[10, 50])
    >>> len(list(grid))
    4
    """

    def __init__(self, **parameters: Sequence[Any]) -> None:
        if not parameters:
            raise ValueError("a parameter grid needs at least one parameter")
        self._names = list(parameters)
        self._values = [list(parameters[name]) for name in self._names]
        for name, values in zip(self._names, self._values):
            if not values:
                raise ValueError(f"parameter '{name}' has no values")

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        for combo in itertools.product(*self._values):
            yield dict(zip(self._names, combo))

    def __len__(self) -> int:
        total = 1
        for values in self._values:
            total *= len(values)
        return total

    @property
    def names(self) -> List[str]:
        """Names of the swept parameters."""
        return list(self._names)


@dataclass
class RunResult:
    """Outcome of one (parameters, repetition) run."""

    parameters: Dict[str, Any]
    repetition: int
    seed: int
    metrics: Dict[str, Any] = field(default_factory=dict)
    wall_time: float = 0.0

    def metric(self, name: str) -> Any:
        """Return one metric value, raising a clear error when missing."""
        if name not in self.metrics:
            raise KeyError(
                f"metric '{name}' not recorded; available: {sorted(self.metrics)}"
            )
        return self.metrics[name]


@dataclass
class Experiment:
    """A named, repeatable parameter sweep.

    Attributes
    ----------
    name:
        Experiment identifier (used to derive per-run seeds).
    grid:
        The parameter combinations to explore.
    runner:
        Callable invoked as ``runner(params, source)`` returning a mapping of
        metric name to value.
    repetitions:
        Number of independent repetitions per parameter combination.
    base_seed:
        Master seed; per-run seeds are derived deterministically from it.
    """

    name: str
    grid: ParameterGrid
    runner: Callable[[Dict[str, Any], RandomSource], Mapping[str, Any]]
    repetitions: int = 1
    base_seed: int = 0

    def run(self) -> List[RunResult]:
        """Execute every (parameters, repetition) pair and collect results."""
        if self.repetitions <= 0:
            raise ValueError("repetitions must be positive")
        master = RandomSource(self.base_seed)
        results: List[RunResult] = []
        for params in self.grid:
            for repetition in range(self.repetitions):
                label = self._run_label(params, repetition)
                source = master.spawn(label)
                start = _time.perf_counter()
                metrics = dict(self.runner(dict(params), source))
                elapsed = _time.perf_counter() - start
                results.append(
                    RunResult(
                        parameters=dict(params),
                        repetition=repetition,
                        seed=source.seed,
                        metrics=metrics,
                        wall_time=elapsed,
                    )
                )
        return results

    def _run_label(self, params: Mapping[str, Any], repetition: int) -> str:
        flat = ",".join(f"{key}={params[key]}" for key in sorted(params))
        return f"{self.name}[{flat}]#rep{repetition}"


def run_experiment(
    name: str,
    grid: ParameterGrid,
    runner: Callable[[Dict[str, Any], RandomSource], Mapping[str, Any]],
    *,
    repetitions: int = 1,
    base_seed: int = 0,
) -> List[RunResult]:
    """Functional shortcut: build an :class:`Experiment` and run it."""
    experiment = Experiment(
        name=name, grid=grid, runner=runner, repetitions=repetitions, base_seed=base_seed
    )
    return experiment.run()


def group_results(
    results: Iterable[RunResult], by: Sequence[str]
) -> Dict[tuple, List[RunResult]]:
    """Group run results by the values of the given parameter names."""
    grouped: Dict[tuple, List[RunResult]] = {}
    for result in results:
        key = tuple(result.parameters[name] for name in by)
        grouped.setdefault(key, []).append(result)
    return grouped
