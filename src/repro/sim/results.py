"""Tabular results with aggregation and plain-text rendering.

The benchmark harnesses reproduce the paper's tables and figure series by
printing :class:`ResultTable` objects; keeping the rendering here means the
same table can be produced from an example script, a benchmark, or the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Sequence

import numpy as np

__all__ = ["ResultTable", "aggregate"]


def _format_cell(value: Any, float_format: str) -> str:
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


@dataclass
class ResultTable:
    """A simple column-ordered table of results.

    Attributes
    ----------
    title:
        Table caption (e.g. ``"Table 1: clustering and stratification"``).
    columns:
        Ordered column names.
    rows:
        List of mappings from column name to value; missing cells render
        as an empty string.
    """

    title: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        """Append a row given as keyword arguments."""
        unknown = set(values) - set(self.columns)
        if unknown:
            raise KeyError(f"unknown columns: {sorted(unknown)}")
        self.rows.append(dict(values))

    def column(self, name: str) -> List[Any]:
        """Return one column as a list (missing cells become ``None``)."""
        if name not in self.columns:
            raise KeyError(f"unknown column '{name}'")
        return [row.get(name) for row in self.rows]

    def sort_by(self, name: str) -> None:
        """Sort rows in place by the given column."""
        self.rows.sort(key=lambda row: row.get(name))

    def to_text(self, float_format: str = ".4g") -> str:
        """Render the table as aligned plain text."""
        header = list(self.columns)
        body = [
            [_format_cell(row.get(col, ""), float_format) for col in header]
            for row in self.rows
        ]
        widths = [
            max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [self.title, ""]
        lines.append("  ".join(header[i].ljust(widths[i]) for i in range(len(header))))
        lines.append("  ".join("-" * widths[i] for i in range(len(header))))
        for line in body:
            lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(header))))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_text()

    def to_records(self) -> List[Dict[str, Any]]:
        """Return a deep-copied list of row dictionaries."""
        return [dict(row) for row in self.rows]


def aggregate(
    values: Iterable[float],
    statistics: Sequence[str] = ("mean", "std", "min", "max"),
) -> Dict[str, float]:
    """Aggregate a sequence of numbers into the requested statistics.

    Supported statistics: ``mean``, ``std``, ``min``, ``max``, ``median``,
    ``sum``, ``count``.
    """
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("cannot aggregate an empty sequence")
    available: Dict[str, Callable[[np.ndarray], float]] = {
        "mean": lambda a: float(a.mean()),
        "std": lambda a: float(a.std(ddof=0)),
        "min": lambda a: float(a.min()),
        "max": lambda a: float(a.max()),
        "median": lambda a: float(np.median(a)),
        "sum": lambda a: float(a.sum()),
        "count": lambda a: float(a.size),
    }
    out: Dict[str, float] = {}
    for stat in statistics:
        if stat not in available:
            raise KeyError(f"unknown statistic '{stat}'")
        out[stat] = available[stat](array)
    return out
