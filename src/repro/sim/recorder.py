"""Metric recording utilities.

:class:`TimeSeries` stores (time, value) samples for one metric;
:class:`MetricRecorder` manages a collection of named series.  These are the
objects returned by the convergence / churn simulations and consumed by the
benchmark harnesses that re-print the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

import numpy as np

__all__ = ["TimeSeries", "MetricRecorder"]


@dataclass
class TimeSeries:
    """An append-only series of (time, value) samples."""

    name: str
    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def append(self, time: float, value: float) -> None:
        """Append one sample; time must be non-decreasing."""
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"time series '{self.name}' must be sampled in order "
                f"({time} < {self.times[-1]})"
            )
        self.times.append(float(time))
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return iter(zip(self.times, self.values))

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return (times, values) as numpy arrays."""
        return np.asarray(self.times, dtype=float), np.asarray(self.values, dtype=float)

    def last(self) -> float:
        """Return the most recent value."""
        if not self.values:
            raise ValueError(f"time series '{self.name}' is empty")
        return self.values[-1]

    def value_at(self, time: float) -> float:
        """Return the value of the last sample taken at or before ``time``."""
        if not self.times:
            raise ValueError(f"time series '{self.name}' is empty")
        idx = int(np.searchsorted(self.times, time, side="right")) - 1
        if idx < 0:
            raise ValueError(f"no sample at or before time {time}")
        return self.values[idx]

    def mean(self, after: float = float("-inf")) -> float:
        """Mean of values sampled strictly after ``after``."""
        selected = [v for t, v in zip(self.times, self.values) if t > after]
        if not selected:
            raise ValueError("no samples in requested window")
        return float(np.mean(selected))

    def max(self) -> float:
        """Maximum recorded value."""
        if not self.values:
            raise ValueError(f"time series '{self.name}' is empty")
        return float(np.max(self.values))

    def min(self) -> float:
        """Minimum recorded value."""
        if not self.values:
            raise ValueError(f"time series '{self.name}' is empty")
        return float(np.min(self.values))

    def first_time_below(self, threshold: float) -> Optional[float]:
        """Earliest sample time whose value is <= ``threshold`` (or None)."""
        for t, v in zip(self.times, self.values):
            if v <= threshold:
                return t
        return None

    def tail_mean(self, fraction: float = 0.25) -> float:
        """Mean over the final ``fraction`` of the samples."""
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        if not self.values:
            raise ValueError(f"time series '{self.name}' is empty")
        count = max(1, int(round(fraction * len(self.values))))
        return float(np.mean(self.values[-count:]))


class MetricRecorder:
    """A named collection of :class:`TimeSeries`."""

    def __init__(self) -> None:
        self._series: Dict[str, TimeSeries] = {}

    def series(self, name: str) -> TimeSeries:
        """Return the named series, creating it on first use."""
        if name not in self._series:
            self._series[name] = TimeSeries(name)
        return self._series[name]

    def record(self, name: str, time: float, value: float) -> None:
        """Append one sample to the named series."""
        self.series(name).append(time, value)

    def record_many(self, time: float, values: Mapping[str, float]) -> None:
        """Append one sample per metric, all at the same time."""
        for name, value in values.items():
            self.record(name, time, value)

    def names(self) -> List[str]:
        """Sorted list of metric names."""
        return sorted(self._series)

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def __getitem__(self, name: str) -> TimeSeries:
        if name not in self._series:
            raise KeyError(f"no metric named '{name}'")
        return self._series[name]

    def merge(self, other: "MetricRecorder", prefix: str = "") -> None:
        """Copy all series from ``other`` into this recorder."""
        for name in other.names():
            target = self.series(prefix + name)
            for time, value in other[name]:
                target.append(time, value)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-metric summary (count / last / mean / min / max)."""
        out: Dict[str, Dict[str, float]] = {}
        for name, series in self._series.items():
            if len(series) == 0:
                continue
            values = np.asarray(series.values)
            out[name] = {
                "count": float(len(values)),
                "last": float(values[-1]),
                "mean": float(values.mean()),
                "min": float(values.min()),
                "max": float(values.max()),
            }
        return out
