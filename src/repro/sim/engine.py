"""A small discrete-event simulation kernel.

The kernel follows the classic event-list design: events carry a timestamp,
a priority and a callback; the engine pops them in (time, priority,
sequence) order and executes the callback, which may schedule further
events.  :class:`Process` is a light convenience wrapper for recurring
activities (e.g. the churn process or the periodic BitTorrent rechoke).

The paper's core simulations (Sections 3-5) are step-based rather than
time-based, so they mostly use the engine in "one event per initiative"
mode; the BitTorrent swarm simulator uses genuine timed rounds.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.sim.clock import SimulationClock

__all__ = ["Event", "EventQueue", "SimulationEngine", "Process", "EngineError"]


class EngineError(RuntimeError):
    """Raised on invalid scheduling operations."""


@dataclass(order=True)
class _QueueEntry:
    """Internal heap entry.  Ordering: time, then priority, then sequence."""

    time: float
    priority: int
    sequence: int
    event: "Event" = field(compare=False)


@dataclass
class Event:
    """A scheduled simulation event.

    Attributes
    ----------
    time:
        Simulation time at which the event fires.
    callback:
        Callable invoked as ``callback(engine)`` when the event fires.
    priority:
        Events at equal time fire in increasing priority order.
    name:
        Optional label used in traces.
    """

    time: float
    callback: Callable[["SimulationEngine"], None]
    priority: int = 0
    name: str = ""
    cancelled: bool = False

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True


class EventQueue:
    """Priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: List[_QueueEntry] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for entry in self._heap if not entry.event.cancelled)

    def push(self, event: Event) -> Event:
        """Add an event and return it (so callers can later cancel it)."""
        entry = _QueueEntry(event.time, event.priority, next(self._counter), event)
        heapq.heappush(self._heap, entry)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the next non-cancelled event, or ``None``."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if not entry.event.cancelled:
                return entry.event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the time of the next non-cancelled event, or ``None``."""
        while self._heap and self._heap[0].event.cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def clear(self) -> None:
        """Drop all pending events."""
        self._heap.clear()


class SimulationEngine:
    """Drives the event loop.

    Parameters
    ----------
    clock:
        Optional externally supplied clock; a fresh one is created otherwise.
    """

    def __init__(self, clock: Optional[SimulationClock] = None) -> None:
        self.clock = clock if clock is not None else SimulationClock()
        self.queue = EventQueue()
        self._running = False
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.clock.now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule(
        self,
        delay: float,
        callback: Callable[["SimulationEngine"], None],
        *,
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise EngineError(f"cannot schedule event in the past (delay={delay})")
        event = Event(self.clock.now + delay, callback, priority=priority, name=name)
        return self.queue.push(event)

    def schedule_at(
        self,
        time: float,
        callback: Callable[["SimulationEngine"], None],
        *,
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Schedule ``callback`` at the absolute simulation time ``time``."""
        if time < self.clock.now:
            raise EngineError(
                f"cannot schedule event at {time}, current time is {self.clock.now}"
            )
        event = Event(time, callback, priority=priority, name=name)
        return self.queue.push(event)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the next event would fire strictly after this time.
        max_events:
            Stop after executing this many events.

        Returns
        -------
        int
            The number of events executed by this call.
        """
        executed = 0
        self._running = True
        try:
            while self._running:
                if max_events is not None and executed >= max_events:
                    break
                next_time = self.queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                event = self.queue.pop()
                if event is None:
                    break
                self.clock.advance_to(event.time)
                event.callback(self)
                executed += 1
                self._processed += 1
        finally:
            self._running = False
        if until is not None and self.clock.now < until and self.queue.peek_time() is None:
            # Advance idle time to the requested horizon.
            self.clock.advance_to(until)
        return executed

    def stop(self) -> None:
        """Request the running loop to stop after the current event."""
        self._running = False

    def reset(self) -> None:
        """Clear the event queue and reset the clock."""
        self.queue.clear()
        self.clock.reset()
        self._processed = 0


class Process:
    """A recurring activity driven by the engine.

    Subclasses (or callers supplying ``action``) implement one *tick*; the
    process reschedules itself every ``interval`` time units until stopped.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        interval: float,
        action: Optional[Callable[[SimulationEngine], None]] = None,
        *,
        name: str = "process",
        priority: int = 0,
    ) -> None:
        if interval <= 0:
            raise EngineError("process interval must be positive")
        self.engine = engine
        self.interval = float(interval)
        self.name = name
        self.priority = priority
        self._action = action
        self._next_event: Optional[Event] = None
        self._ticks = 0
        self._stopped = True

    @property
    def ticks(self) -> int:
        """Number of completed ticks."""
        return self._ticks

    @property
    def running(self) -> bool:
        """Whether the process is currently scheduled."""
        return not self._stopped

    def tick(self, engine: SimulationEngine) -> None:
        """One activation of the process; default delegates to ``action``."""
        if self._action is not None:
            self._action(engine)

    def start(self, initial_delay: float = 0.0) -> None:
        """Start the process; the first tick happens after ``initial_delay``."""
        self._stopped = False
        self._next_event = self.engine.schedule(
            initial_delay, self._fire, priority=self.priority, name=self.name
        )

    def stop(self) -> None:
        """Stop the process; any pending tick is cancelled."""
        self._stopped = True
        if self._next_event is not None:
            self._next_event.cancel()
            self._next_event = None

    def _fire(self, engine: SimulationEngine) -> None:
        if self._stopped:
            return
        self.tick(engine)
        self._ticks += 1
        if not self._stopped:
            self._next_event = engine.schedule(
                self.interval, self._fire, priority=self.priority, name=self.name
            )
