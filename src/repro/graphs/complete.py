"""Complete acceptance graphs (Section 4's toy model)."""

from __future__ import annotations

from repro.graphs.base import UndirectedGraph

__all__ = ["complete_graph"]


def complete_graph(n: int, *, first_id: int = 1) -> UndirectedGraph:
    """Return the complete graph on ``n`` vertices labelled from ``first_id``.

    In the complete acceptance graph every peer is willing to collaborate
    with every other peer; this is the setting of the paper's Section 4
    where pure clustering / stratification is easiest to see.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    graph = UndirectedGraph(range(first_id, first_id + n))
    for u in range(n):
        for v in range(u + 1, n):
            graph.add_edge(first_id + u, first_id + v)
    return graph
