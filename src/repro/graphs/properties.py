"""Structural graph statistics.

These helpers are used to characterise both acceptance graphs (checking the
Erdős–Rényi generator really delivers the requested expected degree) and
collaboration graphs (degree distribution, clustering coefficient, distance
estimates that quantify the stratification discussion of Section 4).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

import numpy as np

from repro.graphs.base import UndirectedGraph

__all__ = [
    "mean_degree",
    "degree_histogram",
    "clustering_coefficient",
    "shortest_path_lengths",
    "average_shortest_path_length",
    "graph_diameter",
]


def mean_degree(graph: UndirectedGraph) -> float:
    """Average vertex degree (0 for an empty graph)."""
    if graph.vertex_count == 0:
        return 0.0
    return 2.0 * graph.edge_count / graph.vertex_count


def degree_histogram(graph: UndirectedGraph) -> Dict[int, int]:
    """Mapping degree -> number of vertices with that degree."""
    histogram: Dict[int, int] = {}
    for degree in graph.degrees().values():
        histogram[degree] = histogram.get(degree, 0) + 1
    return dict(sorted(histogram.items()))


def clustering_coefficient(graph: UndirectedGraph, vertex: Optional[int] = None) -> float:
    """Local clustering coefficient of ``vertex``, or the graph average.

    The local coefficient of a vertex with degree < 2 is defined as 0.
    """
    if vertex is not None:
        return _local_clustering(graph, vertex)
    vertices = graph.vertices()
    if not vertices:
        return 0.0
    return float(np.mean([_local_clustering(graph, v) for v in vertices]))


def _local_clustering(graph: UndirectedGraph, vertex: int) -> float:
    neighbors = list(graph.neighbors(vertex))
    k = len(neighbors)
    if k < 2:
        return 0.0
    links = 0
    for i in range(k):
        for j in range(i + 1, k):
            if graph.has_edge(neighbors[i], neighbors[j]):
                links += 1
    return 2.0 * links / (k * (k - 1))


def shortest_path_lengths(graph: UndirectedGraph, source: int) -> Dict[int, int]:
    """BFS distances from ``source`` to every reachable vertex."""
    if not graph.has_vertex(source):
        raise KeyError(f"vertex {source} not in graph")
    distances = {source: 0}
    frontier = deque([source])
    while frontier:
        current = frontier.popleft()
        for neighbor in graph.neighbors(current):
            if neighbor not in distances:
                distances[neighbor] = distances[current] + 1
                frontier.append(neighbor)
    return distances


def average_shortest_path_length(
    graph: UndirectedGraph, sample_sources: Optional[List[int]] = None
) -> float:
    """Average pairwise distance within components.

    For large graphs an explicit ``sample_sources`` list can be supplied to
    estimate the average from a subset of BFS trees.
    """
    sources = sample_sources if sample_sources is not None else graph.vertices()
    total = 0
    count = 0
    for source in sources:
        distances = shortest_path_lengths(graph, source)
        for target, distance in distances.items():
            if target != source:
                total += distance
                count += 1
    if count == 0:
        return 0.0
    return total / count


def graph_diameter(graph: UndirectedGraph) -> int:
    """Largest eccentricity over all vertices (within components).

    Returns 0 for graphs with fewer than two vertices.
    """
    diameter = 0
    for source in graph.vertices():
        distances = shortest_path_lengths(graph, source)
        if distances:
            diameter = max(diameter, max(distances.values()))
    return diameter
