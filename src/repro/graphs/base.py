"""Compact undirected graph over integer vertex ids.

The acceptance graphs and collaboration graphs in the paper are simple
undirected graphs whose vertices are peer identifiers.  We keep a dedicated
lightweight structure (adjacency sets in a dict) rather than pulling in
``networkx`` for the hot paths: the convergence simulations touch edges
millions of times and benefit from direct set operations, and the structure
doubles as the configuration (matching) representation in
:mod:`repro.core.matching`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

__all__ = ["UndirectedGraph"]


class UndirectedGraph:
    """A simple undirected graph (no loops, no parallel edges).

    Vertices are arbitrary hashable ids (in practice integer peer ids).
    """

    def __init__(self, vertices: Optional[Iterable[int]] = None) -> None:
        self._adjacency: Dict[int, Set[int]] = {}
        if vertices is not None:
            for vertex in vertices:
                self.add_vertex(vertex)

    # -- vertices -----------------------------------------------------------

    def add_vertex(self, vertex: int) -> None:
        """Add a vertex (no effect if already present)."""
        self._adjacency.setdefault(vertex, set())

    def remove_vertex(self, vertex: int) -> None:
        """Remove a vertex and all its incident edges."""
        if vertex not in self._adjacency:
            raise KeyError(f"vertex {vertex} not in graph")
        for neighbor in list(self._adjacency[vertex]):
            self._adjacency[neighbor].discard(vertex)
        del self._adjacency[vertex]

    def has_vertex(self, vertex: int) -> bool:
        """Whether the vertex is present."""
        return vertex in self._adjacency

    def vertices(self) -> List[int]:
        """List of vertices (sorted for determinism)."""
        return sorted(self._adjacency)

    @property
    def vertex_count(self) -> int:
        """Number of vertices."""
        return len(self._adjacency)

    # -- edges --------------------------------------------------------------

    def add_edge(self, u: int, v: int) -> None:
        """Add the undirected edge (u, v); vertices are created as needed."""
        if u == v:
            raise ValueError(f"self-loops are not allowed (vertex {u})")
        self.add_vertex(u)
        self.add_vertex(v)
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)

    def remove_edge(self, u: int, v: int) -> None:
        """Remove the undirected edge (u, v)."""
        if not self.has_edge(u, v):
            raise KeyError(f"edge ({u}, {v}) not in graph")
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge (u, v) exists."""
        return u in self._adjacency and v in self._adjacency[u]

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over edges once each, as (min, max) pairs."""
        for u in sorted(self._adjacency):
            for v in sorted(self._adjacency[u]):
                if u < v:
                    yield (u, v)

    @property
    def edge_count(self) -> int:
        """Number of edges."""
        return sum(len(neighbors) for neighbors in self._adjacency.values()) // 2

    # -- neighborhoods ------------------------------------------------------

    def neighbors(self, vertex: int) -> Set[int]:
        """The neighbor set of a vertex (a copy-safe frozen view is not
        needed; callers must not mutate the returned set)."""
        if vertex not in self._adjacency:
            raise KeyError(f"vertex {vertex} not in graph")
        return self._adjacency[vertex]

    def degree(self, vertex: int) -> int:
        """Number of neighbors of a vertex."""
        return len(self.neighbors(vertex))

    def degrees(self) -> Dict[int, int]:
        """Mapping vertex -> degree."""
        return {vertex: len(neighbors) for vertex, neighbors in self._adjacency.items()}

    # -- utilities ----------------------------------------------------------

    def copy(self) -> "UndirectedGraph":
        """Deep copy of the graph."""
        clone = UndirectedGraph()
        clone._adjacency = {vertex: set(neighbors) for vertex, neighbors in self._adjacency.items()}
        return clone

    def subgraph(self, vertices: Iterable[int]) -> "UndirectedGraph":
        """The induced subgraph on the given vertices."""
        keep = set(vertices)
        sub = UndirectedGraph(keep & set(self._adjacency))
        for u in sub.vertices():
            for v in self._adjacency[u]:
                if v in keep and u < v:
                    sub.add_edge(u, v)
        return sub

    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` (for analysis / plotting)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(self.vertices())
        graph.add_edges_from(self.edges())
        return graph

    def __contains__(self, vertex: int) -> bool:
        return vertex in self._adjacency

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UndirectedGraph):
            return NotImplemented
        return self._adjacency == other._adjacency

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"UndirectedGraph(|V|={self.vertex_count}, |E|={self.edge_count})"
