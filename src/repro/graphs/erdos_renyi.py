"""Loopless symmetric Erdős–Rényi acceptance graphs.

The paper uses G(n, d) graphs where ``d`` is the *expected degree*: each of
the n(n-1)/2 potential edges exists independently with probability
``p = d / (n - 1)`` (Section 3).  We expose both the probability-based and
the expected-degree-based constructors.

For efficiency, edges are generated with a vectorised geometric-skipping
scheme rather than testing every pair, which keeps graph generation fast for
the paper's n = 5000 Monte-Carlo validation runs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graphs.base import UndirectedGraph
from repro.sim import streams
from repro.sim.random_source import fallback_rng

__all__ = ["erdos_renyi_graph", "expected_degree_to_probability", "erdos_renyi_expected_degree"]


def expected_degree_to_probability(n: int, expected_degree: float) -> float:
    """Convert an expected degree ``d`` to the edge probability ``d/(n-1)``.

    Raises
    ------
    ValueError
        If the resulting probability falls outside [0, 1].
    """
    if n < 2:
        raise ValueError("need at least two vertices")
    probability = expected_degree / (n - 1)
    if not 0.0 <= probability <= 1.0:
        raise ValueError(
            f"expected degree {expected_degree} is infeasible for n={n} "
            f"(probability {probability} outside [0, 1])"
        )
    return probability


def erdos_renyi_graph(
    n: int,
    p: float,
    rng: Optional[np.random.Generator] = None,
    *,
    first_id: int = 1,
) -> UndirectedGraph:
    """Sample a loopless symmetric Erdős–Rényi graph G(n, p).

    Parameters
    ----------
    n:
        Number of vertices.  Vertices are labelled ``first_id`` to
        ``first_id + n - 1``; the paper labels peers 1..n where the label is
        also the global rank (1 = best).
    p:
        Independent probability of each edge.
    rng:
        Numpy random generator, normally a named
        :class:`~repro.sim.random_source.RandomSource` stream.  Omitting it
        is deprecated: the fallback is a fixed deterministic stream (so two
        implicit calls can no longer diverge silently) and warns.
    first_id:
        Label of the first vertex (default 1 to match the paper).
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"edge probability must be in [0, 1], got {p}")
    if rng is None:
        rng = fallback_rng(streams.GRAPH)

    graph = UndirectedGraph(range(first_id, first_id + n))
    if n < 2 or p == 0.0:
        return graph

    if p == 1.0:
        for u in range(n):
            for v in range(u + 1, n):
                graph.add_edge(first_id + u, first_id + v)
        return graph

    # Geometric skipping over the n(n-1)/2 pair indices: the gap between
    # consecutive present edges is geometrically distributed.
    total_pairs = n * (n - 1) // 2
    log_q = np.log1p(-p)
    index = -1
    while True:
        with np.errstate(over="ignore", divide="ignore"):
            ratio = np.log(1.0 - rng.random()) / log_q
        if not np.isfinite(ratio) or ratio >= total_pairs:
            # The skip jumps past every remaining pair (tiny p or unlucky draw).
            break
        index += int(np.floor(ratio)) + 1
        if index >= total_pairs:
            break
        u, v = _pair_from_index(index, n)
        graph.add_edge(first_id + u, first_id + v)
    return graph


def erdos_renyi_expected_degree(
    n: int,
    expected_degree: float,
    rng: Optional[np.random.Generator] = None,
    *,
    first_id: int = 1,
) -> UndirectedGraph:
    """Sample G(n, d) where ``d`` is the expected degree (paper notation)."""
    p = expected_degree_to_probability(n, expected_degree)
    return erdos_renyi_graph(n, p, rng, first_id=first_id)


def _pair_from_index(index: int, n: int) -> tuple[int, int]:
    """Map a linear index in [0, n(n-1)/2) to the (u, v) pair it encodes.

    Pairs are ordered lexicographically: (0,1), (0,2), ..., (0,n-1), (1,2), ...
    """
    # Row u contains (n - 1 - u) pairs; find the row by solving the
    # triangular-number inequality, then the column within the row.
    # cumulative(u) = u*n - u*(u+1)/2 pairs precede row u.
    u = int((2 * n - 1 - np.sqrt((2 * n - 1) ** 2 - 8 * index)) // 2)
    # Guard against floating point rounding at row boundaries.
    while u * n - u * (u + 1) // 2 > index:
        u -= 1
    while (u + 1) * n - (u + 1) * (u + 2) // 2 <= index:
        u += 1
    preceding = u * n - u * (u + 1) // 2
    v = u + 1 + (index - preceding)
    return u, v
