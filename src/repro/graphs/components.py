"""Connected components and cluster-size statistics.

Section 4 of the paper analyzes the *collaboration graph* (the stable
configuration seen as a graph) through its connected components: constant
b-matching on a complete acceptance graph yields (b0+1)-cliques, while
variable b produces a phase transition in the mean cluster size.
"""

from __future__ import annotations

from collections import deque
from typing import List

import numpy as np

from repro.graphs.base import UndirectedGraph

__all__ = [
    "connected_components",
    "cluster_sizes",
    "largest_component_size",
    "mean_cluster_size",
    "is_connected",
    "component_of",
]


def connected_components(graph: UndirectedGraph) -> List[List[int]]:
    """Return the connected components as sorted lists of vertices.

    Components are returned in order of their smallest vertex.
    """
    seen: set[int] = set()
    components: List[List[int]] = []
    for start in graph.vertices():
        if start in seen:
            continue
        component = _bfs_component(graph, start)
        seen.update(component)
        components.append(sorted(component))
    return components


def component_of(graph: UndirectedGraph, vertex: int) -> List[int]:
    """Return the sorted component containing ``vertex``."""
    if not graph.has_vertex(vertex):
        raise KeyError(f"vertex {vertex} not in graph")
    return sorted(_bfs_component(graph, vertex))


def _bfs_component(graph: UndirectedGraph, start: int) -> set[int]:
    component = {start}
    frontier = deque([start])
    while frontier:
        current = frontier.popleft()
        for neighbor in graph.neighbors(current):
            if neighbor not in component:
                component.add(neighbor)
                frontier.append(neighbor)
    return component


def cluster_sizes(graph: UndirectedGraph) -> List[int]:
    """Sizes of all connected components (descending)."""
    return sorted((len(c) for c in connected_components(graph)), reverse=True)


def largest_component_size(graph: UndirectedGraph) -> int:
    """Size of the largest connected component (0 for an empty graph)."""
    sizes = cluster_sizes(graph)
    return sizes[0] if sizes else 0


def mean_cluster_size(graph: UndirectedGraph, *, ignore_isolated: bool = False) -> float:
    """Average connected-component size.

    Parameters
    ----------
    ignore_isolated:
        When true, isolated vertices (degree 0) are excluded; the paper's
        "average cluster size" in Table 1 counts collaboration clusters, and
        on a complete acceptance graph with b >= 1 no vertex stays isolated,
        so both conventions coincide there.
    """
    sizes = cluster_sizes(graph)
    if ignore_isolated:
        sizes = [size for size in sizes if size > 1]
    if not sizes:
        return 0.0
    return float(np.mean(sizes))


def is_connected(graph: UndirectedGraph) -> bool:
    """Whether the graph has a single connected component (and >= 1 vertex)."""
    if graph.vertex_count == 0:
        return False
    return len(_bfs_component(graph, graph.vertices()[0])) == graph.vertex_count
