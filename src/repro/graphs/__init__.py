"""Acceptance-graph substrate.

The paper's model restricts collaborations to pairs present in an
*acceptance graph*.  This subpackage provides:

* :mod:`repro.graphs.base` -- a compact undirected-graph data structure
  (adjacency sets over integer peer ids).
* :mod:`repro.graphs.erdos_renyi` -- the loopless symmetric Erdős–Rényi
  generator used throughout Sections 3 and 5.
* :mod:`repro.graphs.complete` -- complete acceptance graphs (Section 4's
  "toy model").
* :mod:`repro.graphs.generators` -- additional generators (random regular,
  ring lattices, configuration model) used for ablations.
* :mod:`repro.graphs.components` -- connected-component and cluster-size
  analysis.
* :mod:`repro.graphs.properties` -- degree statistics, clustering
  coefficient and distance estimates.
"""

from repro.graphs.base import UndirectedGraph
from repro.graphs.complete import complete_graph
from repro.graphs.components import cluster_sizes, connected_components, largest_component_size
from repro.graphs.erdos_renyi import erdos_renyi_graph, expected_degree_to_probability
from repro.graphs.generators import random_regular_graph, ring_lattice
from repro.graphs.properties import clustering_coefficient, degree_histogram, mean_degree

__all__ = [
    "UndirectedGraph",
    "complete_graph",
    "connected_components",
    "cluster_sizes",
    "largest_component_size",
    "erdos_renyi_graph",
    "expected_degree_to_probability",
    "random_regular_graph",
    "ring_lattice",
    "degree_histogram",
    "mean_degree",
    "clustering_coefficient",
]
