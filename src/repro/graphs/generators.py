"""Additional acceptance-graph generators used for ablations.

The paper's acceptance graphs are complete (Section 4) or Erdős–Rényi
(Sections 3, 5).  Real overlays are often closer to regular or small-world
graphs, so we also provide a random-regular generator and a ring lattice,
used by the ablation benchmarks to check that stratification survives on
other topologies.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graphs.base import UndirectedGraph
from repro.sim import streams
from repro.sim.random_source import fallback_rng

__all__ = ["random_regular_graph", "ring_lattice", "configuration_model_graph"]


def ring_lattice(n: int, k: int, *, first_id: int = 1) -> UndirectedGraph:
    """Ring lattice: each vertex is connected to its ``k`` nearest neighbors.

    ``k`` must be even (k/2 neighbors on each side) and smaller than ``n``.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if k < 0 or k >= n:
        raise ValueError("k must satisfy 0 <= k < n")
    if k % 2 != 0:
        raise ValueError("k must be even for a ring lattice")
    graph = UndirectedGraph(range(first_id, first_id + n))
    half = k // 2
    for i in range(n):
        for offset in range(1, half + 1):
            j = (i + offset) % n
            graph.add_edge(first_id + i, first_id + j)
    return graph


def random_regular_graph(
    n: int,
    degree: int,
    rng: Optional[np.random.Generator] = None,
    *,
    first_id: int = 1,
    max_attempts: int = 200,
) -> UndirectedGraph:
    """Sample a random ``degree``-regular graph by pairing half-edges.

    Uses repeated attempts of the pairing (configuration) model, rejecting
    pairings that would create loops or multi-edges; this is exact for the
    regular case and fast for the moderate degrees used in this library.
    """
    if rng is None:
        rng = fallback_rng(streams.GRAPH)
    if n <= 0:
        raise ValueError("n must be positive")
    if degree < 0 or degree >= n:
        raise ValueError("degree must satisfy 0 <= degree < n")
    if (n * degree) % 2 != 0:
        raise ValueError("n * degree must be even")
    if degree == 0:
        return UndirectedGraph(range(first_id, first_id + n))

    for _ in range(max_attempts):
        graph = _attempt_regular_pairing(n, degree, rng, first_id)
        if graph is not None:
            return graph
    raise RuntimeError(
        f"failed to sample a simple {degree}-regular graph on {n} vertices "
        f"after {max_attempts} attempts"
    )


def _attempt_regular_pairing(
    n: int, degree: int, rng: np.random.Generator, first_id: int
) -> Optional[UndirectedGraph]:
    stubs = np.repeat(np.arange(n), degree)
    rng.shuffle(stubs)
    graph = UndirectedGraph(range(first_id, first_id + n))
    for i in range(0, len(stubs), 2):
        u, v = int(stubs[i]), int(stubs[i + 1])
        if u == v or graph.has_edge(first_id + u, first_id + v):
            return None
        graph.add_edge(first_id + u, first_id + v)
    return graph


def configuration_model_graph(
    degrees: list[int],
    rng: Optional[np.random.Generator] = None,
    *,
    first_id: int = 1,
    max_attempts: int = 500,
) -> UndirectedGraph:
    """Sample a simple graph with (approximately) the given degree sequence.

    Repeatedly tries the pairing model and rejects non-simple outcomes.  The
    degree sequence must have an even sum.
    """
    if rng is None:
        rng = fallback_rng(streams.GRAPH)
    if any(d < 0 for d in degrees):
        raise ValueError("degrees must be non-negative")
    if sum(degrees) % 2 != 0:
        raise ValueError("the degree sequence must have an even sum")
    n = len(degrees)
    for _ in range(max_attempts):
        stubs = np.repeat(np.arange(n), degrees)
        rng.shuffle(stubs)
        graph = UndirectedGraph(range(first_id, first_id + n))
        ok = True
        for i in range(0, len(stubs), 2):
            u, v = int(stubs[i]), int(stubs[i + 1])
            if u == v or graph.has_edge(first_id + u, first_id + v):
                ok = False
                break
            graph.add_edge(first_id + u, first_id + v)
        if ok:
            return graph
    raise RuntimeError(
        "failed to sample a simple graph with the requested degree sequence"
    )
