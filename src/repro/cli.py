"""Command-line interface: ``repro-p2p <experiment>``.

Runs one of the paper's experiments and prints the resulting table or
series summary.  ``repro-p2p list`` shows the available experiment names.
"""

from __future__ import annotations

import argparse
import cProfile
import inspect
import pstats
import sys
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro import experiments
from repro.bittorrent.behaviors import (
    BEHAVIOR_MIX_NAMES,
    BEHAVIOR_NAMES,
    make_behavior_mix,
)
from repro.bittorrent.faults import FAULT_PRESET_NAMES, make_faults
from repro.bittorrent.resilience import RESILIENCE_PRESET_NAMES, make_resilience
from repro.bittorrent.scenarios import SCENARIO_NAMES
from repro.core.exceptions import ENGINES
from repro.sim.parallel import ResultCache, source_fingerprint
from repro.sim.results import ResultTable

__all__ = ["main", "build_parser"]

# Default location of the on-disk result cache.  A module-level constant so
# embedders (and the test suite) can redirect it before ``build_parser``.
DEFAULT_CACHE_DIR = Path(".repro-cache")


def _print_series(series: Dict[str, Dict[str, np.ndarray]]) -> None:
    for label, data in series.items():
        print(f"== {label}")
        for key, values in data.items():
            array = np.asarray(values)
            if array.size == 0:
                print(f"   {key}: (no samples)")
            elif array.size == 1:
                print(f"   {key}: {float(array[0]):.6g}")
            else:
                print(
                    f"   {key}: {array.size} samples "
                    f"[first={array[0]:.4g}, last={array[-1]:.4g}, max={array.max():.4g}]"
                )


def _print_result(result: object) -> None:
    if isinstance(result, ResultTable):
        print(result.to_text())
    elif isinstance(result, dict):
        # Either a series dict or a flat metrics dict.
        if result and all(isinstance(v, dict) for v in result.values()):
            _print_series(result)  # type: ignore[arg-type]
        else:
            for key, value in result.items():
                if isinstance(value, (int, float, np.floating)):
                    print(f"{key}: {float(value):.6g}")
                elif isinstance(value, np.ndarray):
                    print(f"{key}: array of {value.size} values")
                else:
                    print(f"{key}: {value}")
    else:
        print(result)


_EXPERIMENTS: Dict[str, Callable[[], object]] = {
    "figure1": experiments.figure1_convergence,
    "figure2": experiments.figure2_peer_removal,
    "figure3": experiments.figure3_churn,
    "figure4-5": experiments.figure4_figure5_clusters,
    "figure6": experiments.figure6_phase_transition,
    "table1": experiments.table1_clustering,
    "figure7": experiments.figure7_approximation_error,
    "figure8": experiments.figure8_neighbor_distributions,
    "figure9": experiments.figure9_validation,
    "figure10": experiments.figure10_bandwidth_cdf,
    "figure11": experiments.figure11_efficiency,
    "swarm": experiments.swarm_stratification_experiment,
    "scenario-timeline": experiments.scenario_stratification_timeline,
    "telemetry": experiments.telemetry_experiment,
    "behavior-sweep": experiments.behavior_sweep_experiment,
    "fault-sweep": experiments.fault_sweep_experiment,
    "resilience-sweep": experiments.resilience_sweep_experiment,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-p2p",
        description=(
            "Reproduce the experiments of 'Stratification in P2P Networks: "
            "Application to BitTorrent' (Gai et al., ICDCS 2007)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["list", "all"],
        help="experiment to run ('list' to enumerate, 'all' to run everything)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="base random seed (where applicable)"
    )
    parser.add_argument(
        "--engine",
        choices=sorted(ENGINES),
        default="reference",
        help=(
            "simulation backend for the engine-aware experiments "
            "(figure1/2/3/6, table1, swarm, scenario-timeline): 'reference' "
            "is the validated oracle, 'fast' the bit-identical vectorized "
            "engine"
        ),
    )
    parser.add_argument(
        "--scenario",
        choices=sorted(SCENARIO_NAMES),
        default=None,
        help=(
            "membership dynamics for the swarm experiments (swarm, "
            "scenario-timeline): 'static' is the paper's fixed "
            "post-flash-crowd population, 'poisson' adds continuous "
            "arrivals with leave-on-completion, 'flashcrowd' a joining "
            "burst, 'seed-linger' arrivals whose completers seed a while; "
            "scenarios are bit-identical across engines"
        ),
    )
    parser.add_argument(
        "--behavior-mix",
        default=None,
        metavar="MIX",
        help=(
            "client behavior mix for the swarm experiment: a preset "
            f"({', '.join(BEHAVIOR_MIX_NAMES)}) or a spec like "
            "'free_rider:0.2,never_upload:0.1,seeds:super_seed,groups:4' "
            f"over the behaviors {', '.join(BEHAVIOR_NAMES)}; behaviors "
            "stay bit-identical across engines"
        ),
    )
    parser.add_argument(
        "--faults",
        default=None,
        metavar="SCHEDULE",
        help=(
            "fault schedule for the swarm experiment: a preset "
            f"({', '.join(FAULT_PRESET_NAMES)}) or a spec like "
            "'outage:20+5,loss:0.02,crash:5@10~3,partition:10+5/2'; fault "
            "runs stay bit-identical across engines"
        ),
    )
    parser.add_argument(
        "--resilience",
        default=None,
        metavar="POLICY",
        help=(
            "client-side resilience policy for the swarm experiment: a "
            f"preset ({', '.join(RESILIENCE_PRESET_NAMES)}) or a spec like "
            "'trackers:3,pex:8,keepalive:5' arming multi-tracker failover, "
            "PEX gossip and dead-neighbor eviction; resilient runs stay "
            "bit-identical across engines"
        ),
    )
    parser.add_argument(
        "--observe",
        action="store_true",
        help=(
            "attach the scrape-and-poll measurement layer to the swarm "
            "experiment (adds reported/confirmed downloads and the observed "
            "stratification index; the simulated swarm stays bit-identical)"
        ),
    )
    parser.add_argument(
        "--scrape-interval",
        type=int,
        default=None,
        metavar="ROUNDS",
        help=(
            "rounds between tracker scrapes / peer polls for the observed "
            "experiments (swarm --observe, telemetry); default 1 for swarm, "
            "2 for telemetry"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "process-pool width for the sweep-style experiments "
            "(figure1/2/3/6, table1, swarm, scenario-timeline); results are "
            "bit-identical for any value, 1 runs inline"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=DEFAULT_CACHE_DIR,
        help=(
            "directory of the on-disk result cache (content-addressed by "
            "config + seed + engine + version); re-running an experiment "
            "replays its cached points instantly"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache (every point is recomputed)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "run the selected experiment under cProfile and print the top 25 "
            "cumulative hot spots (forces --workers 1 and disables the cache "
            "so the measured work stays in this process)"
        ),
    )
    return parser


def _build_cache(args: argparse.Namespace) -> Optional[ResultCache]:
    """The CLI's result cache, or ``None`` when caching is off.

    Unlike the bare library key (config + seed + engine + version), the
    CLI folds a fingerprint of the installed sources into every entry, so
    editing a simulator can never silently replay pre-edit results.
    """
    if args.no_cache or getattr(args, "profile", False):
        return None
    return ResultCache(args.cache_dir, extra_key=source_fingerprint())


def _runner_kwargs(
    runner: Callable[..., object],
    args: argparse.Namespace,
    cache: Optional[ResultCache] = None,
) -> Dict[str, object]:
    """Thread only the CLI options the experiment driver actually accepts."""
    parameters = inspect.signature(runner).parameters
    kwargs: Dict[str, object] = {}
    if "seed" in parameters:
        kwargs["seed"] = args.seed
    if "engine" in parameters:
        kwargs["engine"] = args.engine
    if "scenario" in parameters and args.scenario is not None:
        kwargs["scenario"] = args.scenario
    if "observe" in parameters and getattr(args, "observe", False):
        kwargs["observe"] = True
    if (
        "scrape_interval" in parameters
        and getattr(args, "scrape_interval", None) is not None
    ):
        kwargs["scrape_interval"] = args.scrape_interval
    if (
        "behavior_mix" in parameters
        and getattr(args, "behavior_mix", None) is not None
    ):
        kwargs["behavior_mix"] = args.behavior_mix
    if "faults" in parameters and getattr(args, "faults", None) is not None:
        kwargs["faults"] = args.faults
    if (
        "resilience" in parameters
        and getattr(args, "resilience", None) is not None
    ):
        kwargs["resilience"] = args.resilience
    if "workers" in parameters:
        kwargs["workers"] = 1 if getattr(args, "profile", False) else args.workers
    if "cache" in parameters and cache is not None:
        kwargs["cache"] = cache
    return kwargs


def _profiled(call: Callable[[], object]) -> object:
    """Run ``call`` under cProfile; print the top 25 cumulative hot spots."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = call()
    finally:
        profiler.disable()
        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.sort_stats("cumulative").print_stats(25)
    return result


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.workers < 1:
        parser.error("--workers must be >= 1")
    if args.scrape_interval is not None and args.scrape_interval < 1:
        parser.error("--scrape-interval must be >= 1")
    if args.behavior_mix is not None:
        try:
            make_behavior_mix(args.behavior_mix)
        except ValueError as exc:
            parser.error(f"--behavior-mix: {exc}")
    if args.faults is not None:
        try:
            make_faults(args.faults)
        except ValueError as exc:
            parser.error(f"--faults: {exc}")
    if args.resilience is not None:
        try:
            make_resilience(args.resilience)
        except ValueError as exc:
            parser.error(f"--resilience: {exc}")

    if args.experiment == "list":
        for name in sorted(_EXPERIMENTS):
            print(name)
        return 0

    names = sorted(_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    cache = _build_cache(args)
    for name in names:
        print(f"### {name}")
        runner = _EXPERIMENTS[name]
        kwargs = _runner_kwargs(runner, args, cache)
        if args.profile:
            result = _profiled(lambda: runner(**kwargs))
        else:
            result = runner(**kwargs)
        _print_result(result)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
