"""Algorithm 2: the independent 1-matching model.

Under the Erdős–Rényi acceptance graph G(n, p) and the independence
assumption (Assumption 1), the probability ``D(i, j)`` that peer i is
matched with peer j in the unique stable 1-matching satisfies the
recurrence (paper equation 2):

.. math::

   D(i, j) = p\\Big(1 - \\sum_{k<j} D(i, k)\\Big)\\Big(1 - \\sum_{k<i} D(j, k)\\Big)

The straightforward double loop is O(n^2) scalar operations; this module
implements an algebraically equivalent vectorised version.  Within row i the
partial sums obey

.. math::

   1 - S_i(j) = (1 - S_i(j-1)) \\cdot (1 - p(1 - C_{i}(j)))

where ``S_i(j)`` is the cumulative mass of row i up to column j and
``C_i(j) = sum_{k<i} D(j, k)`` only involves rows processed before i, so a
cumulative product over j produces the whole row at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

import numpy as np

__all__ = ["OneMatchingModel", "independent_one_matching", "match_probability_matrix"]


@dataclass
class OneMatchingModel:
    """Result of the independent 1-matching computation.

    Attributes
    ----------
    n:
        Number of peers (peer ids / ranks run from 1 to n, 1 = best).
    p:
        Erdős–Rényi edge probability.
    rows:
        Mapping peer rank -> full distribution row ``D(i, .)`` as a numpy
        array indexed by ``j - 1``.
    unmatched:
        Mapping peer rank -> probability of ending up unmatched
        (``1 - sum_j D(i, j)``).
    """

    n: int
    p: float
    rows: Dict[int, np.ndarray]
    unmatched: Dict[int, float]

    def row(self, i: int) -> np.ndarray:
        """The distribution ``D(i, .)`` for peer ``i`` (1-based)."""
        if i not in self.rows:
            raise KeyError(
                f"row {i} was not requested; available rows: {sorted(self.rows)}"
            )
        return self.rows[i]

    def probability(self, i: int, j: int) -> float:
        """``D(i, j)`` for 1-based peers i, j."""
        if i == j:
            return 0.0
        return float(self.row(i)[j - 1])

    def match_probability(self, i: int) -> float:
        """Probability that peer i is matched at all."""
        return 1.0 - self.unmatched[i]

    def mean_partner_rank(self, i: int) -> float:
        """Expected rank of the partner of peer i, conditioned on matching."""
        row = self.row(i)
        mass = row.sum()
        if mass <= 0:
            raise ValueError(f"peer {i} has zero matching probability")
        ranks = np.arange(1, self.n + 1)
        return float((row * ranks).sum() / mass)

    def offset_distribution(self, i: int) -> Dict[int, float]:
        """Distribution of the rank offset (j - i) of the partner of peer i."""
        row = self.row(i)
        return {j + 1 - i: float(row[j]) for j in range(self.n) if row[j] > 0}


def independent_one_matching(
    n: int,
    p: float,
    *,
    rows: Optional[Iterable[int]] = None,
) -> OneMatchingModel:
    """Run Algorithm 2 and return the independent 1-matching model.

    Parameters
    ----------
    n:
        Number of peers.
    p:
        Erdős–Rényi edge probability.
    rows:
        Peer ranks whose full distribution row should be stored.  When
        omitted, every row is stored (O(n^2) memory); restricting the rows
        keeps memory at O(n) while still computing the exact same values.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")

    wanted = set(range(1, n + 1)) if rows is None else {int(r) for r in rows}
    for r in wanted:
        if not 1 <= r <= n:
            raise ValueError(f"requested row {r} outside 1..{n}")

    # colsum[j-1] = sum_{k < current i} D(k, j): total probability that peer j
    # is taken by a better-ranked peer processed so far.
    colsum = np.zeros(n, dtype=float)
    stored: Dict[int, np.ndarray] = {r: np.zeros(n, dtype=float) for r in wanted}
    unmatched: Dict[int, float] = {}

    for i in range(1, n + 1):
        upper = np.zeros(n - i, dtype=float)  # D(i, j) for j = i+1 .. n
        if i < n:
            j_idx = np.arange(i, n)  # zero-based indices of columns j = i+1 .. n
            availability = 1.0 - colsum[j_idx]  # 1 - sum_{k<i} D(j, k)
            # Survival of row i's mass past each column:
            #   1 - S_i(j) = (1 - S_i(i)) * prod_{m=i+1..j} (1 - p * availability(m))
            start_mass = 1.0 - colsum[i - 1]  # 1 - sum_{k<i} D(i, k), by symmetry
            decay = 1.0 - p * availability
            # prefix[t] = prod of decay[0..t-1]  (survival up to just before column j_idx[t])
            prefix = np.concatenate(([1.0], np.cumprod(decay)[:-1]))
            survival_before = start_mass * prefix
            upper = p * survival_before * availability

        # The mass of row i below the diagonal equals colsum[i-1] by symmetry.
        total = float(upper.sum()) + float(colsum[i - 1])
        unmatched[i] = max(0.0, 1.0 - total)

        if i in stored:
            stored[i][i:] = upper
        # Propagate D(i, j) to the symmetric cell of every stored later row.
        for r in wanted:
            if r > i:
                stored[r][i - 1] = upper[r - 1 - i]

        # Update column sums with this row's contribution to later columns.
        if i < n:
            colsum[i:] += upper

    return OneMatchingModel(n=n, p=p, rows=stored, unmatched=unmatched)


def match_probability_matrix(n: int, p: float) -> np.ndarray:
    """Full symmetric matrix ``D`` with ``D[i-1, j-1] = D(i, j)``.

    Convenience wrapper for small n (tests, Figure 7); O(n^2) memory.
    """
    model = independent_one_matching(n, p)
    matrix = np.zeros((n, n), dtype=float)
    for i in range(1, n + 1):
        matrix[i - 1, :] = model.row(i)
    return matrix
