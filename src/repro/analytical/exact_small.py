"""Exact matching probabilities by enumeration over all acceptance graphs.

For small systems the distribution ``D(i, j)`` can be computed exactly by
enumerating all ``2^(n(n-1)/2)`` Erdős–Rényi graphs, solving the stable
b-matching of each (Algorithm 1) and weighting by the graph probability.
This is the construction behind the paper's Figure 7 (n = 3), which exhibits
the error introduced by the independence assumption of Algorithm 2:

    D_exact(2, 3) = p (1 - p)^2
    D_algo2(2, 3) = p (1 - p) (1 - p (1 - p))
                  = D_exact(2, 3) + p^3 (1 - p)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.acceptance import AcceptanceGraph
from repro.core.peer import PeerPopulation
from repro.core.ranking import GlobalRanking
from repro.core.stable import stable_configuration
from repro.graphs.base import UndirectedGraph

__all__ = [
    "exact_match_probabilities",
    "exact_choice_probabilities",
    "figure7_exact_values",
    "figure7_independent_values",
]

_MAX_EXACT_PEERS = 7


def _all_pairs(n: int) -> List[Tuple[int, int]]:
    return [(i, j) for i in range(1, n + 1) for j in range(i + 1, n + 1)]


def _iterate_graphs(n: int, p: float):
    """Yield (graph, probability) over all labelled graphs on peers 1..n."""
    pairs = _all_pairs(n)
    for mask in range(1 << len(pairs)):
        graph = UndirectedGraph(range(1, n + 1))
        probability = 1.0
        for bit, (u, v) in enumerate(pairs):
            if mask >> bit & 1:
                graph.add_edge(u, v)
                probability *= p
            else:
                probability *= 1.0 - p
        yield graph, probability


def exact_match_probabilities(n: int, p: float, *, slots: int = 1) -> np.ndarray:
    """Exact matrix ``D[i-1, j-1] = P(i matched with j)`` for peers 1..n.

    For ``slots > 1`` the entry is the probability that i and j are matched
    together in the stable b-matching (regardless of choice order).

    Raises
    ------
    ValueError
        If ``n`` exceeds the enumeration limit (the number of graphs grows
        as ``2^(n(n-1)/2)``).
    """
    if n > _MAX_EXACT_PEERS:
        raise ValueError(
            f"exact enumeration is limited to n <= {_MAX_EXACT_PEERS} (got {n})"
        )
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")

    matrix = np.zeros((n, n), dtype=float)
    for graph, probability in _iterate_graphs(n, p):
        if probability == 0.0:
            continue
        population = PeerPopulation.ranked(n, slots=slots)
        acceptance = AcceptanceGraph(population, graph.copy())
        matching = stable_configuration(acceptance)
        for u, v in matching.pairs():
            matrix[u - 1, v - 1] += probability
            matrix[v - 1, u - 1] += probability
    return matrix


def exact_choice_probabilities(
    n: int, p: float, b0: int
) -> Dict[int, np.ndarray]:
    """Exact ``D_c(i, j)`` matrices: choice c of peer i is peer j.

    The c-th choice of a peer is its c-th best mate (by rank) in the stable
    b0-matching.  Returns a mapping ``choice -> matrix``.
    """
    if n > _MAX_EXACT_PEERS:
        raise ValueError(
            f"exact enumeration is limited to n <= {_MAX_EXACT_PEERS} (got {n})"
        )
    matrices = {c: np.zeros((n, n), dtype=float) for c in range(1, b0 + 1)}
    for graph, probability in _iterate_graphs(n, p):
        if probability == 0.0:
            continue
        population = PeerPopulation.ranked(n, slots=b0)
        acceptance = AcceptanceGraph(population, graph.copy())
        ranking = GlobalRanking.from_population(population)
        matching = stable_configuration(acceptance, ranking)
        for i in range(1, n + 1):
            mates = ranking.sorted_by_rank(matching.mates(i))
            for choice, mate in enumerate(mates, start=1):
                matrices[choice][i - 1, mate - 1] += probability
    return matrices


@dataclass
class Figure7Comparison:
    """Exact vs independent-model probabilities for the 3-peer system."""

    p: float
    exact: Dict[Tuple[int, int], float]
    independent: Dict[Tuple[int, int], float]

    def error(self, i: int, j: int) -> float:
        """Absolute approximation error on the pair (i, j)."""
        key = (min(i, j), max(i, j))
        return abs(self.independent[key] - self.exact[key])


def figure7_exact_values(p: float) -> Dict[Tuple[int, int], float]:
    """The closed-form exact probabilities of Figure 7 for n = 3.

    ``D(1,2) = p``, ``D(1,3) = p(1-p)``, ``D(2,3) = p(1-p)^2``.
    """
    return {
        (1, 2): p,
        (1, 3): p * (1.0 - p),
        (2, 3): p * (1.0 - p) ** 2,
    }


def figure7_independent_values(p: float) -> Dict[Tuple[int, int], float]:
    """Algorithm 2's values for n = 3 (the last entry carries the error)."""
    return {
        (1, 2): p,
        (1, 3): p * (1.0 - p),
        (2, 3): p * (1.0 - p) * (1.0 - p * (1.0 - p)),
    }
