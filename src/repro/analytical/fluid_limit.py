"""Fluid limit of the neighbor distribution (Section 5.2).

Three scaling results:

* **Theorem 2** -- for fixed i and p the distribution ``M_i(n, p)`` of the
  mate of peer i converges (as n grows) to a limit ``M_i(p)`` of total mass
  1: the row ``D(i, .)`` stops depending on n beyond the support it has
  already built.
* **Theorem 3 (Dirac limit)** -- rescaling ranks by ``1/n`` at fixed p sends
  the distribution to a Dirac mass at 0: everybody pairs within a vanishing
  fraction of the ranking.
* **Conjecture 1 (fluid limit)** -- with ``p_n = d / n`` and rank offsets
  rescaled by ``n``, the mate distribution of the best peer converges to the
  exponential density ``M_{0,d}(dbeta) = d exp(-d beta) dbeta``.

This module provides the limiting densities and helpers to compare them
against the finite-n output of Algorithm 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.analytical.one_matching import independent_one_matching

__all__ = [
    "fluid_limit_density",
    "fluid_limit_cdf",
    "best_peer_scaled_distribution",
    "fluid_limit_comparison",
    "FluidLimitComparison",
]


def fluid_limit_density(beta: np.ndarray | float, d: float) -> np.ndarray | float:
    """The limiting density ``d * exp(-d * beta)`` of the best peer's mate.

    ``beta`` is the mate's rank divided by n (the scaled rank offset).
    """
    if d <= 0:
        raise ValueError("expected degree d must be positive")
    beta_arr = np.asarray(beta, dtype=float)
    density = d * np.exp(-d * beta_arr)
    density = np.where(beta_arr < 0, 0.0, density)
    if np.isscalar(beta):
        return float(density)
    return density


def fluid_limit_cdf(beta: np.ndarray | float, d: float) -> np.ndarray | float:
    """CDF of the fluid limit: ``1 - exp(-d * beta)`` for beta >= 0."""
    if d <= 0:
        raise ValueError("expected degree d must be positive")
    beta_arr = np.asarray(beta, dtype=float)
    cdf = 1.0 - np.exp(-d * np.clip(beta_arr, 0.0, None))
    if np.isscalar(beta):
        return float(cdf)
    return cdf


def best_peer_scaled_distribution(n: int, d: float) -> Dict[str, np.ndarray]:
    """Finite-n scaled mate distribution of the best peer.

    Computes ``D(1, j)`` with ``p = d / n`` and returns the scaled support
    ``beta_j = j / n`` together with the scaled density ``n * D(1, j)``,
    which should approach :func:`fluid_limit_density` as n grows.
    """
    if n <= 1:
        raise ValueError("n must be at least 2")
    p = d / n
    if p > 1.0:
        raise ValueError(f"d={d} is too large for n={n}")
    model = independent_one_matching(n, p, rows=[1])
    row = model.row(1)
    betas = np.arange(1, n + 1) / n
    return {"beta": betas, "scaled_density": n * row}


@dataclass
class FluidLimitComparison:
    """Finite-n vs fluid-limit comparison for the best peer."""

    n: int
    d: float
    beta: np.ndarray
    finite_density: np.ndarray
    limit_density: np.ndarray

    @property
    def max_absolute_error(self) -> float:
        """Largest pointwise gap between the finite-n and limit densities."""
        return float(np.max(np.abs(self.finite_density - self.limit_density)))

    @property
    def l1_error(self) -> float:
        """Riemann-sum L1 distance between the two densities."""
        return float(np.sum(np.abs(self.finite_density - self.limit_density)) / self.n)


def fluid_limit_comparison(n: int, d: float) -> FluidLimitComparison:
    """Compare the finite-n scaled distribution of peer 1 with the fluid limit."""
    scaled = best_peer_scaled_distribution(n, d)
    limit = fluid_limit_density(scaled["beta"], d)
    return FluidLimitComparison(
        n=n,
        d=d,
        beta=scaled["beta"],
        finite_density=scaled["scaled_density"],
        limit_density=np.asarray(limit),
    )
