"""Analytical models for matching on random acceptance graphs (Section 5).

* :mod:`repro.analytical.one_matching` -- Algorithm 2, the independent
  1-matching recursion for ``D(i, j)``.
* :mod:`repro.analytical.b_matching` -- Algorithm 3, the independent
  b0-matching extension tracking per-choice distributions.
* :mod:`repro.analytical.exact_small` -- exact probabilities by enumeration
  over all graphs (Figure 7's counter-example).
* :mod:`repro.analytical.fluid_limit` -- the scaling limits of Section 5.2,
  including the exponential fluid limit of Conjecture 1.
* :mod:`repro.analytical.distributions` -- statistics of mate-rank
  distributions (Figure 8's three regimes).
* :mod:`repro.analytical.validation` -- Monte-Carlo validation of the
  independence assumption (Figure 9).
"""

from repro.analytical.b_matching import BMatchingModel, independent_b_matching
from repro.analytical.distributions import MateDistribution, shift_similarity
from repro.analytical.exact_small import (
    exact_choice_probabilities,
    exact_match_probabilities,
    figure7_exact_values,
    figure7_independent_values,
)
from repro.analytical.fluid_limit import (
    FluidLimitComparison,
    best_peer_scaled_distribution,
    fluid_limit_cdf,
    fluid_limit_comparison,
    fluid_limit_density,
)
from repro.analytical.one_matching import (
    OneMatchingModel,
    independent_one_matching,
    match_probability_matrix,
)
from repro.analytical.validation import (
    MonteCarloChoiceDistribution,
    ValidationReport,
    simulate_choice_distribution,
    validate_independent_model,
)

__all__ = [
    "BMatchingModel",
    "independent_b_matching",
    "MateDistribution",
    "shift_similarity",
    "exact_choice_probabilities",
    "exact_match_probabilities",
    "figure7_exact_values",
    "figure7_independent_values",
    "FluidLimitComparison",
    "best_peer_scaled_distribution",
    "fluid_limit_cdf",
    "fluid_limit_comparison",
    "fluid_limit_density",
    "OneMatchingModel",
    "independent_one_matching",
    "match_probability_matrix",
    "MonteCarloChoiceDistribution",
    "ValidationReport",
    "simulate_choice_distribution",
    "validate_independent_model",
]
