"""Algorithm 3: the independent b0-matching model.

For constant b0-matching on an Erdős–Rényi acceptance graph, the paper
tracks ``D_c(i, j)``, the probability that the c-th (best) choice of peer i
is peer j, through the joint quantity ``D^{cj}_{ci}(i, j)`` -- the
probability that j is choice ``ci`` of i *and* i is choice ``cj`` of j.
Under the independence assumption (Assumption 2),

.. math::

   D^{c_j}_{c_i}(i, j) = p \\cdot
      \\Big(\\sum_{k<j} D_{c_i - 1}(i, k) - D_{c_i}(i, k)\\Big) \\cdot
      \\Big(\\sum_{k<i} D_{c_j - 1}(j, k) - D_{c_j}(j, k)\\Big)

with the convention ``D_0(\\cdot, k)`` summing to 1.  (The paper's printed
equation (4) swaps the two upper summation limits; we use the pairing that
is consistent with the 1-matching equation (2), to which this reduces when
``b0 = 1``.)

The implementation processes peers best-first and keeps running cumulative
sums, so the cost is O(n * window * b0) where ``window`` is the effective
support of each row (the recurrence is truncated once a row's remaining
probability mass drops below a configurable threshold).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

__all__ = ["BMatchingModel", "independent_b_matching"]


@dataclass
class BMatchingModel:
    """Result of the independent b0-matching computation.

    Attributes
    ----------
    n, p, b0:
        Model parameters.
    choice_rows:
        ``choice_rows[c][i]`` is the numpy array ``D_c(i, .)`` (indexed by
        ``j - 1``) for every requested peer ``i`` and choice ``c`` in
        ``1..b0``.
    filled_slots:
        ``filled_slots[i][c]`` is the total probability that choice ``c`` of
        peer ``i`` is filled at all (``sum_j D_c(i, j)``).
    """

    n: int
    p: float
    b0: int
    choice_rows: Dict[int, Dict[int, np.ndarray]]
    filled_slots: Dict[int, Dict[int, float]]

    def row(self, choice: int, i: int) -> np.ndarray:
        """``D_choice(i, .)`` for a requested peer i."""
        if choice not in self.choice_rows:
            raise KeyError(f"choice must be in 1..{self.b0}, got {choice}")
        if i not in self.choice_rows[choice]:
            raise KeyError(
                f"row {i} was not requested; available: {sorted(self.choice_rows[choice])}"
            )
        return self.choice_rows[choice][i]

    def total_row(self, i: int) -> np.ndarray:
        """``sum_c D_c(i, .)``: the expected-mate distribution of peer i."""
        total = np.zeros(self.n, dtype=float)
        for choice in range(1, self.b0 + 1):
            total += self.row(choice, i)
        return total

    def expected_mates(self, i: int) -> float:
        """Expected number of filled slots of peer i."""
        return float(sum(self.filled_slots[i].values()))

    def probability(self, choice: int, i: int, j: int) -> float:
        """``D_choice(i, j)``."""
        if i == j:
            return 0.0
        return float(self.row(choice, i)[j - 1])


def independent_b_matching(
    n: int,
    p: float,
    b0: int,
    *,
    rows: Optional[Iterable[int]] = None,
    truncation: float = 1e-14,
) -> BMatchingModel:
    """Run Algorithm 3 and return the independent b0-matching model.

    Parameters
    ----------
    n:
        Number of peers (ranks 1..n, 1 best).
    p:
        Erdős–Rényi edge probability.
    b0:
        Constant number of collaboration slots per peer.
    rows:
        Peer ranks whose per-choice distributions are stored (all by default).
    truncation:
        Within one row, stop scanning worse peers once the probability that
        the row's last slot is still open falls below this threshold (all
        remaining entries are then smaller than ``p * truncation``).
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    if b0 <= 0:
        raise ValueError("b0 must be positive")

    wanted = set(range(1, n + 1)) if rows is None else {int(r) for r in rows}
    for r in wanted:
        if not 1 <= r <= n:
            raise ValueError(f"requested row {r} outside 1..{n}")

    # bcol[c][j-1] = sum over processed better peers k of D_c(j, k):
    # probability that choice c of peer j is already taken by a peer better
    # than the row currently being processed.  bcol[0] is the constant 1.
    bcol = [np.ones(n, dtype=float)] + [np.zeros(n, dtype=float) for _ in range(b0)]

    stored: Dict[int, Dict[int, np.ndarray]] = {
        i: {c: np.zeros(n, dtype=float) for c in range(1, b0 + 1)} for i in wanted
    }
    filled: Dict[int, Dict[int, float]] = {
        i: {c: 0.0 for c in range(1, b0 + 1)} for i in range(1, n + 1)
    }

    for i in range(1, n + 1):
        # s[c] = cumulative mass of D_c(i, k) over k scanned so far (k < j).
        # The contribution of peers better than i is bcol[c][i-1].
        s = [1.0] + [float(bcol[c][i - 1]) for c in range(1, b0 + 1)]
        store_row = stored.get(i)

        for j in range(i + 1, n + 1):
            jm = j - 1
            # Probability that the last slot of i is still open; once every
            # slot's mass is exhausted nothing further can be assigned.
            open_i = 1.0 - s[b0]
            if open_i < truncation:
                break

            # factor_j[c] = P(choice c of j is the first one not already taken
            # by a peer better than i) ; W = their sum = P(j can still take i).
            w = 0.0
            factor_j: List[float] = [0.0] * (b0 + 1)
            for c in range(1, b0 + 1):
                fc = float(bcol[c - 1][jm]) - float(bcol[c][jm])
                factor_j[c] = fc
                w += fc

            if w > 0.0:
                # D_c(i, j) = p * (s[c-1] - s[c]) * W, with every gap taken
                # from the sums up to column j-1 (snapshot before updating).
                gaps = [s[c - 1] - s[c] for c in range(1, b0 + 1)]
                v = sum(gaps)
                for c in range(1, b0 + 1):
                    d_c = p * gaps[c - 1] * w
                    if d_c != 0.0:
                        s[c] += d_c
                        filled[i][c] += d_c
                        if store_row is not None:
                            store_row[c][jm] = d_c
                # D_c(j, i) = p * factor_j[c] * V ; update j's column sums and
                # its stored row when requested.
                store_j = stored.get(j)
                pv = p * v
                for c in range(1, b0 + 1):
                    d_cj = pv * factor_j[c]
                    if d_cj != 0.0:
                        bcol[c][jm] += d_cj
                        filled[j][c] += d_cj
                        if store_j is not None:
                            store_j[c][i - 1] = d_cj

    kept = {c: {i: stored[i][c] for i in stored} for c in range(1, b0 + 1)}
    kept_filled = {i: dict(filled[i]) for i in filled}
    return BMatchingModel(
        n=n, p=p, b0=b0, choice_rows=kept, filled_slots=kept_filled
    )
