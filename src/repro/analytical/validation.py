"""Monte-Carlo validation of the independent matching models (Figure 9).

The paper validates Algorithm 3 by simulating a million Erdős–Rényi graphs
(n = 5000, p = 1%), computing the exact stable 2-matching of each and
building the empirical first- and second-choice distributions of peer 3000.
This module implements the same estimator with configurable sample counts
(the paper's run took weeks; the benchmark defaults are scaled down and the
full-scale parameters remain available).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.analytical.b_matching import BMatchingModel, independent_b_matching
from repro.core.acceptance import AcceptanceGraph
from repro.core.peer import PeerPopulation
from repro.core.ranking import GlobalRanking
from repro.core.stable import stable_configuration
from repro.sim.random_source import RandomSource

__all__ = [
    "MonteCarloChoiceDistribution",
    "simulate_choice_distribution",
    "ValidationReport",
    "validate_independent_model",
]


@dataclass
class MonteCarloChoiceDistribution:
    """Empirical per-choice mate distributions of one peer.

    Attributes
    ----------
    peer:
        The observed peer rank.
    n, p, b0:
        System parameters.
    samples:
        Number of independent graph realisations.
    choice_frequencies:
        ``choice -> array of length n``: frequency with which the peer's
        c-th best mate was each rank.
    unmatched_frequency:
        ``choice -> frequency`` with which the peer had fewer than c mates.
    """

    peer: int
    n: int
    p: float
    b0: int
    samples: int
    choice_frequencies: Dict[int, np.ndarray]
    unmatched_frequency: Dict[int, float]

    def frequency(self, choice: int) -> np.ndarray:
        """Empirical distribution of the ``choice``-th mate's rank."""
        return self.choice_frequencies[choice]


def simulate_choice_distribution(
    n: int,
    p: float,
    b0: int,
    peer: int,
    *,
    samples: int = 200,
    seed: int = 0,
) -> MonteCarloChoiceDistribution:
    """Estimate the per-choice mate distribution of ``peer`` by simulation.

    Every sample draws an independent Erdős–Rényi acceptance graph, computes
    the exact stable b0-matching with Algorithm 1, sorts the observed peer's
    mates by rank and records which rank filled each choice.
    """
    if not 1 <= peer <= n:
        raise ValueError(f"peer must be in 1..{n}")
    if samples <= 0:
        raise ValueError("samples must be positive")
    source = RandomSource(seed)
    counts = {c: np.zeros(n, dtype=float) for c in range(1, b0 + 1)}
    missing = {c: 0 for c in range(1, b0 + 1)}

    for index in range(samples):
        rng = source.fresh_stream(f"graph-{index}")
        population = PeerPopulation.ranked(n, slots=b0)
        acceptance = AcceptanceGraph.erdos_renyi(population, probability=p, rng=rng)
        ranking = GlobalRanking.from_population(population)
        matching = stable_configuration(acceptance, ranking)
        mates = ranking.sorted_by_rank(matching.mates(peer))
        for choice in range(1, b0 + 1):
            if choice <= len(mates):
                counts[choice][mates[choice - 1] - 1] += 1
            else:
                missing[choice] += 1

    frequencies = {c: counts[c] / samples for c in sorted(counts)}
    unmatched = {c: missing[c] / samples for c in sorted(missing)}
    return MonteCarloChoiceDistribution(
        peer=peer,
        n=n,
        p=p,
        b0=b0,
        samples=samples,
        choice_frequencies=frequencies,
        unmatched_frequency=unmatched,
    )


@dataclass
class ValidationReport:
    """Side-by-side comparison of Algorithm 3 and Monte-Carlo estimates.

    ``total_variation`` is computed on distributions binned over rank
    intervals (Figure 9 compares curves at this resolution); with a finite
    number of Monte-Carlo samples the unbinned distance would be dominated
    by sampling noise rather than by the independence approximation.
    """

    peer: int
    n: int
    p: float
    b0: int
    samples: int
    bins: int
    total_variation: Dict[int, float]
    mean_rank_model: Dict[int, float]
    mean_rank_simulation: Dict[int, float]
    match_probability_model: Dict[int, float]
    match_probability_simulation: Dict[int, float]

    @property
    def worst_total_variation(self) -> float:
        """Largest binned total-variation distance across choices."""
        return max(self.total_variation.values())

    @property
    def worst_mean_rank_error(self) -> float:
        """Largest relative error on the conditional mean mate rank."""
        errors = []
        for choice in self.mean_rank_model:
            model = self.mean_rank_model[choice]
            sim = self.mean_rank_simulation[choice]
            if np.isnan(model) or np.isnan(sim):
                continue
            errors.append(abs(model - sim) / max(1.0, abs(sim)))
        return max(errors) if errors else float("nan")


def validate_independent_model(
    n: int,
    p: float,
    b0: int,
    peer: int,
    *,
    samples: int = 200,
    seed: int = 0,
    bins: int = 25,
    model: Optional[BMatchingModel] = None,
) -> ValidationReport:
    """Compare Algorithm 3's distributions with a Monte-Carlo estimate.

    Returns per-choice binned total-variation distances, conditional mean
    mate ranks and match probabilities from both the analytic model and the
    simulation.  Small distances reproduce the paper's Figure 9 conclusion
    that the independence assumption is accurate at realistic densities.
    """
    if model is None:
        model = independent_b_matching(n, p, b0, rows=[peer])
    empirical = simulate_choice_distribution(
        n, p, b0, peer, samples=samples, seed=seed
    )
    if bins <= 0:
        raise ValueError("bins must be positive")

    ranks = np.arange(1, n + 1)
    edges = np.linspace(0, n, bins + 1)
    tv: Dict[int, float] = {}
    mean_model: Dict[int, float] = {}
    mean_sim: Dict[int, float] = {}
    mass_model: Dict[int, float] = {}
    mass_sim: Dict[int, float] = {}
    for choice in range(1, b0 + 1):
        analytic = model.row(choice, peer)
        observed = empirical.frequency(choice)
        analytic_binned, _ = np.histogram(ranks, bins=edges, weights=analytic)
        observed_binned, _ = np.histogram(ranks, bins=edges, weights=observed)
        tv[choice] = 0.5 * float(np.abs(analytic_binned - observed_binned).sum())
        analytic_mass = analytic.sum()
        observed_mass = observed.sum()
        mass_model[choice] = float(analytic_mass)
        mass_sim[choice] = float(observed_mass)
        mean_model[choice] = (
            float((analytic * ranks).sum() / analytic_mass) if analytic_mass > 0 else float("nan")
        )
        mean_sim[choice] = (
            float((observed * ranks).sum() / observed_mass) if observed_mass > 0 else float("nan")
        )
    return ValidationReport(
        peer=peer,
        n=n,
        p=p,
        b0=b0,
        samples=samples,
        bins=bins,
        total_variation=tv,
        mean_rank_model=mean_model,
        mean_rank_simulation=mean_sim,
        match_probability_model=mass_model,
        match_probability_simulation=mass_sim,
    )
