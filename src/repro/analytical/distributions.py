"""Utilities for analysing mate-rank distributions (Figure 8).

Figure 8 of the paper shows three regimes of the 1-matching distribution
``D(i, .)`` for n = 5000 and p = 0.5%:

* well-ranked peers (e.g. i = 200): an asymmetric, nearly geometric right
  tail -- the best peers can only pair downwards;
* central peers (e.g. i = 2500): a symmetric distribution that simply
  *shifts* with the peer's rank (the "finite horizon" / stratification
  property);
* badly-ranked peers (e.g. i = 4800): the shifted distribution is truncated
  by the end of the ranking, leaving a positive probability of staying
  unmatched.

:class:`MateDistribution` wraps one row of Algorithm 2/3 output and exposes
the statistics needed to verify these three claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

__all__ = ["MateDistribution", "shift_similarity"]


@dataclass
class MateDistribution:
    """A (sub-)probability distribution over partner ranks 1..n."""

    peer: int
    probabilities: np.ndarray

    def __post_init__(self) -> None:
        self.probabilities = np.asarray(self.probabilities, dtype=float)
        if self.probabilities.ndim != 1:
            raise ValueError("probabilities must be a 1-D array")
        if np.any(self.probabilities < -1e-12):
            raise ValueError("probabilities cannot be negative")

    @property
    def n(self) -> int:
        """Number of peers in the system."""
        return int(self.probabilities.shape[0])

    @property
    def mass(self) -> float:
        """Total probability of being matched."""
        return float(self.probabilities.sum())

    @property
    def unmatched_probability(self) -> float:
        """Probability of not being matched at all."""
        return max(0.0, 1.0 - self.mass)

    def mean_rank(self) -> float:
        """Expected partner rank, conditioned on being matched."""
        if self.mass <= 0:
            raise ValueError("distribution has no mass")
        ranks = np.arange(1, self.n + 1)
        return float((ranks * self.probabilities).sum() / self.mass)

    def mean_offset(self) -> float:
        """Expected signed rank offset (partner rank - own rank), conditioned."""
        return self.mean_rank() - self.peer

    def mode_rank(self) -> int:
        """Partner rank with the highest probability."""
        return int(np.argmax(self.probabilities)) + 1

    def std_offset(self) -> float:
        """Standard deviation of the partner rank, conditioned on matching."""
        if self.mass <= 0:
            raise ValueError("distribution has no mass")
        ranks = np.arange(1, self.n + 1)
        mean = self.mean_rank()
        variance = ((ranks - mean) ** 2 * self.probabilities).sum() / self.mass
        return float(np.sqrt(variance))

    def quantile_rank(self, q: float) -> int:
        """Smallest rank whose cumulative (conditional) probability reaches q."""
        if not 0 < q <= 1:
            raise ValueError("q must be in (0, 1]")
        if self.mass <= 0:
            raise ValueError("distribution has no mass")
        cumulative = np.cumsum(self.probabilities) / self.mass
        return int(np.searchsorted(cumulative, q)) + 1

    def offsets_and_probabilities(self) -> Tuple[np.ndarray, np.ndarray]:
        """(offsets, probabilities) with offsets centred at the peer's rank."""
        offsets = np.arange(1, self.n + 1) - self.peer
        return offsets, self.probabilities.copy()

    def asymmetry(self) -> float:
        """Mass above the peer's rank minus mass below it (right minus left).

        A strongly positive value means the peer mostly pairs with worse
        peers (the best-peer regime); near zero means the symmetric central
        regime.
        """
        below = float(self.probabilities[: self.peer - 1].sum())
        above = float(self.probabilities[self.peer:].sum())
        return above - below

    def truncated_mass(self) -> float:
        """Mass that would fall beyond rank n if the distribution kept shifting.

        Estimated as the unmatched probability; for central peers it is ~0,
        for the worst peers it grows (Figure 8(c)'s blue area).
        """
        return self.unmatched_probability


def shift_similarity(
    first: MateDistribution, second: MateDistribution
) -> float:
    """How well ``second`` is a pure shift of ``first`` (1 = identical shapes).

    Both distributions are re-centred on their own peer's rank and compared
    by total-variation overlap.  Central peers of the paper's Figure 8(b)
    should give values close to 1, demonstrating the stratification /
    finite-horizon property.
    """
    if first.n != second.n:
        raise ValueError("distributions must live on the same population size")
    offsets_a, probs_a = first.offsets_and_probabilities()
    offsets_b, probs_b = second.offsets_and_probabilities()
    lookup_b: Dict[int, float] = dict(zip(offsets_b.tolist(), probs_b.tolist()))
    overlap = 0.0
    for offset, prob in zip(offsets_a.tolist(), probs_a.tolist()):
        overlap += min(prob, lookup_b.get(offset, 0.0))
    denominator = min(first.mass, second.mass)
    if denominator <= 0:
        return 0.0
    return overlap / denominator
