"""The sigma phase transition and Table 1 (Section 4.2).

With slot budgets drawn from a rounded normal N(b_mean, sigma^2) on a
complete acceptance graph, the paper observes:

* for sigma ~ 0 the stable configuration shatters into (b_mean+1)-cliques;
* as soon as sigma is large enough to produce heterogeneous samples
  (sigma around 0.15) the mean cluster size explodes -- factorially in
  b_mean -- while the Mean Max Offset *drops* (Figure 6);
* Table 1 tabulates both quantities for b in 2..7, constant and sigma = 0.2.

This module provides the sweep (:func:`sigma_sweep`) and the Table 1
generator (:func:`table1`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.sim.parallel import CacheLike, SweepTask, run_sweep
from repro.sim.random_source import RandomSource
from repro.stratification.bvalues import rounded_normal_slots
from repro.stratification.clustering import analyze_complete_matching
from repro.stratification.mmo import mmo_constant_matching

__all__ = [
    "SigmaSweepPoint",
    "sigma_sweep",
    "variable_matching_statistics",
    "table1",
    "estimate_transition_sigma",
]


@dataclass
class SigmaSweepPoint:
    """One point of the Figure 6 sweep."""

    sigma: float
    mean_cluster_size: float
    mean_max_offset: float
    largest_cluster: float
    repetitions: int


def _sigma_repetition_point(
    n: int,
    b_mean: float,
    sigma: float,
    repetition: int,
    seed: int,
    engine: str,
) -> Dict[str, float]:
    """One (sigma, repetition) replication -- the unit of the sweeps.

    Replays exactly one iteration of the historical serial loop: the slot
    stream is the *stateless* ``fresh_stream(f"slots-{sigma}-{rep}")`` of
    ``RandomSource(seed)``, so a repetition run in any process (or
    replayed from the cache) is bit-identical to the serial original.
    """
    source = RandomSource(seed)
    rng = source.fresh_stream(f"slots-{sigma}-{repetition}")
    slots = rounded_normal_slots(n, b_mean, sigma, rng)
    analysis = analyze_complete_matching(slots, engine=engine)
    return {
        "mean_cluster_size": float(analysis.mean_cluster_size),
        "mean_max_offset": float(analysis.mean_max_offset),
        "largest_cluster": float(analysis.largest_cluster),
    }


def _sigma_tasks(
    n: int, b_mean: float, sigma: float, repetitions: int, seed: int, engine: str
) -> List[SweepTask]:
    """The replication tasks of one sweep point.

    ``sigma`` is forwarded exactly as the caller passed it -- it names the
    historical slot stream (``f"slots-{sigma}-{rep}"``), so coercing an
    integer sigma to float would silently rename the stream and change
    the drawn slots relative to the pre-parallel serial loops.
    """
    return [
        SweepTask(
            _sigma_repetition_point,
            dict(
                n=n,
                b_mean=b_mean,
                sigma=sigma,
                repetition=repetition,
                seed=seed,
                engine=engine,
            ),
            label=f"sigma={sigma:g}#rep{repetition}",
        )
        for repetition in range(repetitions)
    ]


def _sweep_point(
    sigma: float, repetitions: int, outputs: Sequence[Dict[str, float]]
) -> SigmaSweepPoint:
    """Aggregate one point's replication outputs (same means as the old loop)."""
    return SigmaSweepPoint(
        sigma=float(sigma),
        mean_cluster_size=float(np.mean([out["mean_cluster_size"] for out in outputs])),
        mean_max_offset=float(np.mean([out["mean_max_offset"] for out in outputs])),
        largest_cluster=float(np.mean([out["largest_cluster"] for out in outputs])),
        repetitions=repetitions,
    )


def variable_matching_statistics(
    n: int,
    b_mean: float,
    sigma: float,
    *,
    repetitions: int = 3,
    seed: int = 0,
    engine: str = "reference",
    workers: int = 1,
    cache: CacheLike = None,
) -> SigmaSweepPoint:
    """Average cluster size and MMO for N(b_mean, sigma^2) slot budgets.

    ``engine`` selects the clustering backend (see
    :func:`repro.stratification.clustering.analyze_complete_matching`);
    ``workers`` fans the repetitions out across processes and ``cache``
    (a directory or :class:`~repro.sim.parallel.ResultCache`) replays
    previously computed repetitions -- both without changing a bit of the
    result.
    """
    if repetitions <= 0:
        raise ValueError("repetitions must be positive")
    tasks = _sigma_tasks(n, b_mean, sigma, repetitions, seed, engine)
    outputs = run_sweep(tasks, workers=workers, cache=cache)
    return _sweep_point(sigma, repetitions, outputs)


def sigma_sweep(
    n: int,
    b_mean: float,
    sigmas: Sequence[float],
    *,
    repetitions: int = 3,
    seed: int = 0,
    engine: str = "reference",
    workers: int = 1,
    cache: CacheLike = None,
) -> List[SigmaSweepPoint]:
    """Figure 6: sweep sigma and record mean cluster size and MMO.

    All ``len(sigmas) * repetitions`` replications fan out over one pool,
    so the parallel grain is the individual seeded run, not the sweep
    point.
    """
    if repetitions <= 0:
        raise ValueError("repetitions must be positive")
    tasks: List[SweepTask] = []
    for index, sigma in enumerate(sigmas):
        tasks.extend(_sigma_tasks(n, b_mean, sigma, repetitions, seed + index, engine))
    outputs = run_sweep(tasks, workers=workers, cache=cache)
    return [
        _sweep_point(
            sigma,
            repetitions,
            outputs[index * repetitions : (index + 1) * repetitions],
        )
        for index, sigma in enumerate(sigmas)
    ]


def table1(
    b_values: Sequence[int] = (2, 3, 4, 5, 6, 7),
    *,
    sigma: float = 0.2,
    n: Optional[int] = None,
    repetitions: int = 3,
    seed: int = 0,
    engine: str = "reference",
    workers: int = 1,
    cache: CacheLike = None,
) -> List[Dict[str, float]]:
    """Reproduce Table 1: constant vs N(b, sigma) matching statistics.

    For every ``b`` the row contains the constant-matching values (cluster
    size ``b + 1`` and the closed-form MMO) and the simulated variable-b
    values.  ``n`` defaults to a population large enough for the expected
    cluster sizes not to be capped by the system size (the paper's Table 1
    reaches ~11000 for b = 7).  Every (b, repetition) replication is an
    independent sweep task, so the whole table parallelizes at once.
    """
    if repetitions <= 0:
        raise ValueError("repetitions must be positive")
    populations: List[int] = []
    tasks: List[SweepTask] = []
    for index, b in enumerate(b_values):
        if b <= 0:
            raise ValueError("b values must be positive")
        # Cluster size grows roughly factorially with b; keep n comfortably
        # above the expected size while bounding the run time.
        population = n if n is not None else min(60_000, max(5_000, 40 * (b + 1) ** 4))
        populations.append(population)
        tasks.extend(
            _sigma_tasks(population, float(b), sigma, repetitions, seed + index, engine)
        )
    outputs = run_sweep(tasks, workers=workers, cache=cache)
    rows: List[Dict[str, float]] = []
    for index, b in enumerate(b_values):
        point = _sweep_point(
            sigma, repetitions, outputs[index * repetitions : (index + 1) * repetitions]
        )
        rows.append(
            {
                "b": float(b),
                "constant_cluster_size": float(b + 1),
                "constant_mmo": mmo_constant_matching(b),
                "normal_cluster_size": point.mean_cluster_size,
                "normal_mmo": point.mean_max_offset,
                "n": float(populations[index]),
            }
        )
    return rows


def estimate_transition_sigma(
    n: int,
    b_mean: float,
    *,
    sigmas: Optional[Sequence[float]] = None,
    threshold_factor: float = 4.0,
    repetitions: int = 3,
    seed: int = 0,
    engine: str = "reference",
    workers: int = 1,
    cache: CacheLike = None,
) -> float:
    """Estimate the sigma at which the mean cluster size explodes.

    Returns the smallest swept sigma whose mean cluster size exceeds
    ``threshold_factor * (b_mean + 1)`` (the constant-matching cluster
    size).  The paper locates this transition around sigma = 0.15.
    """
    if sigmas is None:
        sigmas = np.arange(0.0, 0.51, 0.05)
    points = sigma_sweep(
        n,
        b_mean,
        list(sigmas),
        repetitions=repetitions,
        seed=seed,
        engine=engine,
        workers=workers,
        cache=cache,
    )
    threshold = threshold_factor * (b_mean + 1)
    for point in points:
        if point.mean_cluster_size >= threshold:
            return point.sigma
    return float("inf")
