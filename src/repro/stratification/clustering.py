"""Stable-matching structure on complete acceptance graphs (Section 4).

On a complete acceptance graph, Algorithm 1 simplifies considerably: peers
are processed best-first and each connects greedily to the next best peers
that still have free slots.  :func:`complete_graph_stable_matching` exploits
this to compute the stable collaboration graph in O(n * b_mean) time using a
skip-pointer over exhausted peers, which is what makes the paper's Table 1
(mean cluster sizes up to ~11000 for b_mean = 7) reproducible at the
required population sizes.

:class:`ClusterAnalysis` summarises the collaboration graph: connected
component (cluster) sizes via union-find, and the Mean Max Offset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.exceptions import validate_engine

__all__ = [
    "complete_graph_stable_matching",
    "ClusterAnalysis",
    "analyze_complete_matching",
    "constant_matching_cluster_size",
]


def complete_graph_stable_matching(slots: Sequence[int]) -> List[Tuple[int, int]]:
    """Stable b-matching edges on a complete acceptance graph.

    Parameters
    ----------
    slots:
        Slot budget of peer ``i + 1`` at index ``i``; peers are already in
        rank order (index 0 is the best peer).

    Returns
    -------
    list of (int, int)
        Matched pairs as 1-based (better, worse) rank tuples.

    Notes
    -----
    Equivalent to running :func:`repro.core.stable.stable_configuration` on
    :meth:`repro.core.acceptance.AcceptanceGraph.complete`, but in
    O(n * mean(b)) instead of O(n^2): a skip pointer jumps over peers whose
    slots are exhausted.
    """
    n = len(slots)
    remaining = [int(b) for b in slots]
    if any(b < 0 for b in remaining):
        raise ValueError("slot budgets must be non-negative")

    # next_free[i] points at a position >= i that may still have capacity;
    # exhausted prefixes are skipped with pointer jumping (path compression).
    next_free = list(range(n + 1))

    def find_next(index: int) -> int:
        path = []
        while index < n and remaining[index] <= 0:
            path.append(index)
            index = next_free[index] if next_free[index] > index else index + 1
        for visited in path:
            next_free[visited] = index
        return index

    edges: List[Tuple[int, int]] = []
    for i in range(n):
        if remaining[i] <= 0:
            continue
        j = i + 1
        while remaining[i] > 0:
            j = find_next(j)
            if j >= n:
                break
            edges.append((i + 1, j + 1))
            remaining[i] -= 1
            remaining[j] -= 1
            j += 1
    return edges


class _UnionFind:
    """Weighted quick-union with path compression."""

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))
        self.size = [1] * n

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]


@dataclass
class ClusterAnalysis:
    """Summary of a collaboration graph on ranked peers.

    Attributes
    ----------
    n:
        Number of peers.
    edges:
        Number of collaboration edges.
    cluster_sizes:
        Connected-component sizes, descending.
    mean_cluster_size:
        Average component size (the paper's "Average Cluster Size").
    largest_cluster:
        Size of the largest component.
    mean_max_offset:
        The paper's MMO: average over matched peers of the rank offset to
        their furthest direct mate.
    connected:
        Whether the collaboration graph forms a single component covering
        every peer.
    """

    n: int
    edges: int
    cluster_sizes: List[int]
    mean_cluster_size: float
    largest_cluster: int
    mean_max_offset: float
    connected: bool


def _component_sizes_reference(n: int, first: np.ndarray, second: np.ndarray) -> List[int]:
    """Connected-component sizes via the pure-Python union-find."""
    union = _UnionFind(n)
    for a, b in zip(first, second):
        union.union(int(a), int(b))
    counts: Dict[int, int] = {}
    for index in range(n):
        root = union.find(index)
        counts[root] = counts.get(root, 0) + 1
    return sorted(counts.values(), reverse=True)


def _component_sizes_fast(n: int, first: np.ndarray, second: np.ndarray) -> List[int]:
    """Connected-component sizes on arrays.

    Uses :mod:`scipy.sparse.csgraph` (C implementation) when available and
    falls back to the Python union-find otherwise -- scipy is an optional
    accelerator, not a dependency.
    """
    try:
        from scipy.sparse import coo_matrix
        from scipy.sparse.csgraph import connected_components
    except ImportError:  # pragma: no cover - exercised only without scipy
        return _component_sizes_reference(n, first, second)
    data = np.ones(first.size, dtype=np.int8)
    adjacency = coo_matrix((data, (first, second)), shape=(n, n))
    _, labels = connected_components(adjacency, directed=False)
    return sorted(np.bincount(labels).tolist(), reverse=True)


def analyze_complete_matching(
    slots: Sequence[int], *, engine: str = "reference"
) -> ClusterAnalysis:
    """Build the stable matching for ``slots`` and analyse its structure.

    ``engine="fast"`` computes offsets and degrees with vectorized numpy
    scatter operations and delegates connected components to scipy's C
    implementation when present; ``"reference"`` (default) keeps the
    per-edge Python loop.  Both return identical analyses (asserted by the
    equivalence tests).
    """
    validate_engine(engine)
    n = len(slots)
    edges = complete_graph_stable_matching(slots)
    if engine == "fast":
        pairs = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        better = pairs[:, 0] - 1
        worse = pairs[:, 1] - 1
        offsets = worse - better
        max_offset = np.zeros(n, dtype=np.int64)
        np.maximum.at(max_offset, better, offsets)
        np.maximum.at(max_offset, worse, offsets)
        has_mate = np.zeros(n, dtype=bool)
        has_mate[better] = True
        has_mate[worse] = True
        sizes = _component_sizes_fast(n, better, worse)
    else:
        max_offset = np.zeros(n, dtype=np.int64)
        has_mate = np.zeros(n, dtype=bool)
        for better, worse in edges:
            offset = worse - better
            has_mate[better - 1] = True
            has_mate[worse - 1] = True
            if offset > max_offset[better - 1]:
                max_offset[better - 1] = offset
            if offset > max_offset[worse - 1]:
                max_offset[worse - 1] = offset
        pairs = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        sizes = _component_sizes_reference(n, pairs[:, 0] - 1, pairs[:, 1] - 1)

    matched = int(has_mate.sum())
    mmo = float(max_offset[has_mate].mean()) if matched else 0.0
    return ClusterAnalysis(
        n=n,
        edges=len(edges),
        cluster_sizes=sizes,
        mean_cluster_size=float(np.mean(sizes)) if sizes else 0.0,
        largest_cluster=sizes[0] if sizes else 0,
        mean_max_offset=mmo,
        connected=len(sizes) == 1 and n > 0,
    )


def constant_matching_cluster_size(b0: int) -> int:
    """Cluster size of constant b0-matching on a complete graph: b0 + 1.

    Figure 4's observation: with everyone wanting exactly b0 mates and full
    knowledge, the stable configuration is a sequence of (b0+1)-cliques.
    """
    if b0 < 0:
        raise ValueError("b0 must be non-negative")
    return b0 + 1 if b0 > 0 else 1
