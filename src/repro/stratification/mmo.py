"""Mean Max Offset: closed forms and empirical computation (Section 4.2).

The MMO measures how far, in ranking terms, a peer's furthest collaborator
is.  Larger MMO means fewer hops are needed to connect peers of very
different intrinsic value; the paper shows the variable-b phase transition
*increases* cluster size while *decreasing* MMO, which is the quantitative
face of stratification.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.core.metrics import mean_max_offset as matching_mean_max_offset
from repro.core.metrics import mean_max_offset_exact_constant

__all__ = [
    "mmo_constant_matching",
    "mmo_constant_matching_limit",
    "mmo_from_edges",
    "matching_mean_max_offset",
    "mean_max_offset_exact_constant",
]


def mmo_constant_matching(b0: int) -> float:
    """Exact MMO of constant b0-matching on a complete acceptance graph.

    Identical to :func:`repro.core.metrics.mean_max_offset_exact_constant`;
    re-exported here so the stratification API is self-contained.
    """
    return mean_max_offset_exact_constant(b0)


def mmo_constant_matching_limit(b0: int) -> float:
    """The paper's asymptotic expression ``3/4 * b0``."""
    if b0 < 0:
        raise ValueError("b0 must be non-negative")
    return 0.75 * b0


def mmo_from_edges(edges: Sequence[Tuple[int, int]], n: int) -> float:
    """Empirical MMO of a collaboration graph given as rank-labelled edges.

    Parameters
    ----------
    edges:
        Collaboration pairs given as 1-based rank tuples.
    n:
        Total number of peers (unmatched peers are excluded from the mean,
        as in the complete-graph analysis where every peer is matched).
    """
    if n <= 0:
        raise ValueError("n must be positive")
    max_offset = np.zeros(n, dtype=np.int64)
    matched = np.zeros(n, dtype=bool)
    for a, b in edges:
        if not (1 <= a <= n and 1 <= b <= n):
            raise ValueError(f"edge ({a}, {b}) references ranks outside 1..{n}")
        offset = abs(a - b)
        matched[a - 1] = True
        matched[b - 1] = True
        if offset > max_offset[a - 1]:
            max_offset[a - 1] = offset
        if offset > max_offset[b - 1]:
            max_offset[b - 1] = offset
    if not matched.any():
        return 0.0
    return float(max_offset[matched].mean())
