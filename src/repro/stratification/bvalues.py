"""Slot-budget samplers (the ``b`` distributions of Section 4).

The paper contrasts constant b0-matching with *variable* b-matching where
``b`` follows a rounded normal distribution N(b_mean, sigma^2): every sample
is rounded to the nearest positive integer.  The phase transition of
Figure 6 appears as soon as sigma is large enough (around 0.15) to make the
samples heterogeneous.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.sim import streams
from repro.sim.random_source import fallback_rng

__all__ = ["constant_slots", "rounded_normal_slots", "slot_statistics"]


def constant_slots(n: int, b0: int) -> List[int]:
    """Every peer gets exactly ``b0`` slots."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if b0 < 0:
        raise ValueError("b0 must be non-negative")
    return [b0] * n


def rounded_normal_slots(
    n: int,
    mean: float,
    sigma: float,
    rng: Optional[np.random.Generator] = None,
) -> List[int]:
    """Sample slot budgets from N(mean, sigma^2) rounded to positive integers.

    Samples are rounded to the nearest integer and clipped below at 1 (the
    paper rounds "to the nearest positive integer"); with sigma = 0 this
    degenerates to constant matching at ``round(mean)``.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    if mean < 1:
        raise ValueError("mean slot budget must be at least 1")
    if rng is None:
        rng = fallback_rng(streams.POPULATION)
    if sigma == 0:
        return [max(1, int(round(mean)))] * n
    samples = rng.normal(loc=mean, scale=sigma, size=n)
    rounded = np.maximum(1, np.rint(samples).astype(int))
    return rounded.tolist()


def slot_statistics(slots: Sequence[int]) -> dict:
    """Mean / std / min / max / heterogeneity of a slot-budget sample.

    ``heterogeneous`` is true when at least two distinct values appear --
    the condition the paper identifies as sufficient to trigger the cluster
    size explosion.
    """
    array = np.asarray(list(slots), dtype=int)
    if array.size == 0:
        raise ValueError("empty slot sequence")
    return {
        "mean": float(array.mean()),
        "std": float(array.std(ddof=0)),
        "min": int(array.min()),
        "max": int(array.max()),
        "heterogeneous": bool(np.unique(array).size > 1),
    }
