"""Clustering and stratification analysis (Section 4).

* :mod:`repro.stratification.bvalues` -- slot-budget samplers (constant and
  rounded normal).
* :mod:`repro.stratification.clustering` -- fast stable matching on complete
  acceptance graphs and cluster analysis.
* :mod:`repro.stratification.mmo` -- Mean Max Offset, closed form and
  empirical.
* :mod:`repro.stratification.phase_transition` -- the sigma sweep of
  Figure 6 and the Table 1 generator.
"""

from repro.stratification.bvalues import constant_slots, rounded_normal_slots, slot_statistics
from repro.stratification.clustering import (
    ClusterAnalysis,
    analyze_complete_matching,
    complete_graph_stable_matching,
    constant_matching_cluster_size,
)
from repro.stratification.mmo import (
    mmo_constant_matching,
    mmo_constant_matching_limit,
    mmo_from_edges,
)
from repro.stratification.phase_transition import (
    SigmaSweepPoint,
    estimate_transition_sigma,
    sigma_sweep,
    table1,
    variable_matching_statistics,
)

__all__ = [
    "constant_slots",
    "rounded_normal_slots",
    "slot_statistics",
    "ClusterAnalysis",
    "analyze_complete_matching",
    "complete_graph_stable_matching",
    "constant_matching_cluster_size",
    "mmo_constant_matching",
    "mmo_constant_matching_limit",
    "mmo_from_edges",
    "SigmaSweepPoint",
    "estimate_transition_sigma",
    "sigma_sweep",
    "table1",
    "variable_matching_statistics",
]
