"""CSR-style array snapshot of an acceptance graph.

:class:`PeerArrays` freezes a :class:`repro.core.acceptance.AcceptanceGraph`
(and the global ranking of its population) into dense integer arrays.  The
snapshot is immutable: the churn pipeline rebuilds it after every
population change, which keeps the hot initiative loop free of any
dictionary access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.acceptance import AcceptanceGraph
from repro.core.ranking import GlobalRanking

__all__ = ["PeerArrays"]


@dataclass(frozen=True)
class PeerArrays:
    """Immutable array view of an acceptance graph and its global ranking.

    Peers are densely indexed ``0..n-1`` in increasing peer-id order (the
    same order as ``AcceptanceGraph.peer_ids()``, so drawing a uniform
    index reproduces the reference simulators' uniform peer choice).

    Attributes
    ----------
    ids:
        ``(n,)`` sorted peer ids; ``ids[i]`` is the id of index ``i``.
    rank:
        ``(n,)`` 1-based global rank of each index (1 = best peer).
    caps:
        ``(n,)`` slot budgets b(p).
    indptr:
        ``(n + 1,)`` CSR row pointers into the adjacency arrays.
    adj:
        ``(2m,)`` neighbor indices; the slice of peer ``i`` is sorted by
        increasing rank (best candidate first -- preference order).
    adj_rank:
        ``(2m,)`` precomputed ``rank[adj]`` (saves one gather per scan).
    adj_by_id:
        ``(2m,)`` the same neighborhoods sorted by increasing peer id,
        matching the candidate order the reference random strategy feeds
        to ``rng.choice``.
    adj_ids:
        ``(2m,)`` peer ids aligned with ``adj_by_id``.
    ranking:
        The :class:`GlobalRanking` the ranks were derived from.
    """

    ids: np.ndarray
    rank: np.ndarray
    caps: np.ndarray
    indptr: np.ndarray
    adj: np.ndarray
    adj_rank: np.ndarray
    adj_by_id: np.ndarray
    adj_ids: np.ndarray
    ranking: GlobalRanking

    @property
    def n(self) -> int:
        """Number of peers."""
        return int(self.ids.size)

    @property
    def b_max(self) -> int:
        """Largest slot budget (width of the mate table)."""
        return int(self.caps.max()) if self.caps.size else 0

    def index_of(self) -> Dict[int, int]:
        """Mapping peer id -> dense index."""
        return {int(pid): i for i, pid in enumerate(self.ids)}

    def neighborhood(self, i: int) -> np.ndarray:
        """Neighbor indices of ``i``, best-ranked first."""
        return self.adj[self.indptr[i]:self.indptr[i + 1]]

    @classmethod
    def build(
        cls,
        acceptance: AcceptanceGraph,
        ranking: Optional[GlobalRanking] = None,
    ) -> "PeerArrays":
        """Snapshot ``acceptance`` (and its ranking) into dense arrays."""
        if ranking is None:
            ranking = GlobalRanking.from_population(acceptance.population)
        ids = np.asarray(acceptance.peer_ids(), dtype=np.int64)
        n = int(ids.size)
        rank = np.fromiter(
            (ranking.rank(int(pid)) for pid in ids), dtype=np.int64, count=n
        )
        caps = np.fromiter(
            (acceptance.population.get(int(pid)).slots for pid in ids),
            dtype=np.int64,
            count=n,
        )

        graph = acceptance.graph
        degrees = np.fromiter(
            (len(graph.neighbors(int(pid))) for pid in ids), dtype=np.int64, count=n
        )
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        total = int(indptr[-1])

        adj = np.empty(total, dtype=np.int64)
        adj_by_id = np.empty(total, dtype=np.int64)
        for i, pid in enumerate(ids):
            nbr_ids = np.fromiter(graph.neighbors(int(pid)), dtype=np.int64)
            # ids is sorted, so searchsorted maps id -> dense index.
            nbr_idx = np.searchsorted(ids, nbr_ids)
            start, end = indptr[i], indptr[i + 1]
            adj_by_id[start:end] = np.sort(nbr_idx)
            adj[start:end] = nbr_idx[np.argsort(rank[nbr_idx], kind="stable")]
        adj_rank = rank[adj]
        adj_ids = ids[adj_by_id]

        for array in (ids, rank, caps, indptr, adj, adj_rank, adj_by_id, adj_ids):
            array.setflags(write=False)
        return cls(
            ids=ids,
            rank=rank,
            caps=caps,
            indptr=indptr,
            adj=adj,
            adj_rank=adj_rank,
            adj_by_id=adj_by_id,
            adj_ids=adj_ids,
            ranking=ranking,
        )
