"""Vectorized, array-backed matching engine.

Architecture overview
---------------------

The reference implementation in :mod:`repro.core.matching` /
:mod:`repro.core.dynamics` stores the acceptance graph as adjacency sets
and the configuration as ``Dict[int, Set[int]]``.  That representation is
ideal for correctness (every operation validates its invariants) but every
initiative walks Python dictionaries edge by edge, which caps practical
swarm sizes at a few thousand peers.

This subpackage re-expresses the whole model as flat numpy arrays so that
the per-initiative work becomes a handful of vectorized operations over a
single neighborhood slice:

* :mod:`repro.core.fast.arrays` -- :class:`PeerArrays`, an immutable
  CSR-style snapshot of the acceptance graph.  Peers are densely indexed
  ``0..n-1`` in peer-id order; ``indptr``/``adj`` hold each neighborhood
  twice, once sorted by global rank (preference order, used by the
  best-mate and decremental scans) and once sorted by peer id (used by the
  random strategy so that it consumes the random stream exactly like the
  reference implementation).  Global-ranking comparisons are precomputed
  into ``rank`` / ``adj_rank`` arrays, so preference tests are integer
  comparisons with no hashing.

* :mod:`repro.core.fast.engine` -- :class:`FastMatching`, the mutable
  configuration: a fixed-width ``(n, b_max)`` mate table plus per-peer
  degree counts and an *acceptance threshold* array ``thr`` where peer
  ``i`` accepts candidate ``c`` iff ``rank[c] < thr[i]``.  Blocking-pair
  detection, worst-mate lookup and initiative application are O(b) array
  operations; blocking-mate search is one vectorized mask over the
  rank-sorted neighborhood.  The module also hosts the array version of
  Algorithm 1 (:func:`fast_stable_table`) and the fully vectorized
  disorder metric.

* :mod:`repro.core.fast.dynamics` -- :class:`FastConvergenceSimulator`,
  a drop-in replacement for
  :class:`repro.core.dynamics.ConvergenceSimulator` that replays the
  Section 3 initiative process.  It consumes the shared
  :class:`repro.sim.random_source.RandomSource` streams draw-for-draw like
  the reference simulator, so the two engines produce *bit-identical*
  disorder trajectories and final configurations -- the reference engine
  stays the correctness oracle (see ``tests/test_engine_equivalence.py``).

Choosing a backend
------------------

Everything here is reachable through the ``engine="fast"`` switch on the
public entry points (:class:`repro.core.dynamics.ConvergenceSimulator`,
:func:`repro.core.stable.stable_configuration`,
:func:`repro.core.churn.simulate_churn`, the stratification pipelines).
Use ``"fast"`` for large systems (n >= a few thousand) or long horizons;
use ``"reference"`` (the default) when single-step introspection,
custom :class:`~repro.core.initiatives.InitiativeStrategy` subclasses or
maximum-transparency debugging matter more than throughput.
"""

from repro.core.fast.arrays import PeerArrays
from repro.core.fast.engine import (
    FastMatching,
    fast_stable_configuration,
    fast_stable_table,
)
from repro.core.fast.dynamics import FastConvergenceSimulator

__all__ = [
    "PeerArrays",
    "FastMatching",
    "fast_stable_configuration",
    "fast_stable_table",
    "FastConvergenceSimulator",
]
