"""Array-backed configurations: mate table, blocking pairs, Algorithm 1.

:class:`FastMatching` is the vectorized counterpart of
:class:`repro.core.matching.Matching`.  The configuration lives in a fixed
width ``(n, b_max)`` mate table (dense peer indices, ``-1`` = empty slot)
plus two ``(n,)`` vectors:

* ``deg`` -- how many slots of each row are filled;
* ``thr`` -- the *acceptance threshold*: peer ``i`` would take candidate
  ``c`` as a new mate iff ``rank[c] < thr[i]``.  A peer with a free slot
  has ``thr = n + 1`` (accepts anyone, since ranks are <= n); a full peer
  has ``thr`` equal to its worst mate's rank; a zero-capacity peer has
  ``thr = 0``.

This turns the reference predicates into integer comparisons:
``(p, q)`` is a blocking pair iff they are acceptance neighbors, not
matched together, and ``rank[q] < thr[p] and rank[p] < thr[q]`` -- exactly
:func:`repro.core.matching.is_blocking_pair` restated on arrays.

The best-blocking-mate scan exploits that neighborhoods are stored sorted
by rank: candidates acceptable to the scanning peer form a *prefix* of the
neighborhood (found with one ``searchsorted``), and the first candidate of
that prefix that reciprocates is the best blocking mate.  Work is split by
size: neighborhood-scale scans are vectorized numpy, while the O(b)
per-peer bookkeeping (worst-mate lookup, slot updates, threshold refresh)
runs on plain Python integers -- at b ~ a few slots, avoiding numpy call
overhead on tiny arrays is worth ~3x on the initiative loop.

The module also hosts :func:`fast_stable_table` (Algorithm 1 on arrays)
and the vectorized disorder computation.  Disorder totals are integer
sums of rank offsets, so the fast engine reproduces the reference float
values bit-for-bit (the reference accumulates the same integers in a
float, which is exact below 2**53).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.core.acceptance import AcceptanceGraph
from repro.core.fast.arrays import PeerArrays
from repro.core.matching import Matching
from repro.core.ranking import GlobalRanking

__all__ = [
    "FastMatching",
    "fast_stable_table",
    "fast_stable_configuration",
]

_EMPTY = -1

# Below this many candidates a scalar scan beats the vectorized mask
# (numpy call overhead dominates on tiny slices).
_SCALAR_SCAN_LIMIT = 8


class FastMatching:
    """A b-matching configuration stored as a fixed-width mate table.

    All peers are dense indices into ``arrays``; conversions from/to the
    reference :class:`~repro.core.matching.Matching` exist for
    interoperability and testing.  Mutators assume (and preserve) the
    configuration invariants; unlike the reference class they do not
    re-validate acceptance-graph membership on every call -- candidates
    are always drawn from the CSR neighborhoods.
    """

    def __init__(self, arrays: PeerArrays) -> None:
        self.arrays = arrays
        n = arrays.n
        self.width = max(1, arrays.b_max)
        self.inf_rank = n + 1
        self.mate = np.full((n, self.width), _EMPTY, dtype=np.int64)
        self.deg: List[int] = [0] * n
        # thr is kept twice: as a numpy array for vectorized gathers in the
        # blocking scan, and as a Python list for O(100ns) scalar reads in
        # the per-initiative bookkeeping.  _refresh_thr updates both.
        self.thr = np.where(arrays.caps > 0, self.inf_rank, 0).astype(np.int64)
        self._thr_list: List[int] = self.thr.tolist()
        self._rank_list: List[int] = arrays.rank.tolist()
        self._caps_list: List[int] = arrays.caps.tolist()
        self._indptr_list: List[int] = arrays.indptr.tolist()

    # -- queries ---------------------------------------------------------------

    def mates_of(self, i: int) -> np.ndarray:
        """Current mates (dense indices) of peer ``i``."""
        return self.mate[i, : self.deg[i]]

    def is_matched(self, i: int, j: int) -> bool:
        """Whether ``i`` and ``j`` are currently matched together."""
        row = self.mate[i]
        for position in range(self.deg[i]):
            if row[position] == j:
                return True
        return False

    def worst_mate(self, i: int) -> int:
        """The worst-ranked current mate of ``i`` (requires deg > 0)."""
        row = self.mate[i]
        rank = self._rank_list
        worst = int(row[0])
        worst_rank = rank[worst]
        for position in range(1, self.deg[i]):
            candidate = int(row[position])
            if rank[candidate] > worst_rank:
                worst, worst_rank = candidate, rank[candidate]
        return worst

    def is_blocking(self, i: int, j: int) -> bool:
        """Whether the acceptance edge (i, j) is a blocking pair.

        Callers must pass an actual acceptance-graph edge; the membership
        test is not repeated here.
        """
        if i == j:
            return False
        rank = self._rank_list
        thr = self._thr_list
        if rank[j] >= thr[i] or rank[i] >= thr[j]:
            return False
        return not self.is_matched(i, j)

    def best_blocking_mate(self, i: int) -> int:
        """Best-ranked blocking mate of ``i``, or ``-1`` when none exists.

        Matches :func:`repro.core.matching.find_blocking_mate` on the full
        acceptance neighborhood.
        """
        thr = self._thr_list
        thr_i = thr[i]
        if thr_i <= 1:
            return _EMPTY
        start = self._indptr_list[i]
        end = self._indptr_list[i + 1]
        if start == end:
            return _EMPTY
        arrays = self.arrays
        # Neighbors are sorted by rank: candidates acceptable to i form a
        # prefix (rank < thr[i]).
        if thr_i == self.inf_rank:
            cutoff = end - start
        else:
            cutoff = int(
                np.searchsorted(arrays.adj_rank[start:end], thr_i, side="left")
            )
            if cutoff == 0:
                return _EMPTY
        rank_i = self._rank_list[i]
        adj = arrays.adj
        if cutoff <= _SCALAR_SCAN_LIMIT:
            for offset in range(cutoff):
                candidate = int(adj[start + offset])
                if rank_i < thr[candidate] and not self.is_matched(i, candidate):
                    return candidate
            return _EMPTY
        candidates = adj[start:start + cutoff]
        mask = self.thr[candidates] > rank_i
        row = self.mate[i]
        for position in range(self.deg[i]):
            mask &= candidates != row[position]
        position = int(mask.argmax())
        if not mask[position]:
            return _EMPTY
        return int(candidates[position])

    # -- mutation --------------------------------------------------------------

    def _refresh_thr(self, i: int) -> None:
        degree = self.deg[i]
        if degree < self._caps_list[i]:
            value = self.inf_rank
        elif degree == 0:
            value = 0
        else:
            row = self.mate[i]
            rank = self._rank_list
            value = rank[int(row[0])]
            for position in range(1, degree):
                candidate_rank = rank[int(row[position])]
                if candidate_rank > value:
                    value = candidate_rank
        self.thr[i] = value
        self._thr_list[i] = value

    def _drop_direction(self, a: int, b: int) -> None:
        row = self.mate[a]
        degree = self.deg[a]
        for position in range(degree):
            if row[position] == b:
                row[position] = row[degree - 1]
                row[degree - 1] = _EMPTY
                self.deg[a] = degree - 1
                return
        raise ValueError(f"peers {a} and {b} are not matched")

    def unmatch(self, i: int, j: int) -> None:
        """Break the collaboration between ``i`` and ``j``."""
        self._drop_direction(i, j)
        self._drop_direction(j, i)
        self._refresh_thr(i)
        self._refresh_thr(j)

    def match(self, i: int, j: int) -> None:
        """Match ``i`` and ``j`` together (both must have a free slot)."""
        self.mate[i, self.deg[i]] = j
        self.mate[j, self.deg[j]] = i
        self.deg[i] += 1
        self.deg[j] += 1
        self._refresh_thr(i)
        self._refresh_thr(j)

    def apply_initiative(self, i: int, j: int) -> bool:
        """Execute the initiative pairing ``i`` with ``j``.

        Mirrors :func:`repro.core.initiatives.apply_initiative`: when
        (i, j) blocks, both endpoints drop their worst mate if full, then
        match.  Returns whether the configuration changed.
        """
        if not self.is_blocking(i, j):
            return False
        for endpoint in (i, j):
            if self.deg[endpoint] >= self._caps_list[endpoint]:
                self.unmatch(endpoint, self.worst_mate(endpoint))
        self.match(i, j)
        return True

    # -- disorder and comparisons ----------------------------------------------

    def sorted_rank_table(self) -> np.ndarray:
        """Per-peer mate ranks sorted ascending, empty slots = ``n + 1``.

        Slots beyond a peer's capacity are also ``n + 1``; they cancel out
        when two tables over the same population are compared, so the
        integer distance below equals the reference
        :func:`repro.core.metrics.matching_distance` numerator.
        """
        table = np.where(
            self.mate >= 0, self.arrays.rank[self.mate], self.inf_rank
        )
        table.sort(axis=1)
        return table

    def disorder_int(self, stable_sorted: np.ndarray) -> int:
        """Integer disorder numerator against a precomputed sorted table."""
        return int(np.abs(self.sorted_rank_table() - stable_sorted).sum())

    def disorder(self, stable_sorted: np.ndarray) -> float:
        """The paper's disorder D, identical to the reference float value."""
        n = self.arrays.n
        if n == 0:
            return 0.0
        return self.disorder_int(stable_sorted) * 2.0 / (n * (n + 1))

    # -- conversions -----------------------------------------------------------

    def pairs(self) -> List[Tuple[int, int]]:
        """Matched pairs as (min_id, max_id) peer-id tuples."""
        ids = self.arrays.ids
        out: List[Tuple[int, int]] = []
        for i in range(self.arrays.n):
            a = int(ids[i])
            for j in self.mate[i, : self.deg[i]]:
                b = int(ids[j])
                if a < b:
                    out.append((a, b))
        return out

    def load_pairs(self, pairs: Iterable[Tuple[int, int]]) -> None:
        """Reset the configuration to the given peer-id pairs."""
        self.mate.fill(_EMPTY)
        n = self.arrays.n
        self.deg = [0] * n
        index = self.arrays.index_of()
        for a, b in pairs:
            i, j = index[a], index[b]
            self.mate[i, self.deg[i]] = j
            self.mate[j, self.deg[j]] = i
            self.deg[i] += 1
            self.deg[j] += 1
        for i in range(n):
            self._refresh_thr(i)

    def load_matching(self, matching: Matching) -> None:
        """Reset the configuration to mirror a reference ``Matching``."""
        self.load_pairs(matching.pairs())

    def to_matching(self, acceptance: AcceptanceGraph) -> Matching:
        """Convert to a reference ``Matching`` (with full validation)."""
        return Matching.from_pairs(acceptance, self.pairs())

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"FastMatching(peers={self.arrays.n}, "
            f"pairs={sum(self.deg) // 2})"
        )


def fast_stable_table(arrays: PeerArrays) -> FastMatching:
    """Algorithm 1 on arrays: the unique stable configuration.

    Peers are processed best-rank first; each takes its best acceptable
    still-free candidates, exactly like
    :func:`repro.core.stable.stable_configuration` (equality is asserted
    by the equivalence tests).  The per-peer candidate filter is one
    vectorized mask over the rank-sorted neighborhood.
    """
    n = arrays.n
    width = max(1, arrays.b_max)
    mate = np.full((n, width), _EMPTY, dtype=np.int64)
    deg = np.zeros(n, dtype=np.int64)
    remaining = arrays.caps.copy()
    order = np.argsort(arrays.rank, kind="stable")
    for i in order:
        budget = int(remaining[i])
        if budget <= 0:
            continue
        start, end = arrays.indptr[i], arrays.indptr[i + 1]
        neighbors = arrays.adj[start:end]
        # Better-ranked neighbors already took every pairing they wanted
        # when they were processed, so only worse-ranked candidates with
        # capacity left are eligible.
        eligible = neighbors[
            (arrays.adj_rank[start:end] > arrays.rank[i]) & (remaining[neighbors] > 0)
        ]
        if eligible.size == 0:
            continue
        taken = eligible[:budget]
        mate[i, deg[i]:deg[i] + taken.size] = taken
        deg[i] += taken.size
        mate[taken, deg[taken]] = i
        deg[taken] += 1
        remaining[taken] -= 1
        remaining[i] -= taken.size

    matching = FastMatching(arrays)
    matching.mate = mate
    matching.deg = deg.tolist()
    for i in range(n):
        matching._refresh_thr(i)
    return matching


def fast_stable_configuration(
    acceptance: AcceptanceGraph,
    ranking: Optional[GlobalRanking] = None,
) -> Matching:
    """Compute the stable configuration via the array engine.

    Returns a reference :class:`Matching` so callers are agnostic of the
    backend; the O(n * b) conversion is negligible next to the reference
    algorithm's per-edge Python work.
    """
    arrays = PeerArrays.build(acceptance, ranking)
    return fast_stable_table(arrays).to_matching(acceptance)
