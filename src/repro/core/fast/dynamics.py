"""Vectorized convergence dynamics (the ``engine="fast"`` backend).

:class:`FastConvergenceSimulator` replays the Section 3 initiative process
of :class:`repro.core.dynamics.ConvergenceSimulator` on the array engine.
The two implementations are kept *trajectory-identical*: they draw the
initiating peer, scan candidates and consume every random stream in the
same order, so a shared :class:`~repro.sim.random_source.RandomSource`
seed yields bit-identical disorder trajectories and final configurations.
That contract is what lets the reference engine act as the correctness
oracle in ``tests/test_engine_equivalence.py``.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

from repro.core.acceptance import AcceptanceGraph
from repro.core.dynamics import ConvergenceResult
from repro.core.exceptions import ModelError
from repro.core.fast.arrays import PeerArrays
from repro.core.fast.engine import FastMatching, fast_stable_table
from repro.core.initiatives import (
    BestMateInitiative,
    DecrementalInitiative,
    InitiativeStrategy,
    RandomInitiative,
)
from repro.core.matching import Matching
from repro.core.ranking import GlobalRanking
from repro.sim.random_source import RandomSource
from repro.sim.recorder import TimeSeries
from repro.sim import streams

__all__ = [
    "FastInitiativeStrategy",
    "FastBestMateInitiative",
    "FastDecrementalInitiative",
    "FastRandomInitiative",
    "make_fast_strategy",
    "FastConvergenceSimulator",
]


class FastInitiativeStrategy:
    """How an initiating peer index scans its neighborhood (array engine)."""

    name: str = "abstract"

    def propose(
        self, matching: FastMatching, peer: int, rng: np.random.Generator
    ) -> int:
        """Dense index of the proposal target, or ``-1`` for nobody."""
        raise NotImplementedError

    def take_initiative(
        self, matching: FastMatching, peer: int, rng: np.random.Generator
    ) -> bool:
        """Run one initiative of ``peer``; return whether it was active."""
        target = self.propose(matching, peer, rng)
        if target < 0:
            return False
        return matching.apply_initiative(peer, target)


class FastBestMateInitiative(FastInitiativeStrategy):
    """Propose to the best available blocking mate."""

    name = "best-mate"

    def propose(
        self, matching: FastMatching, peer: int, rng: np.random.Generator
    ) -> int:
        del rng
        return matching.best_blocking_mate(peer)


class FastDecrementalInitiative(FastInitiativeStrategy):
    """Circular scan of the rank-sorted neighborhood, resuming where it stopped.

    The cursor is keyed by *peer id* (not dense index) so that it survives
    the array rebuilds of the churn pipeline, exactly like the reference
    strategy's per-peer dictionary.
    """

    name = "decremental"

    def __init__(self) -> None:
        self._cursor: Dict[int, int] = {}

    def propose(
        self, matching: FastMatching, peer: int, rng: np.random.Generator
    ) -> int:
        del rng
        arrays = matching.arrays
        start, end = arrays.indptr[peer], arrays.indptr[peer + 1]
        count = int(end - start)
        if count == 0:
            return -1
        peer_id = int(arrays.ids[peer])
        position = self._cursor.get(peer_id, 0) % count
        self._cursor[peer_id] = (position + 1) % count
        return int(arrays.adj[start + position])

    def reset(self) -> None:
        """Forget all scan positions."""
        self._cursor.clear()


class FastRandomInitiative(FastInitiativeStrategy):
    """Propose to one uniformly random acceptable peer.

    ``rng.choice`` is applied to the id-sorted neighborhood, the same
    candidate order (and hence the same stream consumption) as the
    reference :class:`~repro.core.initiatives.RandomInitiative`.
    """

    name = "random"

    def propose(
        self, matching: FastMatching, peer: int, rng: np.random.Generator
    ) -> int:
        arrays = matching.arrays
        start, end = arrays.indptr[peer], arrays.indptr[peer + 1]
        if start == end:
            return -1
        candidate_ids = arrays.adj_ids[start:end]
        target_id = int(rng.choice(candidate_ids))
        position = int(np.searchsorted(candidate_ids, target_id))
        return int(arrays.adj_by_id[start + position])


_FAST_STRATEGIES = {
    "best-mate": FastBestMateInitiative,
    "decremental": FastDecrementalInitiative,
    "random": FastRandomInitiative,
}

# Exact reference classes with a fast twin.  Subclasses are deliberately
# NOT matched: a subclass overriding propose() would be silently replaced
# by the stock behavior, producing wrong results with no error.
_REFERENCE_TWINS = {
    BestMateInitiative: "best-mate",
    DecrementalInitiative: "decremental",
    RandomInitiative: "random",
}


def make_fast_strategy(
    strategy: Union[str, InitiativeStrategy, FastInitiativeStrategy],
) -> FastInitiativeStrategy:
    """Resolve a strategy name (or a stock reference strategy) to its fast twin.

    Accepts a strategy name, a :class:`FastInitiativeStrategy`, or an
    instance of one of the three stock reference classes (matched by exact
    type; any scan-cursor state starts fresh).  Custom
    :class:`InitiativeStrategy` subclasses cannot be vectorized
    automatically; use ``engine="reference"`` for those.
    """
    if isinstance(strategy, FastInitiativeStrategy):
        return strategy
    if isinstance(strategy, str):
        name = strategy
    else:
        name = _REFERENCE_TWINS.get(type(strategy))
    if name not in _FAST_STRATEGIES:
        raise ModelError(
            f"the fast engine has no equivalent of strategy {strategy!r}; "
            f"available: {sorted(_FAST_STRATEGIES)} (or use engine='reference')"
        )
    return _FAST_STRATEGIES[name]()


class FastConvergenceSimulator:
    """Array-engine twin of :class:`repro.core.dynamics.ConvergenceSimulator`.

    Parameters mirror the reference simulator; ``run`` returns the same
    :class:`~repro.core.dynamics.ConvergenceResult` (with the final
    configuration converted back to a reference ``Matching``).
    """

    def __init__(
        self,
        acceptance: AcceptanceGraph,
        strategy: Union[str, InitiativeStrategy, FastInitiativeStrategy] = "best-mate",
        source: Optional[RandomSource] = None,
    ) -> None:
        self.acceptance = acceptance
        self.ranking = GlobalRanking.from_population(acceptance.population)
        self.arrays = PeerArrays.build(acceptance, self.ranking)
        self.strategy = make_fast_strategy(strategy)
        self.source = source if source is not None else RandomSource(0)
        self.stable_table = fast_stable_table(self.arrays)
        self._stable_sorted = self.stable_table.sorted_rank_table()

    def stable_matching(self) -> Matching:
        """The stable configuration as a reference ``Matching``."""
        return self.stable_table.to_matching(self.acceptance)

    def run(
        self,
        *,
        initial: Optional[Union[Matching, FastMatching]] = None,
        max_base_units: float = 50.0,
        samples_per_base_unit: int = 4,
        stop_when_stable: bool = True,
    ) -> ConvergenceResult:
        """Run the initiative process; see the reference ``run`` for semantics."""
        matching = FastMatching(self.arrays)
        if isinstance(initial, FastMatching):
            matching.load_pairs(initial.pairs())
        elif initial is not None:
            matching.load_matching(initial)
        n = self.arrays.n
        if n == 0:
            raise ValueError("cannot simulate an empty population")
        rng = self.source.stream(streams.INITIATIVES)

        trajectory = TimeSeries("disorder")
        total_steps = int(round(max_base_units * n))
        sample_every = max(1, n // max(1, samples_per_base_unit))

        initiatives = 0
        active = 0
        time_to_converge: Optional[float] = None

        current_disorder = matching.disorder(self._stable_sorted)
        trajectory.append(0.0, current_disorder)
        if current_disorder == 0.0:
            time_to_converge = 0.0

        take_initiative = self.strategy.take_initiative
        for step in range(1, total_steps + 1):
            peer = int(rng.integers(n))
            if take_initiative(matching, peer, rng):
                active += 1
            initiatives += 1

            if step % sample_every == 0 or step == total_steps:
                base_units = step / n
                current_disorder = matching.disorder(self._stable_sorted)
                trajectory.append(base_units, current_disorder)
                if current_disorder == 0.0 and time_to_converge is None:
                    time_to_converge = base_units
                    if stop_when_stable:
                        break

        converged = bool(
            (matching.sorted_rank_table() == self._stable_sorted).all()
        )
        return ConvergenceResult(
            trajectory=trajectory,
            initiatives=initiatives,
            active_initiatives=active,
            converged=converged,
            time_to_converge=time_to_converge,
            final_matching=matching.to_matching(self.acceptance),
        )
