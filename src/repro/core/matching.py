"""b-matching configurations, blocking pairs and stability.

A *configuration* (Section 2) is a subgraph of the acceptance graph in which
every peer p has degree at most b(p).  A *blocking pair* is a pair of peers
not matched together that both wish to be matched together -- either because
they have a spare slot or because they prefer each other to their current
worst mate.  A configuration with no blocking pair is *stable* and, for the
global-ranking class, unique.

This module is the *reference* representation: adjacency dictionaries with
full invariant validation on every mutation.  The vectorized counterpart
used for large systems lives in :mod:`repro.core.fast`; the two are kept
behaviorally identical by ``tests/test_engine_equivalence.py``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.core.acceptance import AcceptanceGraph
from repro.core.exceptions import CapacityError, MatchingError, UnknownPeerError
from repro.core.ranking import GlobalRanking
from repro.graphs.base import UndirectedGraph

__all__ = [
    "Matching",
    "is_blocking_pair",
    "blocking_pairs",
    "find_blocking_mate",
    "is_stable",
]


class Matching:
    """A b-matching configuration over an acceptance graph.

    The matching keeps, for every peer, the set of its current mates.  All
    mutating operations maintain the configuration invariants:

    * every matched pair is an edge of the acceptance graph,
    * the matching is symmetric, and
    * no peer exceeds its slot budget.
    """

    def __init__(self, acceptance: AcceptanceGraph) -> None:
        self.acceptance = acceptance
        self._mates: Dict[int, Set[int]] = {
            peer_id: set() for peer_id in acceptance.peer_ids()
        }

    # -- basic queries ---------------------------------------------------------

    def mates(self, peer_id: int) -> Set[int]:
        """The current mates of ``peer_id`` (do not mutate the returned set)."""
        if peer_id not in self._mates:
            raise UnknownPeerError(f"peer {peer_id} not in matching")
        return self._mates[peer_id]

    def degree(self, peer_id: int) -> int:
        """Number of current mates of ``peer_id``."""
        return len(self.mates(peer_id))

    def capacity(self, peer_id: int) -> int:
        """Slot budget b(p) of ``peer_id``."""
        return self.acceptance.population.get(peer_id).slots

    def free_slots(self, peer_id: int) -> int:
        """Remaining slots of ``peer_id``."""
        return self.capacity(peer_id) - self.degree(peer_id)

    def is_matched(self, p: int, q: int) -> bool:
        """Whether p and q are currently matched together."""
        return p in self._mates and q in self._mates[p]

    def pairs(self) -> Iterator[Tuple[int, int]]:
        """Iterate over matched pairs once each, as (min, max) tuples."""
        for p in sorted(self._mates):
            for q in sorted(self._mates[p]):
                if p < q:
                    yield (p, q)

    def pair_count(self) -> int:
        """Number of matched pairs."""
        return sum(len(mates) for mates in self._mates.values()) // 2

    def peer_ids(self) -> List[int]:
        """Sorted peer ids covered by this matching."""
        return sorted(self._mates)

    def mate_of(self, peer_id: int) -> Optional[int]:
        """For 1-matchings: the unique mate of ``peer_id`` or ``None``.

        Raises :class:`MatchingError` when the peer has several mates.
        """
        mates = self.mates(peer_id)
        if len(mates) > 1:
            raise MatchingError(
                f"peer {peer_id} has {len(mates)} mates; mate_of() requires a 1-matching"
            )
        return next(iter(mates), None)

    # -- mutation --------------------------------------------------------------

    def match(self, p: int, q: int) -> None:
        """Match p and q together, enforcing all configuration invariants."""
        if p == q:
            raise MatchingError(f"cannot match peer {p} with itself")
        if not self.acceptance.accepts(p, q):
            raise MatchingError(f"({p}, {q}) is not an acceptance-graph edge")
        if self.is_matched(p, q):
            raise MatchingError(f"({p}, {q}) is already matched")
        if self.free_slots(p) <= 0:
            raise CapacityError(f"peer {p} has no free slot")
        if self.free_slots(q) <= 0:
            raise CapacityError(f"peer {q} has no free slot")
        self._mates[p].add(q)
        self._mates[q].add(p)

    def unmatch(self, p: int, q: int) -> None:
        """Break the collaboration between p and q."""
        if not self.is_matched(p, q):
            raise MatchingError(f"({p}, {q}) is not currently matched")
        self._mates[p].discard(q)
        self._mates[q].discard(p)

    def drop_all(self, peer_id: int) -> List[int]:
        """Break all collaborations of ``peer_id`` and return its ex-mates."""
        ex_mates = sorted(self.mates(peer_id))
        for mate in ex_mates:
            self.unmatch(peer_id, mate)
        return ex_mates

    def remove_peer(self, peer_id: int) -> List[int]:
        """Forget a peer entirely (used when it leaves the system)."""
        ex_mates = self.drop_all(peer_id)
        del self._mates[peer_id]
        return ex_mates

    def add_peer(self, peer_id: int) -> None:
        """Start tracking a new peer (no mates yet)."""
        if peer_id in self._mates:
            raise MatchingError(f"peer {peer_id} already in matching")
        if peer_id not in self.acceptance.population:
            raise UnknownPeerError(f"peer {peer_id} not in population")
        self._mates[peer_id] = set()

    # -- conversions -----------------------------------------------------------

    @classmethod
    def from_pairs(
        cls, acceptance: AcceptanceGraph, pairs: Iterable[Tuple[int, int]]
    ) -> "Matching":
        """Build a configuration from matched peer-id pairs.

        Every pair is validated like a normal :meth:`match` call, so the
        result is guaranteed feasible.  Used to rebind configurations to an
        updated acceptance graph and to convert from the array engine.
        """
        matching = cls(acceptance)
        for p, q in pairs:
            matching.match(p, q)
        return matching

    def copy(self) -> "Matching":
        """A deep copy bound to the same acceptance graph object."""
        clone = Matching(self.acceptance)
        clone._mates = {peer_id: set(mates) for peer_id, mates in self._mates.items()}
        return clone

    def as_graph(self) -> UndirectedGraph:
        """The collaboration graph: vertices = peers, edges = matched pairs."""
        graph = UndirectedGraph(self.peer_ids())
        for p, q in self.pairs():
            graph.add_edge(p, q)
        return graph

    def mate_vector(self, ranking: GlobalRanking) -> Dict[int, List[int]]:
        """Mates of every peer sorted best-first.

        This is the sigma vector of Section 3 expressed with peer ids
        instead of ranks; the disorder metric itself recomputes the rank
        version internally (see :func:`repro.core.metrics.matching_distance`).
        """
        return {
            peer_id: ranking.sorted_by_rank(mates)
            for peer_id, mates in self._mates.items()
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Matching):
            return NotImplemented
        return self._mates == other._mates

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Matching(peers={len(self._mates)}, pairs={self.pair_count()})"


# -- blocking pairs and stability -----------------------------------------------


def _would_accept(matching: Matching, ranking: GlobalRanking, judge: int, candidate: int) -> bool:
    """Whether ``judge`` would take ``candidate`` as a new mate.

    True when the judge has a spare slot, or prefers the candidate to its
    current worst mate (which it would then drop).
    """
    if matching.free_slots(judge) > 0:
        return True
    current = matching.mates(judge)
    if not current:
        return False
    worst = ranking.worst_of(current)
    return ranking.rank(candidate) < ranking.rank(worst)


def is_blocking_pair(
    matching: Matching, ranking: GlobalRanking, p: int, q: int
) -> bool:
    """Whether (p, q) is a blocking pair for the configuration."""
    if p == q:
        return False
    if not matching.acceptance.accepts(p, q):
        return False
    if matching.is_matched(p, q):
        return False
    return _would_accept(matching, ranking, p, q) and _would_accept(matching, ranking, q, p)


def blocking_pairs(
    matching: Matching, ranking: GlobalRanking, limit: Optional[int] = None
) -> List[Tuple[int, int]]:
    """All blocking pairs (optionally stopping after ``limit`` of them)."""
    found: List[Tuple[int, int]] = []
    for p in matching.peer_ids():
        for q in sorted(matching.acceptance.acceptable_peers(p)):
            if p < q and is_blocking_pair(matching, ranking, p, q):
                found.append((p, q))
                if limit is not None and len(found) >= limit:
                    return found
    return found


def find_blocking_mate(
    matching: Matching,
    ranking: GlobalRanking,
    peer_id: int,
    candidates: Optional[Iterable[int]] = None,
) -> Optional[int]:
    """The best blocking mate for ``peer_id`` among ``candidates`` (or all).

    Returns ``None`` when the peer participates in no blocking pair, i.e. it
    cannot improve its situation by any initiative.
    """
    if candidates is None:
        candidates = matching.acceptance.acceptable_peers(peer_id)
    best: Optional[int] = None
    for candidate in candidates:
        if not is_blocking_pair(matching, ranking, peer_id, candidate):
            continue
        if best is None or ranking.rank(candidate) < ranking.rank(best):
            best = candidate
    return best


def is_stable(matching: Matching, ranking: GlobalRanking) -> bool:
    """Whether the configuration admits no blocking pair."""
    return not blocking_pairs(matching, ranking, limit=1)
