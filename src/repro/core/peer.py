"""Peers and peer populations.

A peer (Section 2) is identified by an integer id and carries

* a *mark* ``S(p)`` -- its intrinsic value (upload bandwidth, CPU, storage);
  higher is better, and the paper assumes marks are all distinct;
* a *slot budget* ``b(p)`` -- the maximum number of simultaneous
  collaborations it maintains.

:class:`PeerPopulation` is the container used by the rest of the library:
it owns the peers, exposes the induced global ranking and provides the
samplers used by the variable-b experiments (Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.core.exceptions import ModelError, UnknownPeerError

__all__ = ["Peer", "PeerPopulation"]


@dataclass(frozen=True)
class Peer:
    """An immutable peer record.

    Attributes
    ----------
    peer_id:
        Unique integer identifier.
    score:
        The global mark S(p); higher is better.
    slots:
        The slot budget b(p); must be >= 0.
    """

    peer_id: int
    score: float
    slots: int

    def __post_init__(self) -> None:
        if self.slots < 0:
            raise ModelError(f"peer {self.peer_id} has negative slot budget {self.slots}")

    def with_slots(self, slots: int) -> "Peer":
        """Return a copy of this peer with a different slot budget."""
        return Peer(self.peer_id, self.score, slots)

    def with_score(self, score: float) -> "Peer":
        """Return a copy of this peer with a different mark."""
        return Peer(self.peer_id, score, self.slots)


class PeerPopulation:
    """A collection of peers with distinct ids.

    The population is mutable (peers can join and leave, as required by the
    churn experiments) and keeps no ordering assumptions: the global ranking
    is always re-derived from the scores via :class:`repro.core.ranking.GlobalRanking`.
    """

    def __init__(self, peers: Optional[Iterable[Peer]] = None) -> None:
        self._peers: Dict[int, Peer] = {}
        if peers is not None:
            for peer in peers:
                self.add(peer)

    # -- construction helpers ------------------------------------------------

    @classmethod
    def ranked(
        cls,
        n: int,
        *,
        slots: int | Sequence[int] = 1,
        first_id: int = 1,
    ) -> "PeerPopulation":
        """Build the paper's canonical population: peers 1..n, rank = id.

        Peer 1 is the best peer; scores are ``n - rank + 1`` so that a lower
        id means a higher score.  ``slots`` may be a single integer applied
        to everyone or a per-peer sequence of length ``n``.
        """
        if n < 0:
            raise ModelError("population size must be non-negative")
        slot_list = cls._expand_slots(slots, n)
        peers = [
            Peer(first_id + i, float(n - i), slot_list[i])
            for i in range(n)
        ]
        return cls(peers)

    @classmethod
    def from_scores(
        cls,
        scores: Sequence[float],
        *,
        slots: int | Sequence[int] = 1,
        first_id: int = 1,
    ) -> "PeerPopulation":
        """Build a population from explicit scores (ids assigned in order)."""
        slot_list = cls._expand_slots(slots, len(scores))
        peers = [
            Peer(first_id + i, float(score), slot_list[i])
            for i, score in enumerate(scores)
        ]
        return cls(peers)

    @staticmethod
    def _expand_slots(slots: int | Sequence[int], n: int) -> List[int]:
        if isinstance(slots, (int, np.integer)):
            return [int(slots)] * n
        slot_list = [int(s) for s in slots]
        if len(slot_list) != n:
            raise ModelError(
                f"slot sequence has length {len(slot_list)}, expected {n}"
            )
        return slot_list

    # -- container protocol ---------------------------------------------------

    def add(self, peer: Peer) -> None:
        """Add a peer; its id must not already be present."""
        if peer.peer_id in self._peers:
            raise ModelError(f"duplicate peer id {peer.peer_id}")
        self._peers[peer.peer_id] = peer

    def remove(self, peer_id: int) -> Peer:
        """Remove and return the peer with the given id."""
        if peer_id not in self._peers:
            raise UnknownPeerError(f"peer {peer_id} not in population")
        return self._peers.pop(peer_id)

    def replace(self, peer: Peer) -> None:
        """Replace an existing peer record (same id) with a new one."""
        if peer.peer_id not in self._peers:
            raise UnknownPeerError(f"peer {peer.peer_id} not in population")
        self._peers[peer.peer_id] = peer

    def get(self, peer_id: int) -> Peer:
        """Return the peer with the given id."""
        if peer_id not in self._peers:
            raise UnknownPeerError(f"peer {peer_id} not in population")
        return self._peers[peer_id]

    def __contains__(self, peer_id: int) -> bool:
        return peer_id in self._peers

    def __len__(self) -> int:
        return len(self._peers)

    def __iter__(self) -> Iterator[Peer]:
        return iter(self._peers.values())

    # -- views ----------------------------------------------------------------

    def ids(self) -> List[int]:
        """Sorted list of peer ids."""
        return sorted(self._peers)

    def scores(self) -> Dict[int, float]:
        """Mapping peer id -> score."""
        return {peer_id: peer.score for peer_id, peer in self._peers.items()}

    def slots(self) -> Dict[int, int]:
        """Mapping peer id -> slot budget b(p)."""
        return {peer_id: peer.slots for peer_id, peer in self._peers.items()}

    def total_slots(self) -> int:
        """B = sum of all slot budgets (the paper's maximal connection count)."""
        return sum(peer.slots for peer in self._peers.values())

    def next_id(self) -> int:
        """Smallest integer id strictly greater than all current ids."""
        return max(self._peers, default=0) + 1

    def copy(self) -> "PeerPopulation":
        """Shallow copy (peers are immutable, so this is effectively deep)."""
        return PeerPopulation(self._peers.values())

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"PeerPopulation(n={len(self._peers)})"
