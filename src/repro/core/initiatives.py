"""Initiative strategies: the decentralised dynamics of Section 3.

Starting from any configuration, peers take *initiatives*: peer p proposes a
new collaboration to some acceptable peer q.  The initiative is *active*
when (p, q) is a blocking pair -- both then drop their worst mate if needed
and match together.  The paper identifies three scanning strategies:

* **best mate** -- p picks the best available blocking mate (requires full
  knowledge of its neighborhood's state);
* **decremental** -- p circularly scans its acceptance list by decreasing
  rank, starting just after the last peer it asked;
* **random** -- p asks one uniformly random acceptable peer (this is the
  strategy that models BitTorrent's optimistic unchoke probing).

Every strategy converges to the unique stable configuration (Theorem 1);
they differ only in the number of initiatives needed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional

import numpy as np

from repro.core.matching import Matching, find_blocking_mate, is_blocking_pair
from repro.core.ranking import GlobalRanking

__all__ = [
    "InitiativeStrategy",
    "BestMateInitiative",
    "DecrementalInitiative",
    "RandomInitiative",
    "make_strategy",
    "apply_initiative",
]


def apply_initiative(
    matching: Matching, ranking: GlobalRanking, peer_id: int, mate_id: int
) -> bool:
    """Execute the active initiative pairing ``peer_id`` with ``mate_id``.

    Both peers drop their worst current mate when they are at capacity, then
    match together.  Returns ``True`` when the configuration changed (the
    pair was indeed blocking), ``False`` otherwise.
    """
    if not is_blocking_pair(matching, ranking, peer_id, mate_id):
        return False
    for endpoint in (peer_id, mate_id):
        if matching.free_slots(endpoint) <= 0:
            worst = ranking.worst_of(matching.mates(endpoint))
            matching.unmatch(endpoint, worst)
    matching.match(peer_id, mate_id)
    return True


class InitiativeStrategy(ABC):
    """How an initiating peer scans its acceptance list for a blocking mate."""

    name: str = "abstract"

    @abstractmethod
    def propose(
        self,
        matching: Matching,
        ranking: GlobalRanking,
        peer_id: int,
        rng: np.random.Generator,
    ) -> Optional[int]:
        """Return the peer that ``peer_id`` proposes to, or ``None``.

        Returning a non-blocking peer is allowed (the initiative is then
        simply inactive); returning ``None`` means the peer proposes to
        nobody this turn.
        """

    def take_initiative(
        self,
        matching: Matching,
        ranking: GlobalRanking,
        peer_id: int,
        rng: np.random.Generator,
    ) -> bool:
        """Run one initiative of ``peer_id``; return whether it was active."""
        target = self.propose(matching, ranking, peer_id, rng)
        if target is None:
            return False
        return apply_initiative(matching, ranking, peer_id, target)


class BestMateInitiative(InitiativeStrategy):
    """Propose to the best available blocking mate (full local knowledge)."""

    name = "best-mate"

    def propose(
        self,
        matching: Matching,
        ranking: GlobalRanking,
        peer_id: int,
        rng: np.random.Generator,
    ) -> Optional[int]:
        del rng
        return find_blocking_mate(matching, ranking, peer_id)


class DecrementalInitiative(InitiativeStrategy):
    """Circularly scan the acceptance list starting after the last asked peer.

    The peer knows the rank of its acceptable peers but not whether they
    will accept, so it asks them one at a time; this strategy remembers, per
    peer, where the scan stopped last time.
    """

    name = "decremental"

    def __init__(self) -> None:
        self._cursor: Dict[int, int] = {}

    def propose(
        self,
        matching: Matching,
        ranking: GlobalRanking,
        peer_id: int,
        rng: np.random.Generator,
    ) -> Optional[int]:
        del rng
        candidates = ranking.sorted_by_rank(matching.acceptance.acceptable_peers(peer_id))
        if not candidates:
            return None
        start = self._cursor.get(peer_id, 0) % len(candidates)
        # Ask the next peer in the circular scan; advance the cursor whether
        # or not the proposal succeeds.
        target = candidates[start]
        self._cursor[peer_id] = (start + 1) % len(candidates)
        return target

    def reset(self) -> None:
        """Forget all scan positions."""
        self._cursor.clear()


class RandomInitiative(InitiativeStrategy):
    """Propose to one uniformly random acceptable peer (no prior knowledge).

    This models BitTorrent's optimistic-unchoke probing: the peer discovers
    its neighborhood's quality only by trying.
    """

    name = "random"

    def propose(
        self,
        matching: Matching,
        ranking: GlobalRanking,
        peer_id: int,
        rng: np.random.Generator,
    ) -> Optional[int]:
        candidates = sorted(matching.acceptance.acceptable_peers(peer_id))
        if not candidates:
            return None
        return int(rng.choice(candidates))


_STRATEGIES = {
    "best-mate": BestMateInitiative,
    "decremental": DecrementalInitiative,
    "random": RandomInitiative,
}


def make_strategy(name: str) -> InitiativeStrategy:
    """Instantiate a strategy by name (``best-mate``, ``decremental``, ``random``)."""
    if name not in _STRATEGIES:
        raise ValueError(
            f"unknown initiative strategy '{name}'; available: {sorted(_STRATEGIES)}"
        )
    return _STRATEGIES[name]()
