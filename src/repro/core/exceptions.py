"""Exceptions raised by the stable-matching core."""

from __future__ import annotations

__all__ = [
    "ModelError",
    "MatchingError",
    "CapacityError",
    "UnknownPeerError",
    "ENGINES",
    "validate_engine",
]


class ModelError(Exception):
    """Base class for errors raised by the stable-matching model."""


class MatchingError(ModelError):
    """Raised when a matching operation violates the model's constraints."""


class CapacityError(MatchingError):
    """Raised when a peer would exceed its slot budget b(p)."""


class UnknownPeerError(ModelError):
    """Raised when an operation references a peer that is not in the system."""


ENGINES = ("reference", "fast")


def validate_engine(engine: str) -> str:
    """Check an ``engine=`` argument; every engine-aware entry point uses this.

    Returns the engine name so call sites can validate inline.
    """
    if engine not in ENGINES:
        raise ModelError(
            f"unknown engine '{engine}' (available: {', '.join(ENGINES)})"
        )
    return engine
