"""Stable b-matching with global ranking: the paper's primary contribution.

The subpackage implements the model of Section 2, the existence /
uniqueness / convergence results of Section 3 and the machinery used by
the stratification studies of Sections 4-5:

* :mod:`repro.core.peer` -- peers, slot budgets and populations.
* :mod:`repro.core.ranking` -- global rankings and utility functions.
* :mod:`repro.core.acceptance` -- acceptance graphs binding peers to an
  underlying undirected graph.
* :mod:`repro.core.matching` -- b-matching configurations, blocking pairs
  and stability checks.
* :mod:`repro.core.stable` -- Algorithm 1 (centralised computation of the
  unique stable configuration).
* :mod:`repro.core.initiatives` -- best-mate / decremental / random
  initiative strategies (the decentralised dynamics).
* :mod:`repro.core.dynamics` -- convergence simulations and disorder
  trajectories (Figures 1 and 2).
* :mod:`repro.core.churn` -- churn processes and disorder-under-churn
  simulations (Figure 3).
* :mod:`repro.core.metrics` -- the disorder distance and the Mean Max
  Offset (MMO).
* :mod:`repro.core.fast` -- the vectorized array engine behind the
  ``engine="fast"`` switch of the simulators (CSR acceptance graph,
  fixed-width mate table, vectorized blocking-pair scans).
"""

from repro.core.acceptance import AcceptanceGraph
from repro.core.churn import ChurnConfig, ChurnSimulation, simulate_churn
from repro.core.dynamics import (
    ConvergenceResult,
    ConvergenceSimulator,
    simulate_convergence,
    simulate_peer_removal,
)
from repro.core.exceptions import MatchingError, ModelError
from repro.core.initiatives import (
    BestMateInitiative,
    DecrementalInitiative,
    InitiativeStrategy,
    RandomInitiative,
    make_strategy,
)
from repro.core.matching import Matching, blocking_pairs, find_blocking_mate, is_stable
from repro.core.metrics import collaboration_graph, disorder, matching_distance, mean_max_offset
from repro.core.peer import Peer, PeerPopulation
from repro.core.ranking import GlobalRanking, RankingUtility, TitForTatUtility, UtilityFunction
from repro.core.stable import stable_configuration
from repro.core.fast import (
    FastConvergenceSimulator,
    FastMatching,
    PeerArrays,
    fast_stable_configuration,
)

__all__ = [
    "AcceptanceGraph",
    "ChurnConfig",
    "ChurnSimulation",
    "simulate_churn",
    "ConvergenceResult",
    "ConvergenceSimulator",
    "simulate_convergence",
    "simulate_peer_removal",
    "MatchingError",
    "ModelError",
    "BestMateInitiative",
    "DecrementalInitiative",
    "InitiativeStrategy",
    "RandomInitiative",
    "make_strategy",
    "Matching",
    "blocking_pairs",
    "find_blocking_mate",
    "is_stable",
    "collaboration_graph",
    "disorder",
    "matching_distance",
    "mean_max_offset",
    "Peer",
    "PeerPopulation",
    "GlobalRanking",
    "RankingUtility",
    "TitForTatUtility",
    "UtilityFunction",
    "stable_configuration",
    "FastConvergenceSimulator",
    "FastMatching",
    "PeerArrays",
    "fast_stable_configuration",
]
