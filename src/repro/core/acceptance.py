"""Acceptance graphs.

A pair (p, q) belongs to the acceptance graph when both peers are willing
(and able) to collaborate; acceptability is symmetric (Section 2).  This
module wraps the generic :class:`repro.graphs.base.UndirectedGraph` with
peer-population awareness: it validates that edges only reference known
peers, and it supports the dynamic add/remove operations needed by the
churn experiments.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

import numpy as np

from repro.core.exceptions import ModelError, UnknownPeerError
from repro.core.peer import PeerPopulation
from repro.graphs.base import UndirectedGraph
from repro.graphs.erdos_renyi import erdos_renyi_graph
from repro.sim import streams
from repro.sim.random_source import fallback_rng

__all__ = ["AcceptanceGraph"]


class AcceptanceGraph:
    """The symmetric compatibility relation between peers."""

    def __init__(self, population: PeerPopulation, graph: Optional[UndirectedGraph] = None) -> None:
        self.population = population
        if graph is None:
            graph = UndirectedGraph(population.ids())
        self._validate(population, graph)
        self.graph = graph

    @staticmethod
    def _validate(population: PeerPopulation, graph: UndirectedGraph) -> None:
        unknown = [v for v in graph.vertices() if v not in population]
        if unknown:
            raise ModelError(
                f"acceptance graph references unknown peers: {unknown[:5]}"
            )
        for peer in population:
            if not graph.has_vertex(peer.peer_id):
                graph.add_vertex(peer.peer_id)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def complete(cls, population: PeerPopulation) -> "AcceptanceGraph":
        """Everybody accepts everybody (Section 4's toy model)."""
        ids = population.ids()
        graph = UndirectedGraph(ids)
        for i, u in enumerate(ids):
            for v in ids[i + 1:]:
                graph.add_edge(u, v)
        return cls(population, graph)

    @classmethod
    def erdos_renyi(
        cls,
        population: PeerPopulation,
        *,
        expected_degree: Optional[float] = None,
        probability: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> "AcceptanceGraph":
        """Erdős–Rényi acceptance graph over the population's peer ids.

        Exactly one of ``expected_degree`` (the paper's ``d``) or
        ``probability`` must be given.
        """
        if (expected_degree is None) == (probability is None):
            raise ModelError("specify exactly one of expected_degree / probability")
        ids = population.ids()
        n = len(ids)
        if rng is None:
            rng = fallback_rng(streams.GRAPH)
        if probability is None:
            if n < 2:
                base = UndirectedGraph(ids)
                return cls(population, base)
            probability = expected_degree / (n - 1)
            if not 0.0 <= probability <= 1.0:
                raise ModelError(
                    f"expected degree {expected_degree} infeasible for n={n}"
                )
        # Sample on contiguous labels then relabel onto the population ids.
        sampled = erdos_renyi_graph(n, float(probability), rng, first_id=0)
        graph = UndirectedGraph(ids)
        for u, v in sampled.edges():
            graph.add_edge(ids[u], ids[v])
        return cls(population, graph)

    # -- queries --------------------------------------------------------------

    def accepts(self, p: int, q: int) -> bool:
        """Whether peers p and q accept each other."""
        return self.graph.has_edge(p, q)

    def acceptable_peers(self, peer_id: int) -> Set[int]:
        """The set of peers acceptable to ``peer_id``."""
        if peer_id not in self.population:
            raise UnknownPeerError(f"peer {peer_id} not in population")
        return set(self.graph.neighbors(peer_id))

    def degree(self, peer_id: int) -> int:
        """Number of acceptable peers of ``peer_id``."""
        return len(self.acceptable_peers(peer_id))

    def peer_ids(self) -> List[int]:
        """All peer ids, sorted."""
        return self.population.ids()

    # -- mutation (churn support) ---------------------------------------------

    def declare_acceptable(self, p: int, q: int) -> None:
        """Add the symmetric acceptability edge (p, q)."""
        if p not in self.population or q not in self.population:
            raise UnknownPeerError(f"cannot link unknown peers ({p}, {q})")
        if p == q:
            raise ModelError("a peer cannot accept itself")
        self.graph.add_edge(p, q)

    def declare_unacceptable(self, p: int, q: int) -> None:
        """Remove the acceptability edge (p, q) if present."""
        if self.graph.has_edge(p, q):
            self.graph.remove_edge(p, q)

    def add_peer(self, peer, acceptable: Iterable[int] = ()) -> None:
        """Add a new peer to the population and link it to ``acceptable``."""
        self.population.add(peer)
        self.graph.add_vertex(peer.peer_id)
        for other in acceptable:
            self.declare_acceptable(peer.peer_id, other)

    def remove_peer(self, peer_id: int):
        """Remove a peer from both the population and the graph."""
        peer = self.population.remove(peer_id)
        if self.graph.has_vertex(peer_id):
            self.graph.remove_vertex(peer_id)
        return peer

    def copy(self) -> "AcceptanceGraph":
        """Independent copy sharing no mutable state."""
        return AcceptanceGraph(self.population.copy(), self.graph.copy())

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"AcceptanceGraph(n={len(self.population)}, edges={self.graph.edge_count})"
        )
