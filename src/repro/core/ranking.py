"""Global rankings and utility functions.

The paper studies the *global ranking* class of utility functions: every
peer has an intrinsic mark S(p) and every peer prefers partners with a
higher mark.  :class:`GlobalRanking` captures that order;
:class:`UtilityFunction` is the generic interface mentioned in the paper's
framework discussion, with two concrete instances:

* :class:`RankingUtility` -- utility equals the partner's global mark (the
  class analysed throughout the paper).
* :class:`TitForTatUtility` -- utility equals the amount of data recently
  received from the partner (BitTorrent's Tit-for-Tat); in the post
  flash-crowd regime this reduces to the partner's upload-per-slot, i.e. a
  global ranking, which is exactly the reduction Section 6 relies on.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterable, List, Mapping, Optional

from repro.core.exceptions import ModelError, UnknownPeerError
from repro.core.peer import PeerPopulation

__all__ = ["GlobalRanking", "UtilityFunction", "RankingUtility", "TitForTatUtility"]


class GlobalRanking:
    """A strict total order over peers derived from their marks.

    Rank 1 is the best peer.  Ties in the marks are broken deterministically
    by peer id (the paper assumes distinct marks; the tie-break only exists
    so that the library never silently produces an ill-defined instance).
    """

    def __init__(self, scores: Mapping[int, float]) -> None:
        if not scores:
            raise ModelError("cannot build a ranking over an empty population")
        # Sort by decreasing score, ties broken by increasing peer id.
        ordered = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        self._order: List[int] = [peer_id for peer_id, _ in ordered]
        self._rank: Dict[int, int] = {
            peer_id: position + 1 for position, (peer_id, _) in enumerate(ordered)
        }
        self._scores: Dict[int, float] = dict(scores)

    @classmethod
    def from_population(cls, population: PeerPopulation) -> "GlobalRanking":
        """Build the ranking induced by a population's scores."""
        return cls(population.scores())

    @classmethod
    def identity(cls, ids: Iterable[int]) -> "GlobalRanking":
        """The paper's convention: peer id == rank (id 1 is the best)."""
        ids = list(ids)
        n = len(ids)
        return cls({peer_id: float(n - index) for index, peer_id in enumerate(sorted(ids))})

    # -- queries -------------------------------------------------------------

    def rank(self, peer_id: int) -> int:
        """1-based rank of a peer (1 = best)."""
        if peer_id not in self._rank:
            raise UnknownPeerError(f"peer {peer_id} not in ranking")
        return self._rank[peer_id]

    def score(self, peer_id: int) -> float:
        """The mark S(p) used to build this ranking."""
        if peer_id not in self._scores:
            raise UnknownPeerError(f"peer {peer_id} not in ranking")
        return self._scores[peer_id]

    def prefers(self, judge: int, candidate: int, incumbent: int) -> bool:
        """Whether ``judge`` strictly prefers ``candidate`` over ``incumbent``.

        In the global-ranking class the judge's identity is irrelevant: every
        peer prefers better-ranked partners.  The argument is kept so that
        alternative utility functions share the same call signature.
        """
        del judge  # global ranking: preference is judge-independent
        return self.rank(candidate) < self.rank(incumbent)

    def better_of(self, a: int, b: int) -> int:
        """Return whichever of the two peers has the better rank."""
        return a if self.rank(a) < self.rank(b) else b

    def worst_of(self, peers: Iterable[int]) -> int:
        """Return the worst-ranked peer among ``peers`` (must be non-empty)."""
        peers = list(peers)
        if not peers:
            raise ModelError("worst_of() needs at least one peer")
        return max(peers, key=self.rank)

    def best_of(self, peers: Iterable[int]) -> int:
        """Return the best-ranked peer among ``peers`` (must be non-empty)."""
        peers = list(peers)
        if not peers:
            raise ModelError("best_of() needs at least one peer")
        return min(peers, key=self.rank)

    def sorted_by_rank(self, peers: Optional[Iterable[int]] = None) -> List[int]:
        """Peers sorted best-first; defaults to the whole ranking."""
        if peers is None:
            return list(self._order)
        return sorted(peers, key=self.rank)

    def ids(self) -> List[int]:
        """All ranked peer ids, best first."""
        return list(self._order)

    def offset(self, a: int, b: int) -> int:
        """Absolute rank difference between two peers (the paper's 'offset')."""
        return abs(self.rank(a) - self.rank(b))

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, peer_id: int) -> bool:
        return peer_id in self._rank

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"GlobalRanking(n={len(self._order)})"


class UtilityFunction(ABC):
    """Interface for the utility a peer assigns to a potential partner."""

    @abstractmethod
    def value(self, peer_id: int, partner_id: int) -> float:
        """Utility of ``partner_id`` from the point of view of ``peer_id``."""

    def prefers(self, peer_id: int, candidate: int, incumbent: int) -> bool:
        """Whether ``peer_id`` strictly prefers ``candidate`` to ``incumbent``."""
        return self.value(peer_id, candidate) > self.value(peer_id, incumbent)

    def preference_list(self, peer_id: int, partners: Iterable[int]) -> List[int]:
        """Partners sorted by decreasing utility for ``peer_id``."""
        return sorted(partners, key=lambda q: -self.value(peer_id, q))


class RankingUtility(UtilityFunction):
    """Utility equal to the partner's global mark: the paper's main class."""

    def __init__(self, ranking: GlobalRanking) -> None:
        self.ranking = ranking

    def value(self, peer_id: int, partner_id: int) -> float:
        del peer_id
        return self.ranking.score(partner_id)

    def induces_global_ranking(self) -> bool:
        """Ranking utilities trivially belong to the global-ranking class."""
        return True


class TitForTatUtility(UtilityFunction):
    """Utility equal to the volume recently received from the partner.

    This is BitTorrent's Tit-for-Tat.  When every peer splits its upload
    bandwidth evenly across its slots (the post flash-crowd regime of
    Section 6), the volume received from partner q is ``upload(q) / b(q)``,
    a quantity that depends only on q: the utility collapses to a global
    ranking, which is how the paper connects TFT to its model.
    """

    def __init__(self, received: Mapping[int, Mapping[int, float]]) -> None:
        # received[p][q] = volume p downloaded from q over the last period.
        self._received: Dict[int, Dict[int, float]] = {
            p: dict(q_map) for p, q_map in received.items()
        }

    def value(self, peer_id: int, partner_id: int) -> float:
        return self._received.get(peer_id, {}).get(partner_id, 0.0)

    def record(self, peer_id: int, partner_id: int, volume: float) -> None:
        """Accumulate ``volume`` bytes downloaded by ``peer_id`` from ``partner_id``."""
        if volume < 0:
            raise ModelError("downloaded volume cannot be negative")
        self._received.setdefault(peer_id, {})
        self._received[peer_id][partner_id] = (
            self._received[peer_id].get(partner_id, 0.0) + volume
        )

    def reset(self) -> None:
        """Clear all measurements (start of a new TFT evaluation period)."""
        self._received.clear()

    @classmethod
    def from_upload_per_slot(
        cls, uploads: Mapping[int, float], slots: Mapping[int, int]
    ) -> "GlobalRanking":
        """The Section 6 reduction: TFT ranks peers by upload-per-slot.

        Returns the induced :class:`GlobalRanking` directly, since in this
        regime the utility no longer depends on who is judging.
        """
        scores: Dict[int, float] = {}
        for peer_id, upload in uploads.items():
            slot_count = max(1, int(slots.get(peer_id, 1)))
            scores[peer_id] = float(upload) / slot_count
        return GlobalRanking(scores)
