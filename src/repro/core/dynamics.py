"""Convergence dynamics (Figures 1 and 2).

The simulation process follows Section 3: at each step a uniformly random
peer takes one initiative (active or not).  A sequence of ``n`` successive
initiatives is one *base unit* ("one expected initiative per peer"); the
disorder -- distance between the current configuration and the stable one --
is recorded once per sampling interval.

Two interchangeable backends run the process:

* ``engine="reference"`` (default) -- the dictionary/set implementation in
  this module, which validates every invariant and accepts arbitrary
  :class:`~repro.core.initiatives.InitiativeStrategy` objects;
* ``engine="fast"`` -- the vectorized array engine in
  :mod:`repro.core.fast`, roughly an order of magnitude faster at
  n >= 10k peers and *trajectory-identical* to the reference under a
  shared :class:`~repro.sim.random_source.RandomSource` seed (the
  equivalence is enforced by ``tests/test_engine_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence


from repro.core.acceptance import AcceptanceGraph
from repro.core.exceptions import validate_engine
from repro.core.initiatives import InitiativeStrategy, make_strategy
from repro.core.matching import Matching
from repro.core.metrics import disorder
from repro.core.peer import PeerPopulation
from repro.core.ranking import GlobalRanking
from repro.core.stable import stable_configuration
from repro.sim.random_source import RandomSource
from repro.sim.recorder import TimeSeries
from repro.sim import streams

__all__ = [
    "ConvergenceResult",
    "ConvergenceSimulator",
    "simulate_convergence",
    "simulate_peer_removal",
]


@dataclass
class ConvergenceResult:
    """Outcome of a convergence simulation.

    Attributes
    ----------
    trajectory:
        Disorder samples indexed by time in *base units* (initiatives per peer).
    initiatives:
        Total number of initiatives taken.
    active_initiatives:
        Number of initiatives that changed the configuration.
    converged:
        Whether the final configuration equals the stable configuration.
    time_to_converge:
        Base units elapsed when the disorder first reached zero
        (``None`` if it never did within the simulated horizon).
    final_matching:
        The configuration at the end of the simulation.
    """

    trajectory: TimeSeries
    initiatives: int
    active_initiatives: int
    converged: bool
    time_to_converge: Optional[float]
    final_matching: Matching


class ConvergenceSimulator:
    """Simulates peers independently searching for better collaborators.

    Parameters
    ----------
    acceptance:
        The acceptance graph (with its population and slot budgets).
    strategy:
        Initiative strategy instance or name (default ``"best-mate"``,
        matching the paper's simulations).
    source:
        Random source used both for picking the initiating peer and, for the
        random strategy, the proposal target.
    engine:
        ``"reference"`` (default) for the dictionary/set implementation in
        this module, ``"fast"`` for the vectorized array engine in
        :mod:`repro.core.fast`.  Both produce bit-identical trajectories
        for the same seed; the fast engine only supports the three named
        strategies.
    """

    def __init__(
        self,
        acceptance: AcceptanceGraph,
        strategy: InitiativeStrategy | str = "best-mate",
        source: Optional[RandomSource] = None,
        engine: str = "reference",
    ) -> None:
        validate_engine(engine)
        self.acceptance = acceptance
        self.engine = engine
        self.source = source if source is not None else RandomSource(0)
        self._stable: Optional[Matching] = None
        if engine == "fast":
            from repro.core.fast.dynamics import FastConvergenceSimulator

            self._fast = FastConvergenceSimulator(
                acceptance, strategy=strategy, source=self.source
            )
            self.ranking = self._fast.ranking
            self.strategy = self._fast.strategy
        else:
            self._fast = None
            self.ranking = GlobalRanking.from_population(acceptance.population)
            self.strategy = (
                make_strategy(strategy) if isinstance(strategy, str) else strategy
            )
            self._stable = stable_configuration(acceptance, self.ranking)

    @property
    def stable(self) -> Matching:
        """The unique stable configuration (computed lazily for the fast engine)."""
        if self._stable is None:
            self._stable = self._fast.stable_matching()
        return self._stable

    def run(
        self,
        *,
        initial: Optional[Matching] = None,
        max_base_units: float = 50.0,
        samples_per_base_unit: int = 4,
        stop_when_stable: bool = True,
    ) -> ConvergenceResult:
        """Run the initiative process and record the disorder trajectory.

        Parameters
        ----------
        initial:
            Starting configuration; the empty configuration by default.
        max_base_units:
            Horizon of the simulation, in initiatives per peer.
        samples_per_base_unit:
            How many disorder samples to record per base unit.
        stop_when_stable:
            Stop as soon as the stable configuration is reached.
        """
        if self._fast is not None:
            return self._fast.run(
                initial=initial,
                max_base_units=max_base_units,
                samples_per_base_unit=samples_per_base_unit,
                stop_when_stable=stop_when_stable,
            )
        matching = initial.copy() if initial is not None else Matching(self.acceptance)
        n = len(self.acceptance.population)
        if n == 0:
            raise ValueError("cannot simulate an empty population")
        rng = self.source.stream(streams.INITIATIVES)

        trajectory = TimeSeries("disorder")
        peer_ids = self.acceptance.peer_ids()
        total_steps = int(round(max_base_units * n))
        sample_every = max(1, n // max(1, samples_per_base_unit))

        initiatives = 0
        active = 0
        time_to_converge: Optional[float] = None

        current_disorder = disorder(matching, self.stable, self.ranking)
        trajectory.append(0.0, current_disorder)
        if current_disorder == 0.0:
            time_to_converge = 0.0

        for step in range(1, total_steps + 1):
            peer_id = peer_ids[int(rng.integers(len(peer_ids)))]
            if self.strategy.take_initiative(matching, self.ranking, peer_id, rng):
                active += 1
            initiatives += 1

            if step % sample_every == 0 or step == total_steps:
                base_units = step / n
                current_disorder = disorder(matching, self.stable, self.ranking)
                trajectory.append(base_units, current_disorder)
                if current_disorder == 0.0 and time_to_converge is None:
                    time_to_converge = base_units
                    if stop_when_stable:
                        break

        converged = matching == self.stable
        return ConvergenceResult(
            trajectory=trajectory,
            initiatives=initiatives,
            active_initiatives=active,
            converged=converged,
            time_to_converge=time_to_converge,
            final_matching=matching,
        )


def simulate_convergence(
    n: int,
    expected_degree: float,
    *,
    slots: int | Sequence[int] = 1,
    strategy: str = "best-mate",
    seed: int = 0,
    max_base_units: float = 50.0,
    samples_per_base_unit: int = 4,
    engine: str = "reference",
) -> ConvergenceResult:
    """Figure 1 helper: convergence from the empty configuration.

    Builds peers 1..n (rank = id), an Erdős–Rényi acceptance graph with the
    given expected degree, and runs the initiative process from the empty
    configuration.  ``engine`` selects the backend (see
    :class:`ConvergenceSimulator`).
    """
    source = RandomSource(seed)
    population = PeerPopulation.ranked(n, slots=slots)
    acceptance = AcceptanceGraph.erdos_renyi(
        population, expected_degree=expected_degree, rng=source.stream(streams.GRAPH)
    )
    simulator = ConvergenceSimulator(
        acceptance, strategy=strategy, source=source, engine=engine
    )
    return simulator.run(
        max_base_units=max_base_units, samples_per_base_unit=samples_per_base_unit
    )


def simulate_peer_removal(
    n: int,
    expected_degree: float,
    removed_peer: int,
    *,
    slots: int | Sequence[int] = 1,
    strategy: str = "best-mate",
    seed: int = 0,
    max_base_units: float = 10.0,
    samples_per_base_unit: int = 10,
    engine: str = "reference",
) -> ConvergenceResult:
    """Figure 2 helper: start from the stable state, remove one peer, re-converge.

    The initial configuration is the stable configuration of the full
    system; the peer ``removed_peer`` then leaves, and the simulation
    measures the disorder with respect to the *new* stable configuration of
    the reduced system.  ``engine`` selects the backend for both the stable
    computation and the re-convergence run.
    """
    source = RandomSource(seed)
    population = PeerPopulation.ranked(n, slots=slots)
    acceptance = AcceptanceGraph.erdos_renyi(
        population, expected_degree=expected_degree, rng=source.stream(streams.GRAPH)
    )
    ranking = GlobalRanking.from_population(population)
    before_removal = stable_configuration(acceptance, ranking, engine=engine)

    # Remove the peer from the system: population, acceptance graph and the
    # inherited configuration all forget it.
    before_removal.remove_peer(removed_peer)
    acceptance.remove_peer(removed_peer)

    simulator = ConvergenceSimulator(
        acceptance, strategy=strategy, source=source, engine=engine
    )
    # Rebind the inherited configuration to the updated acceptance graph.
    inherited = Matching.from_pairs(acceptance, before_removal.pairs())
    return simulator.run(
        initial=inherited,
        max_base_units=max_base_units,
        samples_per_base_unit=samples_per_base_unit,
    )
