"""Churn: peers joining and leaving while the system converges (Figure 3).

The paper's continuous-churn experiment starts from the empty configuration
and lets peers take initiatives while, at a configurable *churn rate*, peers
are removed from or (re)introduced into the system.  The quantity observed
is the disorder with respect to the *instantaneous* stable configuration,
which changes after every churn event.  The finding reproduced here: the
average disorder stays under control and is roughly proportional to the
churn rate.

The simulation supports both matching backends through
``ChurnConfig.engine``: the reference dictionary engine, and the
vectorized array engine of :mod:`repro.core.fast`, which rebuilds its CSR
snapshot after every churn event (events are rare relative to initiatives,
so the rebuild amortizes) and runs the initiative/disorder hot loop on
arrays.  Both engines consume the random streams identically and produce
bit-identical disorder trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.acceptance import AcceptanceGraph
from repro.core.exceptions import ModelError, validate_engine
from repro.core.initiatives import make_strategy
from repro.core.matching import Matching
from repro.core.metrics import disorder
from repro.core.peer import Peer, PeerPopulation
from repro.core.ranking import GlobalRanking
from repro.core.stable import stable_configuration
from repro.sim.random_source import RandomSource
from repro.sim.recorder import TimeSeries
from repro.sim import streams

__all__ = ["ChurnConfig", "ChurnSimulation", "simulate_churn"]


@dataclass
class ChurnConfig:
    """Parameters of a churn simulation.

    Attributes
    ----------
    n:
        Initial (and target) number of peers.
    expected_degree:
        Expected acceptance degree d of new and existing peers.
    churn_rate:
        Expected number of churn events per initiative.  The paper's
        "churn = 30/1000" corresponds to ``churn_rate = 0.03``.
    slots:
        Slot budget of every peer (the paper uses 1-matching).
    max_base_units:
        Simulation horizon in initiatives per peer.
    samples_per_base_unit:
        Disorder samples recorded per base unit.
    strategy:
        Initiative strategy name.
    engine:
        Matching backend: ``"reference"`` (default) or ``"fast"`` (the
        array engine; identical trajectories, much faster at large n).
    """

    n: int = 1000
    expected_degree: float = 10.0
    churn_rate: float = 0.01
    slots: int = 1
    max_base_units: float = 20.0
    samples_per_base_unit: int = 4
    strategy: str = "best-mate"
    engine: str = "reference"

    def __post_init__(self) -> None:
        if self.n <= 1:
            raise ModelError("churn simulation needs at least two peers")
        if self.churn_rate < 0:
            raise ModelError("churn rate cannot be negative")
        if self.expected_degree < 0:
            raise ModelError("expected degree cannot be negative")
        validate_engine(self.engine)


@dataclass
class ChurnSimulation:
    """Result of a churn simulation."""

    config: ChurnConfig
    trajectory: TimeSeries
    churn_events: int
    initiatives: int
    mean_disorder: float
    final_population_size: int


class _ReferenceChurnEngine:
    """Dictionary-backed matching state for the churn loop."""

    def __init__(self, acceptance: AcceptanceGraph, strategy: str) -> None:
        self.acceptance = acceptance
        self.matching = Matching(acceptance)
        self.strategy = make_strategy(strategy)
        self.ranking: GlobalRanking = GlobalRanking.from_population(
            acceptance.population
        )
        self.stable: Matching = Matching(acceptance)

    def remove_peer(self, peer_id: int) -> None:
        self.matching.remove_peer(peer_id)

    def add_peer(self, peer_id: int) -> None:
        self.matching.add_peer(peer_id)

    def refresh(self) -> None:
        """Recompute the ranking and instantaneous stable configuration."""
        self.ranking = GlobalRanking.from_population(self.acceptance.population)
        self.stable = stable_configuration(self.acceptance, self.ranking)

    def step(self, rng: np.random.Generator) -> None:
        peer_ids = self.acceptance.peer_ids()
        peer_id = peer_ids[int(rng.integers(len(peer_ids)))]
        self.strategy.take_initiative(self.matching, self.ranking, peer_id, rng)

    def disorder(self) -> float:
        return disorder(self.matching, self.stable, self.ranking)


class _FastChurnEngine:
    """Array-backed matching state for the churn loop.

    The CSR snapshot is immutable, so churn events stash the surviving
    matched pairs and ``refresh`` rebuilds the arrays from the mutated
    acceptance graph.  Initiatives and disorder sampling -- the hot path --
    run entirely on the rebuilt arrays.
    """

    def __init__(self, acceptance: AcceptanceGraph, strategy: str) -> None:
        from repro.core.fast.dynamics import make_fast_strategy

        self.acceptance = acceptance
        self.strategy = make_fast_strategy(strategy)
        self._pairs: List[Tuple[int, int]] = []
        self.matching = None
        self._stable_sorted = None

    def remove_peer(self, peer_id: int) -> None:
        self._pairs = [
            pair for pair in self.matching.pairs() if peer_id not in pair
        ]

    def add_peer(self, peer_id: int) -> None:
        del peer_id  # a fresh peer joins unmatched
        self._pairs = self.matching.pairs()

    def refresh(self) -> None:
        """Rebuild the CSR snapshot and the instantaneous stable table."""
        from repro.core.fast.arrays import PeerArrays
        from repro.core.fast.engine import FastMatching, fast_stable_table

        ranking = GlobalRanking.from_population(self.acceptance.population)
        arrays = PeerArrays.build(self.acceptance, ranking)
        matching = FastMatching(arrays)
        matching.load_pairs(self._pairs)
        self.matching = matching
        self._stable_sorted = fast_stable_table(arrays).sorted_rank_table()

    def step(self, rng: np.random.Generator) -> None:
        # arrays index i <-> sorted peer id i: drawing an index reproduces
        # the reference engine's uniform choice over sorted peer ids.
        peer = int(rng.integers(self.matching.arrays.n))
        self.strategy.take_initiative(self.matching, peer, rng)

    def disorder(self) -> float:
        return self.matching.disorder(self._stable_sorted)


def simulate_churn(config: ChurnConfig, *, seed: int = 0) -> ChurnSimulation:
    """Run a churn simulation and record the disorder trajectory.

    At every step one random peer takes an initiative.  Independently, with
    probability ``config.churn_rate`` per step, a churn event occurs: with
    equal probability either a uniformly random peer leaves, or a new peer
    joins with a fresh random score and an Erdős–Rényi neighborhood of the
    configured expected degree.  The instantaneous stable configuration is
    recomputed after every churn event.
    """
    source = RandomSource(seed)
    graph_rng = source.stream(streams.GRAPH)
    churn_rng = source.stream(streams.CHURN)
    initiative_rng = source.stream(streams.INITIATIVES)

    # The paper labels peers by rank; under churn new peers get fresh scores
    # drawn uniformly, which keeps all marks distinct with probability one.
    score_rng = source.stream(streams.SCORES)
    scores = score_rng.random(config.n)
    population = PeerPopulation.from_scores(scores, slots=config.slots)
    acceptance = AcceptanceGraph.erdos_renyi(
        population, expected_degree=config.expected_degree, rng=graph_rng
    )

    if config.engine == "fast":
        engine = _FastChurnEngine(acceptance, config.strategy)
    else:
        engine = _ReferenceChurnEngine(acceptance, config.strategy)
    engine.refresh()

    trajectory = TimeSeries("disorder")
    total_steps = int(round(config.max_base_units * config.n))
    sample_every = max(1, config.n // max(1, config.samples_per_base_unit))

    churn_events = 0
    initiatives = 0
    disorder_samples: List[float] = []

    current = engine.disorder()
    trajectory.append(0.0, current)

    for step in range(1, total_steps + 1):
        # -- churn -----------------------------------------------------------
        if config.churn_rate > 0 and churn_rng.random() < config.churn_rate:
            if churn_rng.random() < 0.5 and len(population) > 2:
                victim = _choose_victim(population, churn_rng)
                engine.remove_peer(victim)
                acceptance.remove_peer(victim)
            else:
                new_id = _add_fresh_peer(
                    population, acceptance, config, churn_rng, score_rng
                )
                engine.add_peer(new_id)
            engine.refresh()
            churn_events += 1

        # -- one initiative ----------------------------------------------------
        engine.step(initiative_rng)
        initiatives += 1

        if step % sample_every == 0 or step == total_steps:
            current = engine.disorder()
            trajectory.append(step / config.n, current)
            disorder_samples.append(current)

    mean_disorder = float(np.mean(disorder_samples)) if disorder_samples else current
    return ChurnSimulation(
        config=config,
        trajectory=trajectory,
        churn_events=churn_events,
        initiatives=initiatives,
        mean_disorder=mean_disorder,
        final_population_size=len(population),
    )


def _choose_victim(population: PeerPopulation, rng: np.random.Generator) -> int:
    """Draw the uniformly random peer that leaves the system."""
    ids = population.ids()
    return ids[int(rng.integers(len(ids)))]


def _add_fresh_peer(
    population: PeerPopulation,
    acceptance: AcceptanceGraph,
    config: ChurnConfig,
    rng: np.random.Generator,
    score_rng: np.random.Generator,
) -> int:
    """Introduce a new peer with a fresh score and random neighborhood.

    Returns the new peer id; the caller registers it with its matching
    backend (the peer joins unmatched).
    """
    new_id = population.next_id()
    peer = Peer(new_id, float(score_rng.random()), config.slots)
    existing = [pid for pid in population.ids()]
    acceptance.add_peer(peer)
    if not existing:
        return new_id
    probability = min(1.0, config.expected_degree / max(1, len(existing)))
    for other in existing:
        if rng.random() < probability:
            acceptance.declare_acceptable(new_id, other)
    return new_id
