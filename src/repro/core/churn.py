"""Churn: peers joining and leaving while the system converges (Figure 3).

The paper's continuous-churn experiment starts from the empty configuration
and lets peers take initiatives while, at a configurable *churn rate*, peers
are removed from or (re)introduced into the system.  The quantity observed
is the disorder with respect to the *instantaneous* stable configuration,
which changes after every churn event.  The finding reproduced here: the
average disorder stays under control and is roughly proportional to the
churn rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.acceptance import AcceptanceGraph
from repro.core.exceptions import ModelError
from repro.core.initiatives import InitiativeStrategy, make_strategy
from repro.core.matching import Matching
from repro.core.metrics import disorder
from repro.core.peer import Peer, PeerPopulation
from repro.core.ranking import GlobalRanking
from repro.core.stable import stable_configuration
from repro.sim.random_source import RandomSource
from repro.sim.recorder import TimeSeries

__all__ = ["ChurnConfig", "ChurnSimulation", "simulate_churn"]


@dataclass
class ChurnConfig:
    """Parameters of a churn simulation.

    Attributes
    ----------
    n:
        Initial (and target) number of peers.
    expected_degree:
        Expected acceptance degree d of new and existing peers.
    churn_rate:
        Expected number of churn events per initiative.  The paper's
        "churn = 30/1000" corresponds to ``churn_rate = 0.03``.
    slots:
        Slot budget of every peer (the paper uses 1-matching).
    max_base_units:
        Simulation horizon in initiatives per peer.
    samples_per_base_unit:
        Disorder samples recorded per base unit.
    strategy:
        Initiative strategy name.
    """

    n: int = 1000
    expected_degree: float = 10.0
    churn_rate: float = 0.01
    slots: int = 1
    max_base_units: float = 20.0
    samples_per_base_unit: int = 4
    strategy: str = "best-mate"

    def __post_init__(self) -> None:
        if self.n <= 1:
            raise ModelError("churn simulation needs at least two peers")
        if self.churn_rate < 0:
            raise ModelError("churn rate cannot be negative")
        if self.expected_degree < 0:
            raise ModelError("expected degree cannot be negative")


@dataclass
class ChurnSimulation:
    """Result of a churn simulation."""

    config: ChurnConfig
    trajectory: TimeSeries
    churn_events: int
    initiatives: int
    mean_disorder: float
    final_population_size: int


def simulate_churn(config: ChurnConfig, *, seed: int = 0) -> ChurnSimulation:
    """Run a churn simulation and record the disorder trajectory.

    At every step one random peer takes an initiative.  Independently, with
    probability ``config.churn_rate`` per step, a churn event occurs: with
    equal probability either a uniformly random peer leaves, or a new peer
    joins with a fresh random score and an Erdős–Rényi neighborhood of the
    configured expected degree.  The instantaneous stable configuration is
    recomputed after every churn event.
    """
    source = RandomSource(seed)
    graph_rng = source.stream("graph")
    churn_rng = source.stream("churn")
    initiative_rng = source.stream("initiatives")

    # The paper labels peers by rank; under churn new peers get fresh scores
    # drawn uniformly, which keeps all marks distinct with probability one.
    score_rng = source.stream("scores")
    scores = score_rng.random(config.n)
    population = PeerPopulation.from_scores(scores, slots=config.slots)
    acceptance = AcceptanceGraph.erdos_renyi(
        population, expected_degree=config.expected_degree, rng=graph_rng
    )

    strategy = make_strategy(config.strategy)
    matching = Matching(acceptance)
    ranking = GlobalRanking.from_population(population)
    stable = stable_configuration(acceptance, ranking)

    trajectory = TimeSeries("disorder")
    total_steps = int(round(config.max_base_units * config.n))
    sample_every = max(1, config.n // max(1, config.samples_per_base_unit))

    churn_events = 0
    initiatives = 0
    disorder_samples: List[float] = []

    current = disorder(matching, stable, ranking)
    trajectory.append(0.0, current)

    for step in range(1, total_steps + 1):
        # -- churn -----------------------------------------------------------
        if config.churn_rate > 0 and churn_rng.random() < config.churn_rate:
            if churn_rng.random() < 0.5 and len(population) > 2:
                _remove_random_peer(population, acceptance, matching, churn_rng)
            else:
                _add_fresh_peer(
                    population, acceptance, matching, config, churn_rng, score_rng
                )
            ranking = GlobalRanking.from_population(population)
            stable = stable_configuration(acceptance, ranking)
            churn_events += 1

        # -- one initiative ----------------------------------------------------
        peer_ids = acceptance.peer_ids()
        peer_id = peer_ids[int(initiative_rng.integers(len(peer_ids)))]
        strategy.take_initiative(matching, ranking, peer_id, initiative_rng)
        initiatives += 1

        if step % sample_every == 0 or step == total_steps:
            current = disorder(matching, stable, ranking)
            trajectory.append(step / config.n, current)
            disorder_samples.append(current)

    mean_disorder = float(np.mean(disorder_samples)) if disorder_samples else current
    return ChurnSimulation(
        config=config,
        trajectory=trajectory,
        churn_events=churn_events,
        initiatives=initiatives,
        mean_disorder=mean_disorder,
        final_population_size=len(population),
    )


def _remove_random_peer(
    population: PeerPopulation,
    acceptance: AcceptanceGraph,
    matching: Matching,
    rng: np.random.Generator,
) -> None:
    ids = population.ids()
    victim = ids[int(rng.integers(len(ids)))]
    matching.remove_peer(victim)
    acceptance.remove_peer(victim)


def _add_fresh_peer(
    population: PeerPopulation,
    acceptance: AcceptanceGraph,
    matching: Matching,
    config: ChurnConfig,
    rng: np.random.Generator,
    score_rng: np.random.Generator,
) -> None:
    new_id = population.next_id()
    peer = Peer(new_id, float(score_rng.random()), config.slots)
    existing = [pid for pid in population.ids()]
    acceptance.add_peer(peer)
    matching.add_peer(new_id)
    if not existing:
        return
    probability = min(1.0, config.expected_degree / max(1, len(existing)))
    for other in existing:
        if rng.random() < probability:
            acceptance.declare_acceptable(new_id, other)
