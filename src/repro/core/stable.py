"""Algorithm 1: centralised computation of the unique stable configuration.

With a global ranking there are no preference cycles, so by Tan's theorem a
stable b-matching exists and is unique (Section 3).  Algorithm 1 computes it
greedily: the best peer grabs the best b(p1) acceptable peers, the second
best then fills its remaining slots, and so on.  All connections made this
way are stable by immediate recurrence.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.acceptance import AcceptanceGraph
from repro.core.exceptions import validate_engine
from repro.core.matching import Matching
from repro.core.ranking import GlobalRanking

__all__ = ["stable_configuration"]


def stable_configuration(
    acceptance: AcceptanceGraph,
    ranking: Optional[GlobalRanking] = None,
    *,
    engine: str = "reference",
) -> Matching:
    """Compute the unique stable configuration of the b-matching problem.

    Parameters
    ----------
    acceptance:
        The acceptance graph (it also carries the population and slot
        budgets b(p)).
    ranking:
        The global ranking; derived from the population scores when omitted.
    engine:
        ``"reference"`` (default) runs Algorithm 1 on the dictionary
        structures below; ``"fast"`` runs the vectorized version in
        :mod:`repro.core.fast.engine`.  Both return the same matching.

    Returns
    -------
    Matching
        The unique stable configuration.

    Notes
    -----
    This is the paper's Algorithm 1.  Peers are processed best-first; each
    peer connects to its best acceptable peers that still have capacity
    left.  The run time is O(sum of acceptance degrees) after the initial
    sort of each neighborhood.
    """
    if validate_engine(engine) == "fast":
        from repro.core.fast.engine import fast_stable_configuration

        return fast_stable_configuration(acceptance, ranking)
    if ranking is None:
        ranking = GlobalRanking.from_population(acceptance.population)

    matching = Matching(acceptance)
    remaining: Dict[int, int] = {
        peer_id: acceptance.population.get(peer_id).slots
        for peer_id in acceptance.peer_ids()
    }

    for peer_id in ranking.sorted_by_rank():
        if peer_id not in remaining:
            continue
        if remaining[peer_id] <= 0:
            continue
        # Scan acceptable peers worse than peer_id, best first.  Peers better
        # than peer_id have already exhausted the pairings they wanted (any
        # pairing with peer_id would have been made when they were processed),
        # which is exactly the structure of Algorithm 1.
        my_rank = ranking.rank(peer_id)
        candidates = ranking.sorted_by_rank(acceptance.acceptable_peers(peer_id))
        for candidate in candidates:
            if remaining[peer_id] <= 0:
                break
            if ranking.rank(candidate) < my_rank:
                continue
            if remaining.get(candidate, 0) <= 0:
                continue
            if matching.is_matched(peer_id, candidate):
                continue
            matching.match(peer_id, candidate)
            remaining[peer_id] -= 1
            remaining[candidate] -= 1
    return matching
