"""Disorder distance and Mean Max Offset (MMO).

Two quantities from the paper:

* the *disorder* / configuration distance (Section 3),

  .. math::

     D(C_1, C_2) = \\frac{2}{n(n+1)} \\sum_{i=1}^{n}
        \\lVert \\sigma(C_1, i) - \\sigma(C_2, i) \\rVert

  where ``sigma(C, i)`` is the rank of the mate of peer i (``n + 1`` when i
  is unmatched).  The normalisation makes the distance between a complete
  1-matching and the empty configuration equal to 1.

* the *Mean Max Offset* (Section 4.2): the average, over peers, of the rank
  offset between a peer and its furthest mate in the collaboration graph;
  the closed form for constant b0-matching converges to ``3/4 * b0``.
"""

from __future__ import annotations

from typing import List

from repro.core.matching import Matching
from repro.core.ranking import GlobalRanking
from repro.graphs.base import UndirectedGraph

__all__ = [
    "matching_distance",
    "disorder",
    "mean_max_offset",
    "mean_max_offset_exact_constant",
    "collaboration_graph",
    "unmatched_peers",
    "match_rate",
]


def _sigma(matching: Matching, ranking: GlobalRanking, peer_id: int, unmatched_rank: int) -> List[int]:
    """Sorted mate ranks of ``peer_id``, padded with ``unmatched_rank``."""
    capacity = matching.capacity(peer_id)
    ranks = sorted(ranking.rank(mate) for mate in matching.mates(peer_id))
    ranks.extend([unmatched_rank] * (capacity - len(ranks)))
    return ranks


def matching_distance(
    first: Matching,
    second: Matching,
    ranking: GlobalRanking,
) -> float:
    """The paper's configuration distance D(C1, C2).

    For 1-matchings this is exactly the formula of Section 3: the absolute
    difference between the mate ranks of every peer (rank ``n + 1`` when
    unmatched), normalised by ``n(n+1)/2`` so that a complete matching is at
    distance 1 from the empty configuration.  For b-matchings every peer
    contributes its slot-by-slot comparison of sorted mate-rank vectors with
    the same normalisation; the paper only uses the 1-matching case, and the
    generalised value may exceed 1 when peers have many slots.
    """
    peer_ids = sorted(set(first.peer_ids()) & set(second.peer_ids()))
    if not peer_ids:
        return 0.0
    n = len(ranking)
    unmatched_rank = n + 1

    total = 0.0
    for peer_id in peer_ids:
        sigma_first = _sigma(first, ranking, peer_id, unmatched_rank)
        sigma_second = _sigma(second, ranking, peer_id, unmatched_rank)
        width = max(len(sigma_first), len(sigma_second))
        sigma_first.extend([unmatched_rank] * (width - len(sigma_first)))
        sigma_second.extend([unmatched_rank] * (width - len(sigma_second)))
        total += sum(abs(a - b) for a, b in zip(sigma_first, sigma_second))
    return total * 2.0 / (n * (n + 1))


def disorder(current: Matching, stable: Matching, ranking: GlobalRanking) -> float:
    """Distance between the current configuration and the stable one."""
    return matching_distance(current, stable, ranking)


def collaboration_graph(matching: Matching) -> UndirectedGraph:
    """The collaboration graph induced by a configuration."""
    return matching.as_graph()


def mean_max_offset(
    matching: Matching,
    ranking: GlobalRanking,
    *,
    skip_unmatched: bool = True,
) -> float:
    """Empirical Mean Max Offset of a configuration.

    For every peer, compute the largest rank offset to one of its mates in
    the collaboration graph, and average.  Peers with no mate contribute 0
    unless ``skip_unmatched`` (the default) excludes them entirely.
    """
    offsets: List[int] = []
    for peer_id in matching.peer_ids():
        mates = matching.mates(peer_id)
        if not mates:
            if not skip_unmatched:
                offsets.append(0)
            continue
        offsets.append(max(ranking.offset(peer_id, mate) for mate in mates))
    if not offsets:
        return 0.0
    return sum(offsets) / len(offsets)


def mean_max_offset_exact_constant(b0: int) -> float:
    """Closed-form MMO of constant b0-matching on a complete acceptance graph.

    Inside one (b0+1)-clique the peer at position k (1-based) has its
    furthest mate at offset ``max(k - 1, b0 + 1 - k)``; averaging gives the
    paper's expression, which tends to ``3/4 * b0`` as b0 grows.
    """
    if b0 < 0:
        raise ValueError("b0 must be non-negative")
    if b0 == 0:
        return 0.0
    size = b0 + 1
    offsets = [max(k - 1, size - k) for k in range(1, size + 1)]
    return sum(offsets) / size


def unmatched_peers(matching: Matching) -> List[int]:
    """Peers with at least one free slot and no mate at all."""
    return [
        peer_id
        for peer_id in matching.peer_ids()
        if matching.degree(peer_id) == 0
    ]


def match_rate(matching: Matching) -> float:
    """Fraction of slots that are filled (B_used / B)."""
    total_capacity = sum(matching.capacity(p) for p in matching.peer_ids())
    if total_capacity == 0:
        return 0.0
    used = sum(matching.degree(p) for p in matching.peer_ids())
    return used / total_capacity
