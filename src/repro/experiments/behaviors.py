"""Behavior-mix sweeps: stratification under adversarial populations.

The paper's stratification argument assumes obedient, homogeneous-client
peers whose only heterogeneity is upload capacity.  The behavior layer
(:mod:`repro.bittorrent.behaviors`) breaks that assumption per peer; this
driver measures what the break does to the headline statistic.  The
``behavior-sweep`` experiment runs one swarm per free-rider fraction
(seeded from one :class:`~repro.sim.parallel.SeedTree`, replications
averaged) and reports, per fraction:

* the overall stratification index (every leecher ranked),
* the index restricted to the ``standard`` peers (does stratification
  among the obedient survive the adversaries?),
* per-behavior-class completion fractions and mean download rates / share
  ratios (do free-riders actually download slower, as Tit-for-Tat
  predicts?).

Point functions take only picklable primitives (the mix travels as a spec
*string*), so sweeps parallelize across processes and hit the on-disk
result cache like every other experiment.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.bittorrent.analysis import behavior_report, behavior_stratification
from repro.bittorrent.swarm import SwarmConfig, SwarmSimulator
from repro.sim.parallel import CacheLike, SeedTree, SweepTask, run_sweep

__all__ = ["behavior_sweep_experiment"]

DEFAULT_FRACTIONS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)


def _behavior_point(
    leechers: int,
    rounds: int,
    piece_count: int,
    seed: int,
    engine: str,
    behavior_mix: str,
) -> Dict[str, float]:
    """One seeded swarm under one behavior mix -- a self-contained sweep task."""
    rng = np.random.default_rng(seed)
    bandwidths = np.exp(rng.uniform(np.log(100.0), np.log(2000.0), leechers))
    config = SwarmConfig(
        leechers=leechers,
        seeds=2,
        piece_count=piece_count,
        rounds=rounds,
        start_completion=0.25,
        seed_upload_kbps=2000.0,
        behaviors=behavior_mix,
    )
    result = SwarmSimulator(
        config, bandwidths=bandwidths, seed=seed, engine=engine
    ).run()
    strat = behavior_stratification(result)
    metrics = {
        "stratification_index": strat["overall"],
        "standard_stratification_index": strat["standard_only"],
        "completed": float(result.completed),
        "rounds_run": float(result.rounds_run),
    }
    for name, row in behavior_report(result).items():
        metrics[f"{name}_peers"] = row["peers"]
        metrics[f"{name}_completion_fraction"] = row["completion_fraction"]
        metrics[f"{name}_mean_download_rate_kbps"] = row["mean_download_rate_kbps"]
        metrics[f"{name}_mean_share_ratio"] = row["mean_share_ratio"]
    return metrics


def behavior_sweep_experiment(
    *,
    leechers: int = 40,
    rounds: int = 80,
    piece_count: int = 600,
    seed: int = 0,
    engine: str = "reference",
    behavior: str = "free_rider",
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    repetitions: int = 1,
    workers: int = 1,
    cache: CacheLike = None,
) -> Dict[str, Dict[str, np.ndarray]]:
    """Stratification index vs adversarial-peer fraction.

    For each fraction ``f`` the swarm runs with the mix ``"{behavior}:f"``
    (default: free-riders with capped upload); ``f = 0`` is the obedient
    baseline.  Replication ``0`` keeps the root seed, further replications
    draw theirs from the :class:`~repro.sim.parallel.SeedTree` -- the same
    convention as ``swarm_stratification_experiment`` -- and the reported
    curves are across-replication means.  The returned mapping is
    ``fractions`` plus one array per metric, aligned with the fraction
    axis; per-class columns (``standard_*``, ``{behavior}_*``) expose how
    each population fares as the adversaries multiply.

    Works on either engine; ``engine="fast"`` is bit-identical and is what
    makes paper-scale populations practical.
    """
    if repetitions <= 0:
        raise ValueError("repetitions must be positive")
    cleaned = sorted({float(f) for f in fractions})
    if not cleaned:
        raise ValueError("need at least one fraction")
    if cleaned[0] < 0.0 or cleaned[-1] > 1.0:
        raise ValueError("fractions must lie in [0, 1]")

    tree = SeedTree(seed)
    seeds = [seed] + [
        tree.child("swarm-replication", k) for k in range(1, repetitions)
    ]
    tasks = []
    for fraction in cleaned:
        mix = "standard:1" if fraction == 0.0 else f"{behavior}:{fraction}"
        for k, task_seed in enumerate(seeds):
            tasks.append(
                SweepTask(
                    _behavior_point,
                    dict(
                        leechers=leechers,
                        rounds=rounds,
                        piece_count=piece_count,
                        seed=task_seed,
                        engine=engine,
                        behavior_mix=mix,
                    ),
                    label=f"behavior#{behavior}@{fraction:g}rep{k}",
                )
            )
    outputs = run_sweep(tasks, workers=workers, cache=cache)

    curves: Dict[str, list] = {}
    for index in range(len(cleaned)):
        replicates = outputs[index * repetitions : (index + 1) * repetitions]
        keys = sorted({key for out in replicates for key in out})
        for key in keys:
            values = [out[key] for out in replicates if key in out]
            curves.setdefault(key, [np.nan] * len(cleaned))[index] = float(
                np.mean(values)
            )
    table: Dict[str, np.ndarray] = {
        "fractions": np.asarray(cleaned, dtype=float)
    }
    for key in sorted(curves):
        table[key] = np.asarray(curves[key], dtype=float)
    return {"curves": table}
