"""Resilience sweeps: graceful degradation under tracker outages.

The fault sweeps (:mod:`repro.experiments.faults`) measure how badly an
unreliable substrate hurts a *defenseless* swarm; this driver measures how
much of the damage the client-side defenses of
:mod:`repro.bittorrent.resilience` buy back.  The ``resilience-sweep``
experiment runs a small grid -- one swarm per (resilience level, outage
duration) -- and reports per level a degradation curve of completion
counts, completion times and the stratification index vs the outage
duration, so "off" vs "failover" vs "full" can be read off side by side.

Point functions take only picklable primitives (both the fault schedule
and the resilience policy travel as spec *strings*), so sweeps
parallelize across processes and hit the on-disk result cache like every
other experiment.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.bittorrent.resilience import make_resilience
from repro.bittorrent.swarm import (
    SwarmConfig,
    SwarmSimulator,
    stratification_index,
)
from repro.sim.parallel import CacheLike, SeedTree, SweepTask, run_sweep

__all__ = ["resilience_sweep_experiment"]

DEFAULT_LEVELS = ("off", "failover", "full")
DEFAULT_OUTAGES = (0, 2, 4, 8)


def _mean_completion_round(result) -> float:
    """Across completed leechers, the mean completion round (nan if none)."""
    rounds = [
        peer.completed_round
        for peer in result.peers.values()
        if not peer.is_seed and peer.completed_round is not None
    ]
    return float(np.mean(rounds)) if rounds else float("nan")


def _resilience_point(
    leechers: int,
    rounds: int,
    piece_count: int,
    seed: int,
    engine: str,
    scenario: str,
    faults: str,
    resilience: str,
) -> Dict[str, float]:
    """One seeded swarm under one (faults, resilience) pair."""
    rng = np.random.default_rng(seed)
    bandwidths = np.exp(rng.uniform(np.log(100.0), np.log(2000.0), leechers))
    config = SwarmConfig(
        leechers=leechers,
        seeds=2,
        piece_count=piece_count,
        rounds=rounds,
        start_completion=0.25,
        seed_upload_kbps=2000.0,
        faults=faults or None,
        resilience=resilience if resilience != "off" else None,
    )
    result = SwarmSimulator(
        config, bandwidths=bandwidths, seed=seed, engine=engine,
        scenario=scenario or None,
    ).run()
    stats = result.resilience
    return {
        "stratification_index": stratification_index(result),
        "completed": float(result.completed),
        "mean_completion_round": _mean_completion_round(result),
        "rounds_run": float(result.rounds_run),
        "failover_announces": float(stats.failover_announces if stats else 0),
        "pex_introductions": float(stats.pex_introductions if stats else 0),
        "pex_bootstraps": float(stats.pex_bootstraps if stats else 0),
        "evictions": float(stats.evictions if stats else 0),
    }


def resilience_sweep_experiment(
    *,
    leechers: int = 40,
    rounds: int = 80,
    piece_count: int = 600,
    seed: int = 0,
    engine: str = "reference",
    scenario: str = "poisson",
    levels: Sequence[str] = DEFAULT_LEVELS,
    outages: Sequence[int] = DEFAULT_OUTAGES,
    outage_start: int = 10,
    extra_faults: str = "",
    repetitions: int = 1,
    workers: int = 1,
    cache: CacheLike = None,
) -> Dict[str, Dict[str, np.ndarray]]:
    """Degradation curves per resilience level vs tracker-outage duration.

    For each ``level`` (a resilience preset or spec -- ``"off"`` runs the
    defenseless default) and each duration ``d`` in ``outages`` the swarm
    runs with the fault spec ``"outage:{outage_start}+{d}/all"`` (``d = 0``
    is the fault-free baseline).  Targeting *all* replicas makes the
    outage total for every level, so the curves isolate what PEX gossip
    and eviction buy during the blackout; failover's advantage under
    *partial* outages is covered by the benchmark and the test suite
    instead, since it needs per-replica windows.  ``extra_faults``
    appends further comma-separated events (e.g. ``"crash:5@12~6"``) to
    every faulty point.  Seeding follows the other swarm sweeps: one
    :class:`~repro.sim.parallel.SeedTree`, replication ``0`` keeps the
    root seed, curves are across-replication means.  Works on either
    engine; ``engine="fast"`` is bit-identical.
    """
    if repetitions <= 0:
        raise ValueError("repetitions must be positive")
    if outage_start < 1:
        raise ValueError("outage_start must be >= 1")
    cleaned = sorted({int(d) for d in outages})
    if not cleaned:
        raise ValueError("need at least one outage duration")
    if cleaned[0] < 0:
        raise ValueError("outage durations cannot be negative")
    if not levels:
        raise ValueError("need at least one resilience level")
    for level in levels:
        if level != "off":
            make_resilience(level)  # validate early, before any sweep work

    tree = SeedTree(seed)
    seeds = [seed] + [
        tree.child("swarm-replication", k) for k in range(1, repetitions)
    ]
    tasks = []
    for level in levels:
        for duration in cleaned:
            parts = (
                [] if duration == 0 else [f"outage:{outage_start}+{duration}/all"]
            )
            if extra_faults:
                parts.append(extra_faults)
            spec = ",".join(parts)
            for k, task_seed in enumerate(seeds):
                tasks.append(
                    SweepTask(
                        _resilience_point,
                        dict(
                            leechers=leechers,
                            rounds=rounds,
                            piece_count=piece_count,
                            seed=task_seed,
                            engine=engine,
                            scenario=scenario,
                            faults=spec,
                            resilience=level,
                        ),
                        label=f"resilience#{level}outage{duration}rep{k}",
                    )
                )
    outputs = run_sweep(tasks, workers=workers, cache=cache)

    keys = (
        "stratification_index",
        "completed",
        "mean_completion_round",
        "rounds_run",
        "failover_announces",
        "pex_introductions",
        "pex_bootstraps",
        "evictions",
    )
    per_duration = len(cleaned) * repetitions
    report: Dict[str, Dict[str, np.ndarray]] = {}
    for li, level in enumerate(levels):
        block = outputs[li * per_duration : (li + 1) * per_duration]
        curves: Dict[str, List[float]] = {key: [] for key in keys}
        for index in range(len(cleaned)):
            replicates = block[index * repetitions : (index + 1) * repetitions]
            for key in curves:
                curves[key].append(
                    float(np.mean([out[key] for out in replicates]))
                )
        table: Dict[str, np.ndarray] = {
            "outage_rounds": np.asarray(cleaned, dtype=float)
        }
        for key in sorted(curves):
            table[key] = np.asarray(curves[key], dtype=float)
        report[level] = table
    return report
