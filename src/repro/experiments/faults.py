"""Fault sweeps: stratification under infrastructure failures.

The paper's swarm model (and every sweep so far) assumes a perfectly
reliable substrate: the tracker always answers, transfers always land and
peers only leave through the scenario's departure rule.  The fault layer
(:mod:`repro.bittorrent.faults`) breaks those assumptions; this driver
measures whether the headline statistic survives the break.  The
``fault-sweep`` experiment runs one swarm per tracker-outage duration
(plus any extra fault events folded into the spec), seeded from one
:class:`~repro.sim.parallel.SeedTree` with replications averaged, and
reports per duration the stratification index, completion counts and
rounds run.

Point functions take only picklable primitives (the schedule travels as a
spec *string*), so sweeps parallelize across processes and hit the
on-disk result cache like every other experiment.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.bittorrent.swarm import (
    SwarmConfig,
    SwarmSimulator,
    stratification_index,
)
from repro.sim.parallel import CacheLike, SeedTree, SweepTask, run_sweep

__all__ = ["fault_sweep_experiment"]

DEFAULT_OUTAGES = (0, 2, 4, 8)


def _fault_point(
    leechers: int,
    rounds: int,
    piece_count: int,
    seed: int,
    engine: str,
    scenario: str,
    faults: str,
) -> Dict[str, float]:
    """One seeded swarm under one fault schedule -- a self-contained task."""
    rng = np.random.default_rng(seed)
    bandwidths = np.exp(rng.uniform(np.log(100.0), np.log(2000.0), leechers))
    config = SwarmConfig(
        leechers=leechers,
        seeds=2,
        piece_count=piece_count,
        rounds=rounds,
        start_completion=0.25,
        seed_upload_kbps=2000.0,
        faults=faults or None,
    )
    result = SwarmSimulator(
        config, bandwidths=bandwidths, seed=seed, engine=engine,
        scenario=scenario or None,
    ).run()
    return {
        "stratification_index": stratification_index(result),
        "completed": float(result.completed),
        "arrivals": float(result.arrivals),
        "departures": float(result.departures),
        "rounds_run": float(result.rounds_run),
    }


def fault_sweep_experiment(
    *,
    leechers: int = 40,
    rounds: int = 80,
    piece_count: int = 600,
    seed: int = 0,
    engine: str = "reference",
    scenario: str = "poisson",
    outages: Sequence[int] = DEFAULT_OUTAGES,
    outage_start: int = 10,
    extra_faults: str = "",
    repetitions: int = 1,
    workers: int = 1,
    cache: CacheLike = None,
) -> Dict[str, Dict[str, np.ndarray]]:
    """Stratification index vs tracker-outage duration.

    For each duration ``d`` in ``outages`` the swarm runs with the fault
    spec ``"outage:{outage_start}+{d}"`` (``d = 0`` is the reliable
    baseline -- no event at all).  The default scenario is ``"poisson"``:
    a tracker outage only changes a swarm's *dynamics* when peers arrive
    (their announces queue and back off) or crash during it, so the
    membership must churn for the outage axis to measure anything --
    under a static population the outage merely defers completion
    notifications.  ``extra_faults`` appends further
    comma-separated events (e.g. ``"loss:0.02"``) to *every* point, so
    the outage axis can be studied on top of a lossy or churning
    substrate.  Replication ``0`` keeps the root seed, further
    replications draw theirs from the
    :class:`~repro.sim.parallel.SeedTree` -- the same convention as the
    other swarm sweeps -- and the reported curves are
    across-replication means.  Works on either engine; ``engine="fast"``
    is bit-identical and is what makes paper-scale populations practical.
    """
    if repetitions <= 0:
        raise ValueError("repetitions must be positive")
    if outage_start < 1:
        raise ValueError("outage_start must be >= 1")
    cleaned = sorted({int(d) for d in outages})
    if not cleaned:
        raise ValueError("need at least one outage duration")
    if cleaned[0] < 0:
        raise ValueError("outage durations cannot be negative")

    tree = SeedTree(seed)
    seeds = [seed] + [
        tree.child("swarm-replication", k) for k in range(1, repetitions)
    ]
    tasks = []
    for duration in cleaned:
        parts = [] if duration == 0 else [f"outage:{outage_start}+{duration}"]
        if extra_faults:
            parts.append(extra_faults)
        spec = ",".join(parts)
        for k, task_seed in enumerate(seeds):
            tasks.append(
                SweepTask(
                    _fault_point,
                    dict(
                        leechers=leechers,
                        rounds=rounds,
                        piece_count=piece_count,
                        seed=task_seed,
                        engine=engine,
                        scenario=scenario,
                        faults=spec,
                    ),
                    label=f"fault#outage{duration}rep{k}",
                )
            )
    outputs = run_sweep(tasks, workers=workers, cache=cache)

    curves: Dict[str, List[float]] = {
        key: []
        for key in (
            "stratification_index",
            "completed",
            "arrivals",
            "departures",
            "rounds_run",
        )
    }
    for index in range(len(cleaned)):
        replicates = outputs[index * repetitions : (index + 1) * repetitions]
        for key in curves:
            curves[key].append(float(np.mean([out[key] for out in replicates])))
    table: Dict[str, np.ndarray] = {
        "outage_rounds": np.asarray(cleaned, dtype=float)
    }
    for key in sorted(curves):
        table[key] = np.asarray(curves[key], dtype=float)
    return {"curves": table}
