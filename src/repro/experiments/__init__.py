"""Figure / table reproduction drivers shared by benchmarks, examples and the CLI."""

from repro.experiments.behaviors import behavior_sweep_experiment
from repro.experiments.faults import fault_sweep_experiment
from repro.experiments.figures import (
    figure1_convergence,
    figure2_peer_removal,
    figure3_churn,
    figure4_figure5_clusters,
    figure6_phase_transition,
    figure7_approximation_error,
    figure8_neighbor_distributions,
    figure9_validation,
    figure10_bandwidth_cdf,
    figure11_efficiency,
    scenario_stratification_timeline,
    swarm_stratification_experiment,
    table1_clustering,
)
from repro.experiments.resilience import resilience_sweep_experiment
from repro.experiments.telemetry import telemetry_experiment

__all__ = [
    "behavior_sweep_experiment",
    "fault_sweep_experiment",
    "figure1_convergence",
    "figure2_peer_removal",
    "figure3_churn",
    "figure4_figure5_clusters",
    "figure6_phase_transition",
    "figure7_approximation_error",
    "figure8_neighbor_distributions",
    "figure9_validation",
    "figure10_bandwidth_cdf",
    "figure11_efficiency",
    "scenario_stratification_timeline",
    "resilience_sweep_experiment",
    "swarm_stratification_experiment",
    "table1_clustering",
    "telemetry_experiment",
]
