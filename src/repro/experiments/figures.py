"""Drivers reproducing every figure and table of the paper.

Each ``figure*`` / ``table1`` function runs the corresponding experiment at
(configurable) paper parameters and returns plain data structures --
:class:`repro.sim.results.ResultTable` or dictionaries of numpy arrays --
that the benchmarks, the examples and the CLI all share.  Parameters default
to values that finish in seconds; the paper-scale settings are documented in
each docstring and in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.analytical.distributions import MateDistribution
from repro.analytical.exact_small import figure7_exact_values, figure7_independent_values
from repro.analytical.one_matching import independent_one_matching
from repro.analytical.validation import validate_independent_model
from repro.bittorrent.bandwidth import saroiu_like_distribution
from repro.bittorrent.efficiency import analytic_efficiency, efficiency_observations
from repro.bittorrent.analysis import observed_stratification_index
from repro.bittorrent.scenarios import resolve_scenario
from repro.bittorrent.swarm import SwarmConfig, SwarmSimulator, stratification_index
from repro.bittorrent.telemetry import ObserverConfig
from repro.core.churn import ChurnConfig, simulate_churn
from repro.core.dynamics import simulate_convergence, simulate_peer_removal
from repro.sim.parallel import CacheLike, SeedTree, SweepTask, run_sweep
from repro.sim.results import ResultTable
from repro.stratification.clustering import analyze_complete_matching
from repro.stratification.bvalues import constant_slots
from repro.stratification.phase_transition import sigma_sweep, table1 as _table1

__all__ = [
    "figure1_convergence",
    "figure2_peer_removal",
    "figure3_churn",
    "figure4_figure5_clusters",
    "figure6_phase_transition",
    "table1_clustering",
    "figure7_approximation_error",
    "figure8_neighbor_distributions",
    "figure9_validation",
    "figure10_bandwidth_cdf",
    "figure11_efficiency",
    "swarm_stratification_experiment",
    "scenario_stratification_timeline",
]


def _figure1_point(
    n: int, d: float, seed: int, max_base_units: float, engine: str
) -> Dict[str, np.ndarray]:
    """One Figure 1 trajectory -- a self-contained sweep task."""
    result = simulate_convergence(
        n, d, seed=seed, max_base_units=max_base_units, engine=engine
    )
    times, values = result.trajectory.as_arrays()
    return {
        "initiatives_per_peer": times,
        "disorder": values,
        "time_to_converge": np.asarray(
            [result.time_to_converge if result.time_to_converge is not None else np.nan]
        ),
    }


def figure1_convergence(
    parameters: Sequence[tuple] = ((100, 50), (1000, 10), (1000, 50)),
    *,
    seed: int = 0,
    max_base_units: float = 40.0,
    engine: str = "reference",
    workers: int = 1,
    cache: CacheLike = None,
) -> Dict[str, Dict[str, np.ndarray]]:
    """Figure 1: disorder trajectories from the empty configuration.

    Paper parameters: 1-matching on G(n, d) for (n, d) in
    {(100, 50), (1000, 10), (1000, 50)}, best-mate initiatives.  Pass
    ``engine="fast"`` to run paper-scale (or larger) systems on the
    vectorized backend; trajectories are identical either way.  ``workers``
    fans the (n, d) points out across processes and ``cache`` replays
    previously computed points, both bit-identically.
    """
    tasks = [
        SweepTask(
            _figure1_point,
            dict(n=n, d=d, seed=seed + index, max_base_units=max_base_units, engine=engine),
            label=f"figure1[n={n},d={d}]",
        )
        for index, (n, d) in enumerate(parameters)
    ]
    outputs = run_sweep(tasks, workers=workers, cache=cache)
    return {
        f"n={n},d={d}": output for (n, d), output in zip(parameters, outputs)
    }


def _figure2_point(
    n: int, expected_degree: float, peer: int, seed: int, max_base_units: float, engine: str
) -> Dict[str, np.ndarray]:
    """One Figure 2 removal experiment -- a self-contained sweep task."""
    result = simulate_peer_removal(
        n, expected_degree, peer, seed=seed, max_base_units=max_base_units, engine=engine
    )
    times, values = result.trajectory.as_arrays()
    return {
        "initiatives_per_peer": times,
        "disorder": values,
        "max_disorder": np.asarray([values.max() if values.size else 0.0]),
    }


def figure2_peer_removal(
    removed_peers: Sequence[int] = (1, 100, 300, 600),
    *,
    n: int = 1000,
    expected_degree: float = 10.0,
    seed: int = 0,
    max_base_units: float = 10.0,
    engine: str = "reference",
    workers: int = 1,
    cache: CacheLike = None,
) -> Dict[str, Dict[str, np.ndarray]]:
    """Figure 2: re-convergence after removing one peer from the stable state.

    Paper parameters: 1000 peers, 1-matching, 10 neighbors per peer, removed
    peer rank in {1, 100, 300, 600}.
    """
    tasks = [
        SweepTask(
            _figure2_point,
            dict(
                n=n,
                expected_degree=expected_degree,
                peer=peer,
                seed=seed + index,
                max_base_units=max_base_units,
                engine=engine,
            ),
            label=f"figure2[peer={peer}]",
        )
        for index, peer in enumerate(removed_peers)
    ]
    outputs = run_sweep(tasks, workers=workers, cache=cache)
    return {
        f"peer {peer} removed": output
        for peer, output in zip(removed_peers, outputs)
    }


def _figure3_point(
    n: int,
    expected_degree: float,
    churn_rate: float,
    seed: int,
    max_base_units: float,
    engine: str,
) -> Dict[str, np.ndarray]:
    """One Figure 3 churn trajectory -- a self-contained sweep task."""
    config = ChurnConfig(
        n=n,
        expected_degree=expected_degree,
        churn_rate=churn_rate,
        max_base_units=max_base_units,
        engine=engine,
    )
    result = simulate_churn(config, seed=seed)
    times, values = result.trajectory.as_arrays()
    return {
        "initiatives_per_peer": times,
        "disorder": values,
        "mean_disorder": np.asarray([result.mean_disorder]),
        "tail_disorder": np.asarray([result.trajectory.tail_mean(0.25)]),
    }


def figure3_churn(
    churn_rates: Sequence[float] = (0.0, 0.0005, 0.003, 0.01, 0.03),
    *,
    n: int = 1000,
    expected_degree: float = 10.0,
    seed: int = 0,
    max_base_units: float = 20.0,
    engine: str = "reference",
    workers: int = 1,
    cache: CacheLike = None,
) -> Dict[str, Dict[str, np.ndarray]]:
    """Figure 3: disorder under churn, starting from the empty configuration.

    Paper parameters: 1000 peers, 1-matching, 10 neighbors per peer, churn
    in {0, 0.5, 3, 10, 30} events per 1000 initiatives.
    """
    tasks = [
        SweepTask(
            _figure3_point,
            dict(
                n=n,
                expected_degree=expected_degree,
                churn_rate=rate,
                seed=seed + index,
                max_base_units=max_base_units,
                engine=engine,
            ),
            label=f"figure3[churn={rate:g}]",
        )
        for index, rate in enumerate(churn_rates)
    ]
    outputs = run_sweep(tasks, workers=workers, cache=cache)
    series: Dict[str, Dict[str, np.ndarray]] = {}
    for rate, output in zip(churn_rates, outputs):
        label = "no churn" if rate == 0 else f"churn={rate * 1000:g}/1000"
        series[label] = output
    return series


def figure4_figure5_clusters(b0: int = 2, n: int = 12) -> ResultTable:
    """Figures 4 and 5: clustering of constant b-matching and the extra edge.

    Constant b0-matching on a complete graph yields clusters of size b0+1;
    granting a single extra slot to the best peer merges everything into one
    connected component.
    """
    table = ResultTable(
        title=f"Figures 4-5: complete graph, n={n}, b0={b0}",
        columns=["configuration", "clusters", "largest_cluster", "connected"],
    )
    constant = analyze_complete_matching(constant_slots(n, b0))
    table.add_row(
        configuration=f"constant b0={b0}",
        clusters=len(constant.cluster_sizes),
        largest_cluster=constant.largest_cluster,
        connected=constant.connected,
    )
    slots = constant_slots(n, b0)
    slots[0] += 1  # one extra connection for the best peer (Figure 5)
    extra = analyze_complete_matching(slots)
    table.add_row(
        configuration=f"b0={b0} + one extra slot for peer 1",
        clusters=len(extra.cluster_sizes),
        largest_cluster=extra.largest_cluster,
        connected=extra.connected,
    )
    return table


def figure6_phase_transition(
    sigmas: Optional[Sequence[float]] = None,
    *,
    b_mean: float = 6.0,
    n: int = 20000,
    repetitions: int = 2,
    seed: int = 0,
    engine: str = "reference",
    workers: int = 1,
    cache: CacheLike = None,
) -> ResultTable:
    """Figure 6: mean cluster size and MMO as a function of sigma (b_mean = 6).

    Every (sigma, repetition) replication is an independent sweep task:
    ``workers=N`` runs them N at a time and ``cache`` replays computed
    points, with a bit-identical table either way.
    """
    if sigmas is None:
        sigmas = [0.0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5, 0.75, 1.0, 1.5, 2.0]
    points = sigma_sweep(
        n,
        b_mean,
        list(sigmas),
        repetitions=repetitions,
        seed=seed,
        engine=engine,
        workers=workers,
        cache=cache,
    )
    table = ResultTable(
        title=f"Figure 6: N({b_mean:g}, sigma) matching on a complete graph (n={n})",
        columns=["sigma", "mean_cluster_size", "mean_max_offset", "largest_cluster"],
    )
    for point in points:
        table.add_row(
            sigma=point.sigma,
            mean_cluster_size=point.mean_cluster_size,
            mean_max_offset=point.mean_max_offset,
            largest_cluster=point.largest_cluster,
        )
    return table


def table1_clustering(
    b_values: Sequence[int] = (2, 3, 4, 5, 6, 7),
    *,
    sigma: float = 0.2,
    n: Optional[int] = None,
    repetitions: int = 2,
    seed: int = 0,
    engine: str = "reference",
    workers: int = 1,
    cache: CacheLike = None,
) -> ResultTable:
    """Table 1: cluster size and MMO, constant vs N(b, 0.2) matching."""
    rows = _table1(
        b_values,
        sigma=sigma,
        n=n,
        repetitions=repetitions,
        seed=seed,
        engine=engine,
        workers=workers,
        cache=cache,
    )
    table = ResultTable(
        title="Table 1: clustering and stratification in a complete knowledge graph",
        columns=[
            "b",
            "constant_cluster_size",
            "constant_mmo",
            "normal_cluster_size",
            "normal_mmo",
            "n",
        ],
    )
    for row in rows:
        table.add_row(**row)
    return table


def figure7_approximation_error(
    probabilities: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
) -> ResultTable:
    """Figure 7: exact vs independent-model probabilities for n = 3."""
    table = ResultTable(
        title="Figure 7: approximation error of the independence assumption (n=3)",
        columns=["p", "pair", "exact", "independent", "error"],
    )
    for p in probabilities:
        exact = figure7_exact_values(p)
        independent = figure7_independent_values(p)
        for pair in sorted(exact):
            table.add_row(
                p=p,
                pair=f"{pair[0]}-{pair[1]}",
                exact=exact[pair],
                independent=independent[pair],
                error=abs(independent[pair] - exact[pair]),
            )
    return table


def figure8_neighbor_distributions(
    peers: Optional[Sequence[int]] = None,
    *,
    n: int = 5000,
    p: float = 0.005,
) -> Dict[int, Dict[str, float]]:
    """Figure 8: mate-rank distributions for a good, central and bad peer.

    Paper parameters: n = 5000, p = 0.5%, peers 200 / 2500 / 4800.  When
    ``peers`` is omitted the same relative positions (4%, 50%, 96% of the
    ranking) are used, so the experiment scales with ``n``.  Returns, per
    observed peer, the summary statistics that characterise the three
    regimes (asymmetry for the good peer, pure shift for central peers,
    truncation for bad peers).
    """
    if peers is None:
        peers = (max(1, round(0.04 * n)), max(1, round(0.5 * n)), max(1, round(0.96 * n)))
    model = independent_one_matching(n, p, rows=list(peers))
    out: Dict[int, Dict[str, float]] = {}
    for peer in peers:
        dist = MateDistribution(peer, model.row(peer))
        out[peer] = {
            "mass": dist.mass,
            "unmatched_probability": dist.unmatched_probability,
            "mean_offset": dist.mean_offset(),
            "mode_rank": float(dist.mode_rank()),
            "asymmetry": dist.asymmetry(),
            "std_offset": dist.std_offset(),
        }
    return out


def figure9_validation(
    *,
    n: int = 1500,
    p: float = 0.02,
    b0: int = 2,
    peer: Optional[int] = None,
    samples: int = 120,
    seed: int = 0,
) -> ResultTable:
    """Figure 9: Algorithm 3 vs Monte-Carlo for the 2-matching choice distributions.

    Paper parameters: n = 5000, p = 1%, peer 3000, one million samples (a
    multi-week run); the defaults here keep the same average degree regime
    (d = 30) at a size that completes in seconds.  Pass ``n=5000, p=0.01,
    peer=3000, samples=...`` to reproduce the paper-scale comparison.
    """
    observed_peer = peer if peer is not None else int(0.6 * n)
    report = validate_independent_model(
        n, p, b0, observed_peer, samples=samples, seed=seed
    )
    table = ResultTable(
        title=(
            f"Figure 9: independent b0-matching vs Monte-Carlo "
            f"(n={n}, p={p}, b0={b0}, peer={observed_peer}, samples={samples})"
        ),
        columns=[
            "choice",
            "total_variation",
            "mean_rank_model",
            "mean_rank_simulation",
        ],
    )
    for choice in sorted(report.total_variation):
        table.add_row(
            choice=choice,
            total_variation=report.total_variation[choice],
            mean_rank_model=report.mean_rank_model[choice],
            mean_rank_simulation=report.mean_rank_simulation[choice],
        )
    return table


def figure10_bandwidth_cdf(points: int = 30) -> ResultTable:
    """Figure 10: percentage of hosts below each upstream capacity."""
    distribution = saroiu_like_distribution()
    curve = distribution.figure10_curve(points=points)
    table = ResultTable(
        title="Figure 10: upstream bandwidth distribution (Saroiu-style mixture)",
        columns=["upstream_kbps", "percentage_of_hosts"],
    )
    for x, y in zip(curve["upstream_kbps"], curve["percentage_of_hosts"]):
        table.add_row(upstream_kbps=float(x), percentage_of_hosts=float(y))
    return table


def figure11_efficiency(
    *,
    n: int = 800,
    b0: int = 3,
    expected_degree: float = 20.0,
    seed: int = 0,
) -> Dict[str, object]:
    """Figure 11: expected D/U share ratio vs upload bandwidth per slot.

    Paper parameters: b0 = 3 (the default 4 slots minus the optimistic one)
    and d = 20 acceptable peers, fed with the Saroiu-style distribution.
    """
    curve = analytic_efficiency(
        n=n, b0=b0, expected_degree=expected_degree, seed=seed
    )
    observations = efficiency_observations(curve)
    return {
        "upload_per_slot": curve.upload_per_slot,
        "efficiency": curve.efficiency,
        "expected_download": curve.expected_download,
        "observations": observations,
    }


def _swarm_point(
    leechers: int,
    rounds: int,
    piece_count: int,
    seed: int,
    engine: str,
    scenario: "str | None",
    observe: bool = False,
    scrape_interval: int = 1,
    behavior_mix: "str | None" = None,
    faults: "str | None" = None,
    resilience: "str | None" = None,
) -> Dict[str, float]:
    """One seeded swarm replication -- a self-contained sweep task.

    ``behavior_mix``, ``faults`` and ``resilience`` stay preset / spec
    *strings* (not resolved objects) so the task kwargs remain picklable
    primitives for the sweep cache key.
    """
    rng = np.random.default_rng(seed)
    bandwidths = np.exp(rng.uniform(np.log(100.0), np.log(2000.0), leechers))
    config = SwarmConfig(
        leechers=leechers,
        seeds=2,
        piece_count=piece_count,
        rounds=rounds,
        start_completion=0.25,
        seed_upload_kbps=2000.0,
        behaviors=behavior_mix,
        faults=faults,
        resilience=resilience,
    )
    observer = (
        ObserverConfig(scrape_interval=scrape_interval, poll_interval=scrape_interval)
        if observe
        else None
    )
    simulator = SwarmSimulator(
        config,
        bandwidths=bandwidths,
        seed=seed,
        engine=engine,
        scenario=scenario,
        observer=observer,
    )
    result = simulator.run()
    rates = result.download_rates()
    ids = sorted(rates)
    uploads = {peer.peer_id: peer.upload_kbps for peer in result.leechers()}
    correlation = float(
        np.corrcoef([uploads[i] for i in ids], [rates[i] for i in ids])[0, 1]
    )
    metrics = {
        "stratification_index": stratification_index(result),
        "volume_stratification_index": stratification_index(result, use_tft_pairs=False),
        "upload_download_correlation": correlation,
        "completed": float(result.completed),
        "rounds_run": float(result.rounds_run),
        "arrivals": float(result.arrivals),
        "departures": float(result.departures),
        "final_swarm_size": float(len(result.present_peers())),
    }
    if observer is not None:
        observed = result.observed
        metrics.update(
            {
                "reported_downloads": float(observed.reported_downloads()),
                "confirmed_downloads": float(observed.confirmed_downloads()),
                "peers_observed": float(observed.peers_observed),
                "observed_stratification_index": observed_stratification_index(
                    observed
                ),
            }
        )
    return metrics


def swarm_stratification_experiment(
    *,
    leechers: int = 40,
    rounds: int = 80,
    piece_count: int = 600,
    seed: int = 0,
    engine: str = "reference",
    scenario: "str | None" = None,
    observe: bool = False,
    scrape_interval: int = 1,
    behavior_mix: "str | None" = None,
    faults: "str | None" = None,
    resilience: "str | None" = None,
    repetitions: int = 1,
    workers: int = 1,
    cache: CacheLike = None,
) -> Dict[str, float]:
    """End-to-end check that a TFT swarm stratifies by bandwidth (Section 6).

    Runs the full swarm simulator with a moderately heterogeneous bandwidth
    population and reports the reciprocal-TFT stratification index together
    with the correlation between upload capacity and achieved download rate.
    Pass ``engine="fast"`` (bit-identical results) for thousands of
    leechers and beyond, and ``scenario`` (a preset name or a
    :class:`~repro.bittorrent.scenarios.ScenarioSchedule`) to measure the
    same statistics on a churning swarm instead of the paper's assumed
    fixed post-flash-crowd population.

    ``repetitions > 1`` turns the single run into a Monte-Carlo estimate:
    repetition 0 keeps the historical seed (so the default is unchanged);
    further repetitions draw their seeds from the
    :class:`~repro.sim.parallel.SeedTree` rooted at ``seed``, run ``workers``
    at a time, and the returned metrics are the across-repetition means
    (plus ``"repetitions"``).

    ``observe=True`` attaches a
    :class:`~repro.bittorrent.telemetry.SwarmObserver` scraping and
    polling every ``scrape_interval`` rounds (results stay bit-identical)
    and adds the observed metrics -- reported / confirmed downloads,
    peers observed and the observed stratification index.

    ``behavior_mix`` (a preset name or ``"name:frac,..."`` spec from
    :func:`~repro.bittorrent.behaviors.make_behavior_mix`) assigns
    adversarial / heterogeneous client behaviors to the population; the
    dedicated ``behavior-sweep`` experiment varies the free-rider fraction
    systematically.

    ``faults`` (a preset name or spec string from
    :func:`~repro.bittorrent.faults.make_faults`) schedules tracker
    outages, transfer loss, peer crashes and partitions; the dedicated
    ``fault-sweep`` experiment varies the outage duration systematically.

    ``resilience`` (a preset name or spec string from
    :func:`~repro.bittorrent.resilience.make_resilience`) arms the
    client-side defenses -- multi-tracker failover, PEX gossip and
    dead-neighbor eviction; the dedicated ``resilience-sweep`` experiment
    compares the defense levels systematically.
    """
    if repetitions <= 0:
        raise ValueError("repetitions must be positive")
    tree = SeedTree(seed)
    seeds = [seed] + [tree.child("swarm-replication", k) for k in range(1, repetitions)]
    tasks = [
        SweepTask(
            _swarm_point,
            dict(
                leechers=leechers,
                rounds=rounds,
                piece_count=piece_count,
                seed=task_seed,
                engine=engine,
                scenario=scenario,
                observe=observe,
                scrape_interval=scrape_interval,
                behavior_mix=behavior_mix,
                faults=faults,
                resilience=resilience,
            ),
            label=f"swarm#rep{k}",
        )
        for k, task_seed in enumerate(seeds)
    ]
    outputs = run_sweep(tasks, workers=workers, cache=cache)
    if repetitions == 1:
        return outputs[0]
    averaged = {
        key: float(np.mean([out[key] for out in outputs])) for key in outputs[0]
    }
    averaged["repetitions"] = float(repetitions)
    return averaged


def _timeline_point(
    leechers: int,
    piece_count: int,
    seed: int,
    engine: str,
    scenario: "str | None",
    horizon: int,
) -> Dict[str, float]:
    """One timeline checkpoint (a full run to ``horizon``) -- a sweep task."""
    config = SwarmConfig(
        leechers=leechers,
        seeds=2,
        piece_count=piece_count,
        rounds=horizon,
        start_completion=0.25,
        seed_upload_kbps=2000.0,
    )
    result = SwarmSimulator(
        config, seed=seed, engine=engine, scenario=resolve_scenario(scenario)
    ).run()
    return {
        "stratification_index": stratification_index(result),
        "volume_stratification_index": stratification_index(
            result, use_tft_pairs=False
        ),
        "swarm_size": float(len(result.present_peers())),
        "arrivals": float(result.arrivals),
        "departures": float(result.departures),
        "completed": float(result.completed),
    }


def scenario_stratification_timeline(
    *,
    leechers: int = 30,
    piece_count: int = 240,
    seed: int = 0,
    engine: str = "reference",
    scenario: "str | None" = "poisson",
    checkpoints: Sequence[int] = (10, 20, 30, 45, 60),
    workers: int = 1,
    cache: CacheLike = None,
) -> Dict[str, Dict[str, np.ndarray]]:
    """Stratification index over time while the swarm churns.

    The paper states stratification for the post-flash-crowd steady state;
    this driver measures how the empirical index *builds up and persists*
    while peers keep arriving and leaving.  Each checkpoint re-runs the
    simulation with a longer horizon under the same seed: the round loop
    draws only from the past, so a shorter run is draw-for-draw a prefix
    of a longer one and every checkpoint is an exact snapshot (on either
    engine -- they stay bit-identical under churn).  The checkpoints are
    independent runs, so they parallelize (``workers``) and cache
    per-horizon.
    """
    scenario_schedule = resolve_scenario(scenario)
    label = scenario if isinstance(scenario, str) else scenario_schedule.arrivals
    horizons = sorted({int(r) for r in checkpoints if int(r) > 0})
    if not horizons:
        raise ValueError("need at least one positive checkpoint")
    tasks = [
        SweepTask(
            _timeline_point,
            dict(
                leechers=leechers,
                piece_count=piece_count,
                seed=seed,
                engine=engine,
                scenario=scenario,
                horizon=horizon,
            ),
            label=f"timeline[rounds={horizon}]",
        )
        for horizon in horizons
    ]
    outputs = run_sweep(tasks, workers=workers, cache=cache)
    return {
        f"scenario={label}": {
            "rounds": np.asarray(horizons, dtype=float),
            "stratification_index": np.asarray(
                [out["stratification_index"] for out in outputs]
            ),
            "volume_stratification_index": np.asarray(
                [out["volume_stratification_index"] for out in outputs]
            ),
            "swarm_size": np.asarray(
                [out["swarm_size"] for out in outputs], dtype=float
            ),
            "arrivals": np.asarray([out["arrivals"] for out in outputs], dtype=float),
            "departures": np.asarray(
                [out["departures"] for out in outputs], dtype=float
            ),
            "completed": np.asarray([out["completed"] for out in outputs], dtype=float),
        }
    }
