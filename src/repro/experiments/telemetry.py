"""The ``telemetry`` experiment: ground truth vs the simulated measurer.

Runs one observed swarm (churning by default -- measurement error is a
churn phenomenon) and prints what an omniscient reader and a
scrape-and-poll study would each conclude about it: completions vs
reported vs confirmed downloads, true vs observed download-time CDFs,
true vs observed stratification index, and the sensitivity of the
confirmed count to the progress threshold.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.bittorrent.analysis import DEFAULT_THRESHOLDS, telemetry_report
from repro.bittorrent.swarm import SwarmConfig, SwarmSimulator
from repro.bittorrent.telemetry import ObserverConfig
from repro.sim.parallel import CacheLike, SweepTask, run_sweep

__all__ = ["telemetry_experiment"]


def _telemetry_point(
    leechers: int,
    rounds: int,
    piece_count: int,
    seed: int,
    engine: str,
    scenario: "str | None",
    scrape_interval: int,
    poll_interval: int,
    poll_budget: Optional[int],
    confirm_threshold: float,
    thresholds: Sequence[float],
) -> Dict[str, Dict[str, np.ndarray]]:
    """One observed swarm run -- a self-contained sweep task."""
    rng = np.random.default_rng(seed)
    bandwidths = np.exp(rng.uniform(np.log(100.0), np.log(2000.0), leechers))
    config = SwarmConfig(
        leechers=leechers,
        seeds=2,
        piece_count=piece_count,
        rounds=rounds,
        start_completion=0.25,
        seed_upload_kbps=2000.0,
    )
    observer = ObserverConfig(
        scrape_interval=scrape_interval,
        poll_interval=poll_interval,
        poll_budget=poll_budget,
        confirm_threshold=confirm_threshold,
    )
    result = SwarmSimulator(
        config,
        bandwidths=bandwidths,
        seed=seed,
        engine=engine,
        scenario=scenario,
        observer=observer,
    ).run()
    return telemetry_report(result, result.observed, tuple(thresholds))


def telemetry_experiment(
    *,
    leechers: int = 40,
    rounds: int = 80,
    piece_count: int = 600,
    seed: int = 0,
    engine: str = "reference",
    scenario: "str | None" = "poisson",
    scrape_interval: int = 2,
    poll_interval: int = 2,
    poll_budget: Optional[int] = 25,
    confirm_threshold: float = 0.98,
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
    workers: int = 1,
    cache: CacheLike = None,
) -> Dict[str, Dict[str, np.ndarray]]:
    """Measure a churning swarm the way a real scrape-and-poll study would.

    The default campaign scrapes every other round and polls 25 of the
    (40-and-growing) peers on the same cadence, under Poisson arrivals
    with leave-on-completion -- the regime where finite poll budgets make
    the observer miss completions, so the confirmed count (threshold 98%)
    undershoots the ground truth while low thresholds overshoot it.  The
    returned sections mirror :func:`repro.bittorrent.analysis.
    telemetry_report`; ``engine="fast"`` produces the identical report.
    """
    task = SweepTask(
        _telemetry_point,
        dict(
            leechers=leechers,
            rounds=rounds,
            piece_count=piece_count,
            seed=seed,
            engine=engine,
            scenario=scenario,
            scrape_interval=scrape_interval,
            poll_interval=poll_interval,
            poll_budget=poll_budget,
            confirm_threshold=confirm_threshold,
            thresholds=tuple(float(t) for t in thresholds),
        ),
        label="telemetry",
    )
    return run_sweep([task], workers=workers, cache=cache)[0]
