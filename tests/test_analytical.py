"""Tests for the analytical models (Algorithms 2 and 3, exact enumeration,
fluid limit, distribution utilities and Monte-Carlo validation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analytical.b_matching import independent_b_matching
from repro.analytical.distributions import MateDistribution, shift_similarity
from repro.analytical.exact_small import (
    exact_choice_probabilities,
    exact_match_probabilities,
    figure7_exact_values,
    figure7_independent_values,
)
from repro.analytical.fluid_limit import (
    best_peer_scaled_distribution,
    fluid_limit_cdf,
    fluid_limit_comparison,
    fluid_limit_density,
)
from repro.analytical.one_matching import independent_one_matching, match_probability_matrix
from repro.analytical.validation import simulate_choice_distribution, validate_independent_model


class TestOneMatchingModel:
    def test_three_peer_closed_form(self):
        p = 0.4
        matrix = match_probability_matrix(3, p)
        assert matrix[0, 1] == pytest.approx(p)
        assert matrix[0, 2] == pytest.approx(p * (1 - p))
        assert matrix[1, 2] == pytest.approx(p * (1 - p) * (1 - p * (1 - p)))

    def test_matrix_is_symmetric_with_zero_diagonal(self):
        matrix = match_probability_matrix(20, 0.2)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)

    def test_rows_are_subprobabilities(self):
        model = independent_one_matching(200, 0.05)
        for i in (1, 50, 150, 200):
            mass = model.row(i).sum()
            assert 0.0 <= mass <= 1.0 + 1e-9
            assert model.unmatched[i] == pytest.approx(1.0 - mass, abs=1e-9)

    def test_mass_tends_to_one_for_fixed_peer(self):
        # Lemma 1: adding worse peers drives the matching probability to 1.
        small = independent_one_matching(50, 0.1, rows=[10])
        large = independent_one_matching(500, 0.1, rows=[10])
        assert large.row(10).sum() > small.row(10).sum()
        assert large.row(10).sum() > 0.999

    def test_distribution_is_cut_not_changed_when_n_grows(self):
        # Theorem 2: D(i, j) does not depend on peers worse than max(i, j).
        small = independent_one_matching(100, 0.05, rows=[10])
        large = independent_one_matching(300, 0.05, rows=[10])
        assert np.allclose(small.row(10)[:100], large.row(10)[:100])

    def test_best_peer_distribution_is_geometric(self):
        p = 0.03
        model = independent_one_matching(400, p, rows=[1])
        row = model.row(1)
        # D(1, j) = p (1-p)^(j-2) for j >= 2.
        expected = np.array([p * (1 - p) ** (j - 2) for j in range(2, 401)])
        assert np.allclose(row[1:], expected)

    def test_worst_peer_matched_half_the_time(self):
        # The paper: the worst peer is matched in exactly half of the cases
        # (in the limit of enough peers above it).
        model = independent_one_matching(2000, 0.01, rows=[2000])
        assert model.row(2000).sum() == pytest.approx(0.5, abs=0.01)

    def test_restricted_rows_match_full_computation(self):
        full = independent_one_matching(120, 0.08)
        partial = independent_one_matching(120, 0.08, rows=[7, 60, 115])
        for i in (7, 60, 115):
            assert np.allclose(full.row(i), partial.row(i))

    def test_mean_partner_rank_increases_with_rank(self):
        model = independent_one_matching(500, 0.02, rows=[50, 250, 450])
        assert (
            model.mean_partner_rank(50)
            < model.mean_partner_rank(250)
            < model.mean_partner_rank(450)
        )

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            independent_one_matching(0, 0.5)
        with pytest.raises(ValueError):
            independent_one_matching(10, 1.5)
        with pytest.raises(ValueError):
            independent_one_matching(10, 0.5, rows=[11])


class TestBMatchingModel:
    def test_reduces_to_one_matching_for_b0_1(self):
        one = independent_one_matching(200, 0.04, rows=[100])
        b = independent_b_matching(200, 0.04, 1, rows=[100])
        assert np.allclose(one.row(100), b.row(1, 100), atol=1e-12)

    def test_choice_masses_are_subprobabilities_and_ordered(self):
        model = independent_b_matching(400, 0.05, 3, rows=[200])
        masses = [model.row(c, 200).sum() for c in (1, 2, 3)]
        for mass in masses:
            assert 0.0 <= mass <= 1.0 + 1e-9
        # Later choices are filled with (weakly) lower probability.
        assert masses[0] >= masses[1] >= masses[2]

    def test_first_choice_is_better_ranked_than_second(self):
        model = independent_b_matching(400, 0.05, 2, rows=[200])
        ranks = np.arange(1, 401)
        first = model.row(1, 200)
        second = model.row(2, 200)
        mean_first = (first * ranks).sum() / first.sum()
        mean_second = (second * ranks).sum() / second.sum()
        assert mean_first < mean_second

    def test_expected_mates_bounded_by_b0(self):
        model = independent_b_matching(300, 0.05, 3)
        for peer in (1, 150, 300):
            assert model.expected_mates(peer) <= 3.0 + 1e-9

    def test_total_row_combines_choices(self):
        model = independent_b_matching(100, 0.1, 2, rows=[50])
        total = model.total_row(50)
        assert np.allclose(total, model.row(1, 50) + model.row(2, 50))

    def test_matches_exact_enumeration_for_tiny_system(self):
        # For n = 4, b0 = 2 the independence error is small but non-zero;
        # the approximation must stay within a few percent of exact values.
        p = 0.3
        exact = exact_choice_probabilities(4, p, 2)
        model = independent_b_matching(4, p, 2)
        for choice in (1, 2):
            for i in range(1, 5):
                approx = model.row(choice, i)
                for j in range(1, 5):
                    assert approx[j - 1] == pytest.approx(
                        exact[choice][i - 1, j - 1], abs=0.06
                    )

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            independent_b_matching(10, 0.5, 0)
        with pytest.raises(ValueError):
            independent_b_matching(10, -0.1, 2)


class TestExactSmall:
    def test_figure7_closed_forms(self):
        p = 0.25
        exact = figure7_exact_values(p)
        independent = figure7_independent_values(p)
        assert exact[(1, 2)] == independent[(1, 2)] == p
        assert independent[(2, 3)] - exact[(2, 3)] == pytest.approx(p**3 * (1 - p))

    def test_enumeration_matches_closed_form_n3(self):
        p = 0.35
        matrix = exact_match_probabilities(3, p)
        closed = figure7_exact_values(p)
        assert matrix[0, 1] == pytest.approx(closed[(1, 2)])
        assert matrix[0, 2] == pytest.approx(closed[(1, 3)])
        assert matrix[1, 2] == pytest.approx(closed[(2, 3)])

    def test_enumeration_rows_are_subprobabilities(self):
        matrix = exact_match_probabilities(5, 0.4)
        sums = matrix.sum(axis=1)
        assert np.all(sums <= 1.0 + 1e-9)

    def test_enumeration_limit_enforced(self):
        with pytest.raises(ValueError):
            exact_match_probabilities(8, 0.5)

    def test_b_matching_enumeration_choice_ordering(self):
        result = exact_choice_probabilities(4, 0.5, 2)
        # First choices concentrate on better ranks than second choices.
        first_mass = result[1].sum(axis=1)
        second_mass = result[2].sum(axis=1)
        assert np.all(first_mass + 1e-12 >= second_mass)


class TestFluidLimit:
    def test_density_integrates_to_one(self):
        betas = np.linspace(0, 5, 20000)
        density = fluid_limit_density(betas, d=10.0)
        integral = np.trapezoid(density, betas)
        assert integral == pytest.approx(1.0, abs=1e-3)

    def test_cdf_values(self):
        assert fluid_limit_cdf(0.0, 5.0) == 0.0
        assert fluid_limit_cdf(10.0, 5.0) == pytest.approx(1.0)

    def test_negative_beta_has_zero_density(self):
        assert fluid_limit_density(-0.5, 3.0) == 0.0

    def test_finite_n_converges_to_limit(self):
        coarse = fluid_limit_comparison(500, 15.0)
        fine = fluid_limit_comparison(4000, 15.0)
        assert fine.l1_error < coarse.l1_error
        assert fine.l1_error < 0.05

    def test_scaled_distribution_shape(self):
        scaled = best_peer_scaled_distribution(1000, 10.0)
        assert scaled["beta"].shape == (1000,)
        # The self-entry (j = 1) is zero; the density just after it is ~d.
        assert scaled["scaled_density"][0] == 0.0
        assert scaled["scaled_density"][1] == pytest.approx(10.0, rel=0.1)

    def test_invalid_d_rejected(self):
        with pytest.raises(ValueError):
            fluid_limit_density(0.1, 0.0)


class TestMateDistribution:
    @pytest.fixture
    def model(self):
        return independent_one_matching(1000, 0.02, rows=[50, 400, 600, 950])

    def test_central_peer_symmetric(self, model):
        dist = MateDistribution(400, model.row(400))
        assert abs(dist.asymmetry()) < 0.05
        assert abs(dist.mean_offset()) < 20

    def test_best_region_asymmetric(self, model):
        dist = MateDistribution(50, model.row(50))
        assert dist.asymmetry() > 0.2
        assert dist.mean_offset() > 0

    def test_worst_region_truncated(self, model):
        dist = MateDistribution(950, model.row(950))
        assert dist.unmatched_probability > 0.05
        assert dist.mean_offset() < 0

    def test_shift_similarity_of_central_peers(self, model):
        a = MateDistribution(400, model.row(400))
        b = MateDistribution(600, model.row(600))
        # Stratification: central distributions are near-perfect shifts.
        assert shift_similarity(a, b) > 0.95

    def test_quantile_and_mode(self, model):
        dist = MateDistribution(400, model.row(400))
        assert abs(dist.mode_rank() - 400) < 30
        q10 = dist.quantile_rank(0.1)
        q90 = dist.quantile_rank(0.9)
        assert q10 < dist.mode_rank() < q90

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            MateDistribution(1, np.array([[0.1]]))
        with pytest.raises(ValueError):
            MateDistribution(1, np.array([-0.2, 0.1]))


class TestMonteCarloValidation:
    def test_simulated_frequencies_sum_to_one(self):
        result = simulate_choice_distribution(60, 0.2, 2, peer=30, samples=40, seed=1)
        for choice in (1, 2):
            total = result.frequency(choice).sum() + result.unmatched_frequency[choice]
            assert total == pytest.approx(1.0, abs=1e-9)

    @pytest.mark.slow
    def test_validation_report_close_to_model(self):
        report = validate_independent_model(150, 0.1, 2, peer=90, samples=150, seed=2)
        assert report.worst_total_variation < 0.25
        assert report.worst_mean_rank_error < 0.15

    @pytest.mark.slow
    def test_match_probabilities_agree(self):
        report = validate_independent_model(150, 0.1, 2, peer=75, samples=150, seed=3)
        for choice in (1, 2):
            assert report.match_probability_model[choice] == pytest.approx(
                report.match_probability_simulation[choice], abs=0.15
            )

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            simulate_choice_distribution(10, 0.5, 1, peer=11, samples=5)
        with pytest.raises(ValueError):
            simulate_choice_distribution(10, 0.5, 1, peer=5, samples=0)
