"""Fast engine vs reference engine: the reference is the correctness oracle.

The array engine in :mod:`repro.core.fast` promises more than approximate
agreement: under a shared seeded :class:`~repro.sim.random_source.RandomSource`
it must reproduce the reference engine's stable configurations, disorder
trajectories and final matchings *bit for bit*.  These tests enforce that
contract on three graph families (complete, Erdős–Rényi, small handcrafted
instances), for all three initiative strategies, for the churn pipeline and
for the stratification clustering backend.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.acceptance import AcceptanceGraph
from repro.core.churn import ChurnConfig, simulate_churn
from repro.core.dynamics import (
    ConvergenceSimulator,
    simulate_convergence,
    simulate_peer_removal,
)
from repro.core.exceptions import ModelError
from repro.core.fast.arrays import PeerArrays
from repro.core.fast.engine import FastMatching, fast_stable_configuration
from repro.core.matching import Matching, blocking_pairs, is_stable
from repro.core.peer import Peer, PeerPopulation
from repro.core.ranking import GlobalRanking
from repro.core.stable import stable_configuration
from repro.sim.random_source import RandomSource
from repro.stratification.clustering import analyze_complete_matching

_settings = settings(
    max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def _er_acceptance(n: int, degree: float, slots, seed: int) -> AcceptanceGraph:
    population = PeerPopulation.ranked(n, slots=slots)
    source = RandomSource(seed)
    return AcceptanceGraph.erdos_renyi(
        population, expected_degree=degree, rng=source.stream("graph")
    )


def _assert_same_result(reference, fast):
    """Two ConvergenceResults must agree sample-for-sample."""
    assert reference.trajectory.times == fast.trajectory.times
    assert reference.trajectory.values == fast.trajectory.values
    assert reference.initiatives == fast.initiatives
    assert reference.active_initiatives == fast.active_initiatives
    assert reference.converged == fast.converged
    assert reference.time_to_converge == fast.time_to_converge
    assert reference.final_matching == fast.final_matching


# -- stable configurations on three graph families -------------------------------


class TestStableEquivalence:
    def test_complete_graph_family(self):
        for n, slots in [(2, 1), (9, 2), (25, 1), (20, 3)]:
            population = PeerPopulation.ranked(n, slots=slots)
            acceptance = AcceptanceGraph.complete(population)
            assert fast_stable_configuration(acceptance) == stable_configuration(
                acceptance
            )

    def test_erdos_renyi_family(self):
        for n, degree, slots, seed in [
            (30, 4.0, 1, 0),
            (60, 8.0, 2, 1),
            (50, 20.0, 3, 2),
            (40, 0.5, 1, 3),
        ]:
            acceptance = _er_acceptance(n, degree, slots, seed)
            reference = stable_configuration(acceptance)
            fast = stable_configuration(acceptance, engine="fast")
            assert fast == reference
            assert is_stable(
                fast, GlobalRanking.from_population(acceptance.population)
            )

    def test_small_exact_instances(self):
        # A handcrafted 5-peer instance whose stable matching is known: with
        # ranks 1..5 (1 best), slots 1 and the acceptance path/star below,
        # Algorithm 1 pairs (1, 2) and (3, 4); peer 5 stays unmatched.
        population = PeerPopulation.ranked(5, slots=1)
        acceptance = AcceptanceGraph(population)
        for p, q in [(1, 2), (1, 3), (2, 3), (3, 4), (4, 5), (3, 5)]:
            acceptance.declare_acceptable(p, q)
        expected_pairs = [(1, 2), (3, 4)]
        assert sorted(stable_configuration(acceptance).pairs()) == expected_pairs
        assert sorted(fast_stable_configuration(acceptance).pairs()) == expected_pairs

        # Degenerate instances: no edges, and a single pair.
        lonely = AcceptanceGraph(PeerPopulation.ranked(3, slots=1))
        assert fast_stable_configuration(lonely) == stable_configuration(lonely)
        pair_population = PeerPopulation.ranked(2, slots=1)
        pair = AcceptanceGraph(pair_population)
        pair.declare_acceptable(1, 2)
        assert sorted(fast_stable_configuration(pair).pairs()) == [(1, 2)]

    def test_zero_capacity_peers(self):
        population = PeerPopulation(
            [Peer(1, 5.0, 0), Peer(2, 4.0, 2), Peer(3, 3.0, 1), Peer(4, 2.0, 0)]
        )
        acceptance = AcceptanceGraph.complete(population)
        reference = stable_configuration(acceptance)
        assert fast_stable_configuration(acceptance) == reference
        assert sorted(reference.pairs()) == [(2, 3)]

    @_settings
    @given(
        n=st.integers(min_value=2, max_value=25),
        p=st.floats(min_value=0.0, max_value=1.0),
        b0=st.integers(min_value=0, max_value=4),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_random_instances_property(self, n, p, b0, seed):
        population = PeerPopulation.ranked(n, slots=b0)
        rng = np.random.default_rng(seed)
        acceptance = AcceptanceGraph.erdos_renyi(population, probability=p, rng=rng)
        assert fast_stable_configuration(acceptance) == stable_configuration(acceptance)


# -- trajectory equivalence -------------------------------------------------------


class TestTrajectoryEquivalence:
    @pytest.mark.parametrize("strategy", ["best-mate", "decremental", "random"])
    @pytest.mark.parametrize("slots", [1, 3])
    def test_convergence_trajectories_identical(self, strategy, slots):
        reference = simulate_convergence(
            60, 8.0, slots=slots, strategy=strategy, seed=17, max_base_units=15
        )
        fast = simulate_convergence(
            60,
            8.0,
            slots=slots,
            strategy=strategy,
            seed=17,
            max_base_units=15,
            engine="fast",
        )
        _assert_same_result(reference, fast)

    def test_simulator_with_shared_source_semantics(self):
        # Two independent sources with the same master seed must drive both
        # engines through identical runs (streams are derived by name).
        acceptance_a = _er_acceptance(40, 6.0, 2, 5)
        acceptance_b = _er_acceptance(40, 6.0, 2, 5)
        reference = ConvergenceSimulator(
            acceptance_a, source=RandomSource(99)
        ).run(max_base_units=12)
        fast = ConvergenceSimulator(
            acceptance_b, source=RandomSource(99), engine="fast"
        ).run(max_base_units=12)
        _assert_same_result(reference, fast)

    def test_run_from_inherited_configuration(self):
        acceptance = _er_acceptance(30, 5.0, 1, 8)
        stable = stable_configuration(acceptance)
        reference = ConvergenceSimulator(acceptance, source=RandomSource(4)).run(
            initial=stable, max_base_units=3, stop_when_stable=False
        )
        fast = ConvergenceSimulator(
            acceptance, source=RandomSource(4), engine="fast"
        ).run(initial=stable, max_base_units=3, stop_when_stable=False)
        _assert_same_result(reference, fast)
        assert reference.trajectory.values[0] == 0.0

    def test_peer_removal_trajectories_identical(self):
        for removed in (1, 20, 45):
            reference = simulate_peer_removal(60, 8.0, removed, seed=3)
            fast = simulate_peer_removal(60, 8.0, removed, seed=3, engine="fast")
            _assert_same_result(reference, fast)

    @_settings
    @given(
        n=st.integers(min_value=3, max_value=30),
        degree=st.floats(min_value=0.5, max_value=8.0),
        b0=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=10_000),
        strategy=st.sampled_from(["best-mate", "decremental", "random"]),
    )
    def test_trajectory_property(self, n, degree, b0, seed, strategy):
        degree = min(degree, n - 1.0)
        reference = simulate_convergence(
            n, degree, slots=b0, strategy=strategy, seed=seed, max_base_units=8
        )
        fast = simulate_convergence(
            n,
            degree,
            slots=b0,
            strategy=strategy,
            seed=seed,
            max_base_units=8,
            engine="fast",
        )
        _assert_same_result(reference, fast)


# -- churn equivalence ------------------------------------------------------------


class TestChurnEquivalence:
    @pytest.mark.parametrize("strategy", ["best-mate", "random"])
    def test_churn_trajectories_identical(self, strategy):
        kwargs = dict(
            n=70, expected_degree=6.0, churn_rate=0.03, max_base_units=6,
            strategy=strategy,
        )
        reference = simulate_churn(ChurnConfig(**kwargs), seed=13)
        fast = simulate_churn(ChurnConfig(engine="fast", **kwargs), seed=13)
        assert reference.trajectory.times == fast.trajectory.times
        assert reference.trajectory.values == fast.trajectory.values
        assert reference.churn_events == fast.churn_events
        assert reference.initiatives == fast.initiatives
        assert reference.mean_disorder == fast.mean_disorder
        assert reference.final_population_size == fast.final_population_size
        assert reference.churn_events > 0  # the scenario actually churned

    def test_invalid_engine_rejected(self):
        with pytest.raises(ModelError):
            ChurnConfig(engine="warp")


# -- stratification clustering backend --------------------------------------------


class TestClusteringEquivalence:
    @_settings
    @given(
        slots=st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=80)
    )
    def test_cluster_analysis_property(self, slots):
        reference = analyze_complete_matching(slots)
        fast = analyze_complete_matching(slots, engine="fast")
        assert fast == reference

    def test_known_constant_case(self):
        fast = analyze_complete_matching([2] * 12, engine="fast")
        assert fast.cluster_sizes == [3, 3, 3, 3]
        assert fast.connected is False


# -- engine guardrails ------------------------------------------------------------


class TestEngineInterface:
    def test_unknown_engine_rejected(self):
        acceptance = _er_acceptance(10, 3.0, 1, 0)
        with pytest.raises(ModelError):
            ConvergenceSimulator(acceptance, engine="warp")
        with pytest.raises(ModelError):
            stable_configuration(acceptance, engine="warp")
        with pytest.raises(ModelError):
            analyze_complete_matching([1, 1], engine="warp")

    def test_custom_strategy_requires_reference_engine(self):
        from repro.core.initiatives import BestMateInitiative, InitiativeStrategy

        class Custom(InitiativeStrategy):
            name = "custom"

            def propose(self, matching, ranking, peer_id, rng):
                return None

        # A subclass of a stock strategy must be rejected too: matching it
        # by name would silently swap in the stock behavior.
        class CustomBestMate(BestMateInitiative):
            def propose(self, matching, ranking, peer_id, rng):
                return None

        acceptance = _er_acceptance(10, 3.0, 1, 0)
        for strategy in (Custom(), CustomBestMate()):
            with pytest.raises(ModelError):
                ConvergenceSimulator(acceptance, strategy=strategy, engine="fast")
            # The reference engine accepts it.
            ConvergenceSimulator(acceptance, strategy=strategy).run(max_base_units=1)
        # Stock reference instances resolve to their fast twin.
        fast = ConvergenceSimulator(
            acceptance, strategy=BestMateInitiative(), engine="fast"
        )
        assert fast.strategy.name == "best-mate"

    def test_fast_simulator_stable_property_matches(self):
        acceptance = _er_acceptance(40, 6.0, 2, 21)
        reference = ConvergenceSimulator(acceptance)
        fast = ConvergenceSimulator(acceptance, engine="fast")
        assert fast.stable == reference.stable

    def test_fast_matching_roundtrip(self):
        acceptance = _er_acceptance(25, 5.0, 2, 9)
        stable = stable_configuration(acceptance)
        arrays = PeerArrays.build(acceptance)
        fast = FastMatching(arrays)
        fast.load_matching(stable)
        assert fast.to_matching(acceptance) == stable

    def test_fast_matching_blocking_pairs_agree(self):
        acceptance = _er_acceptance(25, 6.0, 2, 14)
        ranking = GlobalRanking.from_population(acceptance.population)
        # A partial (unstable) configuration: first few greedy pairs.
        matching = Matching(acceptance)
        for p, q in list(stable_configuration(acceptance).pairs())[:5]:
            matching.match(p, q)
        arrays = PeerArrays.build(acceptance, ranking)
        fast = FastMatching(arrays)
        fast.load_matching(matching)
        reference_pairs = set(blocking_pairs(matching, ranking))
        for i, peer_id in enumerate(arrays.ids):
            for j in arrays.neighborhood(i):
                p, q = int(peer_id), int(arrays.ids[j])
                expected = (min(p, q), max(p, q)) in reference_pairs
                assert fast.is_blocking(i, int(j)) == expected
