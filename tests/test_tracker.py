"""Targeted tracker tests: the FastTracker depart / sorted-alive-list path.

The scenario and equivalence suites exercise the trackers through whole
swarms; these tests pin the announce-after-depart machinery directly --
the regime switch from the contiguous range to the sorted alive list, the
draw parity with the reference tracker, and the scrape counters across
churn.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bittorrent.fast.tracker import FastTracker
from repro.bittorrent.tracker import ScrapeStats, Tracker


def _paired_rngs(seed: int = 0):
    return np.random.default_rng(seed), np.random.default_rng(seed)


class TestFastTrackerAnnounce:
    def test_out_of_order_announce_matches_reference(self):
        # An announce delayed past a younger peer's (outage backoff)
        # drops the fast tracker to the dynamic regime; the draw still
        # matches the reference tracker id-for-id.
        fast = FastTracker(announce_size=4)
        reference = Tracker(announce_size=4)
        fast_rng, ref_rng = _paired_rngs(3)
        for peer_id in (1, 2, 3, 5):
            fast_contacts = fast.announce(peer_id, fast_rng)
            ref_contacts = reference.announce(peer_id, ref_rng)
            assert sorted(int(c) for c in fast_contacts) == sorted(ref_contacts)
        fast_contacts = fast.announce(4, fast_rng)
        ref_contacts = reference.announce(4, ref_rng)
        assert [int(c) for c in fast_contacts] == ref_contacts
        assert fast.known_peers() == reference.known_peers() == [1, 2, 3, 4, 5]

    def test_reannounce_draws_fresh_contacts_without_registration(self):
        # A crashed peer rejoining re-announces: fresh contacts, no
        # membership change, bit-identical across trackers.
        fast = FastTracker(announce_size=2)
        reference = Tracker(announce_size=2)
        fast_rng, ref_rng = _paired_rngs(11)
        for peer_id in range(1, 7):
            fast.announce(peer_id, fast_rng)
            reference.announce(peer_id, ref_rng)
        before = fast.known_peers()
        fast_contacts = fast.announce(2, fast_rng)
        ref_contacts = reference.announce(2, ref_rng)
        assert [int(c) for c in fast_contacts] == ref_contacts
        assert 2 not in set(int(c) for c in fast_contacts)
        assert fast.known_peers() == before
        assert fast.swarm_size == reference.swarm_size == 6

    def test_rejects_nonpositive_announce_size(self):
        with pytest.raises(ValueError):
            FastTracker(announce_size=0)

    def test_contiguous_announces_match_reference(self):
        fast = FastTracker(announce_size=3)
        reference = Tracker(announce_size=3)
        fast_rng, ref_rng = _paired_rngs(42)
        for peer_id in range(1, 12):
            fast_contacts = fast.announce(peer_id, fast_rng)
            ref_contacts = reference.announce(peer_id, ref_rng)
            assert sorted(int(c) for c in fast_contacts) == sorted(ref_contacts)
        assert fast.known_peers() == reference.known_peers()

    def test_depart_then_announce_matches_reference(self):
        fast = FastTracker(announce_size=3)
        reference = Tracker(announce_size=3)
        fast_rng, ref_rng = _paired_rngs(7)
        for peer_id in range(1, 9):
            fast.announce(peer_id, fast_rng)
            reference.announce(peer_id, ref_rng)
        for departing in (3, 6, 1):
            fast.depart(departing)
            reference.depart(departing)
        assert fast.known_peers() == reference.known_peers()
        # Announces after the regime switch draw from the same sorted
        # alive list, so the contacts are id-for-id identical.
        for peer_id in range(9, 14):
            fast_contacts = fast.announce(peer_id, fast_rng)
            ref_contacts = reference.announce(peer_id, ref_rng)
            assert [int(c) for c in fast_contacts] == ref_contacts
            assert not set(int(c) for c in fast_contacts) & {1, 3, 6}

    def test_alive_list_stays_sorted_under_interleaved_churn(self):
        tracker = FastTracker(announce_size=2)
        rng = np.random.default_rng(1)
        for peer_id in range(1, 6):
            tracker.announce(peer_id, rng)
        tracker.depart(2)
        tracker.announce(6, rng)
        tracker.depart(5)
        tracker.announce(7, rng)
        assert tracker.known_peers() == [1, 3, 4, 6, 7]
        assert tracker.known_peers() == sorted(tracker.known_peers())
        assert tracker.swarm_size == 5

    def test_depart_unknown_id_is_noop(self):
        tracker = FastTracker(announce_size=2)
        rng = np.random.default_rng(0)
        for peer_id in range(1, 4):
            tracker.announce(peer_id, rng)
        tracker.depart(99)
        tracker.depart(2)
        tracker.depart(2)  # repeated departure: discard semantics
        assert tracker.known_peers() == [1, 3]

    def test_announce_into_emptied_swarm_returns_no_contacts(self):
        tracker = FastTracker(announce_size=4)
        rng = np.random.default_rng(0)
        for peer_id in range(1, 4):
            tracker.announce(peer_id, rng)
        for peer_id in range(1, 4):
            tracker.depart(peer_id)
        assert tracker.swarm_size == 0
        contacts = tracker.announce(4, rng)
        assert contacts.size == 0
        assert tracker.known_peers() == [4]


class TestFastTrackerScrape:
    def _churned(self) -> FastTracker:
        tracker = FastTracker(announce_size=3)
        rng = np.random.default_rng(0)
        for peer_id in range(1, 6):
            tracker.announce(peer_id, rng)
        return tracker

    def test_is_registered_both_regimes(self):
        tracker = self._churned()
        # Contiguous regime: the range 1..max_id.
        assert tracker.is_registered(5)
        assert not tracker.is_registered(0)
        assert not tracker.is_registered(6)
        tracker.depart(2)
        # Dynamic regime: membership of the alive list.
        assert tracker.is_registered(1)
        assert not tracker.is_registered(2)

    def test_scrape_after_seeder_departs(self):
        tracker = self._churned()
        tracker.record_completion(4)
        assert tracker.scrape() == ScrapeStats(seeders=1, leechers=4, snatches=1)
        tracker.depart(4)
        # The seeder leaves the live counters; the snatch is cumulative.
        assert tracker.scrape() == ScrapeStats(seeders=0, leechers=4, snatches=1)

    def test_register_complete_vs_record_completion(self):
        tracker = self._churned()
        tracker.register_complete(1)  # joined-as-seed: no snatch
        tracker.record_completion(2)
        tracker.record_completion(2)  # idempotent
        tracker.record_completion(1)  # already complete: no snatch
        assert tracker.scrape() == ScrapeStats(seeders=2, leechers=3, snatches=1)

    def test_departed_peer_cannot_complete(self):
        tracker = self._churned()
        tracker.depart(3)
        tracker.record_completion(3)
        tracker.register_complete(3)
        assert tracker.scrape() == ScrapeStats(seeders=0, leechers=4, snatches=0)

    def test_scrape_matches_reference_across_identical_history(self):
        fast = FastTracker(announce_size=3)
        reference = Tracker(announce_size=3)
        fast_rng, ref_rng = _paired_rngs(5)
        for peer_id in range(1, 8):
            fast.announce(peer_id, fast_rng)
            reference.announce(peer_id, ref_rng)
        for tracker in (fast, reference):
            tracker.register_complete(1)
            tracker.record_completion(4)
            tracker.depart(4)
            tracker.record_completion(6)
        assert fast.scrape() == reference.scrape()
        assert fast.known_peers() == reference.known_peers()
