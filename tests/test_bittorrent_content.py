"""Tests for the BitTorrent content substrate: pieces, selection, choking, tracker."""

from __future__ import annotations

import pytest

from repro.bittorrent.choking import SeedChoker, TitForTatChoker, UnchokeDecision
from repro.bittorrent.pieces import Bitfield, Torrent
from repro.bittorrent.piece_selection import (
    RandomSelector,
    RarestFirstSelector,
    SequentialSelector,
    make_selector,
    piece_availability,
)
from repro.bittorrent.tracker import Tracker


class TestTorrentAndBitfield:
    def test_torrent_size(self):
        torrent = Torrent(piece_count=10, piece_size_kbit=100.0)
        assert torrent.total_size_kbit == 1000.0
        assert list(torrent.pieces()) == list(range(10))

    def test_torrent_validation(self):
        with pytest.raises(ValueError):
            Torrent(0)
        with pytest.raises(ValueError):
            Torrent(10, piece_size_kbit=0)

    def test_deprecated_kb_aliases(self):
        with pytest.warns(DeprecationWarning):
            torrent = Torrent(piece_count=10, piece_size_kb=100.0)
        assert torrent.piece_size_kbit == 100.0
        with pytest.warns(DeprecationWarning):
            assert torrent.piece_size_kb == 100.0
        with pytest.warns(DeprecationWarning):
            assert torrent.total_size_kb == 1000.0
        with pytest.raises(ValueError), pytest.warns(DeprecationWarning):
            Torrent(10, piece_size_kb=0)
        with pytest.raises(TypeError):
            Torrent(10, piece_size_kbit=512.0, piece_size_kb=256.0)

    def test_bitfield_complete_and_empty(self):
        seed = Bitfield.complete(5)
        leecher = Bitfield.empty(5)
        assert seed.is_complete() and not leecher.is_complete()
        assert seed.completion() == 1.0
        assert leecher.missing() == {0, 1, 2, 3, 4}

    def test_add_and_bounds(self):
        bitfield = Bitfield(3)
        bitfield.add(1)
        assert bitfield.has(1)
        with pytest.raises(IndexError):
            bitfield.add(3)

    def test_interest(self):
        a = Bitfield(4, have=[0, 1])
        b = Bitfield(4, have=[1, 2])
        assert a.is_interested_in(b)
        assert a.interesting_pieces(b) == {2}
        c = Bitfield(4, have=[0])
        assert not a.is_interested_in(c)

    def test_iteration_sorted(self):
        bitfield = Bitfield(5, have=[3, 1])
        assert list(bitfield) == [1, 3]


class TestPieceSelection:
    def test_availability(self):
        fields = [Bitfield(3, have=[0]), Bitfield(3, have=[0, 1])]
        assert piece_availability(fields, 3) == [2, 1, 0]

    def test_rarest_first_picks_rarest(self, rng):
        selector = RarestFirstSelector()
        piece = selector.select({0, 1, 2}, availability=[5, 1, 3], rng=rng)
        assert piece == 1

    def test_rarest_first_breaks_ties_within_rarest(self, rng):
        selector = RarestFirstSelector()
        choices = {selector.select({0, 1, 2}, [1, 1, 5], rng) for _ in range(30)}
        assert choices <= {0, 1}
        assert len(choices) == 2

    def test_random_selector_stays_in_wanted(self, rng):
        selector = RandomSelector()
        for _ in range(10):
            assert selector.select({2, 4}, [0] * 5, rng) in {2, 4}

    def test_sequential_selector(self, rng):
        assert SequentialSelector().select({3, 1, 2}, [0] * 4, rng) == 1

    def test_empty_wanted_returns_none(self, rng):
        for name in ("rarest-first", "random", "sequential"):
            assert make_selector(name).select(set(), [0], rng) is None

    def test_make_selector_unknown(self):
        with pytest.raises(ValueError):
            make_selector("super-seeding")


class TestChoking:
    def test_tft_prefers_top_uploaders(self, rng):
        choker = TitForTatChoker(regular_slots=2, optimistic_slots=1)
        decision = choker.select_unchoked(
            1,
            interested=[10, 11, 12, 13],
            received={10: 5.0, 11: 50.0, 12: 20.0},
            rng=rng,
        )
        assert decision.regular == [11, 12]
        assert len(decision.optimistic) == 1
        assert set(decision.optimistic) <= {10, 13}

    def test_no_interested_peers(self, rng):
        decision = TitForTatChoker().select_unchoked(1, [], {}, rng)
        assert decision.all == []

    def test_cold_start_fills_slots_optimistically(self, rng):
        choker = TitForTatChoker(regular_slots=3, optimistic_slots=1)
        decision = choker.select_unchoked(1, interested=[2, 3, 4, 5, 6], received={}, rng=rng)
        assert decision.regular == []
        assert len(decision.optimistic) == 4

    def test_optimistic_rotation(self, rng):
        choker = TitForTatChoker(regular_slots=1, optimistic_slots=1, optimistic_period=2)
        seen = set()
        for _ in range(12):
            decision = choker.select_unchoked(
                1, interested=[2, 3, 4, 5], received={2: 10.0}, rng=rng
            )
            seen.update(decision.optimistic)
        # Over several periods the optimistic slot visits several peers.
        assert len(seen) >= 2

    def test_total_slots_and_validation(self):
        assert TitForTatChoker(regular_slots=3, optimistic_slots=1).total_slots == 4
        with pytest.raises(ValueError):
            TitForTatChoker(regular_slots=-1)
        with pytest.raises(ValueError):
            SeedChoker(slots=0)

    def test_seed_choker_rotates_randomly(self, rng):
        choker = SeedChoker(slots=2)
        decision = choker.select_unchoked(1, interested=[2, 3, 4, 5], received={}, rng=rng)
        assert len(decision.optimistic) == 2
        assert decision.regular == []

    def test_unchoke_decision_all(self):
        decision = UnchokeDecision(regular=[1], optimistic=[2, 3])
        assert decision.all == [1, 2, 3]
        assert len(decision) == 3


class TestTracker:
    def test_announce_returns_subset_and_links(self, rng):
        tracker = Tracker(announce_size=3)
        assert tracker.announce(1, rng) == []
        for peer in range(2, 8):
            tracker.announce(peer, rng)
        contacts = tracker.contacts(7)
        assert 0 < len(contacts) <= 6
        # Symmetry: everybody returned by the announce knows the announcer.
        for other in contacts:
            assert 7 in tracker.contacts(other)

    def test_announce_size_respected(self, rng):
        tracker = Tracker(announce_size=2)
        for peer in range(1, 30):
            returned = tracker.announce(peer, rng)
            assert len(returned) <= 2

    def test_knowledge_graph_degree_close_to_announce_size(self, rng):
        announce = 8
        tracker = Tracker(announce_size=announce)
        n = 200
        for peer in range(1, n + 1):
            tracker.announce(peer, rng)
        graph = tracker.knowledge_graph()
        mean_degree = 2 * graph.edge_count / graph.vertex_count
        # Each announce adds ~announce_size symmetric edges -> expected
        # degree around 2 * announce * (1 - o(1)); just check the right scale.
        assert announce <= mean_degree <= 3 * announce

    def test_depart(self, rng):
        tracker = Tracker(announce_size=2)
        tracker.announce(1, rng)
        tracker.announce(2, rng)
        tracker.depart(1)
        assert tracker.swarm_size == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            Tracker(announce_size=0)
