"""Tests for the simulation clock and the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.sim.clock import ClockError, SimulationClock
from repro.sim.engine import EngineError, Event, EventQueue, Process, SimulationEngine


class TestSimulationClock:
    def test_starts_at_zero(self):
        assert SimulationClock().now == 0.0

    def test_advance_to(self):
        clock = SimulationClock()
        clock.advance_to(3.5)
        assert clock.now == 3.5
        assert clock.steps == 1

    def test_cannot_go_backwards(self):
        clock = SimulationClock(start=5.0)
        with pytest.raises(ClockError):
            clock.advance_to(4.0)

    def test_advance_by_negative_rejected(self):
        with pytest.raises(ClockError):
            SimulationClock().advance_by(-1.0)

    def test_base_units(self):
        clock = SimulationClock()
        for _ in range(200):
            clock.advance_by(1.0)
        assert clock.base_units(100) == pytest.approx(2.0)

    def test_base_units_rejects_bad_population(self):
        with pytest.raises(ValueError):
            SimulationClock().base_units(0)

    def test_reset(self):
        clock = SimulationClock()
        clock.advance_by(10)
        clock.reset()
        assert clock.now == 0.0
        assert clock.steps == 0


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        queue.push(Event(2.0, lambda e: None, name="late"))
        queue.push(Event(1.0, lambda e: None, name="early"))
        assert queue.pop().name == "early"
        assert queue.pop().name == "late"

    def test_orders_by_priority_at_equal_time(self):
        queue = EventQueue()
        queue.push(Event(1.0, lambda e: None, priority=5, name="low"))
        queue.push(Event(1.0, lambda e: None, priority=1, name="high"))
        assert queue.pop().name == "high"

    def test_fifo_at_equal_time_and_priority(self):
        queue = EventQueue()
        queue.push(Event(1.0, lambda e: None, name="first"))
        queue.push(Event(1.0, lambda e: None, name="second"))
        assert queue.pop().name == "first"

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        event = queue.push(Event(1.0, lambda e: None, name="cancelled"))
        queue.push(Event(2.0, lambda e: None, name="kept"))
        event.cancel()
        assert len(queue) == 1
        assert queue.pop().name == "kept"

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None


class TestSimulationEngine:
    def test_runs_events_in_order(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule(2.0, lambda e: seen.append("b"))
        engine.schedule(1.0, lambda e: seen.append("a"))
        executed = engine.run()
        assert executed == 2
        assert seen == ["a", "b"]
        assert engine.now == 2.0

    def test_until_bound(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule(1.0, lambda e: seen.append(1))
        engine.schedule(5.0, lambda e: seen.append(5))
        engine.run(until=2.0)
        assert seen == [1]

    def test_max_events(self):
        engine = SimulationEngine()
        for i in range(10):
            engine.schedule(i + 1.0, lambda e: None)
        assert engine.run(max_events=3) == 3

    def test_events_can_schedule_events(self):
        engine = SimulationEngine()
        seen = []

        def chain(e):
            seen.append(e.now)
            if len(seen) < 4:
                e.schedule(1.0, chain)

        engine.schedule(1.0, chain)
        engine.run()
        assert seen == [1.0, 2.0, 3.0, 4.0]

    def test_cannot_schedule_in_the_past(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda e: None)
        engine.run()
        with pytest.raises(EngineError):
            engine.schedule_at(0.5, lambda e: None)

    def test_stop_inside_callback(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule(1.0, lambda e: (seen.append(1), e.stop()))
        engine.schedule(2.0, lambda e: seen.append(2))
        engine.run()
        assert seen == [1]

    def test_reset(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda e: None)
        engine.run()
        engine.reset()
        assert engine.now == 0.0
        assert engine.processed_events == 0


class TestProcess:
    def test_periodic_ticks(self):
        engine = SimulationEngine()
        ticks = []
        process = Process(engine, interval=1.0, action=lambda e: ticks.append(e.now))
        process.start(initial_delay=1.0)
        engine.run(until=5.0)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert process.ticks == 5

    def test_stop_cancels_future_ticks(self):
        engine = SimulationEngine()
        ticks = []

        def action(e):
            ticks.append(e.now)
            if len(ticks) == 2:
                process.stop()

        process = Process(engine, interval=1.0, action=action)
        process.start(initial_delay=0.0)
        engine.run(until=10.0)
        assert ticks == [0.0, 1.0]
        assert not process.running

    def test_interval_must_be_positive(self):
        with pytest.raises(EngineError):
            Process(SimulationEngine(), interval=0.0)
