"""Tests for the figure drivers and the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro import experiments
from repro import cli
from repro.cli import build_parser, main
from repro.sim.parallel import SweepTaskError


class TestFigureDrivers:
    def test_figure1_series_structure(self):
        series = experiments.figure1_convergence(((60, 10),), max_base_units=30)
        data = series["n=60,d=10"]
        assert data["disorder"][0] > data["disorder"][-1]
        assert not np.isnan(data["time_to_converge"][0])

    def test_figure2_small_disorder_after_removal(self):
        series = experiments.figure2_peer_removal((1, 50), n=150, max_base_units=8)
        for data in series.values():
            assert float(data["max_disorder"][0]) < 0.1

    def test_figure3_churn_ordering(self):
        series = experiments.figure3_churn((0.0, 0.05), n=150, max_base_units=12)
        assert series["no churn"]["tail_disorder"][0] < series["churn=50/1000"]["tail_disorder"][0]

    def test_figure4_figure5_table(self):
        table = experiments.figure4_figure5_clusters(b0=2, n=9)
        records = table.to_records()
        assert records[0]["connected"] is False
        assert records[1]["connected"] is True

    def test_figure6_phase_transition_table(self):
        table = experiments.figure6_phase_transition(
            sigmas=[0.0, 0.3], n=3000, repetitions=1
        )
        rows = table.to_records()
        assert rows[1]["mean_cluster_size"] > 3 * rows[0]["mean_cluster_size"]

    def test_table1_columns(self):
        table = experiments.table1_clustering((2, 3), n=4000, repetitions=1)
        assert table.column("constant_cluster_size") == [3.0, 4.0]

    def test_figure7_error_grows_with_p(self):
        table = experiments.figure7_approximation_error((0.1, 0.8))
        rows = [r for r in table.to_records() if r["pair"] == "2-3"]
        assert rows[1]["error"] > rows[0]["error"]

    def test_figure8_three_regimes(self):
        stats = experiments.figure8_neighbor_distributions(n=1500, p=1.0 / 60)
        peers = sorted(stats)
        good, central, bad = peers
        assert stats[good]["asymmetry"] > 0.1
        assert abs(stats[central]["mean_offset"]) < 30
        assert stats[bad]["unmatched_probability"] > 0.02

    @pytest.mark.slow
    def test_figure9_validation_table(self):
        table = experiments.figure9_validation(n=300, p=0.08, samples=50)
        rows = table.to_records()
        assert {row["choice"] for row in rows} == {1, 2}
        assert all(row["total_variation"] < 0.35 for row in rows)

    def test_figure10_table(self):
        table = experiments.figure10_bandwidth_cdf(points=10)
        percentages = table.column("percentage_of_hosts")
        assert percentages == sorted(percentages)

    def test_figure11_observations(self):
        result = experiments.figure11_efficiency(n=300)
        obs = result["observations"]
        assert obs["best_peer_efficiency"] < 1.0
        assert obs["max_efficiency"] > 1.0

    def test_swarm_experiment_metrics(self):
        metrics = experiments.swarm_stratification_experiment(
            leechers=25, rounds=60, piece_count=400, seed=4
        )
        assert metrics["completed"] <= 25
        assert -1.0 <= metrics["stratification_index"] <= 1.0
        assert metrics["arrivals"] == 0.0 and metrics["departures"] == 0.0
        assert metrics["final_swarm_size"] == 27.0  # 25 leechers + 2 seeds

    def test_swarm_experiment_with_scenario(self):
        metrics = experiments.swarm_stratification_experiment(
            leechers=15, rounds=25, piece_count=60, seed=4, scenario="poisson"
        )
        assert metrics["arrivals"] > 0
        assert metrics["completed"] > 0

    def test_scenario_timeline_is_prefix_consistent(self):
        """Later checkpoints extend earlier ones exactly (same seed)."""
        series = experiments.scenario_stratification_timeline(
            leechers=12,
            piece_count=40,
            seed=6,
            scenario="seed-linger",
            checkpoints=(4, 8),
        )
        (label, data), = series.items()
        assert label == "scenario=seed-linger"
        assert data["rounds"].tolist() == [4.0, 8.0]
        # Membership only ever grows along a prefix re-run.
        assert data["arrivals"][1] >= data["arrivals"][0]
        assert data["departures"][1] >= data["departures"][0]
        short = experiments.scenario_stratification_timeline(
            leechers=12,
            piece_count=40,
            seed=6,
            scenario="seed-linger",
            checkpoints=(4,),
        )["scenario=seed-linger"]
        assert short["stratification_index"][0] == data["stratification_index"][0]
        assert short["swarm_size"][0] == data["swarm_size"][0]

    def test_scenario_timeline_rejects_empty_checkpoints(self):
        with pytest.raises(ValueError):
            experiments.scenario_stratification_timeline(checkpoints=())

    def test_swarm_experiment_with_behavior_mix(self):
        metrics = experiments.swarm_stratification_experiment(
            leechers=15, rounds=25, piece_count=60, seed=4,
            behavior_mix="never_upload:0.2",
        )
        assert metrics["completed"] > 0
        plain = experiments.swarm_stratification_experiment(
            leechers=15, rounds=25, piece_count=60, seed=4
        )
        assert metrics != plain

    def test_fault_sweep_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="repetitions"):
            experiments.fault_sweep_experiment(repetitions=0)
        with pytest.raises(ValueError, match="outage_start"):
            experiments.fault_sweep_experiment(outage_start=0)
        with pytest.raises(ValueError, match="at least one"):
            experiments.fault_sweep_experiment(outages=())
        with pytest.raises(ValueError, match="negative"):
            experiments.fault_sweep_experiment(outages=(-1, 2))

    def test_fault_sweep_outage_changes_dynamics(self):
        table = experiments.fault_sweep_experiment(
            leechers=12, rounds=24, piece_count=60, seed=3,
            outages=(0, 8), outage_start=2, engine="fast",
        )["curves"]
        assert list(table["outage_rounds"]) == [0.0, 8.0]
        # Arrival counts are pure scenario draws, untouched by the outage;
        # the outage bites through *who* the queued arrivals meet, which
        # shows up in the trading structure.
        assert table["arrivals"][0] == table["arrivals"][1]
        assert (
            table["stratification_index"][0]
            != table["stratification_index"][1]
        )

    def test_behavior_sweep_curves(self):
        series = experiments.behavior_sweep_experiment(
            leechers=14,
            rounds=30,
            piece_count=60,
            seed=5,
            fractions=(0.0, 0.4),
        )
        curves = series["curves"]
        assert curves["fractions"].tolist() == [0.0, 0.4]
        assert curves["stratification_index"].shape == (2,)
        assert curves["standard_stratification_index"].shape == (2,)
        # The obedient baseline has only standard peers...
        assert curves["standard_peers"][0] == 14.0
        # ...and the adversarial point has some free-riders.
        assert curves["free_rider_peers"][1] > 0
        import numpy as np

        assert np.isnan(curves["free_rider_peers"][0])

    def test_behavior_sweep_engines_agree(self):
        kwargs = dict(
            leechers=12, rounds=20, piece_count=40, seed=9, fractions=(0.3,)
        )
        reference = experiments.behavior_sweep_experiment(
            engine="reference", **kwargs
        )["curves"]
        fast = experiments.behavior_sweep_experiment(engine="fast", **kwargs)[
            "curves"
        ]
        assert sorted(reference) == sorted(fast)
        for key in reference:
            assert reference[key].tolist() == fast[key].tolist()

    def test_behavior_sweep_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            experiments.behavior_sweep_experiment(fractions=())
        with pytest.raises(ValueError):
            experiments.behavior_sweep_experiment(fractions=(0.2, 1.5))
        with pytest.raises(ValueError):
            experiments.behavior_sweep_experiment(repetitions=0)


class TestCLI:
    def test_parser_lists_experiments(self):
        parser = build_parser()
        args = parser.parse_args(["list"])
        assert args.experiment == "list"

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out and "figure11" in out

    def test_run_single_experiment(self, capsys):
        assert main(["figure7"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out

    def test_run_table_experiment(self, capsys):
        assert main(["figure4-5"]) == 0
        out = capsys.readouterr().out
        assert "Figures 4-5" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure99"])


class TestCLIScenarioFlag:
    def test_parser_accepts_scenario(self):
        parser = build_parser()
        args = parser.parse_args(["swarm", "--scenario", "flashcrowd"])
        assert args.scenario == "flashcrowd"
        assert parser.parse_args(["swarm"]).scenario is None

    def test_parser_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["swarm", "--scenario", "tsunami"])

    def test_scenario_threaded_to_swarm_experiment(self, capsys, monkeypatch):
        seen = {}
        original = experiments.swarm_stratification_experiment

        def spy(*, seed=0, engine="reference", scenario=None):
            seen.update(seed=seed, engine=engine, scenario=scenario)
            return original(
                leechers=12, rounds=10, piece_count=30,
                seed=seed, engine=engine, scenario=scenario,
            )

        monkeypatch.setitem(cli._EXPERIMENTS, "swarm", spy)
        assert main(["swarm", "--scenario", "poisson", "--engine", "fast"]) == 0
        assert seen["scenario"] == "poisson"
        assert seen["engine"] == "fast"
        assert "arrivals" in capsys.readouterr().out

    def test_scenario_timeline_runs_from_cli(self, capsys):
        assert main(["scenario-timeline"]) == 0
        out = capsys.readouterr().out
        assert "scenario=poisson" in out
        assert "stratification_index" in out


class TestCLIBehaviorFlag:
    def test_parser_accepts_behavior_mix(self):
        parser = build_parser()
        args = parser.parse_args(["swarm", "--behavior-mix", "freeriders"])
        assert args.behavior_mix == "freeriders"
        assert parser.parse_args(["swarm"]).behavior_mix is None

    def test_unknown_behavior_mix_rejected_with_names(self, capsys):
        with pytest.raises(SystemExit):
            main(["swarm", "--behavior-mix", "anarchy"])
        err = capsys.readouterr().err
        assert "anarchy" in err
        assert "freeriders" in err and "bitthief" in err

    def test_bad_mix_spec_rejected(self):
        with pytest.raises(SystemExit):
            main(["swarm", "--behavior-mix", "free_rider:lots"])

    def test_behavior_mix_threaded_to_swarm_experiment(self, capsys, monkeypatch):
        seen = {}
        original = experiments.swarm_stratification_experiment

        def spy(*, seed=0, engine="reference", scenario=None,
                behavior_mix=None):
            seen.update(behavior_mix=behavior_mix)
            return original(
                leechers=12, rounds=10, piece_count=30,
                seed=seed, engine=engine, scenario=scenario,
                behavior_mix=behavior_mix,
            )

        monkeypatch.setitem(cli._EXPERIMENTS, "swarm", spy)
        assert main(["swarm", "--behavior-mix", "free_rider:0.25"]) == 0
        assert seen == {"behavior_mix": "free_rider:0.25"}
        assert "stratification_index" in capsys.readouterr().out

    def test_behavior_sweep_runs_from_cli(self, capsys, monkeypatch):
        def small(*, seed=0, engine="reference", workers=1, cache=None):
            return experiments.behavior_sweep_experiment(
                leechers=10, rounds=12, piece_count=30,
                fractions=(0.0, 0.3),
                seed=seed, engine=engine, workers=workers, cache=cache,
            )

        monkeypatch.setitem(cli._EXPERIMENTS, "behavior-sweep", small)
        assert main(["behavior-sweep", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "curves" in out
        assert "stratification_index" in out


class TestCLIFaultsFlag:
    def test_parser_accepts_faults(self):
        parser = build_parser()
        args = parser.parse_args(["swarm", "--faults", "split-brain"])
        assert args.faults == "split-brain"
        assert parser.parse_args(["swarm"]).faults is None

    def test_unknown_faults_preset_rejected_with_names(self, capsys):
        with pytest.raises(SystemExit):
            main(["swarm", "--faults", "chaos"])
        err = capsys.readouterr().err
        assert "chaos" in err
        assert "split-brain" in err and "lossy" in err

    def test_bad_faults_spec_rejected(self):
        with pytest.raises(SystemExit):
            main(["swarm", "--faults", "loss:plenty"])

    def test_faults_threaded_to_swarm_experiment(self, capsys, monkeypatch):
        seen = {}
        original = experiments.swarm_stratification_experiment

        def spy(*, seed=0, engine="reference", scenario=None, faults=None):
            seen.update(faults=faults)
            return original(
                leechers=12, rounds=10, piece_count=30,
                seed=seed, engine=engine, scenario=scenario, faults=faults,
            )

        monkeypatch.setitem(cli._EXPERIMENTS, "swarm", spy)
        assert main(["swarm", "--faults", "outage:3+2"]) == 0
        assert seen == {"faults": "outage:3+2"}
        assert "stratification_index" in capsys.readouterr().out

    def test_fault_sweep_runs_from_cli(self, capsys, monkeypatch):
        def small(*, seed=0, engine="reference", scenario="poisson",
                  workers=1, cache=None):
            return experiments.fault_sweep_experiment(
                leechers=10, rounds=16, piece_count=40, seed=seed,
                engine=engine, scenario=scenario, outages=(0, 4),
                outage_start=3, workers=workers, cache=cache,
            )

        monkeypatch.setitem(cli._EXPERIMENTS, "fault-sweep", small)
        assert main(["fault-sweep", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "outage_rounds" in out
        assert "stratification_index" in out


class TestCLIObserveFlags:
    def test_parser_accepts_observe_and_scrape_interval(self):
        parser = build_parser()
        args = parser.parse_args(["swarm", "--observe", "--scrape-interval", "3"])
        assert args.observe is True
        assert args.scrape_interval == 3
        defaults = parser.parse_args(["swarm"])
        assert defaults.observe is False
        assert defaults.scrape_interval is None

    def test_invalid_scrape_interval_rejected(self):
        with pytest.raises(SystemExit):
            main(["swarm", "--scrape-interval", "0"])
        with pytest.raises(SystemExit):
            main(["telemetry", "--scrape-interval", "-2"])

    def test_observe_threaded_to_swarm_experiment(self, capsys, monkeypatch):
        seen = {}
        original = experiments.swarm_stratification_experiment

        def spy(*, seed=0, engine="reference", scenario=None,
                observe=False, scrape_interval=1):
            seen.update(observe=observe, scrape_interval=scrape_interval)
            return original(
                leechers=12, rounds=10, piece_count=30,
                seed=seed, engine=engine, scenario=scenario,
                observe=observe, scrape_interval=scrape_interval,
            )

        monkeypatch.setitem(cli._EXPERIMENTS, "swarm", spy)
        assert main(["swarm", "--observe", "--scrape-interval", "2"]) == 0
        assert seen == {"observe": True, "scrape_interval": 2}
        out = capsys.readouterr().out
        assert "reported_downloads" in out
        assert "observed_stratification_index" in out

    def test_observe_flag_not_forced_when_absent(self, monkeypatch):
        seen = {}

        def spy(*, seed=0, engine="reference", scenario=None,
                observe=False, scrape_interval=1):
            seen.update(observe=observe, scrape_interval=scrape_interval)
            return {"completed": 0.0}

        monkeypatch.setitem(cli._EXPERIMENTS, "swarm", spy)
        assert main(["swarm"]) == 0
        assert seen == {"observe": False, "scrape_interval": 1}

    def test_telemetry_runs_from_cli(self, capsys, monkeypatch):
        def small(*, seed=0, engine="reference", scenario="poisson",
                  scrape_interval=2, workers=1, cache=None):
            return experiments.telemetry_experiment(
                leechers=10, rounds=10, piece_count=30,
                seed=seed, engine=engine, scenario=scenario,
                scrape_interval=scrape_interval, poll_budget=5,
                workers=workers, cache=cache,
            )

        monkeypatch.setitem(cli._EXPERIMENTS, "telemetry", small)
        assert main(["telemetry", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "== ground_truth" in out
        assert "== observed" in out
        assert "== threshold_sensitivity" in out
        assert "== scrape_series" in out
        assert "confirmed_downloads" in out


class TestCLIEngineFlag:
    def test_parser_accepts_engine(self):
        parser = build_parser()
        args = parser.parse_args(["figure1", "--engine", "fast"])
        assert args.engine == "fast"
        assert parser.parse_args(["figure1"]).engine == "reference"

    def test_parser_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure1", "--engine", "warp"])

    def test_engine_fast_reaches_fast_swarm_engine(self, capsys, monkeypatch):
        import repro.bittorrent.fast.swarm as fast_swarm

        calls = []
        original = fast_swarm.FastSwarmSimulator.run

        def spy(self):
            calls.append(type(self).__name__)
            return original(self)

        monkeypatch.setattr(fast_swarm.FastSwarmSimulator, "run", spy)
        assert main(["swarm", "--engine", "fast"]) == 0
        assert calls == ["FastSwarmSimulator"]
        assert "stratification_index" in capsys.readouterr().out

    def test_engine_fast_reaches_fast_convergence_engine(self, monkeypatch):
        from repro.core.fast import dynamics as fast_dynamics

        class Reached(Exception):
            pass

        def boom(self, **kwargs):
            raise Reached

        monkeypatch.setattr(fast_dynamics.FastConvergenceSimulator, "run", boom)
        # Sweep-driven experiments wrap task failures in SweepTaskError
        # (naming the failed point); the sentinel survives as the cause.
        with pytest.raises(SweepTaskError) as info:
            main(["figure1", "--engine", "fast"])
        assert isinstance(info.value.__cause__, Reached)
        # The churn command threads the flag too (its fast path runs
        # through the churn-specific array engine, not the simulator).
        from repro.core import churn as churn_module

        monkeypatch.setattr(churn_module._FastChurnEngine, "refresh", boom)
        with pytest.raises(SweepTaskError) as info:
            main(["figure3", "--engine", "fast"])
        assert isinstance(info.value.__cause__, Reached)

    def test_engine_flag_ignored_by_engineless_experiments(self, capsys):
        # figure7 is purely analytical; the flag must not break it.
        assert main(["figure7", "--engine", "fast"]) == 0
        assert "Figure 7" in capsys.readouterr().out
