"""Tests for the metric recorder, experiment runner and result tables."""

from __future__ import annotations

import pytest

from repro.sim.experiment import ParameterGrid, group_results, run_experiment
from repro.sim.random_source import RandomSource
from repro.sim.recorder import MetricRecorder, TimeSeries
from repro.sim.results import ResultTable, aggregate


class TestTimeSeries:
    def test_append_and_arrays(self):
        series = TimeSeries("disorder")
        series.append(0.0, 1.0)
        series.append(1.0, 0.5)
        times, values = series.as_arrays()
        assert times.tolist() == [0.0, 1.0]
        assert values.tolist() == [1.0, 0.5]

    def test_rejects_out_of_order_times(self):
        series = TimeSeries("x")
        series.append(2.0, 1.0)
        with pytest.raises(ValueError):
            series.append(1.0, 1.0)

    def test_value_at(self):
        series = TimeSeries("x")
        series.append(0.0, 10.0)
        series.append(5.0, 20.0)
        assert series.value_at(3.0) == 10.0
        assert series.value_at(5.0) == 20.0
        with pytest.raises(ValueError):
            series.value_at(-1.0)

    def test_first_time_below(self):
        series = TimeSeries("x")
        for t, v in [(0, 1.0), (1, 0.6), (2, 0.1), (3, 0.05)]:
            series.append(t, v)
        assert series.first_time_below(0.5) == 2
        assert series.first_time_below(0.001) is None

    def test_tail_mean(self):
        series = TimeSeries("x")
        for t in range(10):
            series.append(t, float(t))
        assert series.tail_mean(0.2) == pytest.approx(8.5)

    def test_statistics_on_empty_series_raise(self):
        series = TimeSeries("x")
        with pytest.raises(ValueError):
            series.last()
        with pytest.raises(ValueError):
            series.max()
        with pytest.raises(ValueError):
            series.min()
        with pytest.raises(ValueError):
            series.value_at(0.0)
        with pytest.raises(ValueError):
            series.tail_mean()

    def test_min_and_windowed_mean(self):
        series = TimeSeries("x")
        for t, v in [(0, 4.0), (1, 1.0), (2, 3.0), (3, 2.0)]:
            series.append(t, v)
        assert series.min() == 1.0
        assert series.mean() == pytest.approx(2.5)
        assert series.mean(after=1.0) == pytest.approx(2.5)
        with pytest.raises(ValueError):
            series.mean(after=3.0)

    def test_length_and_iteration(self):
        series = TimeSeries("x")
        series.append(0.0, 1.0)
        series.append(2.0, 3.0)
        assert len(series) == 2
        assert list(series) == [(0.0, 1.0), (2.0, 3.0)]

    def test_equal_times_allowed(self):
        # Non-decreasing, not strictly increasing: co-scheduled samples
        # (a scrape and a poll in the same round) share a timestamp.
        series = TimeSeries("x")
        series.append(1.0, 1.0)
        series.append(1.0, 2.0)
        assert series.value_at(1.0) == 2.0

    def test_tail_mean_rejects_bad_fraction(self):
        series = TimeSeries("x")
        series.append(0.0, 1.0)
        with pytest.raises(ValueError):
            series.tail_mean(0.0)
        with pytest.raises(ValueError):
            series.tail_mean(1.5)


class TestMetricRecorder:
    def test_record_and_lookup(self):
        recorder = MetricRecorder()
        recorder.record("a", 0.0, 1.0)
        recorder.record("a", 1.0, 2.0)
        assert recorder["a"].last() == 2.0
        assert "a" in recorder
        with pytest.raises(KeyError):
            recorder["missing"]

    def test_record_many(self):
        recorder = MetricRecorder()
        recorder.record_many(0.0, {"a": 1.0, "b": 2.0})
        assert recorder.names() == ["a", "b"]

    def test_merge_with_prefix(self):
        first = MetricRecorder()
        first.record("a", 0.0, 1.0)
        second = MetricRecorder()
        second.merge(first, prefix="run0/")
        assert second.names() == ["run0/a"]

    def test_summary(self):
        recorder = MetricRecorder()
        for t, v in enumerate([1.0, 3.0, 2.0]):
            recorder.record("m", float(t), v)
        summary = recorder.summary()["m"]
        assert summary["count"] == 3
        assert summary["max"] == 3.0
        assert summary["last"] == 2.0

    def test_summary_skips_empty_series(self):
        recorder = MetricRecorder()
        recorder.series("created-but-never-sampled")
        recorder.record("m", 0.0, 1.0)
        assert set(recorder.summary()) == {"m"}
        assert recorder.names() == ["created-but-never-sampled", "m"]

    def test_merge_preserves_time_order_check(self):
        first = MetricRecorder()
        first.record("a", 5.0, 1.0)
        second = MetricRecorder()
        second.record("a", 9.0, 2.0)
        # Merging without a prefix appends onto the existing series, so
        # the out-of-order guard still applies.
        with pytest.raises(ValueError):
            second.merge(first)
        first.record("a", 10.0, 3.0)
        third = MetricRecorder()
        third.record("a", 1.0, 0.0)
        third.merge(first, prefix="obs/")
        assert third["obs/a"].last() == 3.0
        assert third["a"].last() == 0.0

    def test_observer_recorder_round_trip(self):
        # The telemetry layer streams its campaign into a recorder; make
        # sure the streaming paths it relies on behave over that shape.
        from repro.bittorrent.swarm import SwarmConfig, SwarmSimulator
        from repro.bittorrent.telemetry import ObserverConfig

        config = SwarmConfig(
            leechers=8, seeds=1, piece_count=16, rounds=6, start_completion=0.3
        )
        result = SwarmSimulator(
            config, seed=2, observer=ObserverConfig(poll_interval=2)
        ).run()
        recorder = result.observed.to_recorder()
        seeders = recorder["scrape/seeders"]
        assert len(seeders) == len(result.observed.scrapes)
        assert seeders.min() >= 0.0
        assert recorder["poll/peers_polled"].max() <= config.leechers + config.seeds
        merged = MetricRecorder()
        merged.merge(recorder, prefix="obs/")
        assert "obs/scrape/snatches" in merged
        assert merged.summary()["obs/scrape/snatches"]["last"] == float(
            result.observed.reported_downloads()
        )


class TestParameterGridAndExperiment:
    def test_grid_product(self):
        grid = ParameterGrid(n=[10, 20], d=[1, 2, 3])
        assert len(grid) == 6
        combos = list(grid)
        assert {"n": 10, "d": 1} in combos
        assert {"n": 20, "d": 3} in combos

    def test_grid_rejects_empty(self):
        with pytest.raises(ValueError):
            ParameterGrid()
        with pytest.raises(ValueError):
            ParameterGrid(n=[])

    def test_experiment_runs_all_combinations(self):
        grid = ParameterGrid(x=[1, 2], y=[3])
        results = run_experiment(
            "demo", grid, lambda params, source: {"sum": params["x"] + params["y"]},
            repetitions=2,
        )
        assert len(results) == 4
        assert {r.metric("sum") for r in results} == {4, 5}

    def test_experiment_seeds_are_reproducible(self):
        grid = ParameterGrid(x=[1])

        def runner(params, source: RandomSource):
            return {"draw": float(source.stream("r").random())}

        first = run_experiment("demo", grid, runner, base_seed=3)
        second = run_experiment("demo", grid, runner, base_seed=3)
        assert first[0].metric("draw") == second[0].metric("draw")

    def test_experiment_seeds_differ_across_repetitions(self):
        grid = ParameterGrid(x=[1])

        def runner(params, source: RandomSource):
            return {"draw": float(source.stream("r").random())}

        results = run_experiment("demo", grid, runner, repetitions=3, base_seed=3)
        draws = [r.metric("draw") for r in results]
        assert len(set(draws)) == 3

    def test_missing_metric_raises(self):
        grid = ParameterGrid(x=[1])
        results = run_experiment("demo", grid, lambda p, s: {"a": 1})
        with pytest.raises(KeyError):
            results[0].metric("b")

    def test_group_results(self):
        grid = ParameterGrid(x=[1, 2])
        results = run_experiment("demo", grid, lambda p, s: {"v": p["x"]}, repetitions=2)
        grouped = group_results(results, by=["x"])
        assert set(grouped) == {(1,), (2,)}
        assert all(len(v) == 2 for v in grouped.values())


class TestResultTable:
    def test_add_row_and_render(self):
        table = ResultTable("demo", ["a", "b"])
        table.add_row(a=1, b=2.5)
        text = table.to_text()
        assert "demo" in text
        assert "2.5" in text

    def test_unknown_column_rejected(self):
        table = ResultTable("demo", ["a"])
        with pytest.raises(KeyError):
            table.add_row(z=1)

    def test_column_and_sort(self):
        table = ResultTable("demo", ["a"])
        table.add_row(a=3)
        table.add_row(a=1)
        table.sort_by("a")
        assert table.column("a") == [1, 3]

    def test_aggregate(self):
        stats = aggregate([1.0, 2.0, 3.0], ["mean", "min", "max", "median", "count"])
        assert stats["mean"] == 2.0
        assert stats["count"] == 3

    def test_aggregate_rejects_empty_and_unknown(self):
        with pytest.raises(ValueError):
            aggregate([])
        with pytest.raises(KeyError):
            aggregate([1.0], ["mode"])
