"""Fast swarm engine vs reference swarm simulator: the reference is the oracle.

Mirrors ``tests/test_engine_equivalence.py`` for the BitTorrent layer: under
a shared seed the packed-bit array engine must reproduce the reference
:class:`~repro.bittorrent.swarm.SwarmSimulator` *bit for bit* -- every
bitfield, every float of transfer accounting, every reciprocated-TFT count,
every completion round.  The suite also pins down swarm determinism (same
config + seed => same result, run to run) and exercises the corners the
batched engine could plausibly get wrong: optimistic-unchoke rotation
periods, warmup-round boundaries, zero regular slots, seedless swarms, all
three piece-selection policies, and -- via
:class:`~repro.bittorrent.scenarios.ScenarioSchedule` -- dynamic membership
(Poisson arrivals, flash crowds, leave/linger departure policies), where
the fast engine's grow/tombstone array design has the most room to drift.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bittorrent.behaviors import (
    BEHAVIOR_MIX_NAMES,
    BEHAVIOR_NAMES,
    STANDARD,
    BehaviorMix,
)
from repro.bittorrent.fast.bitfields import BitfieldMatrix
from repro.bittorrent.fast.choking import batched_regular_slots
from repro.bittorrent.fast.swarm import FastSwarmSimulator
from repro.bittorrent.fast.tracker import FastTracker
from repro.bittorrent.faults import FAULT_PRESET_NAMES, FaultEvent, FaultSchedule
from repro.bittorrent.resilience import RESILIENCE_PRESET_NAMES, ResiliencePolicy
from repro.bittorrent.scenarios import (
    ARRIVAL_PROCESSES,
    DEPARTURE_POLICIES,
    SCENARIO_NAMES,
    ScenarioSchedule,
    make_scenario,
)
from repro.bittorrent.swarm import (
    SwarmConfig,
    SwarmResult,
    SwarmSimulator,
    stratification_index,
)
from repro.bittorrent.tracker import Tracker
from repro.core.exceptions import ModelError
from repro.sim.random_source import RandomSource

pytestmark = pytest.mark.equivalence

_settings = settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def assert_results_identical(reference: SwarmResult, fast: SwarmResult) -> None:
    """Field-for-field, float-for-float equality of two swarm results."""
    assert reference.completed == fast.completed
    assert reference.rounds_run == fast.rounds_run
    assert reference.arrivals == fast.arrivals
    assert reference.departures == fast.departures
    assert reference.collaboration_volume == fast.collaboration_volume
    assert reference.tft_reciprocal_rounds == fast.tft_reciprocal_rounds
    assert reference.resilience == fast.resilience
    assert set(reference.peers) == set(fast.peers)
    for pid in reference.peers:
        a, b = reference.peers[pid], fast.peers[pid]
        assert a.peer_id == b.peer_id
        assert a.upload_kbps == b.upload_kbps
        assert a.is_seed == b.is_seed
        assert a.neighbors == b.neighbors
        assert a.bitfield.held() == b.bitfield.held()
        assert a.downloaded_kbit == b.downloaded_kbit
        assert a.uploaded_kbit == b.uploaded_kbit
        assert a.partial_kbit == b.partial_kbit
        assert a.received_last_round == b.received_last_round
        assert a.completed_round == b.completed_round
        assert a.arrival_round == b.arrival_round
        assert a.departed_round == b.departed_round
        assert a.behavior == b.behavior
        assert a.locality_group == b.locality_group


def run_both(config: SwarmConfig, seed: int, **kwargs):
    reference = SwarmSimulator(config, seed=seed, **kwargs).run()
    fast = SwarmSimulator(config, seed=seed, engine="fast", **kwargs).run()
    assert_results_identical(reference, fast)
    return reference, fast


class TestEngineEquivalence:
    def test_default_style_swarm(self):
        config = SwarmConfig(
            leechers=30,
            seeds=2,
            piece_count=80,
            rounds=30,
            start_completion=0.3,
            seed_upload_kbps=1500.0,
        )
        reference, fast = run_both(config, seed=5)
        assert reference.completed > 0
        # Derived metrics agree because the raw results agree.
        assert stratification_index(reference) == stratification_index(fast)
        assert reference.download_rates() == fast.download_rates()
        assert reference.share_ratios() == fast.share_ratios()

    def test_explicit_bandwidths(self):
        rng = np.random.default_rng(3)
        bandwidths = np.exp(rng.uniform(np.log(50.0), np.log(3000.0), 20))
        config = SwarmConfig(leechers=20, seeds=1, piece_count=50, rounds=25)
        run_both(config, seed=8, bandwidths=bandwidths)

    @pytest.mark.parametrize(
        "policy", ["rarest-first", "random", "sequential"]
    )
    def test_all_piece_selection_policies(self, policy):
        config = SwarmConfig(
            leechers=15,
            seeds=1,
            piece_count=40,
            rounds=20,
            piece_selection=policy,
            start_completion=0.2,
        )
        run_both(config, seed=13)

    def test_seedless_swarm(self):
        config = SwarmConfig(
            leechers=12, seeds=0, piece_count=40, rounds=15, start_completion=0.5
        )
        run_both(config, seed=9)

    def test_zero_regular_slots_all_optimistic(self):
        config = SwarmConfig(
            leechers=10,
            seeds=1,
            piece_count=30,
            rounds=12,
            regular_slots=0,
            optimistic_slots=2,
        )
        reference, _ = run_both(config, seed=4)
        assert reference.tft_reciprocal_rounds == {}

    def test_zero_optimistic_slots(self):
        config = SwarmConfig(
            leechers=12,
            seeds=2,
            piece_count=30,
            rounds=15,
            optimistic_slots=0,
            start_completion=0.4,
        )
        run_both(config, seed=6)

    def test_bootstrap_complete_leechers(self):
        # round(0.95 * 20) == 19, one piece short; round(0.98 * 50) == 49.
        config = SwarmConfig(
            leechers=8, seeds=1, piece_count=20, rounds=8, start_completion=0.95
        )
        run_both(config, seed=2)

    @pytest.mark.parametrize("period", [1, 2, 5])
    def test_optimistic_rotation_periods(self, period):
        """The rotation state machine must stay draw-for-draw identical."""
        config = SwarmConfig(
            leechers=14,
            seeds=1,
            piece_count=60,
            rounds=4 * period + 3,
            optimistic_period=period,
            start_completion=0.2,
        )
        run_both(config, seed=21)

    @pytest.mark.parametrize("warmup", [0, 1, 7, 100])
    def test_warmup_round_boundaries(self, warmup):
        """TFT statistics start exactly at round warmup_rounds + 1."""
        config = SwarmConfig(
            leechers=16,
            seeds=1,
            piece_count=50,
            rounds=8,
            warmup_rounds=warmup,
            start_completion=0.3,
        )
        reference, fast = run_both(config, seed=17)
        if warmup >= reference.rounds_run:
            assert reference.tft_reciprocal_rounds == {}
            assert fast.tft_reciprocal_rounds == {}
        if warmup == 0 and reference.tft_reciprocal_rounds:
            # With no warmup, counts may reach the full horizon.
            assert max(reference.tft_reciprocal_rounds.values()) <= reference.rounds_run

    @pytest.mark.slow
    @_settings
    @given(
        leechers=st.integers(min_value=4, max_value=20),
        seeds=st.integers(min_value=0, max_value=2),
        piece_count=st.integers(min_value=8, max_value=50),
        rounds=st.integers(min_value=2, max_value=15),
        start_completion=st.sampled_from([0.0, 0.25, 0.6, 0.9]),
        policy=st.sampled_from(["rarest-first", "random", "sequential"]),
        regular_slots=st.integers(min_value=0, max_value=4),
        optimistic_slots=st.integers(min_value=0, max_value=2),
        optimistic_period=st.integers(min_value=1, max_value=4),
        warmup=st.integers(min_value=0, max_value=6),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_equivalence_property(
        self,
        leechers,
        seeds,
        piece_count,
        rounds,
        start_completion,
        policy,
        regular_slots,
        optimistic_slots,
        optimistic_period,
        warmup,
        seed,
    ):
        config = SwarmConfig(
            leechers=leechers,
            seeds=seeds,
            piece_count=piece_count,
            rounds=rounds,
            start_completion=start_completion,
            piece_selection=policy,
            regular_slots=regular_slots,
            optimistic_slots=optimistic_slots,
            optimistic_period=optimistic_period,
            warmup_rounds=warmup,
            announce_size=5,
        )
        run_both(config, seed=seed)


@st.composite
def scenario_schedules(draw) -> ScenarioSchedule:
    """Valid ScenarioSchedules across the whole arrival/departure space."""
    arrivals = draw(st.sampled_from(ARRIVAL_PROCESSES))
    kwargs = {"arrivals": arrivals}
    if arrivals == "poisson":
        kwargs["arrival_rate"] = draw(st.sampled_from([0.5, 1.5, 3.0]))
    elif arrivals == "flashcrowd":
        kwargs["burst_round"] = draw(st.integers(min_value=1, max_value=6))
        kwargs["burst_size"] = draw(st.integers(min_value=1, max_value=20))
        kwargs["background_rate"] = draw(st.sampled_from([0.0, 1.0]))
    kwargs["max_arrivals"] = draw(st.sampled_from([None, 8, 30]))
    kwargs["departure"] = draw(st.sampled_from(DEPARTURE_POLICIES))
    if kwargs["departure"] == "linger":
        kwargs["linger_rounds"] = draw(st.integers(min_value=0, max_value=4))
    kwargs["arrival_completion"] = draw(st.sampled_from([0.0, 0.25, 0.6]))
    return ScenarioSchedule(**kwargs)


class TestScenarioEquivalence:
    """Dynamic membership must be bit-identical across engines too."""

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_named_scenarios(self, name):
        config = SwarmConfig(
            leechers=18, seeds=2, piece_count=50, rounds=20, start_completion=0.3
        )
        reference, fast = run_both(config, seed=11, scenario=name)
        if name != "static":
            assert reference.arrivals > 0
        assert stratification_index(reference) == stratification_index(fast)
        assert reference.download_rates() == fast.download_rates()

    def test_static_schedule_matches_no_scenario(self):
        """Enabling the scenario machinery must not perturb a static swarm."""
        config = SwarmConfig(leechers=14, seeds=1, piece_count=40, rounds=12)
        plain, _ = run_both(config, seed=3)
        scheduled, _ = run_both(config, seed=3, scenario=ScenarioSchedule())
        assert_results_identical(plain, scheduled)

    @pytest.mark.parametrize("linger", [0, 1, 3])
    def test_linger_departure_boundaries(self, linger):
        """Completed leechers must seed exactly `linger` rounds, both engines."""
        scenario = ScenarioSchedule(
            arrivals="poisson",
            arrival_rate=1.5,
            departure="linger",
            linger_rounds=linger,
        )
        config = SwarmConfig(
            leechers=15, seeds=1, piece_count=40, rounds=18, start_completion=0.4
        )
        reference, _ = run_both(config, seed=23, scenario=scenario)
        for peer in reference.peers.values():
            if peer.departed_round is not None:
                assert peer.completed_round is not None
                assert peer.departed_round == peer.completed_round + 1 + linger

    def test_flash_crowd_with_background_rate(self):
        scenario = ScenarioSchedule(
            arrivals="flashcrowd",
            burst_round=3,
            burst_size=30,
            background_rate=1.0,
            departure="leave",
        )
        config = SwarmConfig(
            leechers=12, seeds=2, piece_count=45, rounds=16, start_completion=0.3
        )
        reference, _ = run_both(config, seed=29, scenario=scenario)
        assert reference.arrivals >= 30
        burst_joiners = [
            p for p in reference.peers.values() if p.arrival_round == 3
        ]
        assert len(burst_joiners) >= 30

    def test_bootstrapped_arrivals(self):
        scenario = ScenarioSchedule(
            arrivals="poisson",
            arrival_rate=2.0,
            departure="linger",
            linger_rounds=2,
            arrival_completion=0.5,
        )
        config = SwarmConfig(
            leechers=12, seeds=1, piece_count=40, rounds=15, start_completion=0.2
        )
        run_both(config, seed=31, scenario=scenario)

    def test_capped_arrivals_allow_early_exit(self):
        """With max_arrivals exhausted the early completion exit re-arms."""
        scenario = ScenarioSchedule(
            arrivals="poisson", arrival_rate=4.0, max_arrivals=6, departure="leave"
        )
        config = SwarmConfig(
            leechers=10, seeds=2, piece_count=20, rounds=60, start_completion=0.5
        )
        reference, fast = run_both(config, seed=37, scenario=scenario)
        assert reference.arrivals == 6
        assert reference.rounds_run < config.rounds

    def test_departures_prune_active_neighbor_sets(self):
        scenario = make_scenario("poisson")
        config = SwarmConfig(
            leechers=16, seeds=1, piece_count=30, rounds=20, start_completion=0.5
        )
        reference, fast = run_both(config, seed=41, scenario=scenario)
        assert reference.departures > 0
        departed = {
            pid for pid, p in reference.peers.items() if p.departed_round is not None
        }
        for result in (reference, fast):
            for peer in result.present_peers():
                assert not (peer.neighbors & departed)

    @pytest.mark.slow
    @_settings
    @given(
        scenario=scenario_schedules(),
        leechers=st.integers(min_value=4, max_value=16),
        seeds=st.integers(min_value=0, max_value=2),
        piece_count=st.integers(min_value=8, max_value=40),
        rounds=st.integers(min_value=2, max_value=14),
        start_completion=st.sampled_from([0.0, 0.3, 0.7]),
        policy=st.sampled_from(["rarest-first", "random", "sequential"]),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_scenario_equivalence_property(
        self,
        scenario,
        leechers,
        seeds,
        piece_count,
        rounds,
        start_completion,
        policy,
        seed,
    ):
        """fast == reference bit-for-bit over the whole scenario space."""
        config = SwarmConfig(
            leechers=leechers,
            seeds=seeds,
            piece_count=piece_count,
            rounds=rounds,
            start_completion=start_completion,
            piece_selection=policy,
            announce_size=5,
        )
        run_both(config, seed=seed, scenario=scenario)


@st.composite
def behavior_mixes(draw) -> BehaviorMix:
    """Valid BehaviorMixes: 0-3 adversarial classes plus seed/locality knobs."""
    adversarial = [name for name in BEHAVIOR_NAMES if name != STANDARD]
    chosen = draw(
        st.lists(st.sampled_from(adversarial), min_size=0, max_size=3, unique=True)
    )
    fractions = {
        name: draw(st.sampled_from([0.1, 0.25, 0.33])) for name in chosen
    }
    seed_behavior = draw(st.sampled_from([STANDARD, "super_seed", "partial_seed"]))
    locality_groups = draw(st.sampled_from([1, 2, 4]))
    return BehaviorMix(
        fractions=fractions,
        seed_behavior=seed_behavior,
        locality_groups=locality_groups,
    )


class TestBehaviorEquivalence:
    """Every client behavior must be bit-identical across engines."""

    BASE = dict(leechers=18, seeds=2, piece_count=50, rounds=20, start_completion=0.3)

    @pytest.mark.parametrize(
        "name", [name for name in BEHAVIOR_NAMES if name != STANDARD]
    )
    def test_single_behavior_classes(self, name):
        """Each adversarial class alone, at a fraction that guarantees members."""
        config = SwarmConfig(
            behaviors=BehaviorMix(fractions={name: 0.4}), **self.BASE
        )
        reference, fast = run_both(config, seed=47)
        assert any(p.behavior == name for p in reference.leechers())
        assert reference.download_rates() == fast.download_rates()

    @pytest.mark.parametrize("preset", BEHAVIOR_MIX_NAMES)
    def test_mix_presets(self, preset):
        config = SwarmConfig(behaviors=preset, **self.BASE)
        run_both(config, seed=53)

    def test_trivial_mix_matches_no_mix(self):
        """Enabling the behavior layer with no adversaries draws nothing."""
        config = SwarmConfig(**self.BASE)
        plain, _ = run_both(config, seed=59)
        mixed, _ = run_both(
            SwarmConfig(behaviors=BehaviorMix(), **self.BASE), seed=59
        )
        assert_results_identical(plain, mixed)

    def test_super_seeding_reveals_one_piece_per_transfer(self):
        config = SwarmConfig(
            behaviors=BehaviorMix(seed_behavior="super_seed"), **self.BASE
        )
        run_both(config, seed=61)

    def test_never_upload_peers_upload_nothing(self):
        config = SwarmConfig(
            behaviors=BehaviorMix(fractions={"never_upload": 0.3}), **self.BASE
        )
        reference, _ = run_both(config, seed=67)
        thieves = [p for p in reference.leechers() if p.behavior == "never_upload"]
        assert thieves
        assert all(p.uploaded_kbit == 0.0 for p in thieves)

    def test_partial_seeds_never_complete(self):
        config = SwarmConfig(
            behaviors=BehaviorMix(fractions={"partial_seed": 0.3}), **self.BASE
        )
        reference, _ = run_both(config, seed=71)
        partial = [p for p in reference.leechers() if p.behavior == "partial_seed"]
        assert partial
        assert all(p.completed_round is None for p in partial)
        assert all(not p.bitfield.is_complete() for p in partial)

    def test_behaviors_under_churn(self):
        """Behavior assignment of arrivals stays identical under every scenario."""
        config = SwarmConfig(behaviors="hostile", **self.BASE)
        for name in SCENARIO_NAMES:
            run_both(config, seed=73, scenario=name)

    def test_arrival_mix_override(self):
        """A scenario's own mix governs arrivals; the swarm mix, the initial set."""
        scenario = ScenarioSchedule(
            arrivals="flashcrowd",
            burst_round=3,
            burst_size=20,
            behaviors=BehaviorMix(fractions={"free_rider": 1.0}),
        )
        config = SwarmConfig(**self.BASE)
        reference, _ = run_both(config, seed=79, scenario=scenario)
        joiners = [p for p in reference.leechers() if p.arrival_round >= 3]
        assert joiners
        assert all(p.behavior == "free_rider" for p in joiners)
        initial = [p for p in reference.leechers() if p.arrival_round == 0]
        assert all(p.behavior == STANDARD for p in initial)

    @pytest.mark.slow
    @_settings
    @given(
        mix=behavior_mixes(),
        scenario=scenario_schedules(),
        leechers=st.integers(min_value=4, max_value=16),
        seeds=st.integers(min_value=0, max_value=2),
        piece_count=st.integers(min_value=8, max_value=40),
        rounds=st.integers(min_value=2, max_value=14),
        start_completion=st.sampled_from([0.0, 0.3, 0.7]),
        policy=st.sampled_from(["rarest-first", "random", "sequential"]),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_behavior_equivalence_property(
        self,
        mix,
        scenario,
        leechers,
        seeds,
        piece_count,
        rounds,
        start_completion,
        policy,
        seed,
    ):
        """fast == reference bit-for-bit over mixed behaviors x scenarios."""
        config = SwarmConfig(
            leechers=leechers,
            seeds=seeds,
            piece_count=piece_count,
            rounds=rounds,
            start_completion=start_completion,
            piece_selection=policy,
            announce_size=5,
            behaviors=mix,
        )
        run_both(config, seed=seed, scenario=scenario)


@st.composite
def fault_schedules(draw) -> FaultSchedule:
    """Valid FaultSchedules: any subset of the four fault kinds."""
    events = []
    if draw(st.booleans()):
        events.append(
            FaultEvent(
                kind="outage",
                start=draw(st.integers(min_value=1, max_value=8)),
                rounds=draw(st.integers(min_value=1, max_value=4)),
            )
        )
    if draw(st.booleans()):
        events.append(
            FaultEvent(
                kind="loss",
                start=draw(st.integers(min_value=1, max_value=6)),
                rounds=draw(st.sampled_from([0, 3, 6])),
                rate=draw(st.sampled_from([0.02, 0.1, 0.5])),
            )
        )
    if draw(st.booleans()):
        events.append(
            FaultEvent(
                kind="crash",
                start=draw(st.integers(min_value=2, max_value=8)),
                count=draw(st.integers(min_value=1, max_value=4)),
                rejoin_after=draw(st.sampled_from([0, 1, 3])),
            )
        )
    if draw(st.booleans()):
        events.append(
            FaultEvent(
                kind="partition",
                start=draw(st.integers(min_value=1, max_value=8)),
                rounds=draw(st.integers(min_value=1, max_value=4)),
                groups=draw(st.sampled_from([2, 3])),
            )
        )
    return FaultSchedule(events=tuple(events))


class TestFaultEquivalence:
    """Every fault scenario must be bit-identical across engines."""

    # Slow enough (600 pieces against a 300 kbps seed) that the swarm is
    # still incomplete when the mid-run fault windows open; a too-easy
    # config drains before round 5 and every fault becomes a no-op.
    BASE = dict(
        leechers=20,
        seeds=2,
        piece_count=600,
        rounds=20,
        start_completion=0.3,
        seed_upload_kbps=300.0,
    )

    def test_trivial_schedule_matches_no_faults(self):
        """An empty FaultSchedule draws nothing: byte-identical to faults=None."""
        plain, _ = run_both(SwarmConfig(**self.BASE), seed=101)
        gated, _ = run_both(
            SwarmConfig(faults=FaultSchedule(), **self.BASE), seed=101
        )
        assert_results_identical(plain, gated)

    @pytest.mark.parametrize("preset", FAULT_PRESET_NAMES)
    def test_fault_presets(self, preset):
        config = SwarmConfig(faults=preset, **self.BASE)
        run_both(config, seed=103, scenario="poisson")

    def test_outage_with_arrivals(self):
        """Arrivals during the outage queue their announces and back off."""
        config = SwarmConfig(faults="outage:3+5", **self.BASE)
        reference, _ = run_both(config, seed=107, scenario="poisson")
        assert reference.arrivals > 0

    def test_crash_with_rejoin(self):
        """Crashed peers vanish with their bitfields and return intact."""
        config = SwarmConfig(faults="crash:4@5~3", **self.BASE)
        reference, _ = run_both(config, seed=109)
        # Everyone is back by the end: a rejoin clears departed_round.
        assert all(p.departed_round is None for p in reference.peers.values())

    def test_crash_without_rejoin(self):
        config = SwarmConfig(faults="crash:4@5", **self.BASE)
        reference, _ = run_both(config, seed=113)
        crashed = [
            p for p in reference.peers.values() if p.departed_round is not None
        ]
        assert len(crashed) == 4
        # A crash scrubs live connections but keeps the bitfield.
        assert all(not p.neighbors for p in crashed)
        assert all(p.bitfield.count() > 0 for p in crashed)

    def test_partition_with_loss(self):
        config = SwarmConfig(faults="partition:4+6/2,loss:0.1", **self.BASE)
        run_both(config, seed=127)

    def test_kitchen_sink_under_churn(self):
        config = SwarmConfig(
            faults="outage:3+3,loss:0.05,crash:3@6~2,partition:8+3/2",
            **self.BASE,
        )
        for name in SCENARIO_NAMES:
            run_both(config, seed=131, scenario=name)

    @pytest.mark.slow
    @_settings
    @given(
        faults=fault_schedules(),
        scenario=scenario_schedules(),
        leechers=st.integers(min_value=4, max_value=16),
        seeds=st.integers(min_value=0, max_value=2),
        piece_count=st.integers(min_value=8, max_value=40),
        rounds=st.integers(min_value=2, max_value=14),
        start_completion=st.sampled_from([0.0, 0.3, 0.7]),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_fault_equivalence_property(
        self,
        faults,
        scenario,
        leechers,
        seeds,
        piece_count,
        rounds,
        start_completion,
        seed,
    ):
        """fast == reference bit-for-bit over fault schedules x scenarios."""
        config = SwarmConfig(
            leechers=leechers,
            seeds=seeds,
            piece_count=piece_count,
            rounds=rounds,
            start_completion=start_completion,
            announce_size=5,
            faults=faults,
        )
        run_both(config, seed=seed, scenario=scenario)


@st.composite
def resilience_policies(draw) -> ResiliencePolicy:
    """Non-trivial ResiliencePolicies across all three defenses."""
    return ResiliencePolicy(
        trackers=draw(st.sampled_from([1, 2, 3])),
        pex=draw(st.booleans()),
        pex_sample=draw(st.sampled_from([1, 4, 8])),
        keepalive_timeout=draw(st.sampled_from([0, 2, 5])),
    )


class TestResilienceEquivalence:
    """Every resilience policy must be bit-identical across engines."""

    BASE = dict(
        leechers=20,
        seeds=2,
        piece_count=600,
        rounds=20,
        start_completion=0.3,
        seed_upload_kbps=300.0,
    )

    def test_trivial_policy_matches_no_resilience(self):
        """The default policy draws nothing: byte-identical to resilience=None."""
        plain, _ = run_both(SwarmConfig(**self.BASE), seed=211)
        gated, _ = run_both(
            SwarmConfig(resilience=ResiliencePolicy(), **self.BASE), seed=211
        )
        assert plain.resilience is None and gated.resilience is None
        assert_results_identical(plain, gated)

    @pytest.mark.parametrize(
        "preset", [p for p in RESILIENCE_PRESET_NAMES if p != "off"]
    )
    def test_resilience_presets_under_faults(self, preset):
        config = SwarmConfig(
            faults="outage:3+4/all,crash:3@2~6", resilience=preset, **self.BASE
        )
        reference, _ = run_both(config, seed=223, scenario="poisson")
        assert reference.resilience is not None

    def test_failover_absorbs_partial_outage(self):
        """A replica-0 outage costs a failover walk, not tracker service."""
        faulty = SwarmConfig(
            faults="outage:4+6", resilience="failover", **self.BASE
        )
        clean = SwarmConfig(resilience="failover", **self.BASE)
        faulty_ref, _ = run_both(faulty, seed=227, scenario="poisson")
        clean_ref, _ = run_both(clean, seed=227, scenario="poisson")
        assert faulty_ref.resilience.failover_announces > 0
        # The swarm dynamics are those of the fault-free run: only the
        # replica accounting differs.
        assert_results_identical(
            replace(faulty_ref, config=clean_ref.config, resilience=None),
            replace(clean_ref, resilience=None),
        )

    def test_full_outage_degenerates_to_defenseless(self):
        """All replicas down == the single-tracker outage behaviour."""
        armed = SwarmConfig(
            faults="outage:4+4/all", resilience="failover", **self.BASE
        )
        bare = SwarmConfig(faults="outage:4+4", **self.BASE)
        armed_ref, _ = run_both(armed, seed=229, scenario="poisson")
        bare_ref, _ = run_both(bare, seed=229, scenario="poisson")
        assert armed_ref.resilience.failover_announces == 0
        armed_ref = replace(armed_ref, config=bare_ref.config, resilience=None)
        assert_results_identical(armed_ref, bare_ref)

    def test_pex_gossips_through_total_outage(self):
        config = SwarmConfig(
            faults="outage:3+5/all", resilience="pex", **self.BASE
        )
        reference, _ = run_both(config, seed=233, scenario="poisson")
        stats = reference.resilience
        assert stats.pex_introductions > 0
        assert stats.pex_bootstraps > 0  # poisson arrivals mid-blackout

    def test_eviction_purges_stale_registrations(self):
        config = SwarmConfig(
            faults="crash:4@3", resilience="trackers:1,keepalive:3", **self.BASE
        )
        reference, _ = run_both(config, seed=239)
        stats = reference.resilience
        assert stats.evictions == 4
        assert stats.purges == 4

    def test_rejoin_cancels_eviction(self):
        config = SwarmConfig(
            faults="crash:4@3~2", resilience="trackers:1,keepalive:5", **self.BASE
        )
        reference, _ = run_both(config, seed=241)
        assert reference.resilience.evictions == 0

    def test_replica_target_beyond_policy_rejected(self):
        config = SwarmConfig(faults="outage:3+2/2", resilience="trackers:2", **self.BASE)
        with pytest.raises(ValueError, match="targets tracker replica 2"):
            SwarmSimulator(config, seed=1)
        with pytest.raises(ValueError, match="targets tracker replica 2"):
            SwarmSimulator(config, seed=1, engine="fast")

    @pytest.mark.slow
    @_settings
    @given(
        resilience=resilience_policies(),
        faults=fault_schedules(),
        scenario=scenario_schedules(),
        leechers=st.integers(min_value=4, max_value=16),
        seeds=st.integers(min_value=0, max_value=2),
        piece_count=st.integers(min_value=8, max_value=40),
        rounds=st.integers(min_value=2, max_value=14),
        start_completion=st.sampled_from([0.0, 0.3, 0.7]),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_resilience_equivalence_property(
        self,
        resilience,
        faults,
        scenario,
        leechers,
        seeds,
        piece_count,
        rounds,
        start_completion,
        seed,
    ):
        """fast == reference bit-for-bit over policies x faults x scenarios."""
        config = SwarmConfig(
            leechers=leechers,
            seeds=seeds,
            piece_count=piece_count,
            rounds=rounds,
            start_completion=start_completion,
            announce_size=5,
            faults=faults,
            resilience=resilience,
        )
        run_both(config, seed=seed, scenario=scenario)


class TestSwarmDeterminism:
    def test_same_seed_same_result_reference(self):
        config = SwarmConfig(leechers=15, seeds=1, piece_count=40, rounds=15)
        first = SwarmSimulator(config, seed=33).run()
        second = SwarmSimulator(config, seed=33).run()
        assert_results_identical(first, second)

    def test_same_seed_same_result_fast(self):
        config = SwarmConfig(leechers=15, seeds=1, piece_count=40, rounds=15)
        first = SwarmSimulator(config, seed=33, engine="fast").run()
        second = SwarmSimulator(config, seed=33, engine="fast").run()
        assert_results_identical(first, second)

    def test_different_seeds_differ(self):
        config = SwarmConfig(leechers=15, seeds=1, piece_count=40, rounds=15)
        first = SwarmSimulator(config, seed=1, engine="fast").run()
        second = SwarmSimulator(config, seed=2, engine="fast").run()
        assert first.collaboration_volume != second.collaboration_volume


class TestEngineInterface:
    def test_unknown_engine_rejected(self):
        config = SwarmConfig(leechers=5, piece_count=10, rounds=2)
        with pytest.raises(ModelError):
            SwarmSimulator(config, engine="warp")

    def test_fast_simulator_requires_swarm_config(self):
        with pytest.raises(TypeError):
            FastSwarmSimulator({"leechers": 5})

    def test_bandwidth_length_checked(self):
        config = SwarmConfig(leechers=5, piece_count=10, rounds=2)
        with pytest.raises(ValueError):
            SwarmSimulator(config, engine="fast", bandwidths=[100.0] * 3)

    def test_invalid_selector_rejected(self):
        config = SwarmConfig(
            leechers=5, piece_count=10, rounds=2, piece_selection="weird"
        )
        with pytest.raises(ValueError):
            SwarmSimulator(config, engine="fast")

    def test_fast_simulator_exposes_peers(self):
        config = SwarmConfig(leechers=6, seeds=1, piece_count=12, rounds=3)
        reference = SwarmSimulator(config, seed=3)
        fast = SwarmSimulator(config, seed=3, engine="fast")
        # Before run(): the initial populations agree.
        assert set(fast.peers) == set(reference.peers)
        for pid, peer in reference.peers.items():
            snapshot = fast.peers[pid]
            assert snapshot.upload_kbps == peer.upload_kbps
            assert snapshot.neighbors == peer.neighbors
            assert snapshot.bitfield.held() == peer.bitfield.held()
        # After run(): the snapshot reflects the final state.
        result = fast.run()
        for pid, peer in result.peers.items():
            assert fast.peers[pid].bitfield.held() == peer.bitfield.held()

    def test_conflicting_piece_size_spellings_rejected(self):
        with pytest.raises(TypeError):
            SwarmConfig(
                leechers=5, piece_count=10, rounds=2,
                piece_size_kbit=512.0, piece_size_kb=256.0,
            )


class TestFastComponents:
    def test_bitfield_matrix_roundtrip(self):
        matrix = BitfieldMatrix(3, 13)
        matrix.fill(0, [0, 5, 12])
        matrix.set_complete(1)
        assert matrix.to_bitfield(0).held() == {0, 5, 12}
        assert matrix.to_bitfield(1).held() == set(range(13))
        assert matrix.to_bitfield(2).held() == set()
        assert matrix.is_complete(1) and not matrix.is_complete(0)
        assert matrix.availability().tolist() == [
            2 if p in {0, 5, 12} else 1 for p in range(13)
        ]
        wanted = matrix.indices(matrix.wanted_bytes(1, 0))
        assert wanted.tolist() == [p for p in range(13) if p not in {0, 5, 12}]

    def test_bitfield_matrix_add_and_padding(self):
        matrix = BitfieldMatrix(2, 9)  # forces a padded last byte
        matrix.set_complete(0)
        matrix.add(1, 8)
        assert matrix.have_count.tolist() == [9, 1]
        # Padding bits of the seed row must not leak into wanted masks.
        assert matrix.indices(matrix.wanted_bytes(0, 1)).tolist() == list(range(8))

    def test_edge_interest_matches_setwise(self):
        rng = np.random.default_rng(0)
        matrix = BitfieldMatrix(6, 30)
        held = []
        for i in range(6):
            pieces = rng.choice(30, size=int(rng.integers(0, 30)), replace=False)
            matrix.fill(i, pieces)
            held.append(set(int(p) for p in pieces))
        src = np.repeat(np.arange(6), 6)
        dst = np.tile(np.arange(6), 6)
        interest = matrix.edge_interest(src, dst)
        for s, d, flag in zip(src, dst, interest):
            assert flag == bool(held[s] - held[d])

    def test_fast_tracker_matches_reference(self):
        reference = Tracker(announce_size=4)
        fast = FastTracker(announce_size=4)
        ref_rng = RandomSource(7).stream("tracker")
        fast_rng = RandomSource(7).stream("tracker")
        for pid in range(1, 30):
            ref_contacts = reference.announce(pid, ref_rng)
            fast_contacts = fast.announce(pid, fast_rng)
            assert ref_contacts == [int(x) for x in fast_contacts]
        assert fast.swarm_size == reference.swarm_size == 29

    def test_fast_tracker_gap_announce_matches_reference(self):
        # A gap in the id sequence (an announce delayed by outage
        # backoff) drops the fast tracker to the dynamic regime; the
        # draws stay id-for-id identical with the reference.
        reference = Tracker(announce_size=3)
        fast = FastTracker(announce_size=3)
        ref_rng = RandomSource(23).stream("tracker")
        fast_rng = RandomSource(23).stream("tracker")
        for pid in (1, 5, 3, 7):
            ref_contacts = reference.announce(pid, ref_rng)
            fast_contacts = fast.announce(pid, fast_rng)
            assert ref_contacts == [int(x) for x in fast_contacts]
        assert fast.known_peers() == reference.known_peers() == [1, 3, 5, 7]

    def test_fast_tracker_matches_reference_under_churn(self):
        """Interleaved announces and departures stay id-for-id identical."""
        reference = Tracker(announce_size=4)
        fast = FastTracker(announce_size=4)
        ref_rng = RandomSource(19).stream("tracker")
        fast_rng = RandomSource(19).stream("tracker")
        departures = {8: [3, 5], 12: [1], 16: [9, 11, 2]}
        for pid in range(1, 25):
            ref_contacts = reference.announce(pid, ref_rng)
            fast_contacts = fast.announce(pid, fast_rng)
            assert ref_contacts == [int(x) for x in fast_contacts]
            for gone in departures.get(pid, []):
                reference.depart(gone)
                fast.depart(gone)
            assert reference.known_peers() == fast.known_peers()
            assert reference.swarm_size == fast.swarm_size

    def test_bitfield_matrix_growth(self):
        matrix = BitfieldMatrix(2, 11)
        matrix.fill(0, [0, 9])
        matrix.set_complete(1)
        first = matrix.add_peers(3)
        assert first == 2
        assert matrix.n_peers == 5
        assert matrix.capacity >= 5
        # Existing rows survive the reallocation, new rows are empty.
        assert matrix.to_bitfield(0).held() == {0, 9}
        assert matrix.is_complete(1)
        for fresh in range(2, 5):
            assert matrix.to_bitfield(fresh).held() == set()
        matrix.add(3, 7)
        assert matrix.have_count[:5].tolist() == [2, 11, 0, 1, 0]
        assert matrix.unpack_row(3).sum() == 1
        # availability only counts live rows, even below capacity.
        assert matrix.availability().sum() == 2 + 11 + 1

    def test_batched_regular_slots_ordering(self):
        # One peer (0) with four contributors; ranked by (-volume, id).
        edge_peer = np.array([0, 0, 0, 0, 1])
        partner_id = np.array([5, 2, 9, 7, 3])
        received = np.array([1.0, 4.0, 4.0, 0.5, 2.0])
        interested = np.array([True, True, True, True, False])
        slots = batched_regular_slots(edge_peer, partner_id, received, interested, 3)
        assert slots == {0: [2, 9, 5]}
        # Zero slots or nothing received -> empty mapping.
        assert batched_regular_slots(edge_peer, partner_id, received, interested, 0) == {}
        assert (
            batched_regular_slots(
                edge_peer, partner_id, np.zeros(5), interested, 3
            )
            == {}
        )
