"""RPD003 suppressed by a justified pragma."""


def commutative_accumulation(rng):
    weights = {1: 0.5, 2: 0.5}
    total = 0.0
    for weight in weights.values():  # repro: allow[RPD003] -- fixture: sum is commutative, order cannot leak into draws
        total += weight
    return total * rng.random()
