"""RPD003 must fire: bare set/dict iteration in rng-touching functions."""

from repro.sim import streams


def set_literal_iteration(rng):
    total = 0.0
    for peer in {3, 1, 2}:
        total += rng.random() * peer
    return total


def tracked_set_iteration(rng):
    pending = set()
    pending.add(rng.integers(10))
    return [rng.random() for item in pending]


def dict_items_iteration(source):
    stream = source.stream(streams.ROUNDS)
    weights = {1: 0.5, 2: 0.5}
    out = []
    for pid, weight in weights.items():
        out.append(stream.random() * weight)
    return out
