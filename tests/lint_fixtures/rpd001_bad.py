"""RPD001 must fire: seedless / global-state RNG construction."""

import random

import numpy as np
from random import shuffle  # noqa: F401  -- from-import of a stochastic callable


def seedless_generator():
    return np.random.default_rng()


def numpy_global_state(n):
    return np.random.uniform(size=n)


def stdlib_global_state():
    return random.random()
