"""RPD002 must fire: undeclared and bare-literal stream names."""


def undeclared_stream(source):
    return source.stream("mystery-stream")


def bare_literal(source):
    return source.fresh_stream("bandwidth")
