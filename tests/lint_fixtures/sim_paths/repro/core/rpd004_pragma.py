"""RPD004 suppressed by a justified pragma."""

import time


def stamp_report(report):
    report.written_at = time.time()  # repro: allow[RPD004] -- fixture: timestamp decorates the output file, never simulation state
    return report
