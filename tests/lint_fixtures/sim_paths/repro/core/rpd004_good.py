"""RPD004 clean counterpart: monotonic profiling clocks are allowed."""

import time


def profile_round(state):
    start = time.perf_counter()
    state.advance()
    state.elapsed = time.perf_counter() - start
    return state
