"""RPD004 must fire: wall-clock reads inside a simulation-module path."""

import datetime
import time


def stamp_round(state):
    state.started_at = time.time()
    state.label = datetime.datetime.now().isoformat()
    return state
