"""RPD005 must fire: deprecated *_kb spellings."""


def piece_size_kb(torrent):
    return torrent.total_size_kb / torrent.piece_count


def upload_budget(peer, downloaded_kb):
    return peer.capacity - downloaded_kb
