"""RPD001 suppressed by a justified pragma."""

import numpy as np


def throwaway_generator():
    return np.random.default_rng()  # repro: allow[RPD001] -- fixture: demo-only generator, output never reaches simulation state
