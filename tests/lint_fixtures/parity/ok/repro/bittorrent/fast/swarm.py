"""Parity fixture (fast tree): consumes the same paired resilience streams."""

from repro.sim import streams


def assign_preferences_batched(source, runtime, pids):
    rng = source.stream(streams.TRACKER_SELECT)
    return runtime.assign_preferences(pids, rng)


def pex_round_batched(source, runtime, pools):
    rng = source.stream(streams.PEX_GOSSIP)
    return runtime.sample(pools, rng)
