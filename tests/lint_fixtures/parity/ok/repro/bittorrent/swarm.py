"""Parity fixture (reference tree): consumes the paired resilience streams."""

from repro.sim import streams


def assign_preferences(source, runtime, pids):
    rng = source.stream(streams.TRACKER_SELECT)
    return runtime.assign_preferences(pids, rng)


def pex_round(source, runtime, pools):
    rng = source.stream(streams.PEX_GOSSIP)
    return runtime.sample(pools, rng)
