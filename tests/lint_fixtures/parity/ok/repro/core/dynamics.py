"""Parity fixture (reference tree): consumes the paired core stream."""

from repro.sim import streams


def step(source, state):
    stream = source.stream(streams.INITIATIVES)
    return state.advance(stream)
