"""Parity fixture (fast tree): consumes the same paired core stream."""

from repro.sim import streams


def step_batched(source, state):
    stream = source.stream(streams.INITIATIVES)
    return state.advance_batched(stream)
