"""Parity fixture (fast tree): forgets the paired stream -- parity breaks."""


def step_batched(state):
    return state.advance_batched()
