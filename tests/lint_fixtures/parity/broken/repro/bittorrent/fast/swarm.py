"""Parity fixture (fast tree): forgets both resilience streams -- parity breaks."""


def assign_preferences_batched(runtime, pids):
    return runtime.assign_preferences(pids)


def pex_round_batched(runtime, pools):
    return runtime.sample(pools)
