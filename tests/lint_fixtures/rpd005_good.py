"""RPD005 clean counterpart: *_kbit spellings throughout."""


def piece_size_kbit(torrent):
    return torrent.total_size_kbit / torrent.piece_count


def upload_budget(peer, downloaded_kbit):
    return peer.capacity - downloaded_kbit
