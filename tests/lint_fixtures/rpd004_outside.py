"""RPD004 scope check: wall clock outside simulation paths is allowed."""

import time


def stamp_log_line(line):
    return f"{time.time():.3f} {line}"
