"""RPD001 clean counterpart: every generator is explicitly seeded."""

import numpy as np

from repro.sim import streams
from repro.sim.random_source import RandomSource, derive_seed, fallback_rng


def seeded_generator(master_seed):
    return np.random.default_rng(derive_seed(master_seed, "graph"))


def stream_draw(source: RandomSource, n):
    return source.stream(streams.BANDWIDTH).uniform(size=n)


def deprecated_but_deterministic():
    return fallback_rng(streams.GRAPH)
