"""RPD003 clean counterparts: ordered iteration, or no rng in scope."""

from repro.sim import streams


def sorted_iteration(rng):
    pending = {3, 1, 2}
    return [rng.random() * peer for peer in sorted(pending)]


def sorted_dict_items(source):
    stream = source.stream(streams.ROUNDS)
    weights = {1: 0.5, 2: 0.5}
    return [stream.random() * w for _, w in sorted(weights.items())]


def no_rng_in_scope(records):
    seen = set()
    for record in {r for r in records}:
        seen.add(record)
    return seen
