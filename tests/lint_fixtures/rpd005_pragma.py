"""RPD005 suppressed by a justified pragma."""


class LegacyView:
    @property
    def downloaded_kb(self):  # repro: allow[RPD005] -- fixture: back-compat alias kept one release for external scripts
        return self.downloaded_kbit
