"""RPD002 clean counterpart: registry constants and dynamic families."""

from repro.sim import streams
from repro.sim.streams import TRACKER


def registry_constant(source):
    return source.stream(streams.BANDWIDTH)


def imported_constant(source):
    return source.stream(TRACKER)


def dynamic_family(source, index):
    return source.fresh_stream(f"graph-{index}")
