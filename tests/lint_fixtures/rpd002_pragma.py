"""RPD002 suppressed by a justified pragma."""


def migration_shim(source):
    return source.stream("bandwidth")  # repro: allow[RPD002] -- fixture: literal kept for a wire-format migration test
