"""RPD000 must fire: malformed pragmas (each line is one variant)."""

import numpy as np

A = np.random.default_rng()  # repro: allow[] -- empty code list
B = np.random.default_rng()  # repro: allow[RPD999] -- unknown rule code
C = np.random.default_rng()  # repro: allow[RPD001]
