"""Unit tests for the client-behavior layer.

The cross-engine bit-identity of behaviors lives in
``tests/test_swarm_engine_equivalence.py`` and the golden traces; this
file pins the *semantics* of :mod:`repro.bittorrent.behaviors` itself --
profile validation, mix validation and normalization, spec parsing, the
assignment draws, the edge filters -- plus the simulation-level meaning of
each behavior on the reference engine (free-riders download slower,
BitThief peers upload nothing, NAT edges never form, locality bias skews
neighbor sets, super seeds trickle one piece per transfer).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bittorrent.behaviors import (
    BEHAVIOR_MIX_NAMES,
    BEHAVIOR_NAMES,
    STANDARD,
    BehaviorMix,
    BehaviorProfile,
    bootstrap_piece_count,
    filter_contacts,
    make_behavior_mix,
    profile_for,
    resolve_behavior_mix,
)
from repro.bittorrent.swarm import SwarmConfig, SwarmSimulator


class TestBehaviorProfile:
    def test_registry_names(self):
        assert set(BEHAVIOR_NAMES) == {
            "standard",
            "free_rider",
            "never_upload",
            "super_seed",
            "partial_seed",
            "nat_limited",
            "locality_biased",
        }
        for name in BEHAVIOR_NAMES:
            assert profile_for(name).name == name

    def test_only_standard_is_standard(self):
        assert profile_for(STANDARD).is_standard
        for name in BEHAVIOR_NAMES:
            if name != STANDARD:
                assert not profile_for(name).is_standard

    def test_unknown_behavior_error_lists_valid_names(self):
        with pytest.raises(ValueError) as excinfo:
            profile_for("saint")
        message = str(excinfo.value)
        assert "saint" in message
        for name in BEHAVIOR_NAMES:
            assert name in message

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"name": "x", "upload_factor": -0.1},
            {"name": "x", "reveal_limit": 0},
            {"name": "x", "hold_fraction": 1.0},
            {"name": "x", "hold_fraction": -0.2},
            {"name": "x", "locality_bias": 1.5},
        ],
    )
    def test_invalid_profiles_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BehaviorProfile(**kwargs)


class TestBehaviorMix:
    def test_trivial_mix(self):
        mix = BehaviorMix()
        assert mix.is_trivial
        assert not mix.uses_locality
        assert mix.behavior_names() == (STANDARD,)

    def test_fractions_normalized_and_order_independent(self):
        a = BehaviorMix(fractions={"never_upload": 0.1, "free_rider": 0.2})
        b = BehaviorMix(
            fractions=[("free_rider", 0.2), ("never_upload", 0.1)]
        )
        assert a == b
        assert a.fractions == (("free_rider", 0.2), ("never_upload", 0.1))
        assert not a.is_trivial

    def test_zero_fractions_dropped(self):
        assert BehaviorMix(fractions={"free_rider": 0.0}).is_trivial

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"fractions": {"saint": 0.2}},
            {"fractions": {"free_rider": 1.2}},
            {"fractions": {"free_rider": -0.1}},
            {"fractions": {"free_rider": 0.7, "never_upload": 0.7}},
            {"fractions": [("free_rider", 0.2), ("free_rider", 0.3)]},
            {"seed_behavior": "saint"},
            {"locality_groups": 0},
        ],
    )
    def test_invalid_mixes_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BehaviorMix(**kwargs)

    def test_uses_locality_from_fractions_and_seeds(self):
        assert BehaviorMix(fractions={"locality_biased": 0.3}).uses_locality
        assert not BehaviorMix(fractions={"free_rider": 0.3}).uses_locality
        assert BehaviorMix(seed_behavior="locality_biased").uses_locality

    def test_assign_draws_one_batch_iff_fractions(self):
        mix = BehaviorMix(fractions={"free_rider": 0.5})
        rng = np.random.default_rng(0)
        names = mix.assign(200, rng)
        assert len(names) == 200
        assert set(names) <= {"standard", "free_rider"}
        # Roughly half free-riders under a 0.5 fraction.
        assert 60 <= names.count("free_rider") <= 140
        # The draw consumed exactly one random(200) batch.
        replay = np.random.default_rng(0)
        replay.random(200)
        assert rng.integers(1 << 30) == replay.integers(1 << 30)

    def test_trivial_assign_draws_nothing(self):
        mix = BehaviorMix()
        rng = np.random.default_rng(0)
        untouched = np.random.default_rng(0)
        assert mix.assign(50, rng) == [STANDARD] * 50
        assert mix.assign(0, rng) == []
        assert rng.integers(1 << 30) == untouched.integers(1 << 30)

    def test_full_fraction_assigns_everybody(self):
        mix = BehaviorMix(fractions={"never_upload": 1.0})
        names = mix.assign(30, np.random.default_rng(1))
        assert names == ["never_upload"] * 30

    def test_assign_groups_range(self):
        mix = BehaviorMix(locality_groups=3)
        groups = mix.assign_groups(100, np.random.default_rng(2))
        assert len(groups) == 100
        assert set(groups) == {0, 1, 2}
        assert mix.assign_groups(0, np.random.default_rng(2)) == []


class TestSpecParsing:
    @pytest.mark.parametrize("preset", BEHAVIOR_MIX_NAMES)
    def test_presets_resolve(self, preset):
        assert isinstance(make_behavior_mix(preset), BehaviorMix)

    def test_spec_round_trip(self):
        mix = make_behavior_mix(
            "free_rider:0.2,never_upload:0.1,seeds:super_seed,groups:8"
        )
        assert mix.fractions == (("free_rider", 0.2), ("never_upload", 0.1))
        assert mix.seed_behavior == "super_seed"
        assert mix.locality_groups == 8
        assert mix == BehaviorMix(
            fractions={"free_rider": 0.2, "never_upload": 0.1},
            seed_behavior="super_seed",
            locality_groups=8,
        )

    def test_unknown_preset_error_lists_valid_names(self):
        with pytest.raises(ValueError) as excinfo:
            make_behavior_mix("anarchy")
        message = str(excinfo.value)
        assert "anarchy" in message
        for name in BEHAVIOR_MIX_NAMES:
            assert name in message

    @pytest.mark.parametrize(
        "spec",
        [
            "free_rider",  # no colon, not a preset
            "free_rider:lots",
            "saint:0.2",
            "free_rider:0.2,free_rider:0.3",
        ],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            make_behavior_mix(spec)

    def test_resolve_behavior_mix(self):
        assert resolve_behavior_mix(None).is_trivial
        assert resolve_behavior_mix("freeriders").fractions == (
            ("free_rider", 0.2),
        )
        mix = BehaviorMix(fractions={"nat_limited": 0.5})
        assert resolve_behavior_mix(mix) is mix
        with pytest.raises(TypeError):
            resolve_behavior_mix(42)


class TestBootstrapAndFilters:
    def test_bootstrap_piece_count(self):
        standard = profile_for(STANDARD)
        partial = profile_for("partial_seed")  # hold_fraction = 0.5
        assert bootstrap_piece_count(standard, 7, 40) == 7
        assert bootstrap_piece_count(partial, 7, 40) == 20
        # Clamped: a held subset can never be the whole torrent.
        greedy = BehaviorProfile("x", hold_fraction=0.999)
        assert bootstrap_piece_count(greedy, 0, 10) == 9

    def test_standard_filter_keeps_everything_and_draws_nothing(self):
        rng = np.random.default_rng(0)
        untouched = np.random.default_rng(0)
        kept = filter_contacts(
            profile_for(STANDARD), 0, [3, 1, 4], [0, 1, 2], [True, True, True], rng
        )
        assert kept == [3, 1, 4]
        assert rng.integers(1 << 30) == untouched.integers(1 << 30)

    def test_nat_filter_is_deterministic(self):
        rng = np.random.default_rng(0)
        untouched = np.random.default_rng(0)
        kept = filter_contacts(
            profile_for("nat_limited"),
            0,
            [10, 11, 12],
            [0, 0, 0],
            [False, True, False],
            rng,
        )
        assert kept == [10, 12]
        assert rng.integers(1 << 30) == untouched.integers(1 << 30)

    def test_locality_filter_draws_once_and_keeps_in_group(self):
        profile = profile_for("locality_biased")  # bias = 0.75
        contacts = list(range(200))
        groups = [k % 2 for k in contacts]  # half in-group for group 0
        rng = np.random.default_rng(3)
        kept = filter_contacts(
            profile, 0, contacts, groups, [False] * 200, rng
        )
        in_group = [c for c in kept if c % 2 == 0]
        cross = [c for c in kept if c % 2 == 1]
        assert len(in_group) == 100  # in-group contacts are never dropped
        assert 5 <= len(cross) <= 55  # ~25% of 100 survive the 0.75 bias
        # Exactly one random(200) batch was consumed.
        replay = np.random.default_rng(3)
        replay.random(200)
        assert rng.integers(1 << 30) == replay.integers(1 << 30)

    def test_locality_filter_skips_draw_on_empty_contacts(self):
        rng = np.random.default_rng(4)
        untouched = np.random.default_rng(4)
        assert filter_contacts(
            profile_for("locality_biased"), 0, [], [], [], rng
        ) == []
        assert rng.integers(1 << 30) == untouched.integers(1 << 30)


BASE = dict(leechers=20, seeds=2, piece_count=50, rounds=25, start_completion=0.3)


def run_reference(mix, seed=7, **overrides):
    config = SwarmConfig(behaviors=mix, **{**BASE, **overrides})
    return SwarmSimulator(config, seed=seed).run()


class TestBehaviorSemantics:
    """What each behavior *means*, checked on the reference engine."""

    def test_free_riders_download_slower(self):
        result = run_reference(BehaviorMix(fractions={"free_rider": 0.5}))
        rates = result.download_rates()
        by_class = {"free_rider": [], "standard": []}
        for peer in result.leechers():
            by_class[peer.behavior].append(rates[peer.peer_id])
        assert by_class["free_rider"] and by_class["standard"]
        assert np.mean(by_class["free_rider"]) < np.mean(by_class["standard"])

    def test_never_upload_peers_still_download(self):
        result = run_reference(BehaviorMix(fractions={"never_upload": 0.3}))
        thieves = [p for p in result.leechers() if p.behavior == "never_upload"]
        assert thieves
        assert all(p.uploaded_kbit == 0.0 for p in thieves)
        assert any(p.downloaded_kbit > 0.0 for p in thieves)

    def test_partial_seeds_hold_their_subset(self):
        result = run_reference(BehaviorMix(fractions={"partial_seed": 0.4}))
        partial = [p for p in result.leechers() if p.behavior == "partial_seed"]
        assert partial
        for peer in partial:
            assert peer.bitfield.count() == 25  # hold_fraction 0.5 of 50
            assert peer.downloaded_kbit == 0.0
            assert peer.completed_round is None
        # Their held subset is still served to others.
        assert any(p.uploaded_kbit > 0.0 for p in partial)

    def test_partial_seeds_do_not_block_early_exit(self):
        result = run_reference(
            BehaviorMix(fractions={"partial_seed": 0.3}), rounds=200
        )
        assert result.rounds_run < 200
        downloaders = [
            p for p in result.leechers() if p.behavior != "partial_seed"
        ]
        assert all(p.completed_round is not None for p in downloaders)

    def test_nat_limited_peers_never_neighbor_each_other(self):
        result = run_reference(BehaviorMix(fractions={"nat_limited": 0.6}))
        natted = {
            p.peer_id for p in result.peers.values() if p.behavior == "nat_limited"
        }
        assert len(natted) >= 2
        for pid in natted:
            assert not (result.peers[pid].neighbors & natted)

    def test_locality_groups_assigned_iff_used(self):
        biased = run_reference(
            BehaviorMix(fractions={"locality_biased": 0.5}, locality_groups=3)
        )
        assert all(p.locality_group in {0, 1, 2} for p in biased.peers.values())
        plain = run_reference(BehaviorMix(fractions={"free_rider": 0.5}))
        assert all(p.locality_group == -1 for p in plain.peers.values())

    def test_locality_bias_skews_neighbor_sets(self):
        result = run_reference(
            BehaviorMix(fractions={"locality_biased": 1.0}, locality_groups=2),
            leechers=40,
        )
        same = cross = 0
        for peer in result.peers.values():
            for other in peer.neighbors:
                if result.peers[other].locality_group == peer.locality_group:
                    same += 1
                else:
                    cross += 1
        assert same > cross  # bias 0.75 keeps only ~25% of cross edges

    def test_super_seed_trickles_one_piece_per_transfer(self):
        result = run_reference(
            BehaviorMix(seed_behavior="super_seed"), rounds=3, seeds=1
        )
        piece_kbit = result.config.piece_size_kbit
        seed_id = next(
            pid for pid, p in result.peers.items() if p.is_seed
        )
        for peer in result.leechers():
            granted = peer.received_last_round.get(seed_id, 0.0)
            # One revealed piece plus partial credit, never two full pieces.
            assert granted < 2 * piece_kbit

    def test_behavior_recorded_on_peers(self):
        result = run_reference("hostile")
        seen = {p.behavior for p in result.peers.values()}
        assert STANDARD in seen
        assert seen <= set(BEHAVIOR_NAMES)

    def test_config_resolves_mix_strings(self):
        config = SwarmConfig(behaviors="freeriders", **BASE)
        assert isinstance(config.behaviors, BehaviorMix)
        with pytest.raises(ValueError):
            SwarmConfig(behaviors="anarchy", **BASE)
        with pytest.raises(TypeError):
            SwarmConfig(behaviors=3.14, **BASE)


class TestBehaviorEstimators:
    """Per-behavior analysis: CDFs, class report, stratification split."""

    @pytest.fixture(scope="class")
    def hostile_run(self):
        return run_reference("hostile", leechers=30, rounds=40)

    def test_behavior_download_cdfs(self, hostile_run):
        from repro.bittorrent.analysis import behavior_download_cdfs

        cdfs = behavior_download_cdfs(hostile_run)
        assert set(cdfs) == {
            p.behavior for p in hostile_run.leechers()
        }
        standard = cdfs[STANDARD]
        assert standard["durations"].size > 0
        assert standard["cdf"][-1] == 1.0
        assert (np.diff(standard["durations"]) >= 0).all()

    def test_partial_seed_class_has_empty_cdf(self):
        from repro.bittorrent.analysis import behavior_download_cdfs

        result = run_reference(BehaviorMix(fractions={"partial_seed": 0.4}))
        cdfs = behavior_download_cdfs(result)
        assert cdfs["partial_seed"]["durations"].size == 0

    def test_behavior_report(self, hostile_run):
        from repro.bittorrent.analysis import behavior_report

        report = behavior_report(hostile_run)
        total = sum(row["peers"] for row in report.values())
        assert total == len(hostile_run.leechers())
        for row in report.values():
            assert 0.0 <= row["completion_fraction"] <= 1.0
            assert row["completed"] <= row["peers"]
        assert report["never_upload"]["mean_share_ratio"] > (
            report[STANDARD]["mean_share_ratio"]
        )

    def test_behavior_stratification_split(self, hostile_run):
        from repro.bittorrent.analysis import behavior_stratification
        from repro.bittorrent.swarm import stratification_index

        split = behavior_stratification(hostile_run)
        assert set(split) == {"overall", "standard_only"}
        assert split["overall"] == stratification_index(hostile_run)
        assert split["standard_only"] == stratification_index(
            hostile_run, behaviors=("standard",)
        )
        assert -1.0 <= split["standard_only"] <= 1.0

    def test_stratification_index_behavior_filter(self, hostile_run):
        from repro.bittorrent.swarm import stratification_index

        all_classes = stratification_index(
            hostile_run, behaviors=tuple(BEHAVIOR_NAMES)
        )
        assert all_classes == stratification_index(hostile_run)
        # Filtering down to too few peers raises like an empty swarm does.
        with pytest.raises(ValueError):
            stratification_index(hostile_run, behaviors=("super_seed",))
