"""Unit and behavioral tests for the swarm resilience layer.

Covers the pieces :mod:`repro.bittorrent.resilience` adds on top of the
fault layer: policy parsing (presets + ``knob:value`` specs, with errors
naming the offending token), the pinned-batch pool sampler both engines
share, the :class:`~repro.bittorrent.resilience.ResilienceRuntime`
bookkeeping (replica walk, failover accounting, eviction clocks, purge
queue), and the end-to-end behaviours the ISSUE promises: a partial
outage absorbed by failover, PEX keeping a blacked-out swarm connected,
and dead-neighbor eviction deflating the tracker's stale scrape counts
(``stale_count`` on both tracker implementations and telemetry views).

Engine-equivalence of all of this lives in
``tests/test_swarm_engine_equivalence.py``; here each engine's behaviour
is pinned on its own terms.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bittorrent.faults import FaultSchedule, make_faults
from repro.bittorrent.resilience import (
    RESILIENCE_PRESET_NAMES,
    ResiliencePolicy,
    ResilienceRuntime,
    make_resilience,
    resolve_resilience,
    sample_pools,
)
from repro.bittorrent.swarm import SwarmConfig, SwarmSimulator
from repro.bittorrent.telemetry import _FastSwarmView, _ReferenceSwarmView

# ---------------------------------------------------------------------------
# Policy construction and parsing
# ---------------------------------------------------------------------------


class TestResiliencePolicy:
    def test_default_policy_is_trivial(self):
        policy = ResiliencePolicy()
        assert policy.is_trivial
        assert policy.trackers == 1
        assert not policy.pex
        assert policy.keepalive_timeout == 0

    @pytest.mark.parametrize(
        "kwargs",
        [dict(trackers=2), dict(pex=True), dict(keepalive_timeout=1)],
    )
    def test_any_defense_makes_policy_non_trivial(self, kwargs):
        assert not ResiliencePolicy(**kwargs).is_trivial

    def test_pex_sample_alone_stays_trivial(self):
        # The sample bound is inert until pex itself is switched on.
        assert ResiliencePolicy(pex_sample=3).is_trivial

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(trackers=0), "trackers must be >= 1"),
            (dict(pex_sample=0), "pex_sample must be >= 1"),
            (dict(keepalive_timeout=-1), "keepalive_timeout cannot"),
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            ResiliencePolicy(**kwargs)


class TestMakeResilience:
    def test_presets(self):
        assert set(RESILIENCE_PRESET_NAMES) == {"off", "failover", "pex", "full"}
        assert make_resilience("off").is_trivial
        assert make_resilience("failover").trackers == 3
        assert make_resilience("pex").pex
        full = make_resilience("full")
        assert (full.trackers, full.pex, full.keepalive_timeout) == (3, True, 5)

    def test_spec_grammar(self):
        policy = make_resilience("trackers:2, pex:4, keepalive:7")
        assert policy == ResiliencePolicy(
            trackers=2, pex=True, pex_sample=4, keepalive_timeout=7
        )
        # Bare "pex" keeps the default sample bound.
        assert make_resilience("pex:8,trackers:1") == make_resilience(
            "trackers:1,pex"
        )

    def test_unknown_preset_lists_the_valid_names(self):
        with pytest.raises(ValueError, match="unknown resilience preset 'nope'"):
            make_resilience("nope")
        with pytest.raises(ValueError, match="off"):
            make_resilience("nope")

    @pytest.mark.parametrize(
        "spec, token",
        [
            ("trackers:x", "trackers:x"),
            ("trackers:3,pex:many", "pex:many"),
            ("keepalive:", "keepalive:"),
            ("replicas:3", "replicas:3"),
        ],
    )
    def test_errors_name_the_offending_token(self, spec, token):
        with pytest.raises(ValueError, match=f"token '{token}'"):
            make_resilience(spec)

    def test_unknown_knob_lists_the_knobs(self):
        with pytest.raises(ValueError, match="trackers:N"):
            make_resilience("replicas:3")


class TestResolveResilience:
    def test_none_resolves_to_trivial(self):
        assert resolve_resilience(None).is_trivial

    def test_string_goes_through_make_resilience(self):
        assert resolve_resilience("failover") == make_resilience("failover")
        assert resolve_resilience("trackers:2").trackers == 2

    def test_policy_passes_through(self):
        policy = ResiliencePolicy(pex=True)
        assert resolve_resilience(policy) is policy

    def test_other_types_rejected(self):
        with pytest.raises(TypeError, match="resilience must be"):
            resolve_resilience(3)  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# The shared pinned-batch sampler
# ---------------------------------------------------------------------------


class TestSamplePools:
    def test_deterministic_under_a_shared_seed(self):
        pools = [[3, 1, 4, 1, 5], [9, 2, 6], []]
        a = sample_pools(pools, 2, np.random.default_rng(7))
        b = sample_pools(pools, 2, np.random.default_rng(7))
        assert a == b

    def test_samples_are_bounded_subsets_without_replacement(self):
        rng = np.random.default_rng(11)
        pools = [list(range(10)), [42], list(range(100, 103))]
        samples = sample_pools(pools, 4, rng)
        for pool, sample in zip(pools, samples):
            assert len(sample) == min(4, len(pool))
            assert len(set(sample)) == len(sample)
            assert set(sample) <= set(pool)

    def test_empty_pools_draw_nothing(self):
        rng = np.random.default_rng(3)
        assert sample_pools([[], [], []], 8, rng) == [[], [], []]
        # The stream was not consumed: the next draw matches a fresh rng.
        fresh = np.random.default_rng(3)
        assert rng.integers(0, 1000) == fresh.integers(0, 1000)

    def test_one_batch_regardless_of_pool_count(self):
        # Concatenated bounds mean pool *grouping* does not change the
        # draws: the flat sequence of picks is identical.
        pools = [[1, 2, 3], [4, 5, 6, 7]]
        merged = sample_pools(pools, 2, np.random.default_rng(5))
        assert [len(s) for s in merged] == [2, 2]


# ---------------------------------------------------------------------------
# ResilienceRuntime bookkeeping
# ---------------------------------------------------------------------------


def _runtime(policy: ResiliencePolicy, faults: str = "") -> ResilienceRuntime:
    schedule = make_faults(faults) if faults else FaultSchedule()
    return ResilienceRuntime(policy, schedule)


class TestResilienceRuntime:
    def test_trivial_policy_is_inactive(self):
        assert not _runtime(ResiliencePolicy()).active
        assert _runtime(ResiliencePolicy(trackers=2)).active

    def test_schedule_targeting_missing_replica_rejected(self):
        with pytest.raises(ValueError, match="targets tracker replica 2"):
            _runtime(ResiliencePolicy(trackers=2), "outage:3+2/2")
        # Same replica with a long enough announce list is fine.
        _runtime(ResiliencePolicy(trackers=3), "outage:3+2/2")

    def test_single_tracker_assigns_no_preferences(self):
        runtime = _runtime(ResiliencePolicy(trackers=1, pex=True))
        rng = np.random.default_rng(0)
        runtime.assign_preferences([1, 2, 3], rng)
        fresh = np.random.default_rng(0)
        assert rng.integers(0, 1000) == fresh.integers(0, 1000)

    def test_serving_replica_walks_past_an_outage(self):
        runtime = _runtime(ResiliencePolicy(trackers=3), "outage:5+3/1")
        runtime._preferred[1] = 1
        assert runtime.serving_replica(1, round_index=0) == 1  # before window
        assert runtime.serving_replica(1, round_index=5) == 2  # walks 1 -> 2
        assert runtime.serving_replica(1, round_index=8) == 1  # recovered

    def test_serving_replica_none_during_full_blackout(self):
        runtime = _runtime(ResiliencePolicy(trackers=3), "outage:5+3/all")
        assert runtime.serving_replica(1, round_index=6) is None
        assert runtime.serving_replica(1, round_index=4) == 0

    def test_record_announce_counts_failovers(self):
        runtime = _runtime(ResiliencePolicy(trackers=2), "outage:5+3")
        runtime.record_announce(1, round_index=0)  # preferred replica 0
        assert runtime.replica_announces == [1, 0]
        assert runtime.failover_announces == 0
        runtime.record_announce(1, round_index=5)  # replica 0 down: failover
        assert runtime.replica_announces == [1, 1]
        assert runtime.failover_announces == 1

    def test_eviction_clock_fires_after_the_timeout(self):
        runtime = _runtime(ResiliencePolicy(keepalive_timeout=3))
        runtime.note_crash(7, round_index=4, had_neighbors=True)
        runtime.begin_round(6)
        assert runtime.evictions == 0
        runtime.begin_round(7)
        assert runtime.evictions == 1
        assert runtime.drain_purges() == [7]
        assert runtime.drain_purges() == []  # drained queues stay drained

    def test_neighborless_crash_is_undetectable(self):
        runtime = _runtime(ResiliencePolicy(keepalive_timeout=3))
        runtime.note_crash(7, round_index=4, had_neighbors=False)
        runtime.begin_round(7)
        assert runtime.evictions == 0

    def test_zero_timeout_schedules_nothing(self):
        runtime = _runtime(ResiliencePolicy(trackers=2))
        runtime.note_crash(7, round_index=4, had_neighbors=True)
        runtime.begin_round(4)
        assert runtime.evictions == 0 and runtime.drain_purges() == []

    def test_rejoin_cancels_a_pending_eviction(self):
        runtime = _runtime(ResiliencePolicy(keepalive_timeout=3))
        runtime.note_crash(7, round_index=4, had_neighbors=True)
        runtime.cancel_eviction(7)
        runtime.begin_round(7)
        assert runtime.evictions == 0 and runtime.drain_purges() == []

    def test_recrash_reschedules_the_clock(self):
        runtime = _runtime(ResiliencePolicy(keepalive_timeout=3))
        runtime.note_crash(7, round_index=4, had_neighbors=True)
        runtime.cancel_eviction(7)  # rejoined at round 5...
        runtime.note_crash(7, round_index=6, had_neighbors=True)  # ...died again
        runtime.begin_round(7)  # the stale round-7 bucket must not fire
        assert runtime.evictions == 0
        runtime.begin_round(9)
        assert runtime.evictions == 1

    def test_purges_drain_sorted(self):
        runtime = _runtime(ResiliencePolicy(keepalive_timeout=1))
        for pid in (9, 2, 5):
            runtime.note_crash(pid, round_index=0, had_neighbors=True)
        runtime.begin_round(1)
        assert runtime.drain_purges() == [2, 5, 9]

    def test_stats_freeze_the_counters(self):
        runtime = _runtime(ResiliencePolicy(trackers=2), "outage:5+3")
        runtime.record_announce(3, round_index=5)
        stats = runtime.stats()
        assert stats.replica_announces == (0, 1)
        assert stats.failover_announces == 1
        assert (stats.pex_introductions, stats.evictions, stats.purges) == (
            0,
            0,
            0,
        )


# ---------------------------------------------------------------------------
# End-to-end behaviour (single engine at a time)
# ---------------------------------------------------------------------------

_BASE = dict(
    leechers=16,
    seeds=1,
    piece_count=400,
    rounds=18,
    start_completion=0.3,
    seed_upload_kbps=300.0,
)


class TestResilienceBehavior:
    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_failover_absorbs_a_replica_outage(self, engine):
        """With 3 replicas, a replica-0 outage never interrupts service."""
        # The scenario matters: only joining peers announce mid-run, so a
        # static swarm would sail through the outage without a failover.
        armed = SwarmSimulator(
            SwarmConfig(faults="outage:4+6", resilience="failover", **_BASE),
            seed=31,
            engine=engine,
            scenario="poisson",
        ).run()
        clean = SwarmSimulator(
            SwarmConfig(resilience="failover", **_BASE),
            seed=31,
            engine=engine,
            scenario="poisson",
        ).run()
        assert armed.resilience.failover_announces > 0
        assert armed.completed == clean.completed
        assert armed.collaboration_volume == clean.collaboration_volume

    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_pex_bootstraps_arrivals_during_blackout(self, engine):
        config = SwarmConfig(
            faults="outage:3+6/all", resilience="pex", **_BASE
        )
        result = SwarmSimulator(
            config, seed=37, engine=engine, scenario="poisson"
        ).run()
        assert result.resilience.pex_bootstraps > 0

    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_eviction_deflates_the_stale_scrape(self, engine):
        """Satellite: crashed-peer ghosts persist until evicted + purged."""
        # Slow the download enough that the run outlives the keepalive
        # timeout -- an early exit would leave the eviction clock unfired.
        base = dict(_BASE, piece_count=900)
        defenseless = SwarmSimulator(
            SwarmConfig(faults="crash:4@3", **base), seed=41, engine=engine
        )
        defenseless.run()
        armed = SwarmSimulator(
            SwarmConfig(
                faults="crash:4@3",
                resilience="trackers:1,keepalive:3",
                **base,
            ),
            seed=41,
            engine=engine,
        )
        result = armed.run()
        if engine == "reference":
            views = (_ReferenceSwarmView(defenseless), _ReferenceSwarmView(armed))
        else:  # unwrap the facade: the fast view reads the array engine
            views = (_FastSwarmView(defenseless._fast), _FastSwarmView(armed._fast))
        assert views[0].stale_count() == 4
        assert views[1].stale_count() == 0
        assert result.resilience.evictions == 4
        assert result.resilience.purges == 4

    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_trivial_policy_reports_no_stats(self, engine):
        result = SwarmSimulator(
            SwarmConfig(resilience="off", **_BASE), seed=43, engine=engine
        ).run()
        assert result.resilience is None

    def test_config_rejects_replica_target_beyond_announce_list(self):
        config = SwarmConfig(faults="outage:2+2/1", **_BASE)
        with pytest.raises(ValueError, match="targets tracker replica 1"):
            SwarmSimulator(config, seed=1)

    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_tracker_stale_count_tracks_ground_truth(self, engine):
        simulator = SwarmSimulator(
            SwarmConfig(faults="crash:3@2", **_BASE), seed=47, engine=engine
        )
        simulator.run()
        if engine == "reference":
            tracker = simulator.tracker
            present = set(simulator.peers)
        else:
            fast = simulator._fast
            tracker = fast.tracker
            present = {
                i + 1 for i in range(fast.n_total) if fast.alive[i]
            }
        assert tracker.stale_count(present) == 3
        # Pretend nobody is present: every registration is now a ghost.
        assert tracker.stale_count(()) >= 3
