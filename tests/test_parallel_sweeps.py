"""Parallel sweep orchestration: determinism, caching, CLI threading.

The contracts under test, from ``src/repro/sim/parallel.py``:

* ``workers=N`` produces bit-identical results to ``workers=1`` for every
  rewired sweep driver (every task owns its seed, so scheduling cannot
  perturb a single draw);
* a warm cache replays results bit-identically to the cold run, and the
  cache key changes whenever config, seed, engine or library version
  change;
* the CLI threads ``--workers`` / ``--no-cache`` / ``--cache-dir`` /
  ``--profile`` into the drivers that accept them.

Pool-backed tests use ``workers=2`` to keep tier-1 wall-clock low; the
slow-marked hypothesis property exercises ``workers=4`` across the
figure1 / figure6 / swarm sweep families.
"""

from __future__ import annotations

import json
import os
import signal
import time
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import cli
from repro.experiments.figures import (
    figure1_convergence,
    figure6_phase_transition,
    swarm_stratification_experiment,
    table1_clustering,
)
from repro.sim import parallel as parallel_module
from repro.sim.parallel import (
    ResultCache,
    SeedTree,
    SweepRunner,
    SweepTask,
    SweepTaskError,
    canonical_json,
    run_sweep,
)
from repro.sim.random_source import RandomSource


def _echo_point(value: int, seed: int, engine: str = "reference") -> dict:
    """A trivial module-level task function (picklable, deterministic)."""
    return {"value": value * 2, "seed": seed, "engine": engine}


def _explode_on_three(value: int, seed: int) -> dict:
    """Deterministic task failure: value 3 always raises."""
    if value == 3:
        raise ValueError(f"boom value={value}")
    return {"value": value * 2, "seed": seed}


def _kill_worker_once(value: int, seed: int, sentinel: str) -> dict:
    """SIGKILL the hosting worker the first time the sentinel is absent.

    Models an OOM-killed / crashed worker: the pool breaks, the retried
    task (sentinel now present) succeeds with the same deterministic
    output.
    """
    if value == 3:
        path = Path(sentinel)
        if not path.exists():
            try:
                path.write_text("died once")
            except OSError:
                pass  # unwritable sentinel: the worker dies on every attempt
            os.kill(os.getpid(), signal.SIGKILL)
    return {"value": value * 2, "seed": seed}


def _interrupt_once(value: int, seed: int, sentinel: str) -> dict:
    """Raise KeyboardInterrupt (a ^C) the first time value 3 is reached."""
    if value == 3:
        path = Path(sentinel)
        if not path.exists():
            path.write_text("interrupted once")
            raise KeyboardInterrupt
    return {"value": value * 2, "seed": seed}


def _sleep_forever(value: int, seed: int) -> dict:
    """A hung task: sleeps far longer than any test timeout."""
    time.sleep(2.0)
    return {"value": value * 2, "seed": seed}


def _series_equal(a: dict, b: dict) -> bool:
    """Deep equality for {label: {metric: ndarray}} series dicts."""
    if a.keys() != b.keys():
        return False
    for label in a:
        if a[label].keys() != b[label].keys():
            return False
        for metric in a[label]:
            if not np.array_equal(
                np.asarray(a[label][metric]),
                np.asarray(b[label][metric]),
                equal_nan=True,
            ):
                return False
    return True


class TestSeedTree:
    def test_same_path_same_seed(self):
        assert SeedTree(7).child("a", 1) == SeedTree(7).child("a", 1)

    def test_sibling_and_root_independence(self):
        tree = SeedTree(7)
        seeds = {tree.child("a"), tree.child("b"), tree.child("a", 0), SeedTree(8).child("a")}
        assert len(seeds) == 4

    def test_subtree_matches_full_path(self):
        tree = SeedTree(3)
        assert tree.subtree("x").child("y") == tree.child("x", "y")

    def test_source_layers_onto_named_streams(self):
        tree = SeedTree(11)
        direct = RandomSource(tree.child("rep", 2)).stream("graph").random()
        via_source = tree.source("rep", 2).stream("graph").random()
        assert direct == via_source

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            SeedTree(0).child()


class TestCanonicalization:
    def test_key_order_insensitive(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_numpy_scalars_normalize(self):
        assert canonical_json({"x": np.int64(3), "y": np.float64(0.5)}) == canonical_json(
            {"x": 3, "y": 0.5}
        )

    def test_dataclasses_are_tagged(self):
        from repro.bittorrent.scenarios import ScenarioSchedule

        payload = canonical_json(
            {"scenario": ScenarioSchedule(arrivals="poisson", arrival_rate=1.0)}
        )
        assert "__dataclass__" in payload and "ScenarioSchedule" in payload

    def test_uncanonicalizable_value_rejected(self):
        with pytest.raises(TypeError):
            canonical_json({"x": object()})

    def test_non_string_mapping_keys_rejected(self):
        # {1: ...} and {"1": ...} must not collapse to one cache key.
        with pytest.raises(TypeError, match="str keys"):
            canonical_json({"nested": {1: "a"}})


class TestResultCacheRoundTrip:
    def _task(self, **overrides) -> SweepTask:
        kwargs = dict(value=21, seed=5, engine="reference")
        kwargs.update(overrides)
        return SweepTask(_echo_point, kwargs)

    def test_roundtrip_is_bit_exact(self, tmp_path):
        cache = ResultCache(tmp_path)
        rng = np.random.default_rng(0)
        value = {
            "floats": rng.random(64),
            "ints": np.arange(5, dtype=np.int32),
            "nan": np.asarray([np.nan, 1.5]),
            "nested": {"t": (1, 2.5, None), "flag": True},
            "plain": 0.1 + 0.2,
        }
        task = self._task()
        stored = cache.put(task, value)
        hit, loaded = cache.get(task)
        assert hit
        for out in (stored, loaded):
            assert out["floats"].dtype == np.float64
            assert np.array_equal(out["floats"], value["floats"])
            assert out["ints"].dtype == np.int32
            assert np.array_equal(out["ints"], value["ints"])
            assert np.array_equal(out["nan"], value["nan"], equal_nan=True)
            assert out["nested"] == {"t": (1, 2.5, None), "flag": True}
            assert out["plain"] == value["plain"]

    def test_miss_then_hit_counters(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = self._task()
        hit, _ = cache.get(task)
        assert not hit and cache.misses == 1
        cache.put(task, {"value": 42})
        hit, _ = cache.get(task)
        assert hit and cache.hits == 1 and cache.writes == 1

    def test_key_depends_on_config_seed_and_engine(self, tmp_path):
        cache = ResultCache(tmp_path)
        base = cache.key_for(self._task())
        assert cache.key_for(self._task(value=22)) != base
        assert cache.key_for(self._task(seed=6)) != base
        assert cache.key_for(self._task(engine="fast")) != base
        assert cache.key_for(self._task()) == base

    def test_key_depends_on_library_version(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        base = cache.key_for(self._task())
        monkeypatch.setattr(parallel_module, "__version__", "999.0.0")
        assert cache.key_for(self._task()) != base

    def test_extra_key_partitions_the_cache(self, tmp_path):
        plain = ResultCache(tmp_path)
        fingerprinted = ResultCache(tmp_path, extra_key="abc123")
        task = self._task()
        assert plain.key_for(task) != fingerprinted.key_for(task)
        plain.put(task, {"value": 1})
        hit, _ = fingerprinted.get(task)
        assert not hit  # different sources, different entries

    def test_source_fingerprint_is_stable_and_short(self):
        from repro.sim.parallel import source_fingerprint

        a = source_fingerprint()
        assert a == source_fingerprint()
        assert len(a) == 16 and int(a, 16) >= 0

    def test_version_bump_invalidates_entries(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        task = self._task()
        cache.put(task, {"value": 42})
        monkeypatch.setattr(parallel_module, "__version__", "999.0.0")
        hit, _ = cache.get(task)
        assert not hit

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = self._task()
        cache.put(task, {"value": 42})
        path = cache._path(cache.key_for(task))
        path.write_text("{not json")
        hit, _ = cache.get(task)
        assert not hit

    def test_truncated_array_payload_is_a_miss(self, tmp_path):
        # Valid JSON whose base64 ndarray bytes were cut short (disk
        # corruption) must degrade to a miss, not crash the sweep.
        cache = ResultCache(tmp_path)
        task = self._task()
        cache.put(task, {"arr": np.arange(8, dtype=np.float64)})
        path = cache._path(cache.key_for(task))
        payload = json.loads(path.read_text())
        blob = payload["value"]["__dict__"][0][1]["__nd__"]
        payload["value"]["__dict__"][0][1]["__nd__"] = blob[: len(blob) // 2]
        path.write_text(json.dumps(payload))
        hit, _ = cache.get(task)
        assert not hit

    def test_object_dtype_rejected_before_write(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = self._task()
        with pytest.raises(TypeError, match="dtype"):
            cache.put(task, {"bad": np.asarray([1, "two"], dtype=object)})
        assert not any(cache.directory.rglob("*.json"))  # nothing persisted


class TestSweepRunner:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SweepRunner(workers=0)
        with pytest.raises(ValueError):
            SweepRunner(chunk_size=0)

    def test_rejects_unpicklable_functions(self):
        def local_fn(seed):
            return seed

        with pytest.raises(TypeError):
            SweepTask(local_fn, {"seed": 0})
        with pytest.raises(TypeError):
            SweepTask(lambda seed: seed, {"seed": 0})

    def test_serial_map_preserves_order(self):
        tasks = [SweepTask(_echo_point, dict(value=v, seed=v)) for v in range(6)]
        results = run_sweep(tasks)
        assert [r["value"] for r in results] == [0, 2, 4, 6, 8, 10]

    def test_cache_skips_recomputation(self, tmp_path):
        tasks = [SweepTask(_echo_point, dict(value=v, seed=v)) for v in range(4)]
        cold_cache = ResultCache(tmp_path)
        cold = run_sweep(tasks, cache=cold_cache)
        assert cold_cache.writes == 4
        warm_cache = ResultCache(tmp_path)
        warm = run_sweep(tasks, cache=warm_cache)
        assert warm_cache.hits == 4 and warm_cache.writes == 0
        assert cold == warm

    def test_partial_cache_mixes_hits_and_fresh_work(self, tmp_path):
        first = [SweepTask(_echo_point, dict(value=v, seed=v)) for v in range(2)]
        run_sweep(first, cache=tmp_path)
        extended = [SweepTask(_echo_point, dict(value=v, seed=v)) for v in range(4)]
        cache = ResultCache(tmp_path)
        results = run_sweep(extended, cache=cache)
        assert cache.hits == 2 and cache.writes == 2
        assert [r["value"] for r in results] == [0, 2, 4, 6]

    def test_pool_matches_serial_on_plain_tasks(self):
        tasks = [SweepTask(_echo_point, dict(value=v, seed=v)) for v in range(7)]
        assert run_sweep(tasks) == run_sweep(tasks, workers=2, chunk_size=2)


class TestSweepRobustness:
    """Worker death, hung tasks, corrupt cache entries, interrupted sweeps."""

    def _tasks(self, fn=_echo_point, count=6, **extra):
        return [
            SweepTask(fn, dict(value=v, seed=v, **extra), label=f"cell{v}")
            for v in range(count)
        ]

    def test_inline_failure_names_the_task(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(SweepTaskError) as info:
            run_sweep(self._tasks(_explode_on_three), cache=cache)
        err = info.value
        assert err.label == "cell3" and err.seed == 3
        assert err.key is not None and "boom value=3" in str(err)
        assert isinstance(err.__cause__, ValueError)

    def test_pool_failure_names_the_task(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(SweepTaskError) as info:
            run_sweep(
                self._tasks(_explode_on_three),
                workers=2,
                chunk_size=1,
                cache=cache,
            )
        err = info.value
        # The error crossed a process boundary: the cause repr is folded
        # into the message, the task identity survives as attributes.
        assert err.label == "cell3" and err.seed == 3
        assert err.key is not None and "boom value=3" in str(err)

    def test_sweep_task_error_survives_pickling(self):
        import pickle

        err = SweepTaskError("msg", label="cell1", seed=9, key="abc")
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, SweepTaskError)
        assert (clone.label, clone.seed, clone.key) == ("cell1", 9, "abc")
        assert str(clone) == "msg"

    def test_corrupt_entry_quarantined_to_dot_corrupt(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = SweepTask(_echo_point, dict(value=1, seed=1))
        cache.put(task, {"value": 2})
        path = cache._path(cache.key_for(task))
        path.write_text("{truncated")
        hit, _ = cache.get(task)
        assert not hit
        quarantined = path.with_suffix(".corrupt")
        assert quarantined.exists()
        assert quarantined.read_text() == "{truncated"
        assert not path.exists()
        # The recompute writes a clean entry alongside the quarantined one.
        cache.put(task, {"value": 2})
        hit, value = cache.get(task)
        assert hit and value == {"value": 2}

    def test_missing_entry_not_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = SweepTask(_echo_point, dict(value=1, seed=1))
        hit, _ = cache.get(task)
        assert not hit
        assert not list(cache.directory.rglob("*.corrupt"))

    def test_worker_sigkill_respawns_and_matches_serial(self, tmp_path):
        """A SIGKILLed worker breaks the pool; the respawn completes the
        sweep byte-identical to an uninterrupted workers=1 run."""
        sentinel = tmp_path / "died"
        tasks = self._tasks(_kill_worker_once, sentinel=str(sentinel))
        manifest = tmp_path / "manifest.json"
        recovered = run_sweep(
            tasks,
            workers=2,
            chunk_size=1,
            retries=2,
            retry_backoff=0.0,
            cache=tmp_path / "cache",
            manifest=manifest,
        )
        assert sentinel.exists()  # the kill really happened
        payload = json.loads(manifest.read_text())
        assert payload["status"] == "complete"
        assert len(payload["completed"]) == payload["total"] == len(tasks)
        # Uninterrupted serial reference (sentinel present: no more kills).
        serial = run_sweep(tasks, workers=1, cache=tmp_path / "serial-cache")
        assert recovered == serial

    def test_worker_death_exhausts_retries(self, tmp_path):
        always_dead = tmp_path / "nonexistent-dir" / "sentinel"
        tasks = self._tasks(_kill_worker_once, sentinel=str(always_dead))
        with pytest.raises(SweepTaskError, match="worker died"):
            run_sweep(
                tasks, workers=2, chunk_size=1, retries=1, retry_backoff=0.0
            )

    def test_timeout_treated_as_dead_worker(self):
        tasks = self._tasks(_sleep_forever, count=2)
        with pytest.raises(SweepTaskError, match="timed out"):
            run_sweep(
                tasks,
                workers=2,
                chunk_size=1,
                timeout=0.25,
                retries=0,
                retry_backoff=0.0,
            )

    def test_keyboard_interrupt_checkpoints_and_resumes(self, tmp_path):
        """A ^C'd sweep flushes its manifest; rerunning resumes from the
        cache and ends byte-identical to an uninterrupted run."""
        sentinel = tmp_path / "interrupted"
        tasks = self._tasks(_interrupt_once, sentinel=str(sentinel))
        manifest = tmp_path / "manifest.json"
        cache_dir = tmp_path / "cache"
        with pytest.raises(KeyboardInterrupt):
            run_sweep(tasks, cache=cache_dir, manifest=manifest)
        payload = json.loads(manifest.read_text())
        assert payload["status"] == "interrupted"
        completed_before = len(payload["completed"])
        assert 0 < completed_before < len(tasks)  # tasks 0..2 landed
        # Resume: same sweep, same cache -- completed work replays.
        cache = ResultCache(cache_dir)
        resumed = run_sweep(tasks, cache=cache, manifest=manifest)
        assert cache.hits == completed_before
        payload = json.loads(manifest.read_text())
        assert payload["status"] == "complete"
        assert len(payload["completed"]) == len(tasks)
        serial = run_sweep(tasks, workers=1, cache=tmp_path / "serial-cache")
        assert resumed == serial

    def test_manifest_requires_cache(self, tmp_path):
        with pytest.raises(ValueError, match="manifest requires a cache"):
            SweepRunner(manifest=tmp_path / "manifest.json")

    def test_failed_sweep_marks_manifest(self, tmp_path):
        manifest = tmp_path / "manifest.json"
        with pytest.raises(SweepTaskError):
            run_sweep(
                self._tasks(_explode_on_three),
                cache=tmp_path / "cache",
                manifest=manifest,
            )
        assert json.loads(manifest.read_text())["status"] == "failed"

    def test_rejects_bad_robustness_parameters(self):
        with pytest.raises(ValueError):
            SweepRunner(timeout=0)
        with pytest.raises(ValueError):
            SweepRunner(retries=-1)
        with pytest.raises(ValueError):
            SweepRunner(retry_backoff=-0.1)


class TestSweepDeterminism:
    """workers=1 vs workers=N vs cached -- bit-identical driver outputs."""

    def test_figure1_parallel_matches_serial(self):
        params = ((60, 10), (80, 12), (70, 15))
        serial = figure1_convergence(parameters=params, seed=3)
        pooled = figure1_convergence(parameters=params, seed=3, workers=2)
        assert _series_equal(serial, pooled)

    def test_figure6_parallel_and_cache_match_serial(self, tmp_path):
        kwargs = dict(sigmas=[0.0, 0.15, 0.4], n=500, repetitions=2, seed=9)
        serial = figure6_phase_transition(**kwargs)
        pooled = figure6_phase_transition(**kwargs, workers=2)
        cold = figure6_phase_transition(**kwargs, cache=tmp_path)
        warm = figure6_phase_transition(**kwargs, cache=tmp_path)
        assert (
            serial.to_records()
            == pooled.to_records()
            == cold.to_records()
            == warm.to_records()
        )

    def test_figure6_cache_actually_replays(self, tmp_path):
        kwargs = dict(sigmas=[0.0, 0.3], n=400, repetitions=2, seed=1)
        figure6_phase_transition(**kwargs, cache=tmp_path)
        cache = ResultCache(tmp_path)
        figure6_phase_transition(**kwargs, cache=cache)
        assert cache.hits == 4 and cache.writes == 0

    def test_figure6_cache_invalidates_on_config_change(self, tmp_path):
        figure6_phase_transition(
            sigmas=[0.0, 0.3], n=400, repetitions=2, seed=1, cache=tmp_path
        )
        cache = ResultCache(tmp_path)
        figure6_phase_transition(
            sigmas=[0.0, 0.3], n=450, repetitions=2, seed=1, cache=cache
        )
        assert cache.hits == 0 and cache.writes == 4

    def test_swarm_repetitions_parallel_matches_serial(self):
        kwargs = dict(leechers=12, rounds=10, piece_count=40, seed=5, repetitions=3)
        serial = swarm_stratification_experiment(**kwargs)
        pooled = swarm_stratification_experiment(**kwargs, workers=2)
        assert serial == pooled
        assert serial["repetitions"] == 3.0

    def test_swarm_single_repetition_keeps_historical_result(self):
        base = swarm_stratification_experiment(
            leechers=12, rounds=10, piece_count=40, seed=5
        )
        replicated = swarm_stratification_experiment(
            leechers=12, rounds=10, piece_count=40, seed=5, repetitions=1
        )
        assert base == replicated and "repetitions" not in base

    def test_integer_sigma_keeps_legacy_stream_names(self):
        """sigma is forwarded verbatim: f"slots-{1}-0" != f"slots-{1.0}-0".

        The pre-parallel serial loop named the slot stream with the
        caller's sigma value as-is, so an integer sigma must keep
        producing the integer-named stream (and a float sigma the float
        one) -- they draw different slots.
        """
        from repro.stratification.bvalues import rounded_normal_slots
        from repro.stratification.clustering import analyze_complete_matching
        from repro.stratification.phase_transition import (
            variable_matching_statistics,
        )

        for sigma in (1, 1.0):
            # The historical serial loop, inlined.
            source = RandomSource(7)
            rng = source.fresh_stream(f"slots-{sigma}-0")
            slots = rounded_normal_slots(300, 6.0, sigma, rng)
            expected = analyze_complete_matching(slots).mean_cluster_size
            point = variable_matching_statistics(
                300, 6.0, sigma, repetitions=1, seed=7
            )
            assert point.mean_cluster_size == float(expected), sigma

    def test_table1_parallel_matches_serial(self):
        serial = table1_clustering(b_values=(2, 3), n=400, repetitions=2, seed=0)
        pooled = table1_clustering(b_values=(2, 3), n=400, repetitions=2, seed=0, workers=2)
        assert serial.to_records() == pooled.to_records()

    @pytest.mark.slow
    @pytest.mark.equivalence
    @settings(max_examples=3, deadline=None)
    @given(
        family=st.sampled_from(["figure1", "figure6", "swarm"]),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    def test_workers4_property(self, family, seed):
        """workers=1 and workers=4 (and cached replays) are bit-identical."""
        import tempfile

        if family == "figure1":
            kwargs = dict(parameters=((50, 8), (60, 10)), seed=seed)
            serial = figure1_convergence(**kwargs)
            pooled = figure1_convergence(**kwargs, workers=4)
            assert _series_equal(serial, pooled)
        elif family == "figure6":
            kwargs = dict(sigmas=[0.0, 0.2, 0.6], n=300, repetitions=2, seed=seed)
            with tempfile.TemporaryDirectory() as tmp:
                serial = figure6_phase_transition(**kwargs)
                pooled = figure6_phase_transition(**kwargs, workers=4, cache=tmp)
                warm = figure6_phase_transition(**kwargs, cache=tmp)
            assert (
                serial.to_records() == pooled.to_records() == warm.to_records()
            )
        else:
            kwargs = dict(leechers=10, rounds=8, piece_count=30, seed=seed, repetitions=4)
            serial = swarm_stratification_experiment(**kwargs)
            pooled = swarm_stratification_experiment(**kwargs, workers=4)
            assert serial == pooled


class TestCliThreading:
    def test_parser_accepts_parallel_flags(self):
        args = cli.build_parser().parse_args(
            ["figure6", "--workers", "4", "--no-cache", "--profile"]
        )
        assert args.workers == 4 and args.no_cache and args.profile

    def test_workers_and_cache_threaded_to_drivers(self, tmp_path):
        seen = {}

        def fake_runner(*, seed=0, engine="reference", workers=1, cache=None):
            seen.update(seed=seed, engine=engine, workers=workers, cache=cache)
            return {"ok": 1.0}

        args = cli.build_parser().parse_args(
            ["figure6", "--workers", "3", "--cache-dir", str(tmp_path)]
        )
        cache = cli._build_cache(args)
        kwargs = cli._runner_kwargs(fake_runner, args, cache)
        fake_runner(**kwargs)
        assert seen["workers"] == 3
        # The CLI cache is source-fingerprinted so code edits can never
        # silently replay pre-edit results.
        assert isinstance(seen["cache"], ResultCache)
        assert seen["cache"].directory == tmp_path
        assert seen["cache"].extra_key is not None

    def test_no_cache_and_profile_disable_cache(self, tmp_path):
        def fake_runner(*, seed=0, workers=1, cache=None):
            return {}

        for flags in (["--no-cache"], ["--profile"]):
            args = cli.build_parser().parse_args(
                ["figure6", "--cache-dir", str(tmp_path)] + flags
            )
            assert cli._build_cache(args) is None
            kwargs = cli._runner_kwargs(fake_runner, args, None)
            assert "cache" not in kwargs
        # --profile also forces inline execution
        args = cli.build_parser().parse_args(["figure6", "--workers", "8", "--profile"])
        assert cli._runner_kwargs(fake_runner, args, None)["workers"] == 1

    def test_invalid_workers_rejected(self, capsys):
        with pytest.raises(SystemExit):
            cli.main(["figure4-5", "--workers", "0"])

    def test_profile_prints_hot_spots(self, capsys, tmp_path):
        code = cli.main(
            ["figure4-5", "--profile", "--cache-dir", str(tmp_path / "unused")]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "cumulative" in out and "Figures 4-5" in out
        assert not (tmp_path / "unused").exists()

    def test_cached_cli_run_repeats_output(self, capsys, tmp_path):
        argv = [
            "figure6",
            "--seed",
            "2",
            "--cache-dir",
            str(tmp_path),
        ]
        # Shrink the experiment through the registry so the test stays fast.
        original = cli._EXPERIMENTS["figure6"]

        def small_figure6(*, seed=0, engine="reference", workers=1, cache=None):
            return figure6_phase_transition(
                sigmas=[0.0, 0.3],
                n=300,
                repetitions=1,
                seed=seed,
                engine=engine,
                workers=workers,
                cache=cache,
            )

        cli._EXPERIMENTS["figure6"] = small_figure6
        try:
            assert cli.main(argv) == 0
            cold = capsys.readouterr().out
            assert cli.main(argv) == 0
            warm = capsys.readouterr().out
        finally:
            cli._EXPERIMENTS["figure6"] = original
        assert cold == warm
        assert any(tmp_path.rglob("*.json"))
