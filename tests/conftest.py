"""Shared fixtures and options for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import cli
from repro.core.acceptance import AcceptanceGraph
from repro.core.peer import PeerPopulation
from repro.core.ranking import GlobalRanking
from repro.sim.random_source import RandomSource


@pytest.fixture(autouse=True)
def _isolated_cli_cache(tmp_path_factory, monkeypatch):
    """Point the CLI's default result cache at a per-test temp directory.

    ``repro-p2p`` caches sweep points on disk by default; tests invoking
    ``cli.main`` must not leave ``.repro-cache/`` in the repo root, and --
    more importantly -- must not *replay* stale entries across test runs,
    which would mask regressions in the simulators the tests think they
    are exercising.
    """
    monkeypatch.setattr(
        cli, "DEFAULT_CACHE_DIR", tmp_path_factory.mktemp("repro-cache")
    )


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help=(
            "rewrite tests/golden/*.json from the current engines instead of "
            "diffing against them (run: pytest tests/test_golden_traces.py "
            "--regen-golden, then review + commit the diff)"
        ),
    )


@pytest.fixture
def regen_golden(request: pytest.FixtureRequest) -> bool:
    """Whether this run regenerates the golden traces instead of diffing."""
    return bool(request.config.getoption("--regen-golden", default=False))


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic numpy generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def source() -> RandomSource:
    """A deterministic random source."""
    return RandomSource(12345)


@pytest.fixture
def small_population() -> PeerPopulation:
    """Nine ranked peers with two slots each."""
    return PeerPopulation.ranked(9, slots=2)


@pytest.fixture
def small_complete_acceptance(small_population: PeerPopulation) -> AcceptanceGraph:
    """Complete acceptance graph over the nine-peer population."""
    return AcceptanceGraph.complete(small_population)


@pytest.fixture
def medium_er_acceptance(source: RandomSource) -> AcceptanceGraph:
    """Erdős–Rényi acceptance graph over 60 single-slot peers."""
    population = PeerPopulation.ranked(60, slots=1)
    return AcceptanceGraph.erdos_renyi(
        population, expected_degree=8.0, rng=source.stream("graph")
    )


@pytest.fixture
def ranking(small_population: PeerPopulation) -> GlobalRanking:
    """Ranking of the nine-peer population."""
    return GlobalRanking.from_population(small_population)
