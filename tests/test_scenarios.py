"""Unit tests for the dynamic-swarm scenario subsystem.

The cross-engine bit-identity of scenarios lives in
``tests/test_swarm_engine_equivalence.py``; this file pins the *semantics*
of :class:`~repro.bittorrent.scenarios.ScenarioSchedule` itself (arrival
processes, departure boundaries, caps, validation) plus the reference
simulator's membership invariants under churn.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bittorrent.scenarios import (
    SCENARIO_NAMES,
    ScenarioSchedule,
    make_scenario,
    resolve_scenario,
)
from repro.bittorrent.swarm import SwarmConfig, SwarmSimulator


class TestScheduleValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"arrivals": "warp"},
            {"departure": "teleport"},
            {"arrivals": "poisson", "arrival_rate": -1.0},
            {"arrivals": "poisson", "arrival_rate": 0.0},
            {"arrivals": "flashcrowd", "burst_size": 0},
            {"arrivals": "flashcrowd", "burst_size": 5, "burst_round": 0},
            {"arrivals": "flashcrowd", "burst_size": -1, "burst_round": 2},
            {"arrivals": "poisson", "arrival_rate": 1.0, "max_arrivals": -1},
            {"departure": "linger", "linger_rounds": -2},
            {"arrival_completion": 1.0},
            {"arrival_completion": -0.1},
        ],
    )
    def test_invalid_schedules_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ScenarioSchedule(**kwargs)

    def test_presets_and_overrides(self):
        assert make_scenario("static").is_static
        poisson = make_scenario("poisson", arrival_rate=7.0)
        assert poisson.arrivals == "poisson" and poisson.arrival_rate == 7.0
        linger = make_scenario("seed-linger")
        assert linger.departure == "linger" and linger.effective_linger == 5
        with pytest.raises(ValueError):
            make_scenario("tsunami")
        assert set(SCENARIO_NAMES) == {"static", "poisson", "flashcrowd", "seed-linger"}

    def test_resolve_scenario(self):
        assert resolve_scenario(None).is_static
        assert resolve_scenario("flashcrowd").arrivals == "flashcrowd"
        schedule = ScenarioSchedule()
        assert resolve_scenario(schedule) is schedule
        with pytest.raises(TypeError):
            resolve_scenario(42)

    def test_unknown_preset_error_lists_valid_names(self):
        """The error message must enumerate every valid preset name."""
        with pytest.raises(ValueError) as excinfo:
            make_scenario("tsunami")
        message = str(excinfo.value)
        assert "tsunami" in message
        for name in SCENARIO_NAMES:
            assert name in message

    def test_unknown_preset_via_resolve_lists_valid_names(self):
        """resolve_scenario(str) routes through make_scenario's message."""
        with pytest.raises(ValueError) as excinfo:
            resolve_scenario("tsunami")
        for name in SCENARIO_NAMES:
            assert name in str(excinfo.value)

    def test_invalid_process_error_lists_valid_processes(self):
        from repro.bittorrent.scenarios import ARRIVAL_PROCESSES, DEPARTURE_POLICIES

        with pytest.raises(ValueError) as excinfo:
            ScenarioSchedule(arrivals="warp")
        for name in ARRIVAL_PROCESSES:
            assert name in str(excinfo.value)
        with pytest.raises(ValueError) as excinfo:
            ScenarioSchedule(departure="teleport")
        for name in DEPARTURE_POLICIES:
            assert name in str(excinfo.value)

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_preset_override_roundtrip(self, name):
        """Overriding a preset field with its own value reproduces the preset."""
        base = make_scenario(name)
        same = make_scenario(
            name,
            arrivals=base.arrivals,
            arrival_rate=base.arrival_rate,
            burst_round=base.burst_round,
            burst_size=base.burst_size,
            departure=base.departure,
            linger_rounds=base.linger_rounds,
            arrival_completion=base.arrival_completion,
        )
        assert same == base
        # A real override changes exactly the targeted field.
        bumped = make_scenario(name, arrival_completion=0.25)
        assert bumped.arrival_completion == 0.25
        assert bumped == make_scenario(name, arrival_completion=0.25)

    def test_overrides_still_validated(self):
        with pytest.raises(ValueError):
            make_scenario("poisson", arrival_rate=-1.0)
        with pytest.raises(TypeError):
            make_scenario("poisson", warp_factor=9)


class TestArrivalProcess:
    def test_static_draws_nothing(self):
        """A static schedule must not consume the scenario stream at all."""
        schedule = ScenarioSchedule()
        rng = np.random.default_rng(0)
        untouched = np.random.default_rng(0)
        for round_index in range(1, 10):
            assert schedule.arrivals_for_round(round_index, 0, rng) == 0
        assert rng.integers(1 << 30) == untouched.integers(1 << 30)

    def test_flash_crowd_burst_round(self):
        schedule = ScenarioSchedule(
            arrivals="flashcrowd", burst_round=4, burst_size=17
        )
        rng = np.random.default_rng(1)
        counts = [schedule.arrivals_for_round(r, 0, rng) for r in range(1, 8)]
        assert counts == [0, 0, 0, 17, 0, 0, 0]

    def test_poisson_matches_generator_draws(self):
        schedule = ScenarioSchedule(arrivals="poisson", arrival_rate=2.5)
        seen = [
            schedule.arrivals_for_round(r, 0, np.random.default_rng(123))
            for r in range(1, 4)
        ]
        expected = int(np.random.default_rng(123).poisson(2.5))
        assert seen == [expected] * 3

    def test_max_arrivals_cap(self):
        schedule = ScenarioSchedule(
            arrivals="flashcrowd", burst_round=1, burst_size=10, max_arrivals=4
        )
        rng = np.random.default_rng(2)
        assert schedule.arrivals_for_round(1, 0, rng) == 4
        assert schedule.arrivals_for_round(1, 4, rng) == 0
        assert not schedule.more_arrivals_after(1, 4)

    def test_more_arrivals_after(self):
        assert not ScenarioSchedule().more_arrivals_after(1, 0)
        poisson = ScenarioSchedule(arrivals="poisson", arrival_rate=1.0)
        assert poisson.more_arrivals_after(999, 10_000)
        burst = ScenarioSchedule(arrivals="flashcrowd", burst_round=5, burst_size=3)
        assert burst.more_arrivals_after(4, 0)
        assert not burst.more_arrivals_after(5, 3)
        trickle = ScenarioSchedule(
            arrivals="flashcrowd", burst_round=5, burst_size=3, background_rate=0.5
        )
        assert trickle.more_arrivals_after(50, 10)

    def test_arrival_pieces_clamped_below_complete(self):
        nearly = ScenarioSchedule(arrival_completion=0.99)
        assert nearly.arrival_pieces(10) == 9  # round(9.9) would be complete
        assert ScenarioSchedule().arrival_pieces(10) == 0

    def test_capacity_distribution_used(self):
        from repro.bittorrent.bandwidth import saroiu_like_distribution

        schedule = ScenarioSchedule(
            arrivals="poisson", arrival_rate=1.0, capacity=saroiu_like_distribution()
        )
        caps = schedule.sample_capacities(5, np.random.default_rng(3))
        assert caps.shape == (5,) and (caps > 0).all()


class TestDeparturePolicy:
    def test_stay_never_departs(self):
        schedule = ScenarioSchedule()
        assert not schedule.should_depart(1, 100)

    @pytest.mark.parametrize("policy,linger,expected_round", [
        ("leave", 0, 6),
        ("leave", 9, 6),  # "leave" ignores linger_rounds
        ("linger", 0, 6),
        ("linger", 3, 9),
    ])
    def test_departure_round_boundary(self, policy, linger, expected_round):
        schedule = ScenarioSchedule(departure=policy, linger_rounds=linger)
        completed = 5
        for round_index in range(completed, expected_round):
            assert not schedule.should_depart(completed, round_index)
        assert schedule.should_depart(completed, expected_round)

    def test_incomplete_peers_never_depart(self):
        schedule = ScenarioSchedule(departure="leave")
        assert not schedule.should_depart(None, 50)


class TestReferenceChurnInvariants:
    """Membership bookkeeping of the reference engine under a live scenario."""

    @pytest.fixture(scope="class")
    def churned(self):
        config = SwarmConfig(
            leechers=18, seeds=2, piece_count=40, rounds=20, start_completion=0.4
        )
        simulator = SwarmSimulator(config, seed=13, scenario="seed-linger")
        return simulator, simulator.run()

    def test_departed_frozen_and_counted(self, churned):
        simulator, result = churned
        departed = [p for p in result.peers.values() if p.departed_round is not None]
        assert len(departed) == result.departures > 0
        for peer in departed:
            assert not peer.is_seed
            assert peer.bitfield.is_complete()
            assert peer.completed_round is not None
            assert peer.departed_round > peer.completed_round
            assert peer.peer_id not in simulator.peers

    def test_arrivals_counted_and_stamped(self, churned):
        _, result = churned
        joiners = [p for p in result.peers.values() if p.arrival_round > 0]
        assert len(joiners) == result.arrivals > 0
        config_population = result.config.leechers + result.config.seeds
        assert len(result.peers) == config_population + result.arrivals
        for peer in joiners:
            assert not peer.is_seed

    def test_tracker_forgets_departed(self, churned):
        simulator, result = churned
        known = set(simulator.tracker.known_peers())
        assert known == {p.peer_id for p in result.present_peers()}

    def test_present_peers_partitions_population(self, churned):
        _, result = churned
        present = {p.peer_id for p in result.present_peers()}
        departed = {
            pid for pid, p in result.peers.items() if p.departed_round is not None
        }
        assert present | departed == set(result.peers)
        assert not (present & departed)

    def test_download_rate_uses_residence_time(self):
        from repro.bittorrent.swarm import SwarmPeer
        from repro.bittorrent.pieces import Bitfield

        peer = SwarmPeer(
            peer_id=1,
            upload_kbps=100.0,
            is_seed=False,
            bitfield=Bitfield.empty(4),
            downloaded_kbit=1000.0,
            arrival_round=5,
            completed_round=10,
        )
        # Joined at the start of round 5, completed in round 10: active for
        # rounds 5..10 inclusive = 6 rounds of 10 seconds.
        assert peer.download_rate_kbps(rounds=40, round_seconds=10.0) == 1000.0 / 60.0
        # An initial-population peer (arrival_round 0) spans the full horizon.
        peer.arrival_round = 0
        peer.completed_round = None
        assert peer.download_rate_kbps(rounds=40, round_seconds=10.0) == 1000.0 / 400.0
