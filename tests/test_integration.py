"""Cross-module integration tests: theory vs simulation consistency.

These tests tie the layers together the way the paper does: the analytic
models (Section 5) must agree with explicit stable matchings computed by
Algorithm 1 on sampled graphs (Section 3), and the BitTorrent reduction
(Section 6) must be consistent with the matching model's stratification.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analytical.one_matching import independent_one_matching
from repro.core.acceptance import AcceptanceGraph
from repro.core.dynamics import ConvergenceSimulator
from repro.core.matching import is_stable
from repro.core.metrics import mean_max_offset
from repro.core.peer import PeerPopulation
from repro.core.ranking import GlobalRanking, TitForTatUtility
from repro.core.stable import stable_configuration
from repro.sim.random_source import RandomSource
from repro.stratification.clustering import analyze_complete_matching
from repro.stratification.bvalues import rounded_normal_slots


class TestTheoryVsSimulation:
    def test_algorithm2_predicts_monte_carlo_match_rates(self):
        """The analytic matching probability agrees with sampled stable matchings."""
        n, p, samples = 120, 0.06, 120
        model = independent_one_matching(n, p)
        source = RandomSource(17)
        matched_counts = np.zeros(n)
        for index in range(samples):
            population = PeerPopulation.ranked(n, slots=1)
            acceptance = AcceptanceGraph.erdos_renyi(
                population, probability=p, rng=source.fresh_stream(f"g{index}")
            )
            matching = stable_configuration(acceptance)
            for peer_id in matching.peer_ids():
                if matching.degree(peer_id) > 0:
                    matched_counts[peer_id - 1] += 1
        empirical = matched_counts / samples
        analytic = np.array([model.match_probability(i) for i in range(1, n + 1)])
        # Average absolute gap across all peers stays small.
        assert float(np.mean(np.abs(empirical - analytic))) < 0.08

    def test_dynamics_reach_algorithm1_fixed_point(self):
        """The decentralised initiative process ends exactly at Algorithm 1's output."""
        source = RandomSource(23)
        population = PeerPopulation.ranked(80, slots=2)
        acceptance = AcceptanceGraph.erdos_renyi(
            population, expected_degree=12, rng=source.stream("graph")
        )
        simulator = ConvergenceSimulator(acceptance, strategy="random", source=source)
        result = simulator.run(max_base_units=400, samples_per_base_unit=2)
        assert result.converged
        assert result.final_matching == simulator.stable
        assert is_stable(result.final_matching, simulator.ranking)

    def test_stratification_offsets_scale_with_degree_not_size(self):
        """Stratification is scalable: the mate offset depends on d, not on n."""
        d = 20.0
        small = independent_one_matching(800, d / 800, rows=[400])
        large = independent_one_matching(2400, d / 2400, rows=[1200])
        ranks_small = np.arange(1, 801)
        ranks_large = np.arange(1, 2401)
        spread_small = np.sqrt(
            ((ranks_small - 400) ** 2 * small.row(400)).sum() / small.row(400).sum()
        ) / 800
        spread_large = np.sqrt(
            ((ranks_large - 1200) ** 2 * large.row(1200)).sum() / large.row(1200).sum()
        ) / 2400
        # The *scaled* spread (fraction of the ranking) is the same for both
        # system sizes: the offsets scale linearly with n at fixed d.
        assert spread_small == pytest.approx(spread_large, rel=0.15)

    def test_tft_reduction_matches_bandwidth_ranking(self):
        """Section 6: TFT with even upload split reduces to the global ranking."""
        uploads = {1: 2000.0, 2: 900.0, 3: 450.0, 4: 100.0}
        slots = {1: 4, 2: 3, 3: 3, 4: 3}
        ranking = TitForTatUtility.from_upload_per_slot(uploads, slots)
        per_slot = {pid: uploads[pid] / slots[pid] for pid in uploads}
        expected_order = sorted(per_slot, key=lambda pid: -per_slot[pid])
        assert ranking.sorted_by_rank() == expected_order

    def test_variable_b_reduces_stratification_but_connects_graph(self):
        """Section 4.2's trade-off: bigger clusters, smaller MMO."""
        rng = np.random.default_rng(3)
        constant = analyze_complete_matching([6] * 4000)
        variable = analyze_complete_matching(rounded_normal_slots(4000, 6.0, 0.3, rng))
        assert variable.mean_cluster_size > 5 * constant.mean_cluster_size
        assert variable.mean_max_offset < constant.mean_max_offset

    def test_mmo_of_er_stable_matching_scales_with_degree(self):
        """On sparse random graphs the collaboration offsets grow with n/d."""
        source = RandomSource(29)
        mmos = {}
        for n in (200, 400):
            population = PeerPopulation.ranked(n, slots=1)
            acceptance = AcceptanceGraph.erdos_renyi(
                population, expected_degree=10, rng=source.stream(f"g{n}")
            )
            ranking = GlobalRanking.from_population(population)
            matching = stable_configuration(acceptance, ranking)
            mmos[n] = mean_max_offset(matching, ranking)
        # Offsets roughly double when n doubles at fixed d (scaling property).
        assert mmos[400] > 1.4 * mmos[200]
