"""Tests for initiative strategies, convergence dynamics and churn."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.acceptance import AcceptanceGraph
from repro.core.churn import ChurnConfig, simulate_churn
from repro.core.dynamics import ConvergenceSimulator, simulate_convergence, simulate_peer_removal
from repro.core.initiatives import (
    BestMateInitiative,
    DecrementalInitiative,
    RandomInitiative,
    apply_initiative,
    make_strategy,
)
from repro.core.matching import Matching
from repro.core.peer import PeerPopulation
from repro.core.ranking import GlobalRanking
from repro.core.stable import stable_configuration
from repro.sim.random_source import RandomSource


class TestInitiatives:
    def test_make_strategy(self):
        assert isinstance(make_strategy("best-mate"), BestMateInitiative)
        assert isinstance(make_strategy("decremental"), DecrementalInitiative)
        assert isinstance(make_strategy("random"), RandomInitiative)
        with pytest.raises(ValueError):
            make_strategy("greedy")

    def test_apply_initiative_drops_worst_mate(self, small_complete_acceptance, ranking):
        matching = Matching(small_complete_acceptance)
        matching.match(5, 8)
        matching.match(5, 9)
        # Peer 4 proposes to 5; 5 is full and drops its worst mate (9).
        assert apply_initiative(matching, ranking, 4, 5)
        assert matching.is_matched(4, 5)
        assert not matching.is_matched(5, 9)
        assert matching.is_matched(5, 8)

    def test_apply_initiative_ignores_non_blocking(self, small_complete_acceptance, ranking):
        matching = Matching(small_complete_acceptance)
        matching.match(5, 1)
        matching.match(5, 2)
        # Peer 9 is worse than both current mates of 5: nothing happens.
        assert not apply_initiative(matching, ranking, 9, 5)
        assert matching.degree(9) == 0

    @pytest.mark.parametrize("strategy_name", ["best-mate", "decremental", "random"])
    def test_every_strategy_reaches_the_stable_state(self, strategy_name):
        source = RandomSource(42)
        population = PeerPopulation.ranked(30, slots=1)
        acceptance = AcceptanceGraph.erdos_renyi(
            population, expected_degree=6, rng=source.stream("graph")
        )
        ranking = GlobalRanking.from_population(population)
        stable = stable_configuration(acceptance, ranking)

        matching = Matching(acceptance)
        strategy = make_strategy(strategy_name)
        rng = source.stream("drive")
        peer_ids = acceptance.peer_ids()
        for _ in range(20000):
            peer = peer_ids[int(rng.integers(len(peer_ids)))]
            strategy.take_initiative(matching, ranking, peer, rng)
            if matching == stable:
                break
        assert matching == stable

    def test_best_mate_proposes_best_blocking_peer(self, small_complete_acceptance, ranking):
        matching = Matching(small_complete_acceptance)
        strategy = BestMateInitiative()
        rng = np.random.default_rng(0)
        proposal = strategy.propose(matching, ranking, 9, rng)
        assert proposal == 1

    def test_decremental_scans_circularly(self, small_complete_acceptance, ranking):
        matching = Matching(small_complete_acceptance)
        strategy = DecrementalInitiative()
        rng = np.random.default_rng(0)
        first = strategy.propose(matching, ranking, 9, rng)
        second = strategy.propose(matching, ranking, 9, rng)
        assert first == 1 and second == 2
        strategy.reset()
        assert strategy.propose(matching, ranking, 9, rng) == 1

    def test_random_initiative_stays_in_acceptance_list(self, ranking):
        population = PeerPopulation.ranked(9, slots=2)
        acceptance = AcceptanceGraph(population)
        acceptance.declare_acceptable(9, 3)
        matching = Matching(acceptance)
        strategy = RandomInitiative()
        rng = np.random.default_rng(0)
        for _ in range(10):
            assert strategy.propose(matching, ranking, 9, rng) == 3
        assert strategy.propose(matching, ranking, 1, rng) is None


class TestConvergence:
    def test_convergence_reaches_stable_state(self):
        result = simulate_convergence(80, 10, seed=1, max_base_units=40)
        assert result.converged
        assert result.time_to_converge is not None
        assert result.trajectory.last() == 0.0

    def test_disorder_starts_high_and_decreases(self):
        result = simulate_convergence(80, 10, seed=2, max_base_units=40)
        _, values = result.trajectory.as_arrays()
        assert values[0] > 0.5  # empty configuration is far from stable
        assert values[-1] == 0.0

    def test_convergence_within_d_base_units(self):
        # The paper observes convergence in fewer than d base units.
        d = 12
        result = simulate_convergence(120, d, seed=3, max_base_units=3 * d)
        assert result.converged
        assert result.time_to_converge <= d

    def test_theorem1_bound_on_active_initiatives(self):
        # Theorem 1: the stable state is reachable in B/2 initiatives; the
        # simulated number of *active* initiatives can exceed that (peers
        # may pair and re-pair), but must stay within a small factor.
        n = 60
        result = simulate_convergence(n, 8, seed=4, max_base_units=60)
        assert result.converged
        assert result.active_initiatives <= 4 * (n // 2)

    def test_peer_removal_recovery_is_fast_and_small(self):
        result = simulate_peer_removal(200, 10, removed_peer=1, seed=5, max_base_units=10)
        _, values = result.trajectory.as_arrays()
        # Disorder right after a removal is small (paper Figure 2).
        assert values.max() < 0.1
        assert result.converged

    def test_removing_good_peer_more_disruptive_than_bad(self):
        good = simulate_peer_removal(300, 10, removed_peer=1, seed=6, max_base_units=8)
        bad = simulate_peer_removal(300, 10, removed_peer=290, seed=6, max_base_units=8)
        _, good_values = good.trajectory.as_arrays()
        _, bad_values = bad.trajectory.as_arrays()
        assert good_values.max() >= bad_values.max()

    def test_simulator_with_explicit_initial_configuration(self, medium_er_acceptance):
        simulator = ConvergenceSimulator(medium_er_acceptance, source=RandomSource(3))
        stable = simulator.stable
        result = simulator.run(initial=stable, max_base_units=2)
        assert result.converged
        assert result.time_to_converge == 0.0

    def test_empty_population_rejected(self):
        population = PeerPopulation.ranked(0)
        with pytest.raises(Exception):
            AcceptanceGraph.complete(population)
            # Building the simulator on an empty graph must fail loudly.
            ConvergenceSimulator(AcceptanceGraph(population)).run()


class TestChurn:
    def test_config_validation(self):
        with pytest.raises(Exception):
            ChurnConfig(n=1)
        with pytest.raises(Exception):
            ChurnConfig(churn_rate=-0.1)

    def test_no_churn_converges(self):
        config = ChurnConfig(n=120, expected_degree=8, churn_rate=0.0, max_base_units=15)
        result = simulate_churn(config, seed=1)
        assert result.churn_events == 0
        assert result.trajectory.tail_mean(0.2) == pytest.approx(0.0, abs=1e-9)

    def test_churn_keeps_disorder_bounded(self):
        config = ChurnConfig(n=120, expected_degree=8, churn_rate=0.01, max_base_units=15)
        result = simulate_churn(config, seed=2)
        assert result.churn_events > 0
        # Disorder stays under control (well below the empty-config level).
        assert result.trajectory.tail_mean(0.25) < 0.2

    def test_more_churn_more_disorder(self):
        low = simulate_churn(
            ChurnConfig(n=150, expected_degree=8, churn_rate=0.002, max_base_units=15), seed=3
        )
        high = simulate_churn(
            ChurnConfig(n=150, expected_degree=8, churn_rate=0.05, max_base_units=15), seed=3
        )
        assert high.trajectory.tail_mean(0.25) > low.trajectory.tail_mean(0.25)

    def test_population_size_stays_reasonable(self):
        config = ChurnConfig(n=100, expected_degree=6, churn_rate=0.05, max_base_units=10)
        result = simulate_churn(config, seed=4)
        assert 50 <= result.final_population_size <= 150
