"""Property-based tests (hypothesis) for the core invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analytical.one_matching import independent_one_matching
from repro.core.acceptance import AcceptanceGraph
from repro.core.matching import Matching, is_stable
from repro.core.metrics import matching_distance, mean_max_offset_exact_constant
from repro.core.peer import PeerPopulation
from repro.core.ranking import GlobalRanking
from repro.core.stable import stable_configuration
from repro.stratification.clustering import analyze_complete_matching, complete_graph_stable_matching

# Keep the generated systems small so each example solves in milliseconds.
_settings = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def _acceptance_from_seed(n: int, p: float, slots, seed: int) -> AcceptanceGraph:
    population = PeerPopulation.ranked(n, slots=slots)
    rng = np.random.default_rng(seed)
    return AcceptanceGraph.erdos_renyi(population, probability=p, rng=rng)


class TestStableMatchingProperties:
    @_settings
    @given(
        n=st.integers(min_value=2, max_value=25),
        p=st.floats(min_value=0.0, max_value=1.0),
        b0=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_algorithm1_output_is_stable_and_feasible(self, n, p, b0, seed):
        acceptance = _acceptance_from_seed(n, p, b0, seed)
        ranking = GlobalRanking.from_population(acceptance.population)
        matching = stable_configuration(acceptance, ranking)
        # Feasibility: capacities and acceptance respected.
        for peer_id in matching.peer_ids():
            assert matching.degree(peer_id) <= b0
            for mate in matching.mates(peer_id):
                assert acceptance.accepts(peer_id, mate)
        # Stability: no blocking pair exists.
        assert is_stable(matching, ranking)

    @_settings
    @given(
        n=st.integers(min_value=2, max_value=20),
        p=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_stable_matching_is_maximal_for_one_matching(self, n, p, seed):
        # In a stable 1-matching, two unmatched peers can never be adjacent
        # in the acceptance graph (they would form a blocking pair).
        acceptance = _acceptance_from_seed(n, p, 1, seed)
        ranking = GlobalRanking.from_population(acceptance.population)
        matching = stable_configuration(acceptance, ranking)
        unmatched = [pid for pid in matching.peer_ids() if matching.degree(pid) == 0]
        for i, u in enumerate(unmatched):
            for v in unmatched[i + 1:]:
                assert not acceptance.accepts(u, v)

    @_settings
    @given(
        n=st.integers(min_value=3, max_value=18),
        b0=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_active_initiatives_preserve_feasibility(self, n, b0, seed):
        acceptance = _acceptance_from_seed(n, 0.5, b0, seed)
        ranking = GlobalRanking.from_population(acceptance.population)
        matching = Matching(acceptance)
        rng = np.random.default_rng(seed)
        from repro.core.initiatives import RandomInitiative

        strategy = RandomInitiative()
        peer_ids = acceptance.peer_ids()
        for _ in range(5 * n):
            peer = peer_ids[int(rng.integers(len(peer_ids)))]
            strategy.take_initiative(matching, ranking, peer, rng)
            for pid in matching.peer_ids():
                assert matching.degree(pid) <= b0


class TestDistanceProperties:
    @_settings
    @given(
        n=st.integers(min_value=2, max_value=15),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_distance_is_a_pseudometric(self, n, seed):
        acceptance = _acceptance_from_seed(n, 0.6, 1, seed)
        ranking = GlobalRanking.from_population(acceptance.population)
        rng = np.random.default_rng(seed)

        def random_matching() -> Matching:
            matching = Matching(acceptance)
            pairs = list(acceptance.graph.edges())
            rng.shuffle(pairs)
            for u, v in pairs:
                if matching.free_slots(u) > 0 and matching.free_slots(v) > 0:
                    if rng.random() < 0.5:
                        matching.match(u, v)
            return matching

        a, b, c = random_matching(), random_matching(), random_matching()
        dab = matching_distance(a, b, ranking)
        dba = matching_distance(b, a, ranking)
        assert dab == pytest.approx(dba)
        assert matching_distance(a, a, ranking) == 0.0
        assert dab >= 0.0
        # Triangle inequality.
        assert dab <= matching_distance(a, c, ranking) + matching_distance(c, b, ranking) + 1e-9


class TestAnalyticalProperties:
    @_settings
    @given(
        n=st.integers(min_value=2, max_value=60),
        p=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_one_matching_rows_are_subprobabilities(self, n, p):
        model = independent_one_matching(n, p)
        for i in (1, n // 2 + 1, n):
            row = model.row(i)
            assert np.all(row >= -1e-12)
            assert row.sum() <= 1.0 + 1e-9
            assert row[i - 1] == 0.0

    @_settings
    @given(
        n=st.integers(min_value=2, max_value=40),
        p=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_one_matching_matrix_symmetry(self, n, p):
        model = independent_one_matching(n, p)
        for i in (1, n):
            for j in (1, n // 2 + 1, n):
                assert model.probability(i, j) == pytest.approx(model.probability(j, i))


class TestStratificationProperties:
    @_settings
    @given(
        slots=st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=60)
    )
    def test_complete_graph_matching_feasible_for_any_slots(self, slots):
        edges = complete_graph_stable_matching(slots)
        degrees = [0] * len(slots)
        seen = set()
        for a, b in edges:
            assert 1 <= a < b <= len(slots)
            assert (a, b) not in seen
            seen.add((a, b))
            degrees[a - 1] += 1
            degrees[b - 1] += 1
        assert all(deg <= cap for deg, cap in zip(degrees, slots))

    @_settings
    @given(
        n=st.integers(min_value=1, max_value=40),
        b0=st.integers(min_value=1, max_value=6),
    )
    def test_constant_matching_cluster_structure(self, n, b0):
        analysis = analyze_complete_matching([b0] * n)
        # Every complete cluster has size b0 + 1; only the remainder differs.
        full_clusters = [size for size in analysis.cluster_sizes if size == b0 + 1]
        assert len(full_clusters) >= n // (b0 + 1) - 1
        assert analysis.mean_max_offset <= mean_max_offset_exact_constant(b0) + 1e-9

    @_settings
    @given(b0=st.integers(min_value=1, max_value=200))
    def test_mmo_closed_form_bounds(self, b0):
        value = mean_max_offset_exact_constant(b0)
        assert 0.75 * b0 <= value <= b0
