"""Unit tests for the fault primitives: windows, backoff, schedules, specs.

Engine integration (bit-identical faulty runs) lives in
``test_swarm_engine_equivalence.py``; telemetry-under-faults in
``test_telemetry.py``.  This file covers the pure pieces: the round
windows and deterministic backoff of ``repro.sim.faults``, and the
event validation, schedule composition and spec grammar of
``repro.bittorrent.faults``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bittorrent.faults import (
    FAULT_PRESET_NAMES,
    FaultEvent,
    FaultRuntime,
    FaultSchedule,
    make_faults,
    resolve_faults,
)
from repro.sim.faults import (
    BACKOFF_CAP,
    RoundWindow,
    backoff_delay,
    next_retry_round,
)


class TestRoundWindow:
    def test_half_open_coverage(self):
        window = RoundWindow(start=3, rounds=2)
        assert [r for r in range(1, 8) if window.covers(r)] == [3, 4]
        assert window.end == 4

    def test_open_ended(self):
        window = RoundWindow(start=5, rounds=0)
        assert not window.covers(4)
        assert window.covers(5) and window.covers(10_000)
        assert window.end is None

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            RoundWindow(start=0)
        with pytest.raises(ValueError):
            RoundWindow(start=1, rounds=-1)

    def test_overlap(self):
        assert RoundWindow(3, 2).overlaps(RoundWindow(4, 2))
        assert not RoundWindow(3, 2).overlaps(RoundWindow(5, 2))
        assert RoundWindow(3, 0).overlaps(RoundWindow(100, 1))
        assert not RoundWindow(100, 0).overlaps(RoundWindow(3, 2))


class TestBackoff:
    def test_doubles_then_saturates(self):
        delays = [backoff_delay(a) for a in range(6)]
        assert delays == [1, 2, 4, 8, 8, 8]
        assert backoff_delay(10_000) == BACKOFF_CAP  # no bigint blowup

    def test_next_retry_round(self):
        assert next_retry_round(7, 0) == 8
        assert next_retry_round(7, 2) == 11

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            backoff_delay(-1)
        with pytest.raises(ValueError):
            backoff_delay(0, base=0)
        with pytest.raises(ValueError):
            backoff_delay(0, base=4, cap=2)


class TestFaultEventValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent("meteor")

    def test_loss_rate_bounds(self):
        FaultEvent("loss", rate=1.0, rounds=0)
        with pytest.raises(ValueError, match="loss rate"):
            FaultEvent("loss", rate=0.0)
        with pytest.raises(ValueError, match="loss rate"):
            FaultEvent("loss", rate=1.5)
        with pytest.raises(ValueError, match="rate only applies"):
            FaultEvent("outage", rate=0.5)

    def test_crash_constraints(self):
        with pytest.raises(ValueError, match="crash count"):
            FaultEvent("crash", start=5)
        with pytest.raises(ValueError, match="instantaneous"):
            FaultEvent("crash", start=5, count=2, rounds=3)
        with pytest.raises(ValueError, match="only apply to crash"):
            FaultEvent("loss", rate=0.1, count=3)

    def test_partition_groups(self):
        with pytest.raises(ValueError, match="groups"):
            FaultEvent("partition", groups=1)


class TestFaultSchedule:
    def test_normalized_order_makes_equal_schedules_equal(self):
        a = FaultSchedule((
            FaultEvent("loss", rate=0.1, rounds=0),
            FaultEvent("outage", start=3, rounds=2),
        ))
        b = FaultSchedule((
            FaultEvent("outage", start=3, rounds=2),
            FaultEvent("loss", rate=0.1, rounds=0),
        ))
        assert a == b and hash(a) == hash(b)

    def test_one_crash_per_round(self):
        with pytest.raises(ValueError, match="one crash event per round"):
            FaultSchedule((
                FaultEvent("crash", start=5, count=1),
                FaultEvent("crash", start=5, count=2),
            ))
        # Different rounds are fine.
        FaultSchedule((
            FaultEvent("crash", start=5, count=1),
            FaultEvent("crash", start=6, count=2),
        ))

    def test_partitions_must_not_overlap(self):
        with pytest.raises(ValueError, match="must not overlap"):
            FaultSchedule((
                FaultEvent("partition", start=3, rounds=4),
                FaultEvent("partition", start=5, rounds=2),
            ))

    def test_overlapping_loss_composes_independently(self):
        schedule = FaultSchedule((
            FaultEvent("loss", rate=0.5, start=1, rounds=0),
            FaultEvent("loss", rate=0.5, start=3, rounds=2),
        ))
        assert schedule.loss_rate(2) == pytest.approx(0.5)
        assert schedule.loss_rate(3) == pytest.approx(0.75)
        assert schedule.loss_rate(5) == pytest.approx(0.5)

    def test_round_queries(self):
        schedule = make_faults("outage:3+2,crash:5@4~2,partition:7+2/3")
        assert [r for r in range(1, 7) if schedule.tracker_down(r)] == [3, 4]
        assert schedule.crash_event(4).count == 5
        assert schedule.crash_event(5) is None
        assert schedule.partition_event(8).groups == 3
        assert schedule.partition_event(9) is None
        assert not schedule.is_trivial
        assert FaultSchedule().is_trivial


class TestSpecGrammar:
    def test_presets_resolve(self):
        for name in FAULT_PRESET_NAMES:
            schedule = make_faults(name)
            assert isinstance(schedule, FaultSchedule)
        assert make_faults("reliable").is_trivial

    @pytest.mark.parametrize(
        "spec, expected",
        [
            ("outage:20+5", FaultEvent("outage", start=20, rounds=5)),
            ("outage:20", FaultEvent("outage", start=20, rounds=1)),
            ("loss:0.05", FaultEvent("loss", rate=0.05, rounds=0)),
            ("loss:0.05@3+4", FaultEvent("loss", rate=0.05, start=3, rounds=4)),
            ("crash:10@8", FaultEvent("crash", start=8, count=10)),
            (
                "crash:10@8~4",
                FaultEvent("crash", start=8, count=10, rejoin_after=4),
            ),
            ("partition:10+5", FaultEvent("partition", start=10, rounds=5)),
            (
                "partition:10+5/3",
                FaultEvent("partition", start=10, rounds=5, groups=3),
            ),
        ],
    )
    def test_single_token_round_trips(self, spec, expected):
        assert make_faults(spec).events == (expected,)

    def test_comma_composition_and_whitespace(self):
        schedule = make_faults(" outage:3+2 , loss:0.1 ,, crash:2@5 ")
        assert {e.kind for e in schedule.events} == {"outage", "loss", "crash"}

    @pytest.mark.parametrize(
        "spec, message",
        [
            ("chaos", "unknown fault preset"),
            ("meteor:3", "unknown fault kind"),
            ("outage", "unknown fault preset"),
            ("outage:soon", "bad fault window"),
            ("outage:3+many", "bad fault window"),
            ("loss:plenty", "bad loss rate"),
            ("crash:5", "expected crash:COUNT@ROUND"),
            ("crash:5@x", "bad crash parameters"),
            ("partition:3+2/two", "bad partition group"),
        ],
    )
    def test_bad_specs_rejected(self, spec, message):
        with pytest.raises(ValueError, match=message):
            make_faults(spec)

    def test_resolve_faults_normalizes(self):
        assert resolve_faults(None).is_trivial
        assert resolve_faults("reliable").is_trivial
        schedule = FaultSchedule((FaultEvent("outage", start=2),))
        assert resolve_faults(schedule) is schedule
        assert resolve_faults("outage:2") == schedule
        with pytest.raises(TypeError):
            resolve_faults(42)


class TestSpecErrorPositions:
    """Satellite: a parse error names the offending token and its position.

    The message carries the token's 1-based ordinal, its text, and its
    character span in the original spec (0-based, end-exclusive; commas
    and surrounding whitespace excluded) -- a typo in a long composite
    spec is locatable without bisecting it.  One case per malformed
    clause of the grammar.
    """

    @pytest.mark.parametrize(
        "spec, location, cause",
        [
            # Each grammar clause, malformed, as the sole token.
            ("loss:bogus", "token 1 ('loss:bogus', chars 0-10)", "bad loss rate"),
            (
                "outage:3+many",
                "token 1 ('outage:3+many', chars 0-13)",
                "bad fault window",
            ),
            (
                "outage:3+2/x",
                "token 1 ('outage:3+2/x', chars 0-12)",
                "bad outage replica",
            ),
            # Positions shift with the tokens that precede the bad one.
            (
                "outage:3+2, loss:bogus",
                "token 2 ('loss:bogus', chars 12-22)",
                "bad loss rate",
            ),
            (
                "loss:0.1,crash:5",
                "token 2 ('crash:5', chars 9-16)",
                "expected crash:COUNT@ROUND",
            ),
            (
                "loss:0.1, crash:5@x ,outage:9",
                "token 2 ('crash:5@x', chars 10-19)",
                "bad crash parameters",
            ),
            (
                "outage:3,loss:0.5,partition:3+2/two",
                "token 3 ('partition:3+2/two', chars 18-35)",
                "bad partition group",
            ),
            (
                "outage:3,meteor:9",
                "token 2 ('meteor:9', chars 9-17)",
                "unknown fault kind",
            ),
            # Empty tokens are skipped by both the ordinal and the span.
            (
                "outage:3,,  oops:1",
                "token 2 ('oops:1', chars 12-18)",
                "unknown fault kind",
            ),
        ],
    )
    def test_errors_locate_the_offending_token(self, spec, location, cause):
        with pytest.raises(ValueError) as err:
            make_faults(spec)
        message = str(err.value)
        assert location in message
        assert cause in message


class TestWindowEdgeCases:
    """Satellite: zero-length (open-ended) and overlapping fault windows."""

    def test_open_ended_outage_spec(self):
        """``+0`` parses as an open-ended window: the outage never lifts."""
        schedule = make_faults("outage:5+0")
        assert not schedule.tracker_down(4)
        assert schedule.tracker_down(5)
        assert schedule.tracker_down(1_000_000)
        assert schedule.events[0].window.end is None

    def test_overlapping_outage_windows_union(self):
        """Unlike partitions, outage windows may overlap; coverage unions."""
        schedule = make_faults("outage:3+4,outage:5+4")
        assert [r for r in range(1, 11) if schedule.tracker_down(r)] == [
            3, 4, 5, 6, 7, 8,
        ]

    def test_overlapping_windows_on_distinct_replicas(self):
        """Replica-targeted overlap only blacks out the overlap itself."""
        runtime = FaultRuntime(make_faults("outage:3+4/0,outage:5+4/1"))
        down_both = [
            r for r in range(1, 11) if not runtime.tracker_up(r, replicas=2)
        ]
        assert down_both == [5, 6]  # only where the two windows intersect
        # A single-replica reading sees the replica-0 window alone.
        assert [r for r in range(1, 11) if not runtime.tracker_up(r)] == [
            3, 4, 5, 6,
        ]

    def test_open_ended_and_windowed_loss_compose(self):
        schedule = make_faults("loss:0.5,loss:0.5@3+2")
        assert schedule.loss_rate(2) == pytest.approx(0.5)
        assert schedule.loss_rate(3) == pytest.approx(0.75)
        assert schedule.loss_rate(1_000) == pytest.approx(0.5)


class TestFaultRuntime:
    def test_deferred_notifications_drain_once(self):
        runtime = FaultRuntime(make_faults("outage:2+2"))
        runtime.defer_completion(3)
        runtime.defer_depart(3)
        runtime.defer_completion(1)
        assert runtime.drain_deferred() == ([1, 3], [3])
        assert runtime.drain_deferred() == ([], [])

    def test_announce_backoff_schedule(self):
        runtime = FaultRuntime(make_faults("outage:1+10"))
        runtime.queue_announce(7, 1)
        assert runtime.announces_due(2) == [7]
        runtime.reschedule_announce(7, 2)  # first failure: retry in 2
        assert runtime.announces_due(3) == []
        assert runtime.announces_due(4) == [7]
        runtime.clear_announce(7)
        assert runtime.announces_due(12) == []

    def test_crash_victims_deterministic_and_clamped(self):
        runtime = FaultRuntime(make_faults("crash:3@5"))
        candidates = [2, 4, 6, 8, 10]
        picked_a = runtime.select_crash_victims(
            5, candidates, np.random.default_rng(0)
        )
        picked_b = runtime.select_crash_victims(
            5, candidates, np.random.default_rng(0)
        )
        assert picked_a == picked_b
        assert len(picked_a) == 3
        assert picked_a == sorted(picked_a)
        assert set(picked_a) <= set(candidates)
        # Off-round: nothing fires, nothing is drawn.
        assert runtime.select_crash_victims(
            6, candidates, np.random.default_rng(0)
        ) == []
        # More victims requested than candidates: clamp, don't raise.
        big = FaultRuntime(make_faults("crash:99@5"))
        assert big.select_crash_victims(
            5, [1, 2], np.random.default_rng(0)
        ) == [1, 2]

    def test_partition_groups_cleared_after_window(self):
        runtime = FaultRuntime(make_faults("partition:2+2/2"))
        runtime.begin_round(2)
        runtime.assign_missing_groups(2, [1, 2, 3, 4], np.random.default_rng(1))
        assert runtime.partition_active(2)
        sides = dict(runtime._partition_groups)
        assert set(sides) == {1, 2, 3, 4}
        assert set(sides.values()) <= {0, 1}
        # Window over: begin_round clears the assignment.
        runtime.begin_round(4)
        assert not runtime._partition_groups

    def test_backoff_exhaustion_saturates_at_the_cap(self):
        """Endless outage: retry gaps double, then pin at BACKOFF_CAP."""
        runtime = FaultRuntime(make_faults("outage:1+0"))
        runtime.queue_announce(7, 1)
        due, gaps = 2, []
        for _ in range(8):
            runtime.reschedule_announce(7, due)
            next_due, _ = runtime._pending_announces[7]
            gaps.append(next_due - due)
            due = next_due
        assert gaps == [2, 4, 8, 8, 8, 8, 8, 8]
        assert max(gaps) == BACKOFF_CAP
        # The announce is still queued: exhaustion degrades, never drops.
        assert runtime.announces_due(due) == [7]
        assert runtime.blocks_early_exit(due)

    def test_blocks_early_exit_under_open_ended_outage(self):
        """A retry that can never succeed must still pin the round loop."""
        runtime = FaultRuntime(make_faults("outage:3+0"))
        assert not runtime.blocks_early_exit(1)
        runtime.queue_announce(9, 3)
        for round_index in (4, 50, 10_000):
            assert not runtime.tracker_up(round_index)
            assert runtime.blocks_early_exit(round_index)
        runtime.clear_announce(9)  # the peer departed: nothing pending
        assert not runtime.blocks_early_exit(10_001)

    def test_dropped_pairs_loss_draw_independent_of_partition(self):
        # Identical rngs: the loss batch must be the same whether or not
        # a partition already dropped some pairs.
        pairs = [(1, 2), (1, 3), (2, 3), (3, 4)]
        loss_only = FaultRuntime(make_faults("loss:0.5"))
        both = FaultRuntime(make_faults("loss:0.5,partition:1+2/2"))
        both.begin_round(1)
        both.assign_missing_groups(1, [1, 2, 3, 4], np.random.default_rng(7))
        lost_plain = loss_only.dropped_pairs(
            1, pairs, np.random.default_rng(11)
        )
        lost_both = both.dropped_pairs(1, pairs, np.random.default_rng(11))
        assert lost_plain <= lost_both  # partition only ever adds drops
