"""Deprecated implicit-rng fallbacks: loud, deterministic, convergent.

Before this change, calling a sampler without ``rng=`` silently built a
fresh OS-entropy generator (``np.random.default_rng()``), so two implicit
calls could diverge and no test would ever notice.  Now every implicit
call warns ``DeprecationWarning`` and draws from the deterministic
fallback stream of :func:`repro.sim.random_source.fallback_rng` -- two
implicit calls are bit-identical, so the legacy path can no longer
diverge silently while callers migrate to explicit ``rng=``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bittorrent.bandwidth import saroiu_like_distribution
from repro.core.acceptance import AcceptanceGraph
from repro.core.peer import PeerPopulation
from repro.graphs.erdos_renyi import erdos_renyi_graph
from repro.graphs.generators import configuration_model_graph, random_regular_graph
from repro.sim import streams
from repro.sim.random_source import _FALLBACK_MASTER_SEED, derive_seed, fallback_rng

def _implicit_acceptance_graph():
    graph = AcceptanceGraph.erdos_renyi(
        PeerPopulation.ranked(25, slots=2), expected_degree=6.0
    )
    return [sorted(graph.acceptable_peers(pid)) for pid in graph.peer_ids()]


IMPLICIT_CALLS = [
    pytest.param(lambda: sorted(erdos_renyi_graph(30, 0.2).edges()), id="erdos_renyi"),
    pytest.param(
        lambda: sorted(random_regular_graph(20, 3).edges()), id="random_regular"
    ),
    pytest.param(
        lambda: sorted(configuration_model_graph([2, 3, 3, 2, 2, 2]).edges()),
        id="configuration_model",
    ),
    pytest.param(
        lambda: saroiu_like_distribution().sample(50).tolist(), id="bandwidth_sample"
    ),
    pytest.param(_implicit_acceptance_graph, id="acceptance_erdos_renyi"),
]


@pytest.mark.parametrize("call", IMPLICIT_CALLS)
def test_implicit_call_warns_deprecation(call) -> None:
    with pytest.warns(DeprecationWarning, match="deprecated"):
        call()


@pytest.mark.parametrize("call", IMPLICIT_CALLS)
def test_implicit_calls_cannot_diverge(call) -> None:
    """Two rng-less calls yield identical results: no silent divergence."""
    with pytest.warns(DeprecationWarning):
        first = call()
    with pytest.warns(DeprecationWarning):
        second = call()
    assert first == second


def test_rounded_normal_slots_fallback_is_deterministic() -> None:
    from repro.stratification.bvalues import rounded_normal_slots

    with pytest.warns(DeprecationWarning):
        first = rounded_normal_slots(40, 4.0, 0.5)
    with pytest.warns(DeprecationWarning):
        second = rounded_normal_slots(40, 4.0, 0.5)
    assert first == second


def test_fallback_rng_derives_from_named_stream() -> None:
    """The fallback is the documented stream of the documented master seed."""
    with pytest.warns(DeprecationWarning):
        fallback = fallback_rng(streams.GRAPH)
    expected = np.random.default_rng(
        derive_seed(_FALLBACK_MASTER_SEED, streams.GRAPH)
    )
    assert fallback.random(8).tolist() == expected.random(8).tolist()


def test_explicit_rng_does_not_warn(recwarn: pytest.WarningsRecorder) -> None:
    rng = np.random.default_rng(derive_seed(123, streams.GRAPH))
    erdos_renyi_graph(30, 0.2, rng=rng)
    deprecations = [
        w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
    ]
    assert not deprecations
