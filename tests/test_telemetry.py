"""Tests for the swarm measurement layer (telemetry + analysis).

Three tiers: unit tests of the scrape API and the observer schedule
against hand-built state, cross-engine equivalence of full observed runs
on the golden scenario presets, and a hypothesis property pinning the two
load-bearing guarantees -- an attached observer never changes the swarm,
and ``confirmed(1.0) <= reported <= true completions`` on any scenario,
engine and seed.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bittorrent.analysis import (
    DEFAULT_THRESHOLDS,
    download_time_cdf,
    observed_download_time_cdf,
    observed_stratification_index,
    threshold_sensitivity,
    visit_count_distribution,
)
from repro.bittorrent.swarm import SwarmConfig, SwarmSimulator
from repro.bittorrent.telemetry import (
    ObservedSwarm,
    ObserverConfig,
    SwarmObserver,
    resolve_observer,
)
from repro.bittorrent.tracker import ScrapeStats, Tracker
from repro.experiments import telemetry_experiment
from repro.sim.random_source import RandomSource

from test_swarm_engine_equivalence import (
    assert_results_identical,
    behavior_mixes,
    fault_schedules,
    scenario_schedules,
)

_settings = settings(
    max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


# -- tracker scrape API ----------------------------------------------------------


class TestTrackerScrape:
    def _tracker_with_peers(self, count: int) -> Tracker:
        tracker = Tracker(announce_size=4)
        rng = np.random.default_rng(0)
        for pid in range(1, count + 1):
            tracker.announce(pid, rng)
        return tracker

    def test_fresh_tracker_scrape_is_empty(self):
        assert Tracker().scrape() == ScrapeStats(seeders=0, leechers=0, snatches=0)

    def test_register_complete_counts_seeder_not_snatch(self):
        tracker = self._tracker_with_peers(3)
        tracker.register_complete(1)
        assert tracker.scrape() == ScrapeStats(seeders=1, leechers=2, snatches=0)

    def test_record_completion_counts_snatch_and_is_idempotent(self):
        tracker = self._tracker_with_peers(3)
        tracker.record_completion(2)
        tracker.record_completion(2)
        assert tracker.scrape() == ScrapeStats(seeders=1, leechers=2, snatches=1)

    def test_completion_after_register_complete_not_double_counted(self):
        tracker = self._tracker_with_peers(2)
        tracker.register_complete(1)
        tracker.record_completion(1)
        assert tracker.scrape().snatches == 0

    def test_unregistered_peer_ignored(self):
        tracker = self._tracker_with_peers(2)
        tracker.register_complete(99)
        tracker.record_completion(99)
        assert tracker.scrape() == ScrapeStats(seeders=0, leechers=2, snatches=0)

    def test_departing_seeder_leaves_scrape_but_snatches_persist(self):
        tracker = self._tracker_with_peers(3)
        tracker.record_completion(3)
        tracker.depart(3)
        assert tracker.scrape() == ScrapeStats(seeders=0, leechers=2, snatches=1)


# -- observer config and schedule ------------------------------------------------


class _FakeView:
    """A minimal engine view for driving the observer by hand."""

    def __init__(self, known, progress, seed: int = 1):
        self.piece_count = 10
        self.piece_size_kbit = 100.0
        self.round_seconds = 10.0
        self.source = RandomSource(seed)
        self._known = list(known)
        self._progress = dict(progress)
        self.scrapes_served = 0

    def scrape(self) -> ScrapeStats:
        self.scrapes_served += 1
        return ScrapeStats(seeders=1, leechers=len(self._known) - 1, snatches=2)

    def known_peers(self):
        return list(self._known)

    def progress(self, peer_id: int) -> float:
        return self._progress[peer_id]


class TestObserverConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(scrape_interval=0),
            dict(poll_interval=0),
            dict(poll_budget=-1),
            dict(confirm_threshold=0.0),
            dict(confirm_threshold=1.5),
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ObserverConfig(**kwargs)

    def test_resolve_observer(self):
        assert resolve_observer(None) is None
        observer = SwarmObserver()
        assert resolve_observer(observer) is observer
        config = ObserverConfig(poll_budget=3)
        assert resolve_observer(config).config is config
        with pytest.raises(TypeError):
            resolve_observer("every-round")


class TestObserverSchedule:
    def _drive(self, config: ObserverConfig, rounds: int, view=None):
        view = view or _FakeView([1, 2, 3], {1: 0.2, 2: 0.5, 3: 1.0})
        observer = SwarmObserver(config)
        observer.begin_run(view)
        for round_index in range(1, rounds + 1):
            observer.observe_round(round_index, set())
        return observer.finish(rounds), view

    def test_scrape_and_poll_cadence(self):
        observed, _ = self._drive(
            ObserverConfig(scrape_interval=2, poll_interval=3), rounds=6
        )
        # Scrapes at 1,3,5 (interval 2) plus the poll rounds 1,4.
        assert [s.round for s in observed.scrapes] == [1, 3, 4, 5]
        assert observed.poll_rounds == [1, 4]
        assert observed.rounds_observed == 6

    def test_poll_budget_zero_disables_polls_not_scrapes(self):
        observed, _ = self._drive(
            ObserverConfig(scrape_interval=1, poll_interval=1, poll_budget=0),
            rounds=4,
        )
        assert [s.round for s in observed.scrapes] == [1, 2, 3, 4]
        assert observed.poll_rounds == []
        assert observed.timelines == {}

    def test_unlimited_budget_polls_every_known_peer(self):
        observed, _ = self._drive(
            ObserverConfig(poll_interval=1, scrape_interval=1), rounds=2
        )
        assert sorted(observed.timelines) == [1, 2, 3]
        assert all(len(v) == 2 for v in observed.timelines.values())

    def test_finite_budget_samples_subset_of_known(self):
        view = _FakeView(
            [1, 2, 3, 4, 5, 6], {pid: 0.5 for pid in range(1, 7)}
        )
        observed, _ = self._drive(
            ObserverConfig(poll_interval=1, scrape_interval=1, poll_budget=2),
            rounds=5,
            view=view,
        )
        per_round: dict = {}
        for pid, samples in observed.timelines.items():
            for sample in samples:
                per_round.setdefault(sample.round, []).append(pid)
        assert sorted(per_round) == [1, 2, 3, 4, 5]
        for pids in per_round.values():
            assert len(pids) == 2
            assert set(pids) <= {1, 2, 3, 4, 5, 6}

    def test_partner_reporting_is_reciprocal_only(self):
        view = _FakeView([1, 2, 3], {1: 0.2, 2: 0.5, 3: 1.0})
        observer = SwarmObserver(ObserverConfig(poll_interval=1))
        observer.begin_run(view)
        observer.observe_round(1, {(1, 2), (2, 1), (1, 3)})
        observed = observer.finish(1)
        assert observed.timelines[1][0].partners == (2,)
        assert observed.timelines[2][0].partners == (1,)
        assert observed.timelines[3][0].partners == ()

    def test_begin_run_resets_campaign(self):
        view = _FakeView([1], {1: 0.5})
        observer = SwarmObserver(ObserverConfig(poll_interval=1))
        observer.begin_run(view)
        observer.observe_round(1, set())
        observer.begin_run(view)
        assert observer.observed.scrapes == []
        assert observer.observed.timelines == {}

    def test_observe_before_begin_raises(self):
        observer = SwarmObserver()
        with pytest.raises(RuntimeError):
            observer.observe_round(1, set())
        with pytest.raises(RuntimeError):
            observer.finish(1)


# -- ObservedSwarm accounting ----------------------------------------------------


def _campaign(**kwargs) -> ObservedSwarm:
    defaults = dict(
        config=ObserverConfig(),
        piece_count=10,
        piece_size_kbit=100.0,
        round_seconds=10.0,
    )
    defaults.update(kwargs)
    return ObservedSwarm(**defaults)


class TestDownloadAccounting:
    def test_reported_downloads_reads_last_scrape(self):
        observed = _campaign()
        assert observed.reported_downloads() == 0
        observed.record_scrape(1, ScrapeStats(1, 5, 2))
        observed.record_scrape(4, ScrapeStats(2, 4, 7))
        assert observed.reported_downloads() == 7

    def test_confirmed_requires_first_seen_incomplete(self):
        observed = _campaign()
        observed.record_poll(1, 1, 0.4, ())
        observed.record_poll(3, 1, 1.0, ())
        observed.record_poll(1, 2, 1.0, ())  # seed-like: never seen incomplete
        observed.record_poll(1, 3, 0.5, ())  # never crosses the line
        assert observed.confirmed_downloads(1.0) == 1
        assert observed.confirmed_downloads(0.5) == 2
        assert observed.confirmation_round(1, 1.0) == 3
        assert observed.confirmation_round(2, 1.0) is None
        assert observed.confirmation_round(3, 1.0) is None

    def test_confirmed_monotone_in_threshold(self):
        observed = _campaign()
        rng = np.random.default_rng(0)
        for pid in range(1, 20):
            start = rng.uniform(0.0, 0.6)
            end = rng.uniform(start, 1.0)
            observed.record_poll(1, pid, round(start, 2), ())
            observed.record_poll(5, pid, round(end, 2), ())
        counts = [
            observed.confirmed_downloads(theta)
            for theta in (0.2, 0.5, 0.8, 0.95, 1.0)
        ]
        assert counts == sorted(counts, reverse=True)

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            _campaign().confirmed_downloads(0.0)

    def test_visit_counts_and_first_seen(self):
        observed = _campaign()
        observed.record_poll(2, 7, 0.1, ())
        observed.record_poll(4, 7, 0.3, ())
        observed.record_poll(4, 9, 0.2, ())
        assert observed.visit_counts() == {7: 2, 9: 1}
        assert observed.peers_observed == 2
        assert observed.first_seen(7) == 2
        assert observed.first_seen(5) is None

    def test_observed_rates_from_progress_slope(self):
        observed = _campaign()
        observed.record_poll(1, 1, 0.2, ())
        observed.record_poll(5, 1, 0.6, ())  # +0.4 over 4 rounds
        observed.record_poll(1, 2, 1.0, ())  # complete at first sight: excluded
        observed.record_poll(5, 2, 1.0, ())
        observed.record_poll(3, 3, 0.5, ())  # single visit: excluded
        rates = observed.observed_download_rates()
        # 0.4 * 10 pieces * 100 kbit / (4 rounds * 10 s) = 10 kbps
        assert rates == {1: pytest.approx(10.0)}

    def test_partner_sightings_accumulate_pairs(self):
        observed = _campaign()
        observed.record_poll(1, 1, 0.2, (2, 3))
        observed.record_poll(1, 2, 0.2, (1,))
        observed.record_poll(3, 1, 0.4, (2,))
        assert observed.partner_sightings() == {(1, 2): 3, (1, 3): 1}

    def test_to_recorder_builds_streaming_series(self):
        observed = _campaign()
        observed.record_scrape(1, ScrapeStats(1, 9, 0))
        observed.record_scrape(3, ScrapeStats(2, 8, 4))
        observed.record_poll(1, 1, 0.2, ())
        observed.record_poll(1, 2, 0.4, ())
        observed.record_poll(3, 1, 0.8, ())
        recorder = observed.to_recorder()
        assert recorder.names() == [
            "poll/mean_progress",
            "poll/peers_polled",
            "scrape/leechers",
            "scrape/seeders",
            "scrape/snatches",
        ]
        times, values = recorder["scrape/snatches"].as_arrays()
        assert times.tolist() == [1.0, 3.0]
        assert values.tolist() == [0.0, 4.0]
        assert recorder["poll/peers_polled"].value_at(1.0) == 2.0
        assert recorder["poll/mean_progress"].last() == pytest.approx(0.8)


# -- analysis estimators ---------------------------------------------------------


class TestAnalysis:
    def test_observed_cdf_spans_first_to_confirmation(self):
        observed = _campaign()
        observed.record_poll(1, 1, 0.2, ())
        observed.record_poll(4, 1, 1.0, ())
        observed.record_poll(2, 2, 0.9, ())
        cdf = observed_download_time_cdf(observed, threshold=1.0)
        assert cdf["durations"].tolist() == [3.0]
        assert cdf["cdf"].tolist() == [1.0]
        empty = observed_download_time_cdf(_campaign())
        assert empty["durations"].size == 0

    def test_visit_distribution_shape(self):
        observed = _campaign()
        for pid in (1, 2):
            observed.record_poll(1, pid, 0.1, ())
            observed.record_poll(2, pid, 0.2, ())
        observed.record_poll(1, 3, 0.1, ())
        dist = visit_count_distribution(observed)
        assert dist["visits"].tolist() == [1.0, 2.0]
        assert dist["peers"].tolist() == [1.0, 2.0]

    def test_threshold_sensitivity_curve(self):
        observed = _campaign()
        observed.record_poll(1, 1, 0.3, ())
        observed.record_poll(5, 1, 0.95, ())
        curve = threshold_sensitivity(
            observed, (0.9, 1.0), true_completions=3
        )
        assert curve["thresholds"].tolist() == [0.9, 1.0]
        assert curve["confirmed_downloads"].tolist() == [1.0, 0.0]
        assert curve["undercount_vs_truth"].tolist() == [2.0, 3.0]
        with pytest.raises(ValueError):
            threshold_sensitivity(observed, ())

    def test_observed_stratification_needs_three_ranked_peers(self):
        observed = _campaign()
        observed.record_poll(1, 1, 0.1, (2,))
        observed.record_poll(4, 1, 0.5, (2,))
        observed.record_poll(1, 2, 0.1, (1,))
        observed.record_poll(4, 2, 0.4, (1,))
        assert observed_stratification_index(observed) == 0.0

    def test_stratified_sightings_yield_positive_index(self):
        observed = _campaign()
        # Two speed classes; each peer only ever seen trading in-class.
        pairs = {1: 2, 2: 1, 3: 4, 4: 3}
        slopes = {1: 0.8, 2: 0.7, 3: 0.2, 4: 0.1}
        for pid, partner in pairs.items():
            observed.record_poll(1, pid, 0.1, (partner,))
            observed.record_poll(5, pid, 0.1 + slopes[pid], (partner,))
        # Ranks 1..4 against partner ranks (2,1,4,3): Pearson r = 0.6.
        assert observed_stratification_index(observed) == pytest.approx(0.6)


# -- full engine runs ------------------------------------------------------------


OBSERVED_SCENARIOS = ["static", "poisson", "flashcrowd", "seed-linger"]


def _observed_config() -> SwarmConfig:
    return SwarmConfig(
        leechers=12,
        seeds=1,
        piece_count=30,
        rounds=14,
        start_completion=0.3,
        announce_size=6,
    )


class TestObserverEngineEquivalence:
    @pytest.mark.parametrize("scenario", OBSERVED_SCENARIOS)
    def test_observation_invisible_and_identical_across_engines(self, scenario):
        config = _observed_config()
        observer_config = ObserverConfig(
            scrape_interval=2, poll_interval=2, poll_budget=5
        )
        baseline = SwarmSimulator(
            config, seed=7, scenario=scenario
        ).run()
        runs = {}
        for engine in ("reference", "fast"):
            runs[engine] = SwarmSimulator(
                config,
                seed=7,
                engine=engine,
                scenario=scenario,
                observer=observer_config,
            ).run()
            # Observation changed nothing in the simulated swarm.
            assert_results_identical(baseline, runs[engine])
        # The observed record is id-for-id identical across engines
        # (dataclass equality covers every scrape and poll sample).
        assert runs["reference"].observed == runs["fast"].observed
        assert runs["reference"].observed.scrapes, "campaign collected no scrapes"

    def test_unobserved_result_has_no_campaign(self):
        result = SwarmSimulator(_observed_config(), seed=7).run()
        assert result.observed is None

    def test_certified_bound_chain_on_poisson_churn(self):
        result = SwarmSimulator(
            _observed_config(),
            seed=11,
            scenario="poisson",
            observer=ObserverConfig(poll_interval=1, scrape_interval=1),
        ).run()
        observed = result.observed
        assert (
            observed.confirmed_downloads(1.0)
            <= observed.reported_downloads()
            <= result.completed
        )

    def test_finite_poll_budget_undercounts_under_churn(self):
        """The acceptance-criterion effect: churn + sparse polls miss downloads."""
        config = SwarmConfig(
            leechers=20,
            seeds=1,
            piece_count=40,
            rounds=30,
            start_completion=0.25,
            announce_size=8,
        )
        result = SwarmSimulator(
            config,
            seed=3,
            scenario="poisson",
            observer=ObserverConfig(
                scrape_interval=2, poll_interval=3, poll_budget=6
            ),
        ).run()
        observed = result.observed
        assert result.completed > 0
        # The sparse poll schedule misses completions the scrape still
        # (mostly) reports; the scrape itself can only trail the truth by
        # whatever completed after the final scrape round.
        assert observed.confirmed_downloads(1.0) < observed.reported_downloads()
        assert observed.reported_downloads() <= result.completed

    def test_outage_leaves_gap_in_scrape_series(self):
        """Failed scrapes are absent samples; the schedule itself survives."""
        config = _observed_config()
        runs = {}
        for engine in ("reference", "fast"):
            runs[engine] = SwarmSimulator(
                dataclasses.replace(config, faults="outage:3+4"),
                seed=11,
                engine=engine,
                scenario="poisson",
                observer=ObserverConfig(scrape_interval=1, poll_interval=2),
            ).run()
        observed = runs["reference"].observed
        scraped = {s.round for s in observed.scrapes}
        assert scraped.isdisjoint({3, 4, 5, 6}), scraped
        assert 2 in scraped and 7 in scraped  # resumes right after recovery
        # Poll sweeps keep running against the already-met roster.
        assert any(r in (3, 5) for r in observed.poll_rounds)
        assert runs["reference"].observed == runs["fast"].observed

    def test_bound_chain_survives_outage(self):
        """confirmed(1.0) <= reported <= true even when scrapes were missed."""
        result = SwarmSimulator(
            dataclasses.replace(_observed_config(), faults="outage:3+4"),
            seed=11,
            scenario="poisson",
            observer=ObserverConfig(poll_interval=1, scrape_interval=1),
        ).run()
        observed = result.observed
        assert observed.scrapes
        assert (
            observed.confirmed_downloads(1.0)
            <= observed.reported_downloads()
            <= result.completed
        )

    def test_crashed_peer_poll_times_out(self):
        """A crashed peer's stale tracker entry yields no poll sample."""
        config = dataclasses.replace(
            _observed_config(),
            piece_count=200,
            seed_upload_kbps=300.0,
            faults="crash:3@4",
        )
        runs = {}
        for engine in ("reference", "fast"):
            result = SwarmSimulator(
                config,
                seed=13,
                engine=engine,
                observer=ObserverConfig(scrape_interval=1, poll_interval=1),
            ).run()
            crashed = {
                pid
                for pid, peer in result.peers.items()
                if peer.departed_round is not None
            }
            assert crashed, "no crash victims"
            for pid in crashed:
                timeline = result.observed.timelines.get(pid, [])
                # No sample after the crash round: the peer is unreachable
                # even though the tracker still hands out its id.
                assert all(s.round <= 4 for s in timeline)
            runs[engine] = result.observed
        assert runs["reference"] == runs["fast"]

    def test_observer_instance_reusable_across_runs(self):
        observer = SwarmObserver(ObserverConfig(poll_interval=1))
        first = SwarmSimulator(
            _observed_config(), seed=7, observer=observer
        ).run()
        second = SwarmSimulator(
            _observed_config(), seed=7, observer=observer
        ).run()
        assert first.observed == second.observed
        assert first.observed is not second.observed


@pytest.mark.slow
class TestObserverProperties:
    @given(
        scenario=scenario_schedules(),
        seed=st.integers(min_value=0, max_value=10_000),
        engine=st.sampled_from(["reference", "fast"]),
        observer=st.builds(
            ObserverConfig,
            scrape_interval=st.integers(min_value=1, max_value=4),
            poll_interval=st.integers(min_value=1, max_value=4),
            poll_budget=st.sampled_from([None, 0, 2, 5]),
            confirm_threshold=st.sampled_from([0.5, 0.9, 0.98, 1.0]),
        ),
    )
    @_settings
    def test_observer_invisible_and_bounds_hold(
        self, scenario, seed, engine, observer
    ):
        config = SwarmConfig(
            leechers=8,
            seeds=1,
            piece_count=16,
            rounds=8,
            start_completion=0.25,
            announce_size=5,
        )
        unobserved = SwarmSimulator(
            config, seed=seed, engine=engine, scenario=scenario
        ).run()
        observed_run = SwarmSimulator(
            config, seed=seed, engine=engine, scenario=scenario, observer=observer
        ).run()
        assert_results_identical(unobserved, observed_run)
        campaign = observed_run.observed
        assert (
            campaign.confirmed_downloads(1.0)
            <= campaign.reported_downloads()
            <= unobserved.completed
        )

    @given(
        faults=fault_schedules(),
        scenario=scenario_schedules(),
        resilience=st.sampled_from(
            [None, "failover", "pex", "full", "trackers:2,pex:4,keepalive:2"]
        ),
        seed=st.integers(min_value=0, max_value=10_000),
        engine=st.sampled_from(["reference", "fast"]),
    )
    @_settings
    def test_observer_invisible_over_fault_scenarios(
        self, faults, scenario, resilience, seed, engine
    ):
        """Observing a faulty (and defended) swarm must not perturb it."""
        config = SwarmConfig(
            leechers=8,
            seeds=1,
            piece_count=16,
            rounds=8,
            start_completion=0.25,
            announce_size=5,
            faults=faults,
            resilience=resilience,
        )
        observer = ObserverConfig(
            scrape_interval=1, poll_interval=2, poll_budget=4
        )
        unobserved = SwarmSimulator(
            config, seed=seed, engine=engine, scenario=scenario
        ).run()
        observed_run = SwarmSimulator(
            config, seed=seed, engine=engine, scenario=scenario, observer=observer
        ).run()
        assert_results_identical(unobserved, observed_run)
        campaign = observed_run.observed
        assert (
            campaign.confirmed_downloads(1.0)
            <= campaign.reported_downloads()
            <= unobserved.completed
        )

    @given(
        mix=behavior_mixes(),
        scenario=scenario_schedules(),
        seed=st.integers(min_value=0, max_value=10_000),
        engine=st.sampled_from(["reference", "fast"]),
    )
    @_settings
    def test_observer_invisible_over_behavior_scenarios(
        self, mix, scenario, seed, engine
    ):
        """Observing an adversarial swarm must not perturb it either."""
        config = SwarmConfig(
            leechers=8,
            seeds=1,
            piece_count=16,
            rounds=8,
            start_completion=0.25,
            announce_size=5,
            behaviors=mix,
        )
        observer = ObserverConfig(
            scrape_interval=1, poll_interval=2, poll_budget=4
        )
        unobserved = SwarmSimulator(
            config, seed=seed, engine=engine, scenario=scenario
        ).run()
        observed_run = SwarmSimulator(
            config, seed=seed, engine=engine, scenario=scenario, observer=observer
        ).run()
        assert_results_identical(unobserved, observed_run)

    @given(
        scenario=scenario_schedules(),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @_settings
    def test_observed_record_identical_across_engines(self, scenario, seed):
        config = SwarmConfig(
            leechers=8,
            seeds=1,
            piece_count=16,
            rounds=8,
            start_completion=0.25,
            announce_size=5,
        )
        observer = ObserverConfig(
            scrape_interval=1, poll_interval=2, poll_budget=4
        )
        campaigns = {
            engine: SwarmSimulator(
                config, seed=seed, engine=engine, scenario=scenario, observer=observer
            ).run().observed
            for engine in ("reference", "fast")
        }
        assert campaigns["reference"] == campaigns["fast"]


# -- the experiment driver -------------------------------------------------------


class TestTelemetryExperiment:
    def _small(self, **overrides):
        kwargs = dict(
            leechers=12,
            rounds=12,
            piece_count=40,
            seed=4,
            scenario="poisson",
            poll_budget=6,
        )
        kwargs.update(overrides)
        return telemetry_experiment(**kwargs)

    def test_report_sections_and_shapes(self):
        report = self._small()
        assert set(report) == {
            "ground_truth",
            "observed",
            "threshold_sensitivity",
            "scrape_series",
        }
        sensitivity = report["threshold_sensitivity"]
        assert sensitivity["thresholds"].tolist() == sorted(DEFAULT_THRESHOLDS)
        # Raising the bar can only disqualify peers.
        confirmed = sensitivity["confirmed_downloads"]
        assert all(confirmed[i] >= confirmed[i + 1] for i in range(len(confirmed) - 1))
        scrapes = report["scrape_series"]
        assert (
            scrapes["rounds"].size
            == scrapes["seeders"].size
            == scrapes["snatches"].size
            > 0
        )
        assert float(report["observed"]["reported_downloads"][0]) <= float(
            report["ground_truth"]["completions"][0]
        )

    def test_report_identical_across_engines(self):
        reference = self._small(engine="reference")
        fast = self._small(engine="fast")
        for section in reference:
            for key in reference[section]:
                assert np.array_equal(reference[section][key], fast[section][key]), (
                    section,
                    key,
                )

    def test_report_replays_from_cache(self, tmp_path):
        from repro.sim.parallel import ResultCache

        cache = ResultCache(tmp_path)
        cold = self._small(cache=cache)
        warm = self._small(cache=cache)
        for section in cold:
            for key in cold[section]:
                assert np.array_equal(cold[section][key], warm[section][key])

    def test_ground_truth_cdf_matches_direct_computation(self):
        config = SwarmConfig(
            leechers=12,
            seeds=2,
            piece_count=40,
            rounds=12,
            start_completion=0.25,
            seed_upload_kbps=2000.0,
        )
        result = SwarmSimulator(config, seed=4, scenario="poisson").run()
        cdf = download_time_cdf(result)
        completions = [
            peer for peer in result.leechers() if peer.completed_round is not None
        ]
        assert cdf["durations"].size == len(completions)
        if cdf["cdf"].size:
            assert cdf["cdf"][-1] == 1.0

    def test_swarm_experiment_observe_flag(self):
        from repro.experiments import swarm_stratification_experiment

        plain = swarm_stratification_experiment(
            leechers=12, rounds=10, piece_count=30, seed=4
        )
        observed = swarm_stratification_experiment(
            leechers=12, rounds=10, piece_count=30, seed=4, observe=True
        )
        assert "reported_downloads" not in plain
        assert observed["reported_downloads"] >= observed["confirmed_downloads"] >= 0
        assert -1.0 <= observed["observed_stratification_index"] <= 1.0
        # Observation does not perturb the simulated metrics.
        for key in plain:
            assert observed[key] == plain[key]
