"""Tests for acceptance graphs, matchings, blocking pairs and Algorithm 1."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.acceptance import AcceptanceGraph
from repro.core.exceptions import CapacityError, MatchingError, ModelError, UnknownPeerError
from repro.core.matching import (
    Matching,
    blocking_pairs,
    find_blocking_mate,
    is_blocking_pair,
    is_stable,
)
from repro.core.metrics import mean_max_offset, mean_max_offset_exact_constant
from repro.core.peer import Peer, PeerPopulation
from repro.core.ranking import GlobalRanking
from repro.core.stable import stable_configuration
from repro.graphs.components import cluster_sizes


class TestAcceptanceGraph:
    def test_complete_graph_degree(self, small_population):
        acceptance = AcceptanceGraph.complete(small_population)
        assert acceptance.degree(1) == 8
        assert acceptance.accepts(1, 9)

    def test_erdos_renyi_requires_one_parameter(self, small_population, rng):
        with pytest.raises(ModelError):
            AcceptanceGraph.erdos_renyi(small_population)
        with pytest.raises(ModelError):
            AcceptanceGraph.erdos_renyi(
                small_population, expected_degree=2, probability=0.5
            )

    def test_erdos_renyi_expected_degree(self, rng):
        population = PeerPopulation.ranked(300)
        acceptance = AcceptanceGraph.erdos_renyi(population, expected_degree=10, rng=rng)
        degrees = [acceptance.degree(p) for p in acceptance.peer_ids()]
        assert np.mean(degrees) == pytest.approx(10, rel=0.25)

    def test_symmetry_of_acceptability(self, small_population):
        acceptance = AcceptanceGraph(small_population)
        acceptance.declare_acceptable(1, 2)
        assert acceptance.accepts(2, 1)
        acceptance.declare_unacceptable(2, 1)
        assert not acceptance.accepts(1, 2)

    def test_self_acceptance_rejected(self, small_population):
        acceptance = AcceptanceGraph(small_population)
        with pytest.raises(ModelError):
            acceptance.declare_acceptable(3, 3)

    def test_add_and_remove_peer(self, small_population):
        acceptance = AcceptanceGraph.complete(small_population)
        new_peer = Peer(100, 0.5, 1)
        acceptance.add_peer(new_peer, acceptable=[1, 2])
        assert acceptance.accepts(100, 1)
        removed = acceptance.remove_peer(100)
        assert removed.peer_id == 100
        assert 100 not in acceptance.population

    def test_unknown_peer_rejected(self, small_population):
        acceptance = AcceptanceGraph(small_population)
        with pytest.raises(UnknownPeerError):
            acceptance.declare_acceptable(1, 999)
        with pytest.raises(UnknownPeerError):
            acceptance.acceptable_peers(999)


class TestMatching:
    def test_match_and_unmatch(self, small_complete_acceptance):
        matching = Matching(small_complete_acceptance)
        matching.match(1, 2)
        assert matching.is_matched(1, 2) and matching.is_matched(2, 1)
        matching.unmatch(1, 2)
        assert not matching.is_matched(1, 2)

    def test_capacity_enforced(self, small_complete_acceptance):
        matching = Matching(small_complete_acceptance)
        matching.match(1, 2)
        matching.match(1, 3)
        with pytest.raises(CapacityError):
            matching.match(1, 4)

    def test_cannot_match_outside_acceptance_graph(self, small_population):
        acceptance = AcceptanceGraph(small_population)  # no edges
        matching = Matching(acceptance)
        with pytest.raises(MatchingError):
            matching.match(1, 2)

    def test_cannot_match_twice_or_self(self, small_complete_acceptance):
        matching = Matching(small_complete_acceptance)
        matching.match(1, 2)
        with pytest.raises(MatchingError):
            matching.match(1, 2)
        with pytest.raises(MatchingError):
            matching.match(3, 3)

    def test_mate_of_requires_one_matching(self, small_complete_acceptance):
        matching = Matching(small_complete_acceptance)
        matching.match(1, 2)
        assert matching.mate_of(1) == 2
        assert matching.mate_of(5) is None
        matching.match(1, 3)
        with pytest.raises(MatchingError):
            matching.mate_of(1)

    def test_pairs_and_counts(self, small_complete_acceptance):
        matching = Matching(small_complete_acceptance)
        matching.match(1, 2)
        matching.match(3, 4)
        assert list(matching.pairs()) == [(1, 2), (3, 4)]
        assert matching.pair_count() == 2

    def test_remove_peer(self, small_complete_acceptance):
        matching = Matching(small_complete_acceptance)
        matching.match(1, 2)
        ex_mates = matching.remove_peer(1)
        assert ex_mates == [2]
        assert matching.degree(2) == 0

    def test_copy_and_equality(self, small_complete_acceptance):
        matching = Matching(small_complete_acceptance)
        matching.match(1, 2)
        clone = matching.copy()
        assert clone == matching
        clone.unmatch(1, 2)
        assert clone != matching

    def test_as_graph(self, small_complete_acceptance):
        matching = Matching(small_complete_acceptance)
        matching.match(1, 2)
        graph = matching.as_graph()
        assert graph.has_edge(1, 2)
        assert graph.vertex_count == 9


class TestBlockingPairs:
    def test_both_free_and_acceptable_is_blocking(self, small_complete_acceptance, ranking):
        matching = Matching(small_complete_acceptance)
        assert is_blocking_pair(matching, ranking, 1, 2)

    def test_matched_pair_is_not_blocking(self, small_complete_acceptance, ranking):
        matching = Matching(small_complete_acceptance)
        matching.match(1, 2)
        assert not is_blocking_pair(matching, ranking, 1, 2)

    def test_full_peer_blocks_only_for_better_candidate(self, small_complete_acceptance, ranking):
        matching = Matching(small_complete_acceptance)
        # Fill peer 5's two slots with peers 6 and 7.
        matching.match(5, 6)
        matching.match(5, 7)
        # Peer 4 is better than 5's worst mate (7): blocking.
        assert is_blocking_pair(matching, ranking, 4, 5)
        # Peer 9 is worse than both mates: not blocking.
        assert not is_blocking_pair(matching, ranking, 9, 5)

    def test_find_blocking_mate_returns_best(self, small_complete_acceptance, ranking):
        matching = Matching(small_complete_acceptance)
        matching.match(1, 2)
        best = find_blocking_mate(matching, ranking, 5)
        assert best == 1  # peer 1 still has a free slot and is the best

    def test_blocking_pairs_empty_for_stable(self, small_complete_acceptance, ranking):
        stable = stable_configuration(small_complete_acceptance, ranking)
        assert blocking_pairs(stable, ranking) == []
        assert is_stable(stable, ranking)


class TestStableConfiguration:
    def test_complete_graph_clusters(self, small_complete_acceptance, ranking):
        stable = stable_configuration(small_complete_acceptance, ranking)
        # b0 = 2 on a complete graph: 3-cliques {1,2,3}, {4,5,6}, {7,8,9}.
        assert sorted(stable.mates(1)) == [2, 3]
        assert sorted(stable.mates(5)) == [4, 6]
        assert sorted(stable.mates(9)) == [7, 8]
        assert cluster_sizes(stable.as_graph()) == [3, 3, 3]

    def test_mmo_matches_closed_form(self, small_complete_acceptance, ranking):
        stable = stable_configuration(small_complete_acceptance, ranking)
        assert mean_max_offset(stable, ranking) == pytest.approx(
            mean_max_offset_exact_constant(2)
        )

    def test_stability_on_er_graphs(self, medium_er_acceptance):
        ranking = GlobalRanking.from_population(medium_er_acceptance.population)
        stable = stable_configuration(medium_er_acceptance, ranking)
        assert is_stable(stable, ranking)

    def test_uniqueness_independent_of_processing(self, medium_er_acceptance):
        # Running the algorithm twice (same inputs) gives the same matching;
        # uniqueness against the dynamics is covered in the dynamics tests.
        ranking = GlobalRanking.from_population(medium_er_acceptance.population)
        first = stable_configuration(medium_er_acceptance, ranking)
        second = stable_configuration(medium_er_acceptance, ranking)
        assert first == second

    def test_respects_capacities(self, rng):
        population = PeerPopulation.ranked(20, slots=[3] * 10 + [1] * 10)
        acceptance = AcceptanceGraph.erdos_renyi(population, expected_degree=6, rng=rng)
        stable = stable_configuration(acceptance)
        for peer in population:
            assert stable.degree(peer.peer_id) <= peer.slots

    def test_zero_slots_peer_gets_no_mates(self):
        population = PeerPopulation.ranked(5, slots=[1, 1, 0, 1, 1])
        acceptance = AcceptanceGraph.complete(population)
        stable = stable_configuration(acceptance)
        assert stable.degree(3) == 0

    def test_empty_acceptance_graph_yields_empty_matching(self):
        population = PeerPopulation.ranked(5, slots=2)
        acceptance = AcceptanceGraph(population)
        stable = stable_configuration(acceptance)
        assert stable.pair_count() == 0

    def test_last_peer_may_stay_unmatched(self):
        # Odd number of peers with 1-matching on a complete graph: the worst
        # peer has nobody left (the paper's remark after Algorithm 1).
        population = PeerPopulation.ranked(5, slots=1)
        acceptance = AcceptanceGraph.complete(population)
        stable = stable_configuration(acceptance)
        assert stable.degree(5) == 0
        assert stable.pair_count() == 2
