"""Tests for the graph substrate (base structure, generators, statistics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.base import UndirectedGraph
from repro.graphs.complete import complete_graph
from repro.graphs.components import (
    cluster_sizes,
    component_of,
    connected_components,
    is_connected,
    largest_component_size,
    mean_cluster_size,
)
from repro.graphs.erdos_renyi import (
    erdos_renyi_expected_degree,
    erdos_renyi_graph,
    expected_degree_to_probability,
)
from repro.graphs.generators import configuration_model_graph, random_regular_graph, ring_lattice
from repro.graphs.properties import (
    average_shortest_path_length,
    clustering_coefficient,
    degree_histogram,
    graph_diameter,
    mean_degree,
    shortest_path_lengths,
)


class TestUndirectedGraph:
    def test_add_edge_creates_vertices(self):
        graph = UndirectedGraph()
        graph.add_edge(1, 2)
        assert graph.has_vertex(1) and graph.has_vertex(2)
        assert graph.has_edge(2, 1)

    def test_no_self_loops(self):
        with pytest.raises(ValueError):
            UndirectedGraph().add_edge(1, 1)

    def test_remove_vertex_removes_incident_edges(self):
        graph = UndirectedGraph()
        graph.add_edge(1, 2)
        graph.add_edge(1, 3)
        graph.remove_vertex(1)
        assert not graph.has_vertex(1)
        assert graph.degree(2) == 0 and graph.degree(3) == 0

    def test_remove_missing_edge_raises(self):
        graph = UndirectedGraph([1, 2])
        with pytest.raises(KeyError):
            graph.remove_edge(1, 2)

    def test_edge_count_and_iteration(self):
        graph = UndirectedGraph()
        graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        assert graph.edge_count == 2
        assert list(graph.edges()) == [(1, 2), (2, 3)]

    def test_copy_is_independent(self):
        graph = UndirectedGraph()
        graph.add_edge(1, 2)
        clone = graph.copy()
        clone.add_edge(2, 3)
        assert not graph.has_edge(2, 3)

    def test_subgraph(self):
        graph = complete_graph(5)
        sub = graph.subgraph([1, 2, 3])
        assert sub.vertex_count == 3
        assert sub.edge_count == 3

    def test_equality(self):
        a = UndirectedGraph([1, 2])
        b = UndirectedGraph([1, 2])
        assert a == b
        a.add_edge(1, 2)
        assert a != b

    def test_to_networkx_roundtrip(self):
        graph = complete_graph(4)
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_nodes() == 4
        assert nx_graph.number_of_edges() == 6


class TestErdosRenyi:
    def test_probability_conversion(self):
        assert expected_degree_to_probability(101, 10) == pytest.approx(0.1)
        with pytest.raises(ValueError):
            expected_degree_to_probability(10, 100)

    def test_p_zero_and_one(self, rng):
        empty = erdos_renyi_graph(10, 0.0, rng)
        assert empty.edge_count == 0
        full = erdos_renyi_graph(10, 1.0, rng)
        assert full.edge_count == 45

    def test_vertex_labels_start_at_one(self, rng):
        graph = erdos_renyi_graph(5, 0.5, rng)
        assert graph.vertices() == [1, 2, 3, 4, 5]

    def test_expected_degree_is_respected(self, rng):
        n, d = 400, 12.0
        graph = erdos_renyi_expected_degree(n, d, rng)
        assert mean_degree(graph) == pytest.approx(d, rel=0.2)

    def test_edge_probability_is_respected(self, rng):
        n, p = 300, 0.05
        graph = erdos_renyi_graph(n, p, rng)
        expected_edges = p * n * (n - 1) / 2
        assert graph.edge_count == pytest.approx(expected_edges, rel=0.2)

    def test_reproducible_with_same_rng_seed(self):
        a = erdos_renyi_graph(50, 0.1, np.random.default_rng(3))
        b = erdos_renyi_graph(50, 0.1, np.random.default_rng(3))
        assert a == b

    def test_no_self_loops_generated(self, rng):
        graph = erdos_renyi_graph(100, 0.2, rng)
        for u, v in graph.edges():
            assert u != v


class TestOtherGenerators:
    def test_complete_graph(self):
        graph = complete_graph(6)
        assert graph.edge_count == 15
        assert all(graph.degree(v) == 5 for v in graph.vertices())

    def test_ring_lattice(self):
        graph = ring_lattice(10, 4)
        assert all(graph.degree(v) == 4 for v in graph.vertices())
        assert is_connected(graph)

    def test_ring_lattice_validation(self):
        with pytest.raises(ValueError):
            ring_lattice(10, 3)
        with pytest.raises(ValueError):
            ring_lattice(4, 6)

    def test_random_regular(self, rng):
        graph = random_regular_graph(20, 3, rng)
        assert all(graph.degree(v) == 3 for v in graph.vertices())

    def test_random_regular_validation(self, rng):
        with pytest.raises(ValueError):
            random_regular_graph(5, 3, rng)  # odd n * degree

    def test_configuration_model(self, rng):
        degrees = [2, 2, 2, 2, 1, 1]
        graph = configuration_model_graph(degrees, rng)
        observed = [graph.degree(v) for v in graph.vertices()]
        assert sorted(observed) == sorted(degrees)

    def test_configuration_model_rejects_odd_sum(self, rng):
        with pytest.raises(ValueError):
            configuration_model_graph([1, 1, 1], rng)


class TestComponents:
    def test_components_of_disconnected_graph(self):
        graph = UndirectedGraph(range(1, 7))
        graph.add_edge(1, 2)
        graph.add_edge(3, 4)
        components = connected_components(graph)
        assert [len(c) for c in components] == [2, 2, 1, 1]
        assert cluster_sizes(graph) == [2, 2, 1, 1]
        assert largest_component_size(graph) == 2
        assert not is_connected(graph)

    def test_component_of(self):
        graph = UndirectedGraph()
        graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        graph.add_vertex(9)
        assert component_of(graph, 1) == [1, 2, 3]
        assert component_of(graph, 9) == [9]

    def test_mean_cluster_size(self):
        graph = UndirectedGraph(range(4))
        graph.add_edge(0, 1)
        assert mean_cluster_size(graph) == pytest.approx(4 / 3)
        assert mean_cluster_size(graph, ignore_isolated=True) == 2.0

    def test_complete_graph_is_connected(self):
        assert is_connected(complete_graph(5))


class TestProperties:
    def test_mean_degree(self):
        assert mean_degree(complete_graph(5)) == 4.0
        assert mean_degree(UndirectedGraph()) == 0.0

    def test_degree_histogram(self):
        graph = UndirectedGraph()
        graph.add_edge(1, 2)
        graph.add_vertex(3)
        assert degree_histogram(graph) == {0: 1, 1: 2}

    def test_clustering_coefficient_complete(self):
        assert clustering_coefficient(complete_graph(5)) == pytest.approx(1.0)

    def test_clustering_coefficient_tree(self):
        graph = UndirectedGraph()
        graph.add_edge(1, 2)
        graph.add_edge(1, 3)
        assert clustering_coefficient(graph, 1) == 0.0

    def test_shortest_paths_and_diameter(self):
        graph = ring_lattice(6, 2)
        distances = shortest_path_lengths(graph, 1)
        assert distances[4] == 3
        assert graph_diameter(graph) == 3
        assert average_shortest_path_length(graph) > 1.0
