"""Tests for peers, populations, rankings and utility functions."""

from __future__ import annotations

import pytest

from repro.core.exceptions import ModelError, UnknownPeerError
from repro.core.peer import Peer, PeerPopulation
from repro.core.ranking import GlobalRanking, RankingUtility, TitForTatUtility


class TestPeer:
    def test_negative_slots_rejected(self):
        with pytest.raises(ModelError):
            Peer(1, 1.0, -1)

    def test_with_slots_and_score(self):
        peer = Peer(1, 1.0, 2)
        assert peer.with_slots(5).slots == 5
        assert peer.with_score(9.0).score == 9.0
        # Originals are unchanged (immutability).
        assert peer.slots == 2 and peer.score == 1.0


class TestPeerPopulation:
    def test_ranked_population_orders_scores(self):
        population = PeerPopulation.ranked(5)
        assert population.get(1).score > population.get(5).score
        assert len(population) == 5

    def test_ranked_with_per_peer_slots(self):
        population = PeerPopulation.ranked(3, slots=[1, 2, 3])
        assert population.get(3).slots == 3
        with pytest.raises(ModelError):
            PeerPopulation.ranked(3, slots=[1, 2])

    def test_from_scores(self):
        population = PeerPopulation.from_scores([0.5, 2.0, 1.0])
        assert population.get(2).score == 2.0

    def test_duplicate_id_rejected(self):
        population = PeerPopulation()
        population.add(Peer(1, 1.0, 1))
        with pytest.raises(ModelError):
            population.add(Peer(1, 2.0, 1))

    def test_remove_and_unknown(self):
        population = PeerPopulation.ranked(3)
        removed = population.remove(2)
        assert removed.peer_id == 2
        assert 2 not in population
        with pytest.raises(UnknownPeerError):
            population.get(2)
        with pytest.raises(UnknownPeerError):
            population.remove(2)

    def test_replace(self):
        population = PeerPopulation.ranked(3)
        population.replace(Peer(2, 100.0, 7))
        assert population.get(2).slots == 7
        with pytest.raises(UnknownPeerError):
            population.replace(Peer(99, 1.0, 1))

    def test_total_slots_and_next_id(self):
        population = PeerPopulation.ranked(4, slots=2)
        assert population.total_slots() == 8
        assert population.next_id() == 5

    def test_copy_is_independent(self):
        population = PeerPopulation.ranked(3)
        clone = population.copy()
        clone.remove(1)
        assert 1 in population


class TestGlobalRanking:
    def test_rank_follows_scores(self):
        ranking = GlobalRanking({1: 0.1, 2: 5.0, 3: 2.0})
        assert ranking.rank(2) == 1
        assert ranking.rank(3) == 2
        assert ranking.rank(1) == 3

    def test_identity_ranking(self):
        ranking = GlobalRanking.identity([10, 20, 30])
        assert ranking.rank(10) == 1
        assert ranking.rank(30) == 3

    def test_ties_broken_by_id(self):
        ranking = GlobalRanking({5: 1.0, 3: 1.0})
        assert ranking.rank(3) == 1
        assert ranking.rank(5) == 2

    def test_prefers_best_and_worst(self):
        ranking = GlobalRanking.identity([1, 2, 3, 4])
        assert ranking.prefers(4, candidate=1, incumbent=2)
        assert not ranking.prefers(4, candidate=3, incumbent=2)
        assert ranking.best_of([3, 2, 4]) == 2
        assert ranking.worst_of([3, 2, 4]) == 4
        assert ranking.better_of(3, 2) == 2

    def test_sorted_by_rank_and_offset(self):
        ranking = GlobalRanking.identity([1, 2, 3, 4, 5])
        assert ranking.sorted_by_rank([4, 1, 3]) == [1, 3, 4]
        assert ranking.offset(1, 4) == 3

    def test_unknown_peer_raises(self):
        ranking = GlobalRanking.identity([1, 2])
        with pytest.raises(UnknownPeerError):
            ranking.rank(5)

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            GlobalRanking({})

    def test_from_population(self):
        ranking = GlobalRanking.from_population(PeerPopulation.ranked(4))
        assert ranking.ids() == [1, 2, 3, 4]


class TestUtilityFunctions:
    def test_ranking_utility_matches_scores(self):
        ranking = GlobalRanking({1: 3.0, 2: 2.0, 3: 1.0})
        utility = RankingUtility(ranking)
        assert utility.value(3, 1) == 3.0
        assert utility.prefers(3, candidate=1, incumbent=2)
        assert utility.preference_list(3, [2, 1]) == [1, 2]
        assert utility.induces_global_ranking()

    def test_tft_utility_records_and_ranks(self):
        utility = TitForTatUtility({})
        utility.record(1, 2, 100.0)
        utility.record(1, 3, 10.0)
        assert utility.value(1, 2) == 100.0
        assert utility.prefers(1, candidate=2, incumbent=3)
        utility.reset()
        assert utility.value(1, 2) == 0.0

    def test_tft_negative_volume_rejected(self):
        with pytest.raises(ModelError):
            TitForTatUtility({}).record(1, 2, -1.0)

    def test_tft_reduction_to_global_ranking(self):
        # upload-per-slot: peer 1 -> 100, peer 2 -> 200, peer 3 -> 50
        ranking = TitForTatUtility.from_upload_per_slot(
            uploads={1: 400, 2: 400, 3: 100}, slots={1: 4, 2: 2, 3: 2}
        )
        assert ranking.rank(2) == 1
        assert ranking.rank(1) == 2
        assert ranking.rank(3) == 3
