"""Tests for the swarm simulator, bandwidth distribution, efficiency model and
slot-count strategy analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bittorrent.bandwidth import BandwidthClass, BandwidthDistribution, saroiu_like_distribution
from repro.bittorrent.efficiency import (
    analytic_efficiency,
    efficiency_observations,
    simulated_efficiency,
)
from repro.bittorrent.strategy import (
    is_connectivity_feasible,
    minimum_slots_for_connectivity,
    rational_best_response,
    recommended_default_slots,
    slot_deviation_payoffs,
)
from repro.bittorrent.swarm import SwarmConfig, SwarmSimulator, stratification_index


class TestBandwidthDistribution:
    def test_cdf_monotone_and_bounded(self):
        dist = saroiu_like_distribution()
        grid = np.logspace(1, 5, 50)
        cdf = dist.cdf(grid)
        assert np.all(np.diff(cdf) >= -1e-12)
        assert cdf[0] < 0.05 and cdf[-1] > 0.95

    def test_percentage_of_hosts_scale(self):
        dist = saroiu_like_distribution()
        assert 0 <= dist.percentage_of_hosts(56.0) <= 100

    def test_sampling_matches_cdf(self, rng):
        dist = saroiu_like_distribution()
        samples = dist.sample(20000, rng)
        empirical = np.mean(samples <= 768.0)
        assert empirical == pytest.approx(float(dist.cdf(768.0)), abs=0.03)

    def test_quantile_inverts_cdf(self):
        dist = saroiu_like_distribution()
        median = dist.quantile(0.5)
        assert float(dist.cdf(median)) == pytest.approx(0.5, abs=0.01)

    def test_density_peaks_sorted(self):
        peaks = saroiu_like_distribution().density_peaks()
        assert peaks == sorted(peaks)
        assert 56.0 in peaks

    def test_figure10_curve_shape(self):
        curve = saroiu_like_distribution().figure10_curve(points=40)
        assert curve["upstream_kbps"].shape == (40,)
        assert curve["percentage_of_hosts"][-1] > 95

    def test_custom_mixture_validation(self):
        with pytest.raises(ValueError):
            BandwidthDistribution([])
        with pytest.raises(ValueError):
            BandwidthClass("bad", -1.0, 0.5)
        with pytest.raises(ValueError):
            BandwidthClass("bad", 100.0, 0.0)

    def test_wide_distribution(self, rng):
        # "All peers are equal but some peers are more equal than others":
        # the spread covers several orders of magnitude.
        samples = saroiu_like_distribution().sample(5000, rng)
        assert np.percentile(samples, 99) / np.percentile(samples, 1) > 100


class TestEfficiencyModel:
    @pytest.fixture(scope="class")
    def curve(self):
        return analytic_efficiency(n=400, b0=3, expected_degree=20.0, seed=1)

    def test_best_peers_have_low_share_ratio(self, curve):
        # Paper observation: the best peers can only collaborate with worse
        # peers, so their expected D/U ratio is below 1.
        assert curve.best_peer_efficiency() < 1.0

    def test_median_peer_near_one(self, curve):
        # Peers inside a bandwidth density peak have a ratio close to 1.
        assert 0.7 <= curve.median_efficiency() <= 1.6

    def test_efficiency_peaks_exist(self, curve):
        # Peers just above a density peak enjoy ratios well above 1.
        assert float(np.max(curve.efficiency)) > 1.5

    def test_percentile_accessor(self, curve):
        assert curve.efficiency_at_percentile(100) == pytest.approx(
            curve.best_peer_efficiency()
        )
        with pytest.raises(ValueError):
            curve.efficiency_at_percentile(150)

    def test_observations_dictionary(self, curve):
        obs = efficiency_observations(curve)
        assert set(obs) == {
            "best_peer_efficiency",
            "median_efficiency",
            "worst_decile_efficiency",
            "max_efficiency",
        }

    def test_simulation_agrees_with_analytic_model(self):
        uploads = np.exp(np.random.default_rng(5).uniform(np.log(50), np.log(5000), 200))
        analytic = analytic_efficiency(
            n=200, b0=3, expected_degree=15.0, uploads=uploads.tolist(), seed=2
        )
        simulated = simulated_efficiency(
            n=200, b0=3, expected_degree=15.0, uploads=uploads.tolist(), samples=30, seed=2
        )
        # Median share ratios from the two estimators agree within ~20%.
        assert analytic.median_efficiency() == pytest.approx(
            simulated.median_efficiency(), rel=0.25
        )

    def test_more_neighbors_help_best_peers(self):
        sparse = analytic_efficiency(n=300, b0=3, expected_degree=10.0, seed=3)
        dense = analytic_efficiency(n=300, b0=3, expected_degree=40.0, seed=3)
        # With more acceptable peers, the best peer finds mates closer to its
        # own bandwidth, improving (or at least not worsening) its ratio.
        assert dense.best_peer_efficiency() >= sparse.best_peer_efficiency() - 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            analytic_efficiency(n=1)
        with pytest.raises(ValueError):
            analytic_efficiency(n=10, uploads=[0.0] * 10)
        with pytest.raises(ValueError):
            simulated_efficiency(n=10, samples=0)


class TestSwarmSimulator:
    @pytest.fixture(scope="class")
    def swarm_result(self):
        rng = np.random.default_rng(11)
        bandwidths = np.exp(rng.uniform(np.log(100.0), np.log(2000.0), 40))
        config = SwarmConfig(
            leechers=40,
            seeds=2,
            piece_count=600,
            rounds=80,
            start_completion=0.25,
            seed_upload_kbps=2000.0,
        )
        return SwarmSimulator(config, bandwidths=bandwidths, seed=11).run()

    def test_everyone_completes(self, swarm_result):
        assert swarm_result.completed == 40
        for peer in swarm_result.leechers():
            assert peer.bitfield.is_complete()

    def test_download_rate_correlates_with_upload(self, swarm_result):
        rates = swarm_result.download_rates()
        uploads = {p.peer_id: p.upload_kbps for p in swarm_result.leechers()}
        ids = sorted(rates)
        corr = np.corrcoef([uploads[i] for i in ids], [rates[i] for i in ids])[0, 1]
        assert corr > 0.4

    def test_tft_reciprocity_shows_stratification(self, swarm_result):
        index = stratification_index(swarm_result)
        assert index > 0.3

    def test_share_ratio_of_fast_peers_is_lower(self, swarm_result):
        ratios = swarm_result.share_ratios()
        leechers = sorted(swarm_result.leechers(), key=lambda p: -p.upload_kbps)
        fast = np.mean([ratios[p.peer_id] for p in leechers[:8]])
        slow = np.mean([ratios[p.peer_id] for p in leechers[-8:]])
        assert slow > fast

    def test_volume_conservation(self, swarm_result):
        uploaded = sum(p.uploaded_kbit for p in swarm_result.peers.values())
        downloaded = sum(p.downloaded_kbit for p in swarm_result.peers.values())
        assert uploaded == pytest.approx(downloaded, rel=1e-9)

    def test_deprecated_peer_volume_aliases(self, swarm_result):
        peer = swarm_result.leechers()[0]
        with pytest.warns(DeprecationWarning):
            assert peer.downloaded_kb == peer.downloaded_kbit
        with pytest.warns(DeprecationWarning):
            assert peer.uploaded_kb == peer.uploaded_kbit
        with pytest.warns(DeprecationWarning):
            assert peer.partial_kb is peer.partial_kbit

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SwarmConfig(leechers=1)
        with pytest.raises(ValueError):
            SwarmConfig(start_completion=1.0)
        with pytest.raises(ValueError):
            SwarmConfig(rounds=0)

    def test_explicit_bandwidths_length_checked(self):
        config = SwarmConfig(leechers=5, rounds=2, piece_count=10)
        with pytest.raises(ValueError):
            SwarmSimulator(config, bandwidths=[100.0] * 3)

    def test_seedless_swarm_with_bootstrap_still_progresses(self):
        config = SwarmConfig(
            leechers=10, seeds=0, piece_count=50, rounds=30, start_completion=0.5
        )
        result = SwarmSimulator(config, seed=7).run()
        total_downloaded = sum(p.downloaded_kbit for p in result.leechers())
        assert total_downloaded > 0


class TestSlotStrategy:
    def test_connectivity_lower_bound(self):
        assert minimum_slots_for_connectivity() == 3
        assert not is_connectivity_feasible(1, 10)
        assert is_connectivity_feasible(2, 10)  # only as the fragile cycle
        assert is_connectivity_feasible(3, 10)
        assert not is_connectivity_feasible(5, 4)

    def test_recommended_defaults(self):
        defaults = recommended_default_slots()
        assert defaults["total"] == 4
        assert defaults["tft_slots"] + defaults["optimistic_slots"] == 4

    def test_rational_peer_prefers_fewer_slots(self):
        # The paper's Nash-equilibrium argument: concentrating the upload on
        # fewer slots raises the peer's rank and its share ratio.
        best = rational_best_response(
            400.0, population_slots=3, candidate_slots=(1, 3), n=200, seed=1
        )
        assert best == 1

    def test_deviation_payoffs_structure(self):
        outcomes = slot_deviation_payoffs(
            300.0, population_slots=3, candidate_slots=(1, 3), n=150, seed=2
        )
        assert len(outcomes) == 2
        by_slots = {o.deviant_slots: o for o in outcomes}
        assert by_slots[1].deviant_efficiency >= by_slots[3].deviant_efficiency
        with pytest.raises(ValueError):
            slot_deviation_payoffs(300.0, candidate_slots=(0,), n=100)
