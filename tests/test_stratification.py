"""Tests for the stratification analysis (Section 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.acceptance import AcceptanceGraph
from repro.core.peer import PeerPopulation
from repro.core.stable import stable_configuration
from repro.stratification.bvalues import constant_slots, rounded_normal_slots, slot_statistics
from repro.stratification.clustering import (
    analyze_complete_matching,
    complete_graph_stable_matching,
    constant_matching_cluster_size,
)
from repro.stratification.mmo import (
    mmo_constant_matching,
    mmo_constant_matching_limit,
    mmo_from_edges,
)
from repro.stratification.phase_transition import (
    estimate_transition_sigma,
    sigma_sweep,
    table1,
    variable_matching_statistics,
)


class TestSlotSamplers:
    def test_constant_slots(self):
        assert constant_slots(5, 3) == [3, 3, 3, 3, 3]
        with pytest.raises(ValueError):
            constant_slots(-1, 3)

    def test_rounded_normal_zero_sigma_is_constant(self, rng):
        slots = rounded_normal_slots(100, 4.0, 0.0, rng)
        assert set(slots) == {4}

    def test_rounded_normal_values_are_positive_integers(self, rng):
        slots = rounded_normal_slots(2000, 2.0, 1.5, rng)
        assert all(isinstance(s, int) and s >= 1 for s in slots)

    def test_rounded_normal_mean_close_to_target(self, rng):
        slots = rounded_normal_slots(5000, 6.0, 0.5, rng)
        assert np.mean(slots) == pytest.approx(6.0, abs=0.1)

    def test_slot_statistics(self):
        stats = slot_statistics([2, 2, 3])
        assert stats["heterogeneous"]
        assert stats["min"] == 2 and stats["max"] == 3
        assert not slot_statistics([4, 4])["heterogeneous"]
        with pytest.raises(ValueError):
            slot_statistics([])

    def test_invalid_parameters(self, rng):
        with pytest.raises(ValueError):
            rounded_normal_slots(10, 0.5, 0.1, rng)
        with pytest.raises(ValueError):
            rounded_normal_slots(10, 3.0, -1.0, rng)


class TestCompleteGraphMatching:
    def test_matches_general_algorithm(self, rng):
        # The specialised O(n*b) construction must agree with Algorithm 1 on
        # a complete acceptance graph, for heterogeneous slot budgets.
        slots = rounded_normal_slots(40, 3.0, 1.0, rng)
        fast_edges = set(complete_graph_stable_matching(slots))

        population = PeerPopulation.ranked(40, slots=slots)
        acceptance = AcceptanceGraph.complete(population)
        matching = stable_configuration(acceptance)
        slow_edges = set(matching.pairs())
        assert fast_edges == slow_edges

    def test_constant_matching_forms_cliques(self):
        edges = complete_graph_stable_matching([2] * 9)
        analysis = analyze_complete_matching([2] * 9)
        assert analysis.cluster_sizes == [3, 3, 3]
        assert len(edges) == 9  # three 3-cliques of 3 edges each

    def test_figure5_extra_connection_connects_graph(self):
        slots = [2] * 8
        disconnected = analyze_complete_matching(slots)
        assert not disconnected.connected
        slots[0] += 1
        connected = analyze_complete_matching(slots)
        assert connected.connected

    def test_cluster_size_closed_form(self):
        assert constant_matching_cluster_size(4) == 5
        assert constant_matching_cluster_size(0) == 1

    def test_capacity_respected(self, rng):
        slots = rounded_normal_slots(200, 4.0, 1.0, rng)
        edges = complete_graph_stable_matching(slots)
        degree = np.zeros(len(slots), dtype=int)
        for a, b in edges:
            degree[a - 1] += 1
            degree[b - 1] += 1
        assert np.all(degree <= np.asarray(slots))

    def test_zero_slot_peer_excluded(self):
        edges = complete_graph_stable_matching([1, 0, 1])
        assert edges == [(1, 3)]


class TestMMO:
    def test_table1_constant_values(self):
        # Paper Table 1: 1.67, 2.5, 3.2, 4, 4.71, 5.5 for b0 = 2..7.
        expected = [1.67, 2.5, 3.2, 4.0, 4.71, 5.5]
        for b0, value in zip(range(2, 8), expected):
            assert mmo_constant_matching(b0) == pytest.approx(value, abs=0.01)

    def test_limit(self):
        assert mmo_constant_matching_limit(8) == 6.0

    def test_mmo_from_edges(self):
        edges = [(1, 2), (2, 3)]
        # offsets: peer1 -> 1, peer2 -> 1, peer3 -> 1 ; mean = 1.
        assert mmo_from_edges(edges, 3) == 1.0
        with pytest.raises(ValueError):
            mmo_from_edges([(0, 2)], 3)

    def test_empirical_mmo_matches_closed_form(self):
        analysis = analyze_complete_matching(constant_slots(30, 5))
        assert analysis.mean_max_offset == pytest.approx(mmo_constant_matching(5))


class TestPhaseTransition:
    def test_sigma_zero_gives_small_clusters(self):
        point = variable_matching_statistics(3000, 6.0, 0.0, repetitions=1, seed=0)
        assert point.mean_cluster_size == pytest.approx(7.0, abs=0.5)

    def test_cluster_size_explodes_past_transition(self):
        below = variable_matching_statistics(6000, 6.0, 0.05, repetitions=2, seed=1)
        above = variable_matching_statistics(6000, 6.0, 0.3, repetitions=2, seed=1)
        assert above.mean_cluster_size > 10 * below.mean_cluster_size

    def test_mmo_drops_past_transition(self):
        below = variable_matching_statistics(6000, 6.0, 0.0, repetitions=1, seed=2)
        above = variable_matching_statistics(6000, 6.0, 0.3, repetitions=2, seed=2)
        assert above.mean_max_offset < below.mean_max_offset

    def test_sigma_sweep_returns_all_points(self):
        points = sigma_sweep(2000, 4.0, [0.0, 0.2, 0.5], repetitions=1, seed=3)
        assert [p.sigma for p in points] == [0.0, 0.2, 0.5]

    def test_transition_sigma_estimate_in_paper_range(self):
        sigma = estimate_transition_sigma(
            6000, 6.0, sigmas=[0.0, 0.05, 0.1, 0.15, 0.2, 0.3], repetitions=2, seed=4
        )
        # The paper locates the explosion around sigma ~ 0.15.
        assert 0.05 <= sigma <= 0.3

    def test_cluster_growth_with_b(self):
        rows = table1((2, 3, 4), n=8000, repetitions=2, seed=5)
        sizes = [row["normal_cluster_size"] for row in rows]
        # Cluster size grows steeply (roughly factorially) with b.
        assert sizes[1] > 2 * sizes[0]
        assert sizes[2] > 2 * sizes[1]
        # Constant-matching columns match the closed forms.
        assert rows[0]["constant_cluster_size"] == 3
        assert rows[0]["constant_mmo"] == pytest.approx(5 / 3)

    def test_table1_rejects_bad_b(self):
        with pytest.raises(ValueError):
            table1((0,), n=100)
